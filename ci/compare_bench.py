#!/usr/bin/env python3
"""CI bench-regression gate: compare a BENCH_*.json snapshot to a baseline.

Usage: compare_bench.py BASELINE CURRENT [--tolerance 0.10]

Both files are single JSON objects as emitted by bench_common's JsonReport
(--json out=...). The gate compares the numeric fields of the "summary"
object:

  * boolean check fields (value 0/1 in the baseline, or names containing
    "identical"/"never"/"wins"/"bounded"/"cuts") must not regress from 1
    to 0;
  * byte/count fields (*_bytes, epochs, samples, ratios) must stay within
    the relative tolerance of the baseline - deterministic-mode benches
    make these machine-independent;
  * modeled fields (names containing "modeled") are the interconnect
    model's analytic completion-deadline charges: pure functions of payload
    and topology, bitwise machine-independent in deterministic mode. They
    are gated at a much tighter tolerance (--modeled-tolerance, default
    1e-6 relative) so a drifting cost model fails loudly instead of hiding
    inside the 10% value band;
  * wall-time fields (names containing "seconds", "wall" or "time") and
    throughput fields (names containing "rate", "per_sec" or "speedup")
    are skipped: they are not comparable across runners.

Exits nonzero with a per-field report on any regression, so the CI job
fails instead of silently uploading a worse snapshot.
"""

import argparse
import json
import math
import sys

BOOL_MARKERS = ("identical", "never", "wins", "bounded", "cuts")
SKIP_MARKERS = ("seconds", "wall", "time", "rate", "per_sec", "speedup")


def classify(name: str, baseline_value: float) -> str:
    lowered = name.lower()
    # Check flags outrank everything: "..._cuts_modeled_s" is a boolean
    # verdict about a modeled quantity, not the quantity itself.
    if any(marker in lowered for marker in BOOL_MARKERS) or (
            baseline_value in (0.0, 1.0) and
            lowered.endswith(("_ok", "_pass"))):
        return "bool"
    if "modeled" in lowered:
        return "modeled"
    if any(marker in lowered for marker in SKIP_MARKERS):
        return "skip"
    return "value"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for value fields")
    parser.add_argument("--modeled-tolerance", type=float, default=1e-6,
                        help="relative tolerance for analytic modeled "
                             "fields (deterministic, machine-independent)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)

    base_summary = baseline.get("summary", {})
    cur_summary = current.get("summary", {})
    if not base_summary:
        print(f"FAIL: baseline {args.baseline} has no summary object")
        return 2

    failures = []
    compared = 0
    for name, base_value in base_summary.items():
        if not isinstance(base_value, (int, float)) or \
                isinstance(base_value, bool):
            continue
        kind = classify(name, float(base_value))
        if kind == "skip":
            print(f"  skip  {name} (wall time)")
            continue
        if name not in cur_summary:
            failures.append(f"{name}: missing from current snapshot")
            continue
        cur_value = cur_summary[name]
        if not isinstance(cur_value, (int, float)):
            failures.append(f"{name}: non-numeric in current snapshot")
            continue
        compared += 1
        base_f, cur_f = float(base_value), float(cur_value)
        if kind == "bool":
            ok = not (base_f >= 1.0 and cur_f < 1.0)
            verdict = "ok" if ok else "REGRESSED (check went 1 -> 0)"
        else:
            tolerance = (args.modeled_tolerance if kind == "modeled"
                         else args.tolerance)
            if not (math.isfinite(base_f) and math.isfinite(cur_f)):
                ok = False
                verdict = "non-finite"
            elif base_f == 0.0:
                ok = abs(cur_f) <= tolerance
                verdict = "ok" if ok else "moved off zero"
            else:
                rel = abs(cur_f - base_f) / abs(base_f)
                ok = rel <= tolerance
                verdict = ("ok" if ok else
                           f"off by {rel:.2e} (> {tolerance:g})")
        print(f"  {'ok ' if ok else 'FAIL'}  {name}: "
              f"baseline {base_f:g} vs current {cur_f:g} - {verdict}")
        if not ok:
            failures.append(f"{name}: {verdict}")

    if compared == 0:
        print("FAIL: no comparable summary fields")
        return 2
    if failures:
        print(f"\nbench regression vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbench OK: {compared} fields within tolerance of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
