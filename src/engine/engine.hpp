// The pluggable epoch-sampling engine: one implementation of the paper's
// Algorithm 2 serving every adaptive-sampling workload and every backend.
//
// The algorithm-specific pieces - the state-frame layout, the sampling
// kernel, the stopping rule - are template parameters; everything the paper
// contributes is engine machinery shared by all of them:
//   * per-thread wait-free frames with overlapped epoch transitions (§IV-B/C),
//   * the epoch-length rule (§IV-D, streams.hpp),
//   * selectable aggregation strategies (§IV-F): Ibarrier + blocking Reduce,
//     plain Ireduce, or fully blocking,
//   * hierarchical node-local RMA pre-reduction (§IV-E, hierarchy.hpp),
//     composable with a leader-level radix tree into one two-level merge
//     path (EngineOptions::leader_radix),
//   * decentralized termination: the merged epoch aggregate is distributed
//     to every rank (all-reduce flavors, or the tree path's downward
//     broadcast leg), so each rank evaluates the stopping rule locally on
//     identical data - no rank-0 verdict broadcast,
//   * per-phase stats plumbing.
//
// Backends are pure configurations of this engine:
//   seq = no communicator (world == nullptr), 1 thread;
//   shm = no communicator, T threads;
//   mpi = P ranks x T threads over an mpisim communicator.
// With a null communicator (or a 1-rank world) every collective degenerates
// to a no-op and the epoch aggregate feeds the stopping rule directly.
//
// Requirements on Frame:
//   Frame(const Frame&)            - copyable prototype construction
//   void clear()
//   void merge(const Frame&)       - equivalent to elementwise sum
// plus at least one wire interface (engine/frame_traits.hpp):
//   std::span<std::uint64_t> raw() - mutable flat view: the classic
//     elementwise-reduction path (and the dense §IV-E window pass);
//   dense_words()/encode()/decode_add()/add_dense() - the frame_codec
//     serialization contract: variable-length wire images (dense or sparse
//     index/count deltas), moved by the substrate reduce_merge path and
//     scatter-added into the §IV-E window.
// EngineOptions::frame_rep picks the wire representation for frames that
// support both; epoch::SparseFrame is serializable-only, so it always
// rides the image path. In deterministic mode all representations produce
// bitwise-identical aggregates: images carry exact uint64 counts and
// decoding is a commutative elementwise sum.
// Requirements on the sampler factory: Sampler make(stream_index) for
// stream indices in [0, num_streams), where Sampler provides
// void sample(Frame&). Requirements on the stop functor (evaluated on EVERY
// rank, each holding the identical merged aggregate - it must be a pure
// function of that aggregate, or ranks diverge and the run deadlocks):
// bool operator()(const Frame&).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "engine/frame_traits.hpp"
#include "engine/hierarchy.hpp"
#include "engine/streams.hpp"
#include "epoch/epoch_manager.hpp"
#include "epoch/frame_codec.hpp"
#include "comm/substrate.hpp"
#include "support/timer.hpp"

namespace distbc::engine {

/// Aggregation strategies of paper §IV-F.
enum class Aggregation : std::uint8_t {
  kIbarrierReduce,  // paper's final choice: Ibarrier, then blocking Reduce
  kIreduce,         // plain non-blocking reduction (progresses poorly)
  kBlocking         // no overlap at all ("again detrimental")
};

[[nodiscard]] const char* aggregation_name(Aggregation aggregation);

[[nodiscard]] std::optional<Aggregation> aggregation_from_name(
    std::string_view name);

/// Wire representation of epoch state frames (epoch/frame_codec.hpp):
/// dense flat vectors, sparse index/count deltas, or per-payload choice.
using FrameRep = epoch::FrameRep;

struct EngineOptions {
  int threads_per_rank = 1;
  Aggregation aggregation = Aggregation::kIbarrierReduce;
  /// §IV-E: node-local shared-memory pre-aggregation; only node leaders
  /// join the global reduction. Ignored on single-rank runs.
  bool hierarchical = false;
  /// Epoch length rule n0 = epoch_base * streams^epoch_exponent (§IV-D),
  /// counting *total* samples per epoch across all streams.
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
  /// Optional cap on the total epoch length (0 = none). Adaptive drivers
  /// clamp with a fraction of their sample budget so the first stopping
  /// check happens before easy instances overshoot termination.
  std::uint64_t max_epoch_length = 0;
  /// Hard cap on epochs (safety net for never-converging stop rules).
  std::uint64_t max_epochs = 1u << 20;
  /// Deterministic mode: every stream contributes an exact per-epoch share
  /// and no overlap samples are taken, so the aggregate after every epoch
  /// is a pure function of (seed, streams, epoch schedule) - bitwise
  /// identical across backends, cluster shapes, and aggregation strategies.
  bool deterministic = false;
  /// Stream count for deterministic mode (0 = physical thread count).
  /// Fixing it decouples the sample set from the physical layout.
  std::uint64_t virtual_streams = 0;
  /// Frame representation on the wire: kDense ships the flat |V|+1 vector
  /// as one elementwise reduction (the paper's layout); kSparse ships
  /// index/count delta pairs over variable-length merge reductions, making
  /// aggregation cost proportional to samples taken; kAuto picks the
  /// smaller image per payload (never loses to the worse fixed choice).
  /// Only effective for frames implementing the serialization interface;
  /// drivers choose the matching frame type (StateFrame vs SparseFrame).
  /// Process-wide defaulting (the DISTBC_FRAME_REP environment variable)
  /// lives exclusively in api::Config; the engine itself never peeks at
  /// the environment.
  FrameRep frame_rep = epoch::FrameRep::kDense;
  /// Tree-merge aggregation of wire images (mpisim reduce_merge_tree):
  /// 0 = flat (the root ingests every per-rank image); >= 2 = images
  /// combine at interior ranks of a radix-k tree with mid-tree
  /// densification, charging alpha-beta per hop, so root ingest shrinks
  /// from O(P x nnz) to the top-of-tree merged images and latency grows
  /// with depth instead of P. Only affects the wire-image path; the final
  /// aggregate is bitwise identical in deterministic mode. Environment
  /// defaulting (DISTBC_TREE_RADIX) is api::Config's job, not the
  /// engine's.
  int tree_radix = 0;
  /// Radix of the leader-level (inter-node) merge when `hierarchical` is
  /// set - the top half of the two-level path: ranks pre-reduce over the
  /// node window, node leaders tree-merge at this radix. 0 = inherit
  /// tree_radix, so existing single-knob configurations keep their PR 4
  /// shape; >= 2 overrides it for the leader hop class only (intra-node
  /// stays the RMA window pass either way). Ignored without `hierarchical`.
  /// Environment defaulting (DISTBC_LEADER_RADIX) is api::Config's job.
  int leader_radix = 0;
  /// Keep per-rank local aggregates: every rank (the root included) also
  /// accumulates its own epoch snapshots into
  /// EngineResult::local_aggregate, feeding collectives that operate on
  /// per-rank partials (e.g. the distributed top-k extraction). Off by
  /// default - it costs one frame merge per epoch.
  bool local_aggregates = false;
  /// Samples per traversal batch. Drivers whose sampler supports batching
  /// (bc::BatchSampler over graph::BatchedBidirectionalBfs) hand the
  /// engine batch-capable samplers when this is > 1; the engine then
  /// batches through the BatchSampling protocol (deterministic mode: post
  /// one pair per stream, flush, finish in stream order - each stream's
  /// RNG sequence is untouched, so aggregates stay bitwise identical to
  /// scalar sampling for every batch size). 1 = the scalar sampler;
  /// 0 = auto: the driver probes candidate widths on calibration
  /// (tune::pick_sample_batch) and resolves the winner before the engine
  /// sees the options. The engine never interprets the value itself - it
  /// is the driver-facing carrier, like frame_rep.
  int sample_batch = 1;
};

/// Number of RNG streams a run with these options draws from; sampler
/// factories receive stream indices in [0, num_streams).
[[nodiscard]] inline std::uint64_t num_streams(const EngineOptions& options,
                                               int num_ranks) {
  const auto physical = static_cast<std::uint64_t>(num_ranks) *
                        static_cast<std::uint64_t>(options.threads_per_rank);
  if (options.deterministic && options.virtual_streams != 0)
    return options.virtual_streams;
  return physical;
}

template <typename Frame>
struct EngineResult {
  Frame aggregate;  // consistent final state (identical on every rank)
  /// This rank's own aggregated samples - valid on every rank when
  /// EngineOptions::local_aggregates is set (empty otherwise). The
  /// elementwise sum of all ranks' local aggregates equals `aggregate`.
  Frame local_aggregate;
  std::uint64_t epochs = 0;
  std::uint64_t samples_attempted = 0;  // all ranks (valid at rank 0)
  /// Payload moved over the communicators this engine used, including the
  /// hierarchical substrate (cumulative over the comm's lifetime).
  std::uint64_t comm_bytes = 0;
  /// Per-collective breakdown of comm_bytes (dense reductions vs sparse
  /// merge reductions vs window/p2p vs broadcasts).
  comm::CommVolume comm_volume{};
  PhaseTimer phases{};
  double total_seconds = 0.0;
};

namespace detail {

/// Batch-capable sampler protocol (bc::BatchSampler): the engine stages
/// one pair per stream into a shared traversal kernel, seals the batch,
/// then finishes the staged lanes in stream order. Scalar samplers
/// (bc::PathSampler) don't model this and take the plain sample() loops.
template <typename Sampler, typename Frame>
concept BatchSampling = requires(Sampler s, Frame& f, std::uint64_t n) {
  { s.post_sample() } -> std::convertible_to<bool>;
  s.flush_staged();
  s.finish_sample(f);
  s.sample_batch(f, n);
  { s.batch_capacity() } -> std::convertible_to<int>;
};

/// The streams a physical thread owns, with their exact per-epoch shares
/// (used in deterministic mode; free-running threads own exactly one).
template <typename Sampler>
struct ThreadStreams {
  struct Stream {
    Sampler sampler;
    std::uint64_t share;
  };
  std::vector<Stream> streams;

  template <typename Frame>
  std::uint64_t sample_shares(Frame& frame) {
    if constexpr (BatchSampling<Sampler, Frame>) {
      return sample_shares_batched(frame);
    } else {
      std::uint64_t count = 0;
      for (Stream& stream : streams) {
        for (std::uint64_t i = 0; i < stream.share; ++i)
          stream.sampler.sample(frame);
        count += stream.share;
      }
      return count;
    }
  }

  /// Share draining for batch-capable samplers. Per pass: post one pair
  /// per stream with remaining share (stream order; stop early when the
  /// shared kernel fills), seal, then finish the posted lanes in that
  /// same order. Each stream's own RNG draw sequence is exactly the
  /// scalar loop's, and frame records are commutative uint64 counts, so
  /// the epoch aggregate is bitwise identical to the scalar path for any
  /// batch capacity - including streams sharing one kernel.
  template <typename Frame>
  std::uint64_t sample_shares_batched(Frame& frame) {
    std::uint64_t count = 0;
    std::vector<std::uint64_t> remaining(streams.size());
    for (std::size_t i = 0; i < streams.size(); ++i)
      remaining[i] = streams[i].share;
    std::vector<std::size_t> posted;
    posted.reserve(streams.size());
    while (true) {
      posted.clear();
      for (std::size_t i = 0; i < streams.size(); ++i) {
        if (remaining[i] == 0) continue;
        if (!streams[i].sampler.post_sample()) break;  // kernel full
        posted.push_back(i);
        --remaining[i];
      }
      if (posted.empty()) break;  // every share drained
      // Seal per posted stream: a no-op for streams sharing an already
      // sealed kernel, required when streams hold private kernels.
      for (const std::size_t i : posted) streams[i].sampler.flush_staged();
      for (const std::size_t i : posted) {
        streams[i].sampler.finish_sample(frame);
        ++count;
      }
    }
    return count;
  }
};

/// Builds each local thread's stream set: stream v goes to global thread
/// v mod PT, with its exact share of `total` samples. Calibration and the
/// epoch loop MUST use this same assignment, or deterministic-mode runs
/// diverge across backends.
template <typename MakeSampler>
auto assign_streams(int rank, int num_threads, std::uint64_t total_threads,
                    std::uint64_t streams, std::uint64_t total,
                    MakeSampler&& make_sampler) {
  using Sampler = std::decay_t<decltype(make_sampler(std::uint64_t{0}))>;
  std::vector<ThreadStreams<Sampler>> thread_streams(num_threads);
  for (std::uint64_t v = 0; v < streams; ++v) {
    const std::uint64_t owner = stream_owner(v, total_threads);
    if (owner / num_threads != static_cast<std::uint64_t>(rank)) continue;
    thread_streams[owner % num_threads].streams.push_back(
        {make_sampler(v), stream_share(total, v, streams)});
  }
  return thread_streams;
}

}  // namespace detail

/// Parallel calibration sampling (the engine's calibration-phase hook):
/// distributes `total_budget` samples over the run's streams, samples them
/// with all threads in parallel, and reduces the frames to world rank 0.
/// The returned frame holds the full aggregate at rank 0 and this rank's
/// local aggregate elsewhere. Collective when `world` is multi-rank.
template <typename Frame, typename MakeSampler>
Frame calibrate(comm::Substrate* world, const Frame& prototype,
                MakeSampler&& make_sampler, std::uint64_t total_budget,
                const EngineOptions& options) {
  DISTBC_ASSERT(options.threads_per_rank >= 1);
  const int num_ranks = world != nullptr ? world->size() : 1;
  const int rank = world != nullptr ? world->rank() : 0;
  const int num_threads = options.threads_per_rank;
  const auto total_threads =
      static_cast<std::uint64_t>(num_ranks) * num_threads;
  const std::uint64_t streams = num_streams(options, num_ranks);

  std::vector<Frame> frames(num_threads, prototype);
  for (Frame& frame : frames) frame.clear();

  auto thread_streams = detail::assign_streams(
      rank, num_threads, total_threads, streams, total_budget, make_sampler);

  auto worker = [&](int t) { thread_streams[t].sample_shares(frames[t]); };
  std::vector<std::thread> pool;
  pool.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& thread : pool) thread.join();

  Frame local(prototype);
  local.clear();
  for (const Frame& frame : frames) local.merge(frame);
  if (num_ranks <= 1) return local;

  static_assert(DenseReducible<Frame> || WireSerializable<Frame>,
                "Frame offers neither wire interface (frame_traits.hpp)");
  Frame aggregate(prototype);
  aggregate.clear();
  if constexpr (WireSerializable<Frame>) {
    if (uses_wire_images<Frame>(options.frame_rep)) {
      std::vector<std::uint64_t> image;
      local.encode(image, options.frame_rep);
      const auto merge_image = [&](int,
                                   std::span<const std::uint64_t> contribution) {
        aggregate.decode_add(contribution);
      };
      if (options.tree_radix >= 2) {
        // By-value captures: the stored combiner runs at the *last*
        // arrival, possibly after fast non-root ranks left this scope.
        const std::size_t dense_words = local.dense_words();
        const double densify = densify_threshold_of(local);
        world->reduce_merge_tree(
            std::span<const std::uint64_t>(image),
            [dense_words, densify](std::vector<std::uint64_t>& acc,
                                   std::span<const std::uint64_t> in) {
              epoch::merge_images(acc, in, dense_words, densify);
            },
            merge_image, 0, options.tree_radix);
      } else {
        world->reduce_merge(std::span<const std::uint64_t>(image),
                            merge_image, 0);
      }
      return world->rank() == 0 ? aggregate : local;
    }
  }
  if constexpr (DenseReducible<Frame>) {
    world->reduce(std::span<const std::uint64_t>(local.raw()),
                  aggregate.raw(), 0);
  }
  return world->rank() == 0 ? aggregate : local;
}

/// Algorithm 2: epoch-based adaptive sampling until the stop rule fires.
/// Pass world == nullptr for a communicator-free (seq/shm) run.
template <typename Frame, typename MakeSampler, typename StopFn>
EngineResult<Frame> run_epochs(comm::Substrate* world, const Frame& prototype,
                               MakeSampler&& make_sampler,
                               StopFn&& should_stop,
                               const EngineOptions& options) {
  static_assert(DenseReducible<Frame> || WireSerializable<Frame>,
                "Frame offers neither wire interface (frame_traits.hpp)");
  DISTBC_ASSERT(options.threads_per_rank >= 1);
  DISTBC_ASSERT_MSG(options.deterministic || options.virtual_streams == 0,
                    "virtual streams require deterministic mode");
  WallTimer total_timer;
  EngineResult<Frame> result{.aggregate = prototype,
                             .local_aggregate = prototype};
  result.aggregate.clear();
  result.local_aggregate.clear();
  // Whether epoch snapshots cross the wire as variable-length images
  // (sparse delta frames / auto densification) instead of the classic
  // fixed-size elementwise reduction.
  const bool wire_images = uses_wire_images<Frame>(options.frame_rep);

  const int num_ranks = world != nullptr ? world->size() : 1;
  const int rank = world != nullptr ? world->rank() : 0;
  const int num_threads = options.threads_per_rank;
  const bool is_root = rank == 0;
  const bool multi_rank = num_ranks > 1;
  const auto total_threads =
      static_cast<std::uint64_t>(num_ranks) * num_threads;
  const std::uint64_t streams = num_streams(options, num_ranks);

  // Total epoch length (§IV-D), clamped so adaptive rules get their first
  // stopping check before easy instances sample far past termination.
  std::uint64_t n0_total =
      epoch_length(options.epoch_base, options.epoch_exponent, streams);
  if (options.max_epoch_length != 0)
    n0_total = std::max<std::uint64_t>(
        1, std::min(n0_total, options.max_epoch_length));
  // Free-running mode: every physical thread samples at the same rate and
  // thread zero's fixed share paces the epoch.
  const std::uint64_t n0_share =
      std::max<std::uint64_t>(1, (n0_total + total_threads - 1) /
                                     total_threads);

  // Stream ownership: stream v belongs to global thread v mod PT. In
  // free-running mode streams == PT, so thread (rank, t) owns exactly
  // stream rank * T + t - the unified RNG-stream derivation rule.
  auto thread_streams = detail::assign_streams(
      rank, num_threads, total_threads, streams, n0_total, make_sampler);
  using Sampler = std::decay_t<decltype(make_sampler(std::uint64_t{0}))>;

  Hierarchy hierarchy;
  if (options.hierarchical && multi_rank) {
    std::size_t frame_words = 0;
    if constexpr (WireSerializable<Frame>) {
      frame_words = result.aggregate.dense_words();
    } else {
      frame_words = result.aggregate.raw().size();
    }
    hierarchy.init(*world, frame_words);
  }

  epoch::EpochManager<Frame> manager(num_threads, prototype);
  std::vector<std::uint64_t> taken(num_threads, 0);

  // Worker threads (t != 0). Free-running: sample continuously, joining
  // epoch transitions wait-free. Deterministic: contribute the exact
  // per-stream shares, then wait for thread zero to force the transition.
  auto worker_main = [&](int t) {
    std::uint32_t epoch = 0;
    std::uint64_t count = 0;
    if (options.deterministic) {
      while (true) {
        count += thread_streams[t].sample_shares(manager.frame(t, epoch));
        while (!manager.check_transition(t, epoch)) {
          if (manager.stopped()) {
            taken[t] = count;
            return;
          }
          std::this_thread::yield();
        }
        ++epoch;
      }
    }
    auto& stream = thread_streams[t].streams.front();
    if constexpr (detail::BatchSampling<Sampler, Frame>) {
      // Free-running threads own their kernel outright, so they sample in
      // full-capacity chunks; epoch boundaries stay chunk-granular, which
      // free-running mode already tolerates (overlap samples land in
      // whatever epoch is current).
      const auto chunk =
          static_cast<std::uint64_t>(stream.sampler.batch_capacity());
      while (!manager.stopped()) {
        stream.sampler.sample_batch(manager.frame(t, epoch), chunk);
        count += chunk;
        if (manager.check_transition(t, epoch)) ++epoch;
      }
    } else {
      while (!manager.stopped()) {
        stream.sampler.sample(manager.frame(t, epoch));
        ++count;
        if (manager.check_transition(t, epoch)) ++epoch;
      }
    }
    taken[t] = count;
  };
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) workers.emplace_back(worker_main, t);

  // Thread zero: the main loop of Algorithm 2.
  {
    Frame snapshot(prototype);   // S^e_loc: this rank's epoch aggregate
    Frame epoch_agg(prototype);  // S^e: global epoch aggregate (at root)
    std::vector<std::uint64_t> wire_buffer;  // reused encode scratch
    std::uint8_t done_flag = 0;
    std::uint32_t epoch = 0;
    std::uint64_t count = 0;

    // One overlap sample into the *next* epoch's frame (Algorithm 2 lines
    // 15, 21, 27); disabled in deterministic mode, where communication
    // waits must not inject timing-dependent samples. The yield matters on
    // oversubscribed hosts (cores < ranks x threads): without it the spin
    // starves peers that still need the CPU to reach the collective, and
    // the stretched wait floods the next epoch with overlap samples.
    auto overlap_sample = [&] {
      if (!options.deterministic && !thread_streams[0].streams.empty()) {
        thread_streams[0].streams.front().sampler.sample(
            manager.frame(0, epoch + 1));
        ++count;
      }
      std::this_thread::yield();
    };

    // One §IV-F strategy dispatch serving both wire formats: the callers
    // supply the blocking reduction and the non-blocking starter for
    // their payload (elementwise spans or encoded images).
    auto run_aggregation = [&](comm::Substrate& global, auto&& blocking_reduce,
                               auto&& start_reduce) {
      switch (options.aggregation) {
        case Aggregation::kIbarrierReduce: {
          result.phases.timed(Phase::kBarrier, [&] {
            comm::Request barrier = global.ibarrier();
            while (!barrier.test()) overlap_sample();
          });
          result.phases.timed(Phase::kReduction, blocking_reduce);
          break;
        }
        case Aggregation::kIreduce: {
          result.phases.timed(Phase::kReduction, [&] {
            comm::Request reduce = start_reduce();
            while (!reduce.test()) overlap_sample();
          });
          break;
        }
        case Aggregation::kBlocking: {
          result.phases.timed(Phase::kReduction, blocking_reduce);
          break;
        }
      }
    };

    while (true) {
      result.phases.timed(Phase::kSampling, [&] {
        if (options.deterministic) {
          count += thread_streams[0].sample_shares(manager.frame(0, epoch));
        } else {
          auto& stream = thread_streams[0].streams.front();
          if constexpr (detail::BatchSampling<Sampler, Frame>) {
            const auto capacity =
                static_cast<std::uint64_t>(stream.sampler.batch_capacity());
            for (std::uint64_t i = 0; i < n0_share;) {
              const std::uint64_t chunk = std::min(capacity, n0_share - i);
              stream.sampler.sample_batch(manager.frame(0, epoch), chunk);
              i += chunk;
              count += chunk;
            }
          } else {
            for (std::uint64_t i = 0; i < n0_share; ++i) {
              stream.sampler.sample(manager.frame(0, epoch));
              ++count;
            }
          }
        }
      });

      // Epoch transition, overlapped with sampling (paper Figure 1).
      result.phases.timed(Phase::kEpochTransition, [&] {
        manager.force_transition(epoch);
        while (!manager.transition_done(epoch)) overlap_sample();
      });
      snapshot.clear();
      manager.collect(epoch, snapshot);
      // Per-rank partials, captured before the hierarchy can replace a
      // leader's snapshot with its node aggregate.
      if (options.local_aggregates) result.local_aggregate.merge(snapshot);

      if (!multi_rank) {
        // Null/1-rank communicator: the epoch aggregate is already global.
        result.aggregate.merge(snapshot);
        done_flag = result.phases.timed(Phase::kStopCheck, [&] {
          return should_stop(std::as_const(result.aggregate)) ||
                         result.epochs + 1 >= options.max_epochs
                     ? 1
                     : 0;
        });
      } else {
        // Node-local pre-aggregation via the shared window (§IV-E).
        bool in_global = true;
        if (hierarchy.active())
          in_global = hierarchy.pre_reduce(snapshot, options.frame_rep);

        // Effective radix of the global merge. Under the two-level path
        // (hierarchy active) the leader hop class may pick its own radix;
        // 0 inherits tree_radix so single-knob configurations keep their
        // established shape.
        const int radix = hierarchy.active() && options.leader_radix != 0
                              ? options.leader_radix
                              : options.tree_radix;

        // Broadcast with the strategy-matching overlap behavior - the
        // downward leg of paths that merge toward a root.
        auto distribute = [&](comm::Substrate& comm, auto span) {
          if (options.aggregation == Aggregation::kBlocking) {
            // §IV-F's fully blocking variant: no overlap anywhere, the
            // distribution legs included.
            comm.bcast(span, 0);
          } else {
            comm::Request bcast = comm.ibcast(span, 0);
            while (!bcast.test()) overlap_sample();
          }
        };
        // Ships epoch_agg from `comm` rank zero to every rank of `comm`
        // as a length-prefixed wire image; receivers rebuild their
        // epoch_agg from it. Used by the tree path's downward leg and the
        // two-level path's intra-node redistribution.
        auto distribute_image = [&](comm::Substrate& comm) {
          if constexpr (WireSerializable<Frame>) {
            const bool sender = comm.rank() == 0;
            if (sender) {
              wire_buffer.clear();
              epoch_agg.encode(wire_buffer, options.frame_rep);
            }
            std::uint64_t words = wire_buffer.size();
            distribute(comm, std::span{&words, 1});
            if (!sender) wire_buffer.resize(words);
            distribute(comm, std::span<std::uint64_t>(wire_buffer));
            if (!sender) {
              epoch_agg.clear();
              epoch_agg.decode_add(
                  std::span<const std::uint64_t>(wire_buffer));
            }
          }
        };

        // Global aggregation (§IV-F strategies), decentralized: every
        // participant ends the phase holding the identical merged epoch
        // aggregate. With hierarchy the merge runs on the node-leader
        // communicator whose rank zero is world rank zero. The wire-image
        // path ships the snapshot's encoded image (sparse deltas or
        // dense, per the representation policy); flat merges ride the
        // all-reduce flavors (no root hotspot at all), the radix tree
        // merges toward rank zero and broadcasts the merged image back
        // down. The classic path all-reduces the flat frame elementwise.
        if (in_global && wire_images) {
          if constexpr (WireSerializable<Frame>) {
            comm::Substrate& global =
                hierarchy.active() ? hierarchy.global() : *world;
            wire_buffer.clear();
            snapshot.encode(wire_buffer, options.frame_rep);
            epoch_agg.clear();
            auto merge_image = [&](int,
                                   std::span<const std::uint64_t> image) {
              epoch_agg.decode_add(image);
            };
            const std::span<const std::uint64_t> send(wire_buffer);
            if (radix >= 2) {
              // Tree merge: images combine at interior ranks (with the
              // frame's own densify policy), so the root ingests only the
              // top-of-tree merged images. The combiner captures by VALUE:
              // the slot stores the first poster's closure and invokes it
              // at the last arrival, by which time a fast non-root rank's
              // non-blocking aggregation has completed and this epoch
              // scope is gone (use-after-scope otherwise; the parity
              // tests run this shape under ASan).
              const std::size_t dense_words = snapshot.dense_words();
              const double densify = densify_threshold_of(snapshot);
              auto combine_image = [dense_words, densify](
                                       std::vector<std::uint64_t>& acc,
                                       std::span<const std::uint64_t> in) {
                epoch::merge_images(acc, in, dense_words, densify);
              };
              run_aggregation(
                  global,
                  [&] {
                    global.reduce_merge_tree(send, combine_image, merge_image,
                                             0, radix);
                  },
                  [&] {
                    return global.ireduce_merge_tree(send, combine_image,
                                                     merge_image, 0, radix);
                  });
              // Downward leg: the merged image returns to every
              // participant, completing the all-reduce semantics the flat
              // flavor gets natively.
              result.phases.timed(Phase::kBroadcast,
                                  [&] { distribute_image(global); });
            } else {
              run_aggregation(
                  global,
                  [&] { global.allreduce_merge(send, merge_image); },
                  [&] {
                    return global.iallreduce_merge(send, merge_image);
                  });
            }
          }
        } else if (in_global) {
          if constexpr (DenseReducible<Frame>) {
            comm::Substrate& global =
                hierarchy.active() ? hierarchy.global() : *world;
            const std::span<const std::uint64_t> send(snapshot.raw());
            run_aggregation(
                global, [&] { global.allreduce(send, epoch_agg.raw()); },
                [&] { return global.iallreduce(send, epoch_agg.raw()); });
          }
        }

        // Two-level downward leg: leaders now hold the global aggregate;
        // redistribute it over the intra-node communicator so non-leader
        // ranks hold it too (wire image when the frame serializes under
        // this representation, flat frame broadcast otherwise).
        if (hierarchy.active()) {
          result.phases.timed(Phase::kBroadcast, [&] {
            if (wire_images) {
              distribute_image(hierarchy.node());
            } else if constexpr (DenseReducible<Frame>) {
              distribute(hierarchy.node(),
                         std::span<std::uint64_t>(epoch_agg.raw()));
            }
          });
        }

        // Decentralized termination: every rank holds the identical
        // merged aggregate and evaluates the stopping rule on it, so all
        // ranks reach the same verdict independently - the rank-0 verdict
        // broadcast this protocol replaces cost a latency-bound
        // synchronization per epoch at exactly the moment every rank was
        // about to diverge into the next epoch's sampling.
        result.aggregate.merge(epoch_agg);
        done_flag = result.phases.timed(Phase::kStopCheck, [&] {
          return should_stop(std::as_const(result.aggregate)) ||
                         result.epochs + 1 >= options.max_epochs
                     ? 1
                     : 0;
        });
      }

      ++result.epochs;
      if (done_flag != 0) {
        manager.signal_stop();
        break;
      }
      ++epoch;
    }
    taken[0] = count;
  }
  for (auto& worker : workers) worker.join();

  // Work accounting (Figure 3b): samples attempted by all threads of all
  // ranks, including overlap samples that were never aggregated.
  std::uint64_t local_taken = 0;
  for (const std::uint64_t t : taken) local_taken += t;
  if (multi_rank) {
    std::uint64_t world_taken = 0;
    world->reduce(std::span<const std::uint64_t>(&local_taken, 1),
                  std::span{&world_taken, 1}, 0);
    result.samples_attempted = is_root ? world_taken : local_taken;
    result.comm_volume = world->volume();
    result.comm_volume += hierarchy.volume();
    result.comm_bytes = result.comm_volume.total();
  } else {
    result.samples_attempted = local_taken;
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace distbc::engine
