// Compile-time classification of frame types for the engine's pluggable
// frame-representation layer.
//
// The engine accepts any Frame with clear()/merge(); how an epoch snapshot
// crosses the wire depends on what else the frame offers:
//   * DenseReducible  - a mutable flat raw() span: eligible for the classic
//     elementwise MPI reduction (the paper's §III-B/§IV-F wire format).
//   * WireSerializable - the frame_codec encode()/decode_add() contract:
//     eligible for the variable-length image path (sparse delta frames,
//     auto-densifying payloads, the substrate reduce_merge path).
// StateFrame satisfies both (the frame_rep knob picks); SparseFrame is
// serializable only (its dense view is read-only, so the elementwise path
// cannot bypass its touched-set bookkeeping); minimal test frames are
// dense-reducible only and always take the classic path.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "epoch/frame_codec.hpp"

namespace distbc::engine {

template <typename Frame>
concept DenseReducible = requires(Frame frame) {
  { frame.raw() } -> std::convertible_to<std::span<std::uint64_t>>;
};

template <typename Frame>
concept WireSerializable =
    requires(const Frame cframe, Frame frame, std::vector<std::uint64_t>& out,
             std::span<const std::uint64_t> image) {
      { cframe.dense_words() } -> std::convertible_to<std::size_t>;
      {
        cframe.encode(out, epoch::FrameRep::kAuto)
      } -> std::same_as<epoch::FrameRep>;
      frame.decode_add(image);
      frame.add_dense(image);
    };

/// The densify threshold governing a frame's kAuto encoding, when the
/// frame exposes one (epoch::SparseFrame); 1.0 - the plain dense-size
/// crossover - otherwise. Mid-tree densification of tree-merge reductions
/// uses the same rule, so merged images follow the frame's own policy.
template <typename Frame>
[[nodiscard]] double densify_threshold_of(const Frame& frame) {
  if constexpr (requires {
                  { frame.densify_threshold() } -> std::convertible_to<double>;
                }) {
    return frame.densify_threshold();
  } else {
    return 1.0;
  }
}

/// Whether a run with `rep` moves wire images (variable-length path) for
/// this frame type; frames without a mutable dense view always do.
template <typename Frame>
[[nodiscard]] constexpr bool uses_wire_images(epoch::FrameRep rep) {
  if constexpr (!WireSerializable<Frame>) {
    return false;
  } else if constexpr (!DenseReducible<Frame>) {
    (void)rep;
    return true;
  } else {
    return rep != epoch::FrameRep::kDense;
  }
}

}  // namespace distbc::engine
