// Hierarchical node-local pre-reduction (paper §IV-E).
//
// With multiple ranks per compute node, every rank first accumulates its
// epoch snapshot into a node-local shared RMA window (passive-target
// one-sided communication over shared memory); only the node leader reads
// the pre-reduced node aggregate back and joins the global inter-node
// reduction. This shrinks the global reduction from P to P/ranks_per_node
// participants at the cost of one cheap intra-node window pass.
//
// The window itself is always the dense flat frame; what varies is how a
// rank's snapshot enters it. Dense-reducible frames accumulate their whole
// raw() span (the original path). Wire-serializable frames under a sparse
// representation scatter-add their encoded delta pairs, so the intra-node
// pass moves O(nonzeros); the leader then re-reads the dense node aggregate
// and ships whatever encoding the global representation policy picks -
// typically dense, since the node aggregate is the union of its ranks'
// deltas ("only leaders ship dense data when that is cheaper").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "engine/frame_traits.hpp"
#include "epoch/frame_codec.hpp"
#include "comm/substrate.hpp"

namespace distbc::engine {

class Hierarchy {
 public:
  Hierarchy() = default;

  /// Collective over `world`: splits node-local and node-leader
  /// communicators and creates the shared window of `frame_words` uint64
  /// slots. Must be called by every rank of `world`.
  void init(comm::Substrate& world, std::size_t frame_words) {
    local_ = world.split_by_node();
    leader_ = world.split_node_leaders();
    window_.emplace(*local_, frame_words);
    active_ = true;
  }

  [[nodiscard]] bool active() const { return active_; }

  /// Pre-reduces `frame` over the node-local window. Collective over the
  /// node communicator. Returns true iff this rank is the node leader, in
  /// which case `frame` now holds the whole node's aggregate and the
  /// caller must forward it into the global reduction via global().
  /// `rep` selects how snapshots enter the window when the frame supports
  /// wire images (ignored on the dense path).
  template <typename Frame>
  [[nodiscard]] bool pre_reduce(Frame& frame, epoch::FrameRep rep) {
    DISTBC_ASSERT(active_);
    if constexpr (WireSerializable<Frame>) {
      if (uses_wire_images<Frame>(rep)) return pre_reduce_images(frame, rep);
    }
    if constexpr (DenseReducible<Frame>) {
      return pre_reduce(std::span<std::uint64_t>(frame.raw()));
    } else {
      DISTBC_ASSERT_MSG(false, "frame supports no pre-reduction path");
      return false;
    }
  }

  /// The dense primitive: pre-reduces a flat frame over the window.
  [[nodiscard]] bool pre_reduce(std::span<std::uint64_t> frame) {
    DISTBC_ASSERT(active_);
    window_->accumulate(std::span<const std::uint64_t>(frame));
    local_->barrier();
    const bool leader = local_->rank() == 0;
    if (leader) {
      window_->read(frame);
      window_->clear();
    }
    local_->barrier();
    return leader;
  }

  /// The inter-node communicator of the node leaders. Its rank zero is
  /// world rank zero; only valid on node leaders.
  [[nodiscard]] comm::Substrate& global() {
    DISTBC_ASSERT(active_ && leader_->valid());
    return *leader_;
  }

  /// The intra-node communicator (valid on every rank; its rank zero is
  /// the node leader). The downward leg of the two-level path: leaders
  /// redistribute the globally merged aggregate over this communicator so
  /// every rank can evaluate the stopping rule locally.
  [[nodiscard]] comm::Substrate& node() {
    DISTBC_ASSERT(active_);
    return *local_;
  }

  /// Payload moved by the hierarchical substrate (window + leader comm).
  [[nodiscard]] std::uint64_t comm_bytes() { return volume().total(); }

  /// Per-collective byte breakdown of the hierarchical substrate.
  [[nodiscard]] comm::CommVolume volume() {
    comm::CommVolume bytes;
    if (!active_) return bytes;
    bytes += local_->volume();
    if (leader_->valid()) bytes += leader_->volume();
    return bytes;
  }

 private:
  template <typename Frame>
  [[nodiscard]] bool pre_reduce_images(Frame& frame, epoch::FrameRep rep) {
    image_.clear();
    frame.encode(image_, rep);
    const std::span<const std::uint64_t> image(image_);
    if (epoch::image_rep(image) == epoch::FrameRep::kDense) {
      window_->accumulate(image.subspan(1));
    } else {
      window_->accumulate_pairs(image.subspan(2));
    }
    local_->barrier();
    const bool leader = local_->rank() == 0;
    if (leader) {
      frame.clear();
      // Windowed touched-bitmap read-back: as long as every rank scattered
      // sparse pairs, the leader sweeps only the union of touched slots -
      // O(union nnz) per epoch instead of O(V). The pair list decodes as a
      // synthesized sparse image, so the frame's own touched bookkeeping
      // stays consistent.
      image_.assign(2, 0);
      if (window_->read_touched_pairs(image_)) {
        image_[0] = epoch::kSparseTag;
        image_[1] = (image_.size() - 2) / 2;
        frame.decode_add(std::span<const std::uint64_t>(image_));
        window_->clear_touched();
      } else {
        // A dense accumulate filled the window: pay the O(V) read-back.
        if (scratch_.size() != window_->size())
          scratch_.assign(window_->size(), 0);
        window_->read(std::span<std::uint64_t>(scratch_));
        window_->clear();
        frame.add_dense(scratch_);
      }
    }
    local_->barrier();
    return leader;
  }

  std::unique_ptr<comm::Substrate> local_;
  std::unique_ptr<comm::Substrate> leader_;
  std::optional<comm::Window<std::uint64_t>> window_;
  std::vector<std::uint64_t> scratch_;  // leader's dense read-back buffer
  std::vector<std::uint64_t> image_;    // per-epoch encode buffer
  bool active_ = false;
};

}  // namespace distbc::engine
