// Hierarchical node-local pre-reduction (paper §IV-E).
//
// With multiple ranks per compute node, every rank first accumulates its
// epoch snapshot into a node-local shared RMA window (passive-target
// one-sided communication over shared memory); only the node leader reads
// the pre-reduced node aggregate back and joins the global inter-node
// reduction. This shrinks the global reduction from P to P/ranks_per_node
// participants at the cost of one cheap intra-node window pass.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "mpisim/comm.hpp"
#include "mpisim/window.hpp"

namespace distbc::engine {

class Hierarchy {
 public:
  Hierarchy() = default;

  /// Collective over `world`: splits node-local and node-leader
  /// communicators and creates the shared window of `frame_words` uint64
  /// slots. Must be called by every rank of `world`.
  void init(mpisim::Comm& world, std::size_t frame_words) {
    local_ = world.split_by_node();
    leader_ = world.split_node_leaders();
    window_.emplace(local_, frame_words);
    active_ = true;
  }

  [[nodiscard]] bool active() const { return active_; }

  /// Pre-reduces `frame` over the node-local window. Collective over the
  /// node communicator. Returns true iff this rank is the node leader, in
  /// which case `frame` now holds the whole node's aggregate and the
  /// caller must forward it into the global reduction via global().
  [[nodiscard]] bool pre_reduce(std::span<std::uint64_t> frame) {
    DISTBC_ASSERT(active_);
    window_->accumulate(std::span<const std::uint64_t>(frame));
    local_.barrier();
    const bool leader = local_.rank() == 0;
    if (leader) {
      window_->read(frame);
      window_->clear();
    }
    local_.barrier();
    return leader;
  }

  /// The inter-node communicator of the node leaders. Its rank zero is
  /// world rank zero; only valid on node leaders.
  [[nodiscard]] mpisim::Comm& global() {
    DISTBC_ASSERT(active_ && leader_.valid());
    return leader_;
  }

  /// Payload moved by the hierarchical substrate (window + leader comm).
  [[nodiscard]] std::uint64_t comm_bytes() {
    if (!active_) return 0;
    std::uint64_t bytes = local_.stats().total_bytes();
    if (leader_.valid()) bytes += leader_.stats().total_bytes();
    return bytes;
  }

 private:
  mpisim::Comm local_;
  mpisim::Comm leader_;
  std::optional<mpisim::Window<std::uint64_t>> window_;
  bool active_ = false;
};

}  // namespace distbc::engine
