#include "engine/engine.hpp"

namespace distbc::engine {

const char* aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kIbarrierReduce:
      return "ibarrier+reduce";
    case Aggregation::kIreduce:
      return "ireduce";
    case Aggregation::kBlocking:
      return "blocking";
  }
  return "?";
}

std::optional<Aggregation> aggregation_from_name(std::string_view name) {
  for (const Aggregation aggregation :
       {Aggregation::kIbarrierReduce, Aggregation::kIreduce,
        Aggregation::kBlocking}) {
    if (name == aggregation_name(aggregation)) return aggregation;
  }
  return std::nullopt;
}

}  // namespace distbc::engine
