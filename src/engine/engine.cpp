#include "engine/engine.hpp"

#include <cstdlib>

namespace distbc::engine {

int default_tree_radix() {
  static const int radix = [] {
    const char* env = std::getenv("DISTBC_TREE_RADIX");
    if (env == nullptr) return 0;
    const int parsed = std::atoi(env);
    return parsed >= 2 ? parsed : 0;
  }();
  return radix;
}

const char* aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kIbarrierReduce:
      return "ibarrier+reduce";
    case Aggregation::kIreduce:
      return "ireduce";
    case Aggregation::kBlocking:
      return "blocking";
  }
  return "?";
}

}  // namespace distbc::engine
