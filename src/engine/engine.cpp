#include "engine/engine.hpp"

namespace distbc::engine {

const char* aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kIbarrierReduce:
      return "ibarrier+reduce";
    case Aggregation::kIreduce:
      return "ireduce";
    case Aggregation::kBlocking:
      return "blocking";
  }
  return "?";
}

}  // namespace distbc::engine
