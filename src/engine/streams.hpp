// Sampling-stream bookkeeping for the epoch engine.
//
// Every adaptive run draws from V independent RNG streams. In the default
// free-running mode V equals the number of physical threads (P ranks x T
// threads) and stream v is simply global thread v, exactly the paper's
// setup. In deterministic mode V is fixed independently of the physical
// layout ("virtual streams"): stream v is owned by physical thread
// v mod PT, and every stream contributes an exact per-epoch share. Because
// frames aggregate by commutative elementwise sums, the per-epoch aggregate
// is then a pure function of (seed, V, epoch schedule) - the same bits no
// matter how the streams are distributed over ranks and threads. This is
// what makes seq / shm / mpi runs cross-reproducible.
//
// The epoch-length rule (paper §IV-D) also lives here: the *total* number
// of samples per epoch across all streams is n0 = base * V^exponent; the
// superlinear exponent grows epochs slightly as the machine grows,
// amortizing the growing aggregation cost.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/assert.hpp"

namespace distbc::engine {

/// Total samples per epoch across all streams: ceil(base * streams^exp).
[[nodiscard]] inline std::uint64_t epoch_length(std::uint64_t base,
                                                double exponent,
                                                std::uint64_t streams) {
  DISTBC_ASSERT(base > 0 && streams > 0);
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(base) *
                std::pow(static_cast<double>(streams), exponent)));
}

/// One stream's share of an epoch: ceil(epoch_length / streams), >= 1.
[[nodiscard]] inline std::uint64_t epoch_share(std::uint64_t base,
                                               double exponent,
                                               std::uint64_t streams) {
  const std::uint64_t total = epoch_length(base, exponent, streams);
  const std::uint64_t share = (total + streams - 1) / streams;
  return share > 0 ? share : 1;
}

/// Exact share of stream `v` when `total` samples are split over `streams`
/// streams: the remainder goes to the lowest-numbered streams.
[[nodiscard]] inline std::uint64_t stream_share(std::uint64_t total,
                                                std::uint64_t v,
                                                std::uint64_t streams) {
  DISTBC_ASSERT(v < streams);
  return total / streams + (v < total % streams ? 1 : 0);
}

/// Global index of the physical thread that owns stream `v`.
[[nodiscard]] inline std::uint64_t stream_owner(std::uint64_t v,
                                                std::uint64_t total_threads) {
  return v % total_threads;
}

}  // namespace distbc::engine
