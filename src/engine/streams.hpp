// Sampling-stream bookkeeping for the epoch engine.
//
// Every adaptive run draws from V independent RNG streams. In the default
// free-running mode V equals the number of physical threads (P ranks x T
// threads) and stream v is simply global thread v, exactly the paper's
// setup. In deterministic mode V is fixed independently of the physical
// layout ("virtual streams"): stream v is owned by physical thread
// v mod PT, and every stream contributes an exact per-epoch share. Because
// frames aggregate by commutative elementwise sums, the per-epoch aggregate
// is then a pure function of (seed, V, epoch schedule) - the same bits no
// matter how the streams are distributed over ranks and threads. This is
// what makes seq / shm / mpi runs cross-reproducible.
//
// The epoch-length rule (paper §IV-D) also lives here: the *total* number
// of samples per epoch across all streams is n0 = base * V^exponent; the
// superlinear exponent grows epochs slightly as the machine grows,
// amortizing the growing aggregation cost.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "support/assert.hpp"

namespace distbc::engine {

/// Total samples per epoch across all streams: ceil(base * streams^exp).
[[nodiscard]] inline std::uint64_t epoch_length(std::uint64_t base,
                                                double exponent,
                                                std::uint64_t streams) {
  DISTBC_ASSERT(base > 0 && streams > 0);
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(base) *
                std::pow(static_cast<double>(streams), exponent)));
}

/// One stream's share of an epoch: ceil(epoch_length / streams), >= 1.
[[nodiscard]] inline std::uint64_t epoch_share(std::uint64_t base,
                                               double exponent,
                                               std::uint64_t streams) {
  const std::uint64_t total = epoch_length(base, exponent, streams);
  const std::uint64_t share = (total + streams - 1) / streams;
  return share > 0 ? share : 1;
}

/// Exact share of stream `v` when `total` samples are split over `streams`
/// streams: the remainder goes to the lowest-numbered streams.
[[nodiscard]] inline std::uint64_t stream_share(std::uint64_t total,
                                                std::uint64_t v,
                                                std::uint64_t streams) {
  DISTBC_ASSERT(v < streams);
  return total / streams + (v < total % streams ? 1 : 0);
}

/// Global index of the physical thread that owns stream `v`.
[[nodiscard]] inline std::uint64_t stream_owner(std::uint64_t v,
                                                std::uint64_t total_threads) {
  return v % total_threads;
}

/// First-stop-check pacing: THE one implementation of the epoch-length
/// clamp every adaptive driver applies before calling run_epochs.
///
/// An adaptive rule gets no stopping check until the first epoch ends, so
/// the total epoch length must stay a fraction of the workload's
/// worst-case useful-sample budget (KADABRA's omega, closeness's Hoeffding
/// bound) or easy instances sample far past termination before the first
/// check. The cap is max(min_epoch_length, budget / budget_fraction),
/// combined with any cap already present (0 = none; the smaller wins).
/// api::Session computes this from Config::omega_fraction /
/// Config::min_epoch_length and the cached per-workload budget; the
/// drivers call it with their own knobs so the wrapper layer stays
/// bitwise-identical to Session runs.
[[nodiscard]] inline std::uint64_t paced_epoch_cap(
    std::uint64_t budget, std::uint64_t budget_fraction,
    std::uint64_t min_epoch_length, std::uint64_t existing_cap) {
  DISTBC_ASSERT(budget_fraction > 0);
  const std::uint64_t clamp =
      std::max(min_epoch_length,
               std::max<std::uint64_t>(1, budget / budget_fraction));
  return existing_cap != 0 ? std::min(existing_cap, clamp) : clamp;
}

}  // namespace distbc::engine
