// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components in distbc (generators, samplers, calibration)
// consume an explicit 64-bit seed. Per-thread streams are derived with
// SplitMix64 so that (seed, thread) pairs give independent, reproducible
// sequences regardless of scheduling.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

#include "support/assert.hpp"

namespace distbc {

/// SplitMix64 step: used both as a standalone mixer and to seed Xoshiro.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream, e.g. one per thread: Rng(seed).split(t).
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (0xa0761d6478bd642fULL * (stream + 1));
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound), bound > 0. Lemire's multiply-shift with
  /// rejection to remove modulo bias.
  std::uint64_t next_bounded(std::uint64_t bound) {
    DISTBC_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    DISTBC_ASSERT(lo <= hi);
    return lo + next_bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Uniform pair (s, t) with s != t from [0, n). Requires n >= 2.
  std::pair<std::uint64_t, std::uint64_t> next_distinct_pair(std::uint64_t n) {
    DISTBC_ASSERT(n >= 2);
    const std::uint64_t s = next_bounded(n);
    std::uint64_t t = next_bounded(n - 1);
    if (t >= s) ++t;
    return {s, t};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Weighted index selection: returns i with probability weights[i] / sum.
/// Linear scan; callers with large weight vectors should prefer building an
/// alias table, but all call sites in distbc have short vectors.
std::size_t pick_weighted(Rng& rng, const std::uint64_t* weights,
                          std::size_t count);
std::size_t pick_weighted(Rng& rng, const double* weights, std::size_t count);

}  // namespace distbc
