// Wall-clock timing utilities.
//
// PhaseTimer accumulates named phase durations; the betweenness drivers use
// it to produce the phase breakdown of the paper's Figure 2b.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace distbc {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The phases the paper's Figure 2b distinguishes, in stacking order.
enum class Phase : std::uint8_t {
  kDiameter = 0,        // phase 1: diameter computation
  kCalibration,         // phase 2: initial samples + delta optimization
  kSampling,            // adaptive sampling proper (taking samples)
  kEpochTransition,     // waiting on forceTransition completion
  kBarrier,             // non-blocking IBARRIER progress
  kReduction,           // blocking MPI reduction
  kStopCheck,           // evaluation of the stopping condition
  kBroadcast,           // termination-flag broadcast
  kCount
};

std::string_view phase_name(Phase phase);

/// Accumulates per-phase wall time. Not thread-safe; each thread that needs
/// one owns its own instance and the driver merges them.
class PhaseTimer {
 public:
  void add(Phase phase, double seconds) {
    seconds_[static_cast<std::size_t>(phase)] += seconds;
  }

  /// Runs fn and charges its duration to the given phase; returns fn().
  template <typename Fn>
  auto timed(Phase phase, Fn&& fn) {
    WallTimer timer;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      add(phase, timer.elapsed_s());
    } else {
      auto result = fn();
      add(phase, timer.elapsed_s());
      return result;
    }
  }

  [[nodiscard]] double seconds(Phase phase) const {
    return seconds_[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] double total_s() const {
    double total = 0;
    for (double s : seconds_) total += s;
    return total;
  }

  void merge(const PhaseTimer& other) {
    for (std::size_t i = 0; i < seconds_.size(); ++i)
      seconds_[i] += other.seconds_[i];
  }

  void reset() { seconds_.fill(0.0); }

 private:
  std::array<double, static_cast<std::size_t>(Phase::kCount)> seconds_{};
};

}  // namespace distbc
