// Lightweight assertion macros for distbc.
//
// DISTBC_ASSERT is active in all build types: the invariants it guards are
// cheap relative to graph traversals, and silent corruption in a sampling
// algorithm is much more expensive than the check.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace distbc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "distbc assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace distbc::detail

#define DISTBC_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::distbc::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
    }                                                                     \
  } while (0)

#define DISTBC_ASSERT_MSG(expr, msg)                                   \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::distbc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (0)

// Heavier checks (e.g. O(V) scans) that should only run in debug builds.
#ifndef NDEBUG
#define DISTBC_DEBUG_ASSERT(expr) DISTBC_ASSERT(expr)
#else
#define DISTBC_DEBUG_ASSERT(expr) \
  do {                            \
  } while (0)
#endif
