// Minimal key=value command-line parsing for benches and examples.
//
// Usage: Options opts(argc, argv);  opts.get_u64("ranks", 16);
// Unrecognized positional arguments abort with a usage hint, so typos in
// sweep scripts fail loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace distbc {

class Options {
 public:
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace distbc
