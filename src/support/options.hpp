// Minimal key=value command-line parsing for benches and examples.
//
// Usage:
//   Options opts(argc, argv);
//   const auto ranks = opts.get_u64("ranks", 16, "simulated rank count");
//   ...
//   opts.finish();  // after every option is registered
//
// Every get_* (and describe()) registers its key; finish() then serves
// `--help` (a table of registered options) and rejects any parsed key that
// no code path registered, so typos in sweep scripts fail loudly instead
// of silently running defaults. Arguments come as key=value; a bare
// `--flag` is shorthand for flag=1 (e.g. the benches' `--json`).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace distbc {

class Options {
 public:
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;

  // Reading an option registers it (with its help text, if given).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback,
                                       const std::string& help = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback,
                                      const std::string& help = "") const;
  [[nodiscard]] double get_double(const std::string& key, double fallback,
                                  const std::string& help = "") const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback,
                              const std::string& help = "") const;

  /// Registers a key without reading it - for options consumed later than
  /// finish() runs (e.g. inside a sweep loop).
  void describe(const std::string& key, const std::string& help) const;

  /// Call once every option is registered: prints the option table and
  /// exits 0 when --help/-h was given; exits 2 with the known-option list
  /// when an unregistered key was passed.
  void finish(const char* summary = nullptr) const;

 private:
  void register_key(const std::string& key, const std::string& help) const;

  std::string prog_;
  bool help_requested_ = false;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, std::string> registered_;  // key -> help
};

}  // namespace distbc
