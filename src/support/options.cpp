#include "support/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace distbc {

Options::Options(int argc, char** argv) {
  prog_ = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      help_requested_ = true;
      continue;
    }
    // `--flag` is shorthand for flag=1 (and `--key=value` for key=value);
    // a bare word without '=' stays a loud error, as before.
    const bool dashed = arg.starts_with("--");
    if (dashed) arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      if (dashed && !arg.empty()) {
        values_[std::string(arg)] = "1";
        continue;
      }
      std::fprintf(stderr,
                   "unrecognized argument '%s' (expected key=value or "
                   "--flag)\n",
                   argv[i]);
      std::exit(2);
    }
    if (eq == 0) {
      std::fprintf(stderr, "malformed argument '%s' (expected key=value)\n",
                   argv[i]);
      std::exit(2);
    }
    values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
  }
}

bool Options::has(const std::string& key) const {
  return values_.contains(key);
}

void Options::register_key(const std::string& key,
                           const std::string& help) const {
  auto [it, inserted] = registered_.try_emplace(key, help);
  if (!inserted && it->second.empty()) it->second = help;
}

void Options::describe(const std::string& key, const std::string& help) const {
  register_key(key, help);
}

void Options::finish(const char* summary) const {
  if (help_requested_) {
    std::printf("usage: %s [key=value ...] [--flag ...]\n", prog_.c_str());
    if (summary != nullptr) std::printf("%s\n", summary);
    std::printf("options:\n");
    for (const auto& [key, help] : registered_)
      std::printf("  %-14s %s\n", key.c_str(), help.c_str());
    std::exit(0);
  }
  for (const auto& [key, value] : values_) {
    if (registered_.contains(key)) continue;
    std::fprintf(stderr, "unknown option '%s'\nknown options:", key.c_str());
    for (const auto& [known, help] : registered_)
      std::fprintf(stderr, " %s", known.c_str());
    std::fprintf(stderr, "\n(run with --help for descriptions)\n");
    std::exit(2);
  }
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback,
                                const std::string& help) const {
  register_key(key, help);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t Options::get_u64(const std::string& key, std::uint64_t fallback,
                               const std::string& help) const {
  register_key(key, help);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                        nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback,
                           const std::string& help) const {
  register_key(key, help);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback,
                       const std::string& help) const {
  register_key(key, help);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace distbc
