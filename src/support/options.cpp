#include "support/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace distbc {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      std::fprintf(stderr,
                   "unrecognized argument '%s' (expected key=value)\n",
                   argv[i]);
      std::exit(2);
    }
    values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
  }
}

bool Options::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t Options::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                        nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace distbc
