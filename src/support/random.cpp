#include "support/random.hpp"

#include <numeric>

namespace distbc {

std::size_t pick_weighted(Rng& rng, const std::uint64_t* weights,
                          std::size_t count) {
  DISTBC_ASSERT(count > 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += weights[i];
  DISTBC_ASSERT_MSG(total > 0, "weights must not all be zero");
  std::uint64_t pick = rng.next_bounded(total);
  for (std::size_t i = 0; i < count; ++i) {
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return count - 1;  // unreachable, pacifies the compiler
}

std::size_t pick_weighted(Rng& rng, const double* weights, std::size_t count) {
  DISTBC_ASSERT(count > 0);
  double total = 0;
  for (std::size_t i = 0; i < count; ++i) total += weights[i];
  DISTBC_ASSERT_MSG(total > 0, "weights must not all be zero");
  double pick = rng.next_double() * total;
  for (std::size_t i = 0; i < count; ++i) {
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return count - 1;  // floating-point slack lands on the last bucket
}

}  // namespace distbc
