// Cache-line-aware helpers for concurrent data structures.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace distbc {

// A fixed 64 bytes (universal on x86-64 and most aarch64) rather than
// std::hardware_destructive_interference_size, whose value is flag-dependent
// and makes the padding part of a fragile ABI (GCC -Winterference-size).
inline constexpr std::size_t kCacheLineSize = 64;

/// An atomic padded to a full cache line so neighbouring instances in an
/// array do not false-share. Used for per-thread epoch counters.
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<T> value{};

  // Padding derives from alignas; no explicit bytes needed.
};

}  // namespace distbc
