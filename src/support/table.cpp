#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace distbc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DISTBC_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DISTBC_ASSERT_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::fmt_int(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  if (negative) grouped.push_back('-');
  return {grouped.rbegin(), grouped.rend()};
}

std::string TablePrinter::fmt_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

std::string TablePrinter::fmt_ratio(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", value);
  return buf;
}

}  // namespace distbc
