// Console table rendering for the benchmark harness.
//
// The paper-reproduction benches print rows in the same shape as the paper's
// tables/figures; TablePrinter keeps the formatting uniform and readable.
#pragma once

#include <string>
#include <vector>

namespace distbc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  /// Convenience: render straight to stdout.
  void print() const;

  // Formatting helpers for cells.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_int(long long value);         // 1,234,567
  static std::string fmt_bytes(double bytes);          // "12.3 MiB"
  static std::string fmt_ratio(double value);          // "7.41x"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace distbc
