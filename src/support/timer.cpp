#include "support/timer.hpp"

namespace distbc {

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kDiameter:
      return "diameter";
    case Phase::kCalibration:
      return "calibration";
    case Phase::kSampling:
      return "sampling";
    case Phase::kEpochTransition:
      return "epoch-transition";
    case Phase::kBarrier:
      return "ibarrier";
    case Phase::kReduction:
      return "reduction";
    case Phase::kStopCheck:
      return "stop-check";
    case Phase::kBroadcast:
      return "broadcast";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

}  // namespace distbc
