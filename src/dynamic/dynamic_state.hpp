// dynamic::DynamicState - the shared mutable-graph coordinator behind
// api::Session::apply and the service tier's churn path.
//
// One DynamicState owns the MutableGraph and every IncrementalBc engine
// keyed by its statistical parameters. Session replicas in a
// service::SessionPool all bind the SAME DynamicState, so incremental
// query results are bitwise identical across pool sizes by construction
// (one engine instance, one deterministic stream counter) - the pool
// serializes applies against queries, this class serializes everything
// else with one mutex.
//
// apply(batch) is transactional: the batch is validated against the
// current snapshot, applied, and - when it deletes edges - the new
// snapshot is connectivity-checked (the sampling estimators require a
// connected graph); a disconnecting batch is reverted and rejected with a
// typed Status. Vertex-diameter bounds are touched only when they can be
// violated: insert-only batches shrink distances and keep every cached
// bound; deletion batches recompute the bound once per exactness class in
// use and engines recalibrate only when their cached bound is exceeded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "api/status.hpp"
#include "bc/kadabra_math.hpp"
#include "dynamic/edge_batch.hpp"
#include "dynamic/incremental_bc.hpp"
#include "dynamic/mutable_graph.hpp"
#include "graph/graph.hpp"

namespace distbc::dynamic {

/// Everything one apply() did, for callers to adopt: the new graph
/// identity, what the batch contained, the bound policy outcome, and the
/// aggregated ledger accounting across every refreshed engine.
struct ApplyReport {
  api::Status status;
  std::uint64_t version = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_deleted = 0;
  bool had_deletes = false;
  /// Whether the slack CSR served the batch without a rebuild.
  bool in_place = false;
  /// Vertex-diameter upper bound recomputed for the NEW graph (2-approx),
  /// or 0 when the batch was insert-only and every cached bound stayed
  /// valid untouched.
  std::uint32_t diameter_bound = 0;

  // Ledger accounting, summed over every refreshed engine.
  std::uint64_t samples_retained = 0;
  std::uint64_t samples_dirty = 0;
  std::uint64_t samples_resampled = 0;
  std::uint64_t samples_topup = 0;
  std::uint64_t bloom_dirty = 0;
  std::uint64_t engines_refreshed = 0;
  std::uint64_t recalibrations = 0;

  /// Fraction of retained-or-dirty samples the batch invalidated.
  [[nodiscard]] double dirty_fraction() const {
    const std::uint64_t total = samples_retained + samples_dirty;
    return total == 0 ? 0.0
                      : static_cast<double>(samples_dirty) /
                            static_cast<double>(total);
  }
};

class DynamicState {
 public:
  /// `sample_batch` is the traversal-kernel width engines run at
  /// (0 = the default of 16).
  DynamicState(std::shared_ptr<const graph::Graph> initial,
               SketchParams sketch, int sample_batch);

  /// Validates, applies, and propagates one batch through every live
  /// engine. On a rejected batch (validation failure, empty batch, or a
  /// deletion batch that disconnects the graph) the state is untouched and
  /// report.status carries the reason.
  [[nodiscard]] ApplyReport apply(EdgeBatch batch);

  struct QueryView {
    api::Status status;
    std::vector<double> scores;
    std::uint64_t samples = 0;
    std::uint32_t epochs = 0;
    /// Ledger records currently held as Bloom sketches.
    std::uint64_t ledger_bloom = 0;
    std::uint32_t vertex_diameter = 0;
    /// True when this call created (and fully ran) the engine.
    bool first_run = false;
  };

  /// Scores from the incremental engine for `params`, creating and running
  /// it on the current snapshot on first use. The graph must be connected
  /// (callers validate; a fresh engine asserts).
  [[nodiscard]] QueryView query(const bc::KadabraParams& params);

  [[nodiscard]] std::shared_ptr<const graph::Graph> snapshot() const;
  [[nodiscard]] std::uint64_t version() const;
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] MutableGraph::Stats graph_stats() const;
  [[nodiscard]] std::size_t engine_count() const;

 private:
  /// The statistical identity of one engine: (epsilon, delta, seed,
  /// exact_diameter, initial_samples, balancing).
  using EngineKey =
      std::tuple<double, double, std::uint64_t, bool, std::uint64_t, double>;
  [[nodiscard]] static EngineKey engine_key(const bc::KadabraParams& params) {
    return {params.epsilon, params.delta,       params.seed,
            params.exact_diameter, params.initial_samples, params.balancing};
  }

  mutable std::mutex mutex_;
  MutableGraph graph_;
  SketchParams sketch_;
  int sample_batch_;
  std::map<EngineKey, std::unique_ptr<IncrementalBc>> engines_;
};

}  // namespace distbc::dynamic
