#include "dynamic/edge_batch.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace distbc::dynamic {

namespace {

api::Status edge_error(const char* what, const Edge& edge) {
  std::string message = what;
  message += " (";
  message += std::to_string(edge.u);
  message += ", ";
  message += std::to_string(edge.v);
  message += ")";
  return api::Status::error(std::move(message));
}

}  // namespace

api::Status EdgeBatch::validate(const graph::Graph& graph) {
  validated_ = false;
  const graph::Vertex n = graph.num_vertices();
  for (std::vector<Edge>* list : {&inserts_, &deletes_}) {
    for (Edge& edge : *list) {
      if (edge.u > edge.v) std::swap(edge.u, edge.v);
      if (edge.u == edge.v)
        return edge_error("edge batch rejects self-loop", edge);
      if (edge.v >= n)
        return edge_error("edge batch names an unknown vertex in edge", edge);
    }
    std::sort(list->begin(), list->end());
    const auto dup = std::adjacent_find(list->begin(), list->end());
    if (dup != list->end())
      return edge_error("edge batch contains a duplicate edge", *dup);
  }
  // One edge in both lists would make the apply order ambiguous.
  std::vector<Edge> both;
  std::set_intersection(inserts_.begin(), inserts_.end(), deletes_.begin(),
                        deletes_.end(), std::back_inserter(both));
  if (!both.empty())
    return edge_error("edge batch both inserts and deletes edge", both.front());
  for (const Edge& edge : inserts_) {
    if (graph.has_edge(edge.u, edge.v))
      return edge_error("edge batch inserts an edge the graph already has",
                        edge);
  }
  for (const Edge& edge : deletes_) {
    if (!graph.has_edge(edge.u, edge.v))
      return edge_error("edge batch deletes an edge the graph lacks", edge);
  }
  validated_ = true;
  return api::Status::success();
}

}  // namespace distbc::dynamic
