// dynamic::MutableGraph - a slack-slot CSR adapter that applies validated
// EdgeBatches and hands out immutable graph::Graph snapshots per version.
//
// The immutable CSR the rest of the library runs on (graph::Graph) packs
// adjacency lists back to back; inserting one edge there means rebuilding
// both arrays. This adapter keeps a second, slack-padded copy of the CSR
// (per-vertex capacity = degree + max(2, degree/8), materialized lazily on
// the first apply so a never-mutated MutableGraph costs one shared_ptr):
//
//   * a batch whose every touched vertex still fits its capacity is
//     served IN PLACE - sorted insert/remove inside the vertex's slot
//     range, no allocation touching other vertices;
//   * a batch that overflows any vertex's slots REBUILDS the slack arrays
//     with fresh capacities (the rebuild-on-threshold policy; stats()
//     reports which path each apply took).
//
// After every apply a compact graph::Graph snapshot is rebuilt and
// published as shared_ptr (samplers of the previous version keep their
// snapshot alive), the version counter advances, and graph::fingerprint
// is recomputed - downstream caches (calibrations, warm stores) key on the
// fingerprint and therefore invalidate naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dynamic/edge_batch.hpp"
#include "graph/graph.hpp"

namespace distbc::dynamic {

class MutableGraph {
 public:
  explicit MutableGraph(std::shared_ptr<const graph::Graph> initial);

  /// The current immutable snapshot (never null; holders of older
  /// snapshots keep them alive independently).
  [[nodiscard]] const std::shared_ptr<const graph::Graph>& snapshot() const {
    return snapshot_;
  }
  /// 0 for the initial graph; advances on every apply() and revert().
  [[nodiscard]] std::uint64_t version() const { return version_; }
  /// graph::fingerprint of the current snapshot.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  struct Stats {
    std::uint64_t applies = 0;
    /// Batches served from the slack slots without reallocation.
    std::uint64_t in_place = 0;
    /// Batches that overflowed a vertex's slots and rebuilt the arrays.
    std::uint64_t rebuilds = 0;
    std::uint64_t edges_inserted = 0;
    std::uint64_t edges_deleted = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Applies a validated batch (EdgeBatch::validate against snapshot())
  /// and publishes the next snapshot. Returns true when the batch was
  /// served in place (false = slack rebuild).
  bool apply(const EdgeBatch& batch);

  /// Exactly undoes `batch` (which apply() just applied): deletions are
  /// re-inserted, insertions removed, and the next snapshot published.
  /// The rollback path for batches rejected AFTER application (e.g. a
  /// deletion batch that disconnected a graph with live engines).
  void revert(const EdgeBatch& batch);

 private:
  /// Applies inserts/deletes given as spans (revert passes them swapped).
  bool apply_spans(std::span<const Edge> inserts,
                   std::span<const Edge> deletes);
  /// Builds the slack arrays from the current snapshot (first apply only).
  void materialize();
  /// Re-allocates the slack arrays with post-batch degrees + fresh slack.
  void rebuild(std::span<const Edge> inserts, std::span<const Edge> deletes);
  void insert_arc(graph::Vertex u, graph::Vertex v);
  void remove_arc(graph::Vertex u, graph::Vertex v);
  /// Compacts the slack arrays into a fresh immutable snapshot and
  /// advances version/fingerprint.
  void publish();

  [[nodiscard]] static std::uint32_t slack_for(std::uint32_t degree) {
    return std::max<std::uint32_t>(2, degree / 8);
  }

  std::shared_ptr<const graph::Graph> snapshot_;
  std::uint64_t version_ = 0;
  std::uint64_t fingerprint_ = 0;

  // Slack CSR (valid once materialized_): vertex v's neighbors live
  // sorted in slots_[begin_[v], begin_[v] + degree_[v]), with capacity
  // cap_[v] slots before the next vertex's range.
  bool materialized_ = false;
  std::vector<std::uint64_t> begin_;
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> cap_;
  std::vector<graph::Vertex> slots_;

  Stats stats_;
};

}  // namespace distbc::dynamic
