#include "dynamic/mutable_graph.hpp"

#include <algorithm>
#include <utility>

#include "graph/stats.hpp"
#include "support/assert.hpp"

namespace distbc::dynamic {

MutableGraph::MutableGraph(std::shared_ptr<const graph::Graph> initial)
    : snapshot_(std::move(initial)) {
  DISTBC_ASSERT(snapshot_ != nullptr);
  fingerprint_ = graph::fingerprint(*snapshot_);
}

void MutableGraph::materialize() {
  const graph::Graph& graph = *snapshot_;
  const graph::Vertex n = graph.num_vertices();
  begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  degree_.assign(n, 0);
  cap_.assign(n, 0);
  std::uint64_t total = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    const auto degree = static_cast<std::uint32_t>(graph.degree(v));
    begin_[v] = total;
    degree_[v] = degree;
    cap_[v] = degree + slack_for(degree);
    total += cap_[v];
  }
  begin_[n] = total;
  slots_.assign(total, 0);
  for (graph::Vertex v = 0; v < n; ++v) {
    const std::span<const graph::Vertex> nbrs = graph.neighbors(v);
    std::copy(nbrs.begin(), nbrs.end(), slots_.begin() + begin_[v]);
  }
  materialized_ = true;
}

void MutableGraph::insert_arc(graph::Vertex u, graph::Vertex v) {
  DISTBC_DEBUG_ASSERT(degree_[u] < cap_[u]);
  const auto first = slots_.begin() + static_cast<std::ptrdiff_t>(begin_[u]);
  const auto last = first + degree_[u];
  const auto pos = std::upper_bound(first, last, v);
  std::copy_backward(pos, last, last + 1);
  *pos = v;
  ++degree_[u];
}

void MutableGraph::remove_arc(graph::Vertex u, graph::Vertex v) {
  const auto first = slots_.begin() + static_cast<std::ptrdiff_t>(begin_[u]);
  const auto last = first + degree_[u];
  const auto pos = std::lower_bound(first, last, v);
  DISTBC_ASSERT_MSG(pos != last && *pos == v,
                    "removing an arc the slack CSR does not hold");
  std::copy(pos + 1, last, pos);
  --degree_[u];
}

void MutableGraph::rebuild(std::span<const Edge> inserts,
                           std::span<const Edge> deletes) {
  const graph::Vertex n = snapshot_->num_vertices();
  // Post-batch degrees first, then fresh slack on top of them.
  std::vector<std::uint32_t> new_degree(degree_);
  for (const Edge& e : inserts) {
    ++new_degree[e.u];
    ++new_degree[e.v];
  }
  for (const Edge& e : deletes) {
    --new_degree[e.u];
    --new_degree[e.v];
  }
  std::vector<std::uint64_t> new_begin(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::uint32_t> new_cap(n, 0);
  std::uint64_t total = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    new_begin[v] = total;
    // The pre-batch list is copied below and the batch replayed on top of
    // it, so the range must hold max(old, new) neighbors plus fresh slack.
    new_cap[v] = std::max(degree_[v],
                          new_degree[v] + slack_for(new_degree[v]));
    total += new_cap[v];
  }
  new_begin[n] = total;
  std::vector<graph::Vertex> new_slots(total, 0);
  // Copy the old (still pre-batch) lists into the new ranges; the caller
  // replays the batch through insert_arc/remove_arc afterwards.
  for (graph::Vertex v = 0; v < n; ++v) {
    std::copy(slots_.begin() + static_cast<std::ptrdiff_t>(begin_[v]),
              slots_.begin() + static_cast<std::ptrdiff_t>(begin_[v]) +
                  degree_[v],
              new_slots.begin() + static_cast<std::ptrdiff_t>(new_begin[v]));
  }
  begin_ = std::move(new_begin);
  cap_ = std::move(new_cap);
  slots_ = std::move(new_slots);
  // degree_ stays pre-batch: the arc replay below updates it edge by edge.
}

bool MutableGraph::apply_spans(std::span<const Edge> inserts,
                               std::span<const Edge> deletes) {
  if (!materialized_) materialize();
  // Slack-slot or rebuild: in place iff every touched vertex's post-batch
  // degree fits its current capacity.
  std::vector<std::int64_t> delta;  // parallel to touched
  std::vector<graph::Vertex> touched;
  auto bump = [&](graph::Vertex v, std::int64_t by) {
    const auto it = std::find(touched.begin(), touched.end(), v);
    if (it == touched.end()) {
      touched.push_back(v);
      delta.push_back(by);
    } else {
      delta[static_cast<std::size_t>(it - touched.begin())] += by;
    }
  };
  for (const Edge& e : inserts) {
    bump(e.u, 1);
    bump(e.v, 1);
  }
  for (const Edge& e : deletes) {
    bump(e.u, -1);
    bump(e.v, -1);
  }
  bool fits = true;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    const std::int64_t after = degree_[touched[i]] + delta[i];
    DISTBC_ASSERT(after >= 0);
    if (after > cap_[touched[i]]) {
      fits = false;
      break;
    }
  }
  if (!fits) rebuild(inserts, deletes);
  for (const Edge& e : deletes) {
    remove_arc(e.u, e.v);
    remove_arc(e.v, e.u);
  }
  for (const Edge& e : inserts) {
    insert_arc(e.u, e.v);
    insert_arc(e.v, e.u);
  }
  publish();
  return fits;
}

void MutableGraph::publish() {
  const graph::Vertex n = snapshot_->num_vertices();
  std::vector<graph::EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::uint64_t total = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    offsets[v] = total;
    total += degree_[v];
  }
  offsets[n] = total;
  std::vector<graph::Vertex> adjacency(total);
  for (graph::Vertex v = 0; v < n; ++v) {
    std::copy(slots_.begin() + static_cast<std::ptrdiff_t>(begin_[v]),
              slots_.begin() + static_cast<std::ptrdiff_t>(begin_[v]) +
                  degree_[v],
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]));
  }
  snapshot_ = std::make_shared<const graph::Graph>(std::move(offsets),
                                                   std::move(adjacency));
  ++version_;
  fingerprint_ = graph::fingerprint(*snapshot_);
}

bool MutableGraph::apply(const EdgeBatch& batch) {
  DISTBC_ASSERT_MSG(batch.validated(),
                    "MutableGraph::apply requires a validated EdgeBatch");
  const bool in_place = apply_spans(batch.inserts(), batch.deletes());
  ++stats_.applies;
  if (in_place)
    ++stats_.in_place;
  else
    ++stats_.rebuilds;
  stats_.edges_inserted += batch.inserts().size();
  stats_.edges_deleted += batch.deletes().size();
  return in_place;
}

void MutableGraph::revert(const EdgeBatch& batch) {
  (void)apply_spans(batch.deletes(), batch.inserts());
  stats_.edges_inserted -= batch.inserts().size();
  stats_.edges_deleted -= batch.deletes().size();
}

}  // namespace distbc::dynamic
