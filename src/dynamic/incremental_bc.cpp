#include "dynamic/incremental_bc.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace distbc::dynamic {

void IncrementalBc::Recorder::on_sample(bool connected,
                                        std::span<const graph::Vertex> path,
                                        std::span<const graph::Vertex> scanned) {
  if (ledger == nullptr) return;
  if (replace_index < 0) {
    ledger->record(stream, connected, path, scanned);
  } else {
    ledger->replace(static_cast<std::size_t>(replace_index), stream, connected,
                    path, scanned);
  }
}

IncrementalBc::IncrementalBc(bc::KadabraParams params, SketchParams sketch,
                             int sample_batch)
    : params_(params),
      sketch_(sketch),
      sample_batch_(std::clamp(sample_batch, 1,
                               graph::BatchedBidirectionalBfs::kMaxBatch)),
      ledger_(sketch) {}

void IncrementalBc::sample_chunk(std::span<const std::uint64_t> streams,
                                 std::span<const std::uint32_t> slots,
                                 epoch::StateFrame& frame, bool record) {
  DISTBC_ASSERT(!streams.empty() &&
                streams.size() <=
                    static_cast<std::size_t>(kernel_->capacity()));
  DISTBC_ASSERT(slots.empty() || slots.size() == streams.size());
  // One single-sample BatchSampler per stream, all sharing the kernel: the
  // cross-stream protocol (post ascending, one flush, finish ascending)
  // keeps every stream's draw order independent of the kernel width.
  std::vector<bc::BatchSampler> samplers;
  samplers.reserve(streams.size());
  const Rng root(params_.seed);
  for (const std::uint64_t stream : streams)
    samplers.emplace_back(*graph_, root.split(stream), kernel_);
  for (bc::BatchSampler& sampler : samplers) {
    const bool posted = sampler.post_sample();
    DISTBC_ASSERT_MSG(posted, "chunk width exceeds the kernel batch");
  }
  samplers.front().flush_staged();
  Recorder recorder;
  recorder.ledger = record ? &ledger_ : nullptr;
  for (std::size_t i = 0; i < samplers.size(); ++i) {
    recorder.stream = streams[i];
    recorder.replace_index =
        slots.empty() ? -1 : static_cast<std::int64_t>(slots[i]);
    if (record) samplers[i].set_observer(&recorder);
    samplers[i].finish_sample(frame);
  }
}

void IncrementalBc::sample_fresh(std::uint64_t count, epoch::StateFrame& frame,
                                 bool record) {
  std::vector<std::uint64_t> streams;
  while (count > 0) {
    const auto width = static_cast<std::size_t>(std::min<std::uint64_t>(
        count, static_cast<std::uint64_t>(sample_batch_)));
    streams.clear();
    for (std::size_t i = 0; i < width; ++i)
      streams.push_back(next_stream_ + i);
    sample_chunk(streams, {}, frame, record);
    next_stream_ += width;
    count -= width;
  }
}

void IncrementalBc::resample_slots(std::span<const std::uint32_t> slots) {
  std::vector<std::uint64_t> streams;
  std::size_t done = 0;
  while (done < slots.size()) {
    const std::size_t width =
        std::min(slots.size() - done, static_cast<std::size_t>(sample_batch_));
    streams.clear();
    for (std::size_t i = 0; i < width; ++i)
      streams.push_back(next_stream_ + i);
    sample_chunk(streams, slots.subspan(done, width), aggregate_,
                 /*record=*/true);
    next_stream_ += width;
    done += width;
  }
}

std::uint64_t IncrementalBc::adaptive_loop() {
  std::uint64_t taken = 0;
  while (!context_.stop_satisfied(aggregate_)) {
    const std::uint64_t tau = aggregate_.tau();
    // First epoch: a fixed slice of the budget so easy instances check the
    // stop rule early; afterwards geometric doubling (epoch = current tau),
    // always capped at the remaining omega budget.
    std::uint64_t epoch =
        tau == 0 ? std::max<std::uint64_t>(64, context_.omega / 8) : tau;
    epoch = std::min(epoch, context_.omega - tau);
    DISTBC_ASSERT(epoch > 0);
    sample_fresh(epoch, aggregate_, /*record=*/true);
    taken += epoch;
    ++epochs_;
  }
  return taken;
}

void IncrementalBc::run(std::shared_ptr<const graph::Graph> graph) {
  DISTBC_ASSERT(graph != nullptr);
  graph_ = std::move(graph);
  kernel_ = std::make_shared<graph::BatchedBidirectionalBfs>(*graph_,
                                                             sample_batch_);
  ledger_.clear();
  epochs_ = 0;
  vertex_diameter_ = bc::kadabra_vertex_diameter(*graph_, params_);
  context_ = bc::begin_context(params_, vertex_diameter_);
  aggregate_ = epoch::StateFrame(graph_->num_vertices());
  // Phase 2: non-adaptive calibration samples feed only the stopping
  // radii - not the estimator, so no ledger records.
  epoch::StateFrame calibration_frame(graph_->num_vertices());
  sample_fresh(context_.initial_samples, calibration_frame, /*record=*/false);
  bc::finish_calibration(context_, calibration_frame);
  // Phase 3: adaptive epochs, every sample sketched into the ledger.
  (void)adaptive_loop();
  ran_ = true;
}

IncrementalBc::RefreshStats IncrementalBc::refresh(
    std::shared_ptr<const graph::Graph> graph, const EdgeBatch& batch,
    std::uint32_t diameter_bound) {
  DISTBC_ASSERT_MSG(ran_, "refresh requires a previous run()");
  DISTBC_ASSERT(graph != nullptr);
  RefreshStats stats;

  const SampleLedger::Classification verdict = ledger_.classify(batch);
  stats.dirty = verdict.dirty.size();
  stats.retained = ledger_.size() - verdict.dirty.size();
  stats.bloom_dirty = verdict.bloom_dirty;

  // Subtract every dirty sample's contribution: its path counts and its
  // tau share (disconnected records contributed tau only).
  const std::span<std::uint64_t> raw = aggregate_.raw();
  const std::uint32_t n = aggregate_.num_vertices();
  for (const std::uint32_t index : verdict.dirty) {
    for (const graph::Vertex v : ledger_.path(index)) {
      DISTBC_DEBUG_ASSERT(raw[v] > 0);
      --raw[v];
    }
    DISTBC_ASSERT(raw[n] > 0);
    --raw[n];
  }

  graph_ = std::move(graph);
  kernel_ = std::make_shared<graph::BatchedBidirectionalBfs>(*graph_,
                                                             sample_batch_);
  resample_slots(verdict.dirty);
  stats.resampled = verdict.dirty.size();

  // Calibration-bound policy: 0 asserts the cached bound still covers the
  // new graph (insert-only batches); a bound within the cached one keeps
  // omega and the stopping radii; only a VIOLATED bound re-derives omega
  // and recalibrates - from the merged aggregate, no extra samples.
  if (diameter_bound > vertex_diameter_) {
    vertex_diameter_ = diameter_bound;
    bc::KadabraContext fresh = bc::begin_context(params_, diameter_bound);
    bc::finish_calibration(fresh, aggregate_);
    context_ = fresh;
    stats.recalibrated = true;
  }

  // The merged aggregate must still satisfy the stop rule under the
  // (possibly regrown) omega; top up with regular adaptive epochs if not.
  const std::uint32_t epochs_before = epochs_;
  stats.topup = adaptive_loop();
  stats.epochs = epochs_ - epochs_before;
  return stats;
}

std::vector<double> IncrementalBc::scores() const {
  DISTBC_ASSERT(ran_ && aggregate_.tau() > 0);
  const std::uint32_t n = aggregate_.num_vertices();
  std::vector<double> result(n, 0.0);
  const auto tau = static_cast<double>(aggregate_.tau());
  for (std::uint32_t v = 0; v < n; ++v)
    result[v] = static_cast<double>(aggregate_.count(v)) / tau;
  return result;
}

}  // namespace distbc::dynamic
