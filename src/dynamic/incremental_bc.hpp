// dynamic::IncrementalBc - a single-threaded KADABRA engine that keeps its
// sample set alive across edge batches instead of recomputing from scratch.
//
// A fresh run() executes the standard three phases (vertex diameter ->
// omega, calibration, adaptive epochs), drawing every sample on its OWN
// deterministic RNG stream (`Rng(params.seed).split(stream)`, one monotone
// stream counter across calibration, adaptive, and resample phases) and
// recording a SampleLedger sketch per adaptive sample.
//
// refresh(graph, batch, bound) is the incremental path:
//   1. classify retained samples clean/dirty against the batch sketches;
//   2. subtract the dirty samples' contributions from the aggregate frame
//      (their paths and tau shares), keeping every clean contribution;
//   3. resample EXACTLY the dirty count on fresh stream indices against
//      the new snapshot, into the same ledger slots;
//   4. when the batch violated the cached vertex-diameter bound
//      (`bound > current`), re-derive omega and recalibrate the stopping
//      radii from the merged post-resample aggregate - no extra samples;
//   5. re-evaluate the adaptive stop rule on the merged aggregate and top
//      up with further epochs if it no longer holds.
//
// The contract is STATISTICAL, not bitwise: after refresh the estimator is
// an average over exactly ledger().size() samples, each drawn uniformly
// on the graph version it is valid for, and the KADABRA stop rule holds on
// the merged aggregate under the (possibly recalibrated) omega. Two
// identical run()+refresh() sequences are bitwise identical to each other
// (deterministic streams); a refresh is NOT bitwise identical to a
// from-scratch run on the same snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bc/batch_sampler.hpp"
#include "bc/kadabra_context.hpp"
#include "dynamic/edge_batch.hpp"
#include "dynamic/sample_ledger.hpp"
#include "epoch/state_frame.hpp"
#include "graph/batched_bidirectional_bfs.hpp"
#include "graph/graph.hpp"

namespace distbc::dynamic {

class IncrementalBc {
 public:
  /// `sample_batch` is the traversal-kernel width (clamped to [1, 64]).
  IncrementalBc(bc::KadabraParams params, SketchParams sketch,
                int sample_batch);

  /// From-scratch run on `graph` (must be connected): phases 1-3, ledger
  /// rebuilt. Resets any previous state except the stream counter (streams
  /// are never reused within one engine lifetime).
  void run(std::shared_ptr<const graph::Graph> graph);

  struct RefreshStats {
    std::uint64_t retained = 0;   // clean samples kept
    std::uint64_t dirty = 0;      // samples invalidated by the batch
    std::uint64_t resampled = 0;  // == dirty (fresh draws, same slots)
    std::uint64_t topup = 0;      // extra samples from re-running the stop rule
    std::uint64_t bloom_dirty = 0;  // dirty verdicts from Bloom sketches
    std::uint32_t epochs = 0;       // top-up epochs executed
    bool recalibrated = false;      // omega/stopping radii re-derived
  };

  /// Incremental refresh after `batch` produced snapshot `graph`.
  /// `diameter_bound` is the caller's vertex-diameter upper bound for the
  /// NEW graph, or 0 to assert the cached bound still holds (insert-only
  /// batches: distances only shrink). Requires a previous run().
  RefreshStats refresh(std::shared_ptr<const graph::Graph> graph,
                       const EdgeBatch& batch, std::uint32_t diameter_bound);

  [[nodiscard]] bool ran() const { return ran_; }
  /// Betweenness estimates: count(v) / tau over the current aggregate.
  [[nodiscard]] std::vector<double> scores() const;
  /// Samples in the current estimator (== ledger().size()).
  [[nodiscard]] std::uint64_t samples() const { return aggregate_.tau(); }
  /// Adaptive epochs executed across run() and every refresh().
  [[nodiscard]] std::uint32_t epochs() const { return epochs_; }
  [[nodiscard]] const bc::KadabraContext& context() const { return context_; }
  [[nodiscard]] const SampleLedger& ledger() const { return ledger_; }
  [[nodiscard]] const bc::KadabraParams& params() const { return params_; }
  [[nodiscard]] std::uint32_t vertex_diameter() const {
    return vertex_diameter_;
  }
  /// Next unused RNG stream index (monotone across phases and refreshes).
  [[nodiscard]] std::uint64_t next_stream() const { return next_stream_; }

 private:
  /// SampleObserver adapter: routes each finished sample into the ledger,
  /// either appending or replacing a dirty slot.
  struct Recorder final : bc::SampleObserver {
    SampleLedger* ledger = nullptr;
    std::uint64_t stream = 0;
    std::int64_t replace_index = -1;  // < 0 = append
    void on_sample(bool connected, std::span<const graph::Vertex> path,
                   std::span<const graph::Vertex> scanned) override;
  };

  /// One kernel-wide chunk: a fresh single-sample BatchSampler per stream,
  /// cross-stream staged and finished in ascending order. `slots` (parallel
  /// to `streams`) selects ledger replacement; empty = append. `record`
  /// false skips the ledger entirely (calibration samples).
  void sample_chunk(std::span<const std::uint64_t> streams,
                    std::span<const std::uint32_t> slots,
                    epoch::StateFrame& frame, bool record);
  /// `count` fresh samples on fresh streams, appended to the ledger when
  /// `record` is set.
  void sample_fresh(std::uint64_t count, epoch::StateFrame& frame,
                    bool record);
  /// Redraws the given ledger slots on fresh streams into aggregate_.
  void resample_slots(std::span<const std::uint32_t> slots);
  /// Adaptive epochs until the stop rule holds on aggregate_; returns the
  /// samples taken.
  std::uint64_t adaptive_loop();

  bc::KadabraParams params_;
  SketchParams sketch_;
  int sample_batch_;

  std::shared_ptr<const graph::Graph> graph_;
  std::shared_ptr<graph::BatchedBidirectionalBfs> kernel_;
  bc::KadabraContext context_;
  epoch::StateFrame aggregate_;
  SampleLedger ledger_;
  std::uint32_t vertex_diameter_ = 0;
  std::uint64_t next_stream_ = 0;
  std::uint32_t epochs_ = 0;
  bool ran_ = false;
};

}  // namespace distbc::dynamic
