#include "dynamic/sample_ledger.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace distbc::dynamic {

namespace {

// splitmix64 finalizer: one well-mixed 64-bit word per vertex, split into
// four 16-bit probe lanes below. Deterministic across platforms.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void bloom_set(std::vector<std::uint64_t>& bits, graph::Vertex v) {
  const std::uint64_t h = mix(v);
  const std::uint64_t total = bits.size() * 64;
  for (int probe = 0; probe < 4; ++probe) {
    const std::uint64_t bit = ((h >> (16 * probe)) & 0xffffULL) % total;
    bits[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool bloom_test(const std::vector<std::uint64_t>& bits, graph::Vertex v) {
  const std::uint64_t h = mix(v);
  const std::uint64_t total = bits.size() * 64;
  for (int probe = 0; probe < 4; ++probe) {
    const std::uint64_t bit = ((h >> (16 * probe)) & 0xffffULL) % total;
    if ((bits[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace

void SampleLedger::fill(Record& record, std::uint64_t stream, bool connected,
                        std::span<const graph::Vertex> path,
                        std::span<const graph::Vertex> scanned) const {
  record.stream = stream;
  record.connected = connected;
  record.path.assign(path.begin(), path.end());
  record.touched.clear();
  record.bits.clear();
  if (scanned.size() <= params_.exact_cap) {
    record.bloom = false;
    record.touched.assign(scanned.begin(), scanned.end());
    std::sort(record.touched.begin(), record.touched.end());
    record.touched.erase(
        std::unique(record.touched.begin(), record.touched.end()),
        record.touched.end());
  } else {
    record.bloom = true;
    record.bits.assign(std::max<std::uint32_t>(1, params_.bloom_words), 0);
    for (const graph::Vertex v : scanned) bloom_set(record.bits, v);
  }
}

void SampleLedger::record(std::uint64_t stream, bool connected,
                          std::span<const graph::Vertex> path,
                          std::span<const graph::Vertex> scanned) {
  Record& slot = records_.emplace_back();
  fill(slot, stream, connected, path, scanned);
  if (slot.bloom) ++bloom_sketches_;
}

void SampleLedger::replace(std::size_t index, std::uint64_t stream,
                           bool connected,
                           std::span<const graph::Vertex> path,
                           std::span<const graph::Vertex> scanned) {
  DISTBC_ASSERT(index < records_.size());
  Record& slot = records_[index];
  if (slot.bloom) --bloom_sketches_;
  fill(slot, stream, connected, path, scanned);
  if (slot.bloom) ++bloom_sketches_;
}

bool SampleLedger::may_contain(const Record& record, graph::Vertex v) {
  if (record.bloom) return bloom_test(record.bits, v);
  return std::binary_search(record.touched.begin(), record.touched.end(), v);
}

SampleLedger::Classification SampleLedger::classify(
    const EdgeBatch& batch) const {
  DISTBC_ASSERT_MSG(batch.validated(),
                    "SampleLedger::classify requires a validated EdgeBatch");
  Classification result;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& record = records_[i];
    bool dirty = false;
    for (std::span<const Edge> list : {batch.inserts(), batch.deletes()}) {
      for (const Edge& edge : list) {
        if (may_contain(record, edge.u) || may_contain(record, edge.v)) {
          dirty = true;
          break;
        }
      }
      if (dirty) break;
    }
    if (dirty) {
      result.dirty.push_back(static_cast<std::uint32_t>(i));
      if (record.bloom) ++result.bloom_dirty;
    }
  }
  return result;
}

}  // namespace distbc::dynamic
