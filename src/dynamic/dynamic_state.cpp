#include "dynamic/dynamic_state.hpp"

#include <optional>
#include <utility>

#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "support/assert.hpp"

namespace distbc::dynamic {

DynamicState::DynamicState(std::shared_ptr<const graph::Graph> initial,
                           SketchParams sketch, int sample_batch)
    : graph_(std::move(initial)),
      sketch_(sketch),
      sample_batch_(sample_batch > 0 ? sample_batch : 16) {}

ApplyReport DynamicState::apply(EdgeBatch batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  ApplyReport report;
  if (batch.empty()) {
    report.status = api::Status::error("edge batch is empty");
    report.version = graph_.version();
    report.fingerprint = graph_.fingerprint();
    return report;
  }
  if (const api::Status status = batch.validate(*graph_.snapshot());
      !status) {
    report.status = status;
    report.version = graph_.version();
    report.fingerprint = graph_.fingerprint();
    return report;
  }

  report.had_deletes = !batch.deletes().empty();
  report.in_place = graph_.apply(batch);
  // Deletions can split the graph; the sampling estimators (and every live
  // incremental engine) require a connected one, so a disconnecting batch
  // rolls back instead of poisoning later queries.
  if (report.had_deletes && !graph::is_connected(*graph_.snapshot())) {
    graph_.revert(batch);
    report.status =
        api::Status::error("edge batch disconnects the graph (rejected)");
    report.version = graph_.version();
    report.fingerprint = graph_.fingerprint();
    return report;
  }
  report.status = api::Status::success();
  report.version = graph_.version();
  report.fingerprint = graph_.fingerprint();
  report.edges_inserted = batch.inserts().size();
  report.edges_deleted = batch.deletes().size();

  // Bound policy: insert-only batches only shrink distances, so every
  // cached vertex-diameter bound stays a valid upper bound - nothing is
  // recomputed (diameter_bound stays 0). Deletion batches recompute the
  // bound on the NEW snapshot, once per exactness class among the live
  // engines, plus the cheap 2-approximation for the report (a sound upper
  // bound for any downstream cache, e.g. Session warm states).
  std::optional<std::uint32_t> bound_by_exactness[2];
  auto bound_for = [&](bool exact) {
    auto& slot = bound_by_exactness[exact ? 1 : 0];
    if (!slot)
      slot = graph::vertex_diameter(*graph_.snapshot(), exact);
    return *slot;
  };
  if (report.had_deletes) report.diameter_bound = bound_for(false);

  for (auto& [key, engine] : engines_) {
    const std::uint32_t new_bound =
        report.had_deletes ? bound_for(engine->params().exact_diameter) : 0;
    const IncrementalBc::RefreshStats stats =
        engine->refresh(graph_.snapshot(), batch, new_bound);
    ++report.engines_refreshed;
    report.samples_retained += stats.retained;
    report.samples_dirty += stats.dirty;
    report.samples_resampled += stats.resampled;
    report.samples_topup += stats.topup;
    report.bloom_dirty += stats.bloom_dirty;
    report.recalibrations += stats.recalibrated ? 1 : 0;
  }
  return report;
}

DynamicState::QueryView DynamicState::query(const bc::KadabraParams& params) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryView view;
  auto& engine = engines_[engine_key(params)];
  if (engine == nullptr) {
    engine = std::make_unique<IncrementalBc>(params, sketch_, sample_batch_);
    engine->run(graph_.snapshot());
    view.first_run = true;
  }
  view.status = api::Status::success();
  view.scores = engine->scores();
  view.samples = engine->samples();
  view.epochs = engine->epochs();
  view.ledger_bloom = engine->ledger().bloom_sketches();
  view.vertex_diameter = engine->vertex_diameter();
  return view;
}

std::shared_ptr<const graph::Graph> DynamicState::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_.snapshot();
}

std::uint64_t DynamicState::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_.version();
}

std::uint64_t DynamicState::fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_.fingerprint();
}

MutableGraph::Stats DynamicState::graph_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_.stats();
}

std::size_t DynamicState::engine_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engines_.size();
}

}  // namespace distbc::dynamic
