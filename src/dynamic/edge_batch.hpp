// dynamic::EdgeBatch - one batch of undirected edge insertions and
// deletions, validated against a concrete graph version before it can be
// applied.
//
// A batch is built incrementally (insert()/remove() in any order and
// orientation) and then sealed by validate(graph), which normalizes every
// edge to u < v, sorts both lists, and rejects - with a typed api::Status
// naming the offending edge, never an abort - batches that could corrupt
// the CSR or the sample ledger's accounting:
//
//   * self-loops and endpoints outside [0, num_vertices);
//   * duplicate edges within a list, or one edge in both lists (apply
//     order would be ambiguous);
//   * inserting an edge the graph already has, or deleting one it lacks.
//
// Validation is against ONE graph version; any later insert()/remove()
// un-seals the batch. dynamic::MutableGraph and the Session/pool apply
// paths require a sealed batch (they validate internally against their
// current snapshot, so callers just build and submit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/status.hpp"
#include "graph/graph.hpp"

namespace distbc::dynamic {

/// One undirected edge; normalized to u < v by EdgeBatch::validate.
struct Edge {
  graph::Vertex u = 0;
  graph::Vertex v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class EdgeBatch {
 public:
  /// Queues an insertion (orientation free). Un-seals the batch.
  void insert(graph::Vertex u, graph::Vertex v) {
    inserts_.push_back({u, v});
    validated_ = false;
  }

  /// Queues a deletion (orientation free). Un-seals the batch.
  void remove(graph::Vertex u, graph::Vertex v) {
    deletes_.push_back({u, v});
    validated_ = false;
  }

  /// Normalizes, sorts, and checks the batch against `graph` (see the file
  /// comment for the rejection list). On success the batch is sealed for
  /// exactly this graph content; on error it stays unsealed and the lists
  /// keep their normalized order (safe to fix up and re-validate).
  [[nodiscard]] api::Status validate(const graph::Graph& graph);

  [[nodiscard]] bool validated() const { return validated_; }
  [[nodiscard]] std::span<const Edge> inserts() const { return inserts_; }
  [[nodiscard]] std::span<const Edge> deletes() const { return deletes_; }
  [[nodiscard]] bool empty() const {
    return inserts_.empty() && deletes_.empty();
  }
  /// Total churned edges (insertions + deletions).
  [[nodiscard]] std::size_t size() const {
    return inserts_.size() + deletes_.size();
  }

 private:
  std::vector<Edge> inserts_;
  std::vector<Edge> deletes_;
  bool validated_ = false;
};

}  // namespace distbc::dynamic
