// dynamic::SampleLedger - per-sample touched-region sketches, the record
// that lets an edge batch invalidate exactly the samples it could have
// changed.
//
// Every adaptive-phase sample is one sampled shortest path between a
// random pair (s, t). The ledger stores, per sample: the drawn path's
// interior vertices (to subtract its contribution from the aggregate), the
// deterministic RNG stream index it was drawn on, and a sketch of the
// sample's SCANNED region - the vertices whose adjacency lists the
// balanced bidirectional BFS expanded, i.e. per side the levels
// [0, completed_levels) (graph::BatchedBidirectionalBfs::
// append_lane_scanned). The scanned set, NOT the full discovered ball, is
// the sound invalidation region:
//
//   an edge (u, v) whose insertion or deletion changes the s-t
//   shortest-path set satisfies d(s,u) + 1 + d(v,t) <= d in some
//   orientation; at meeting the two sides' completed levels satisfy
//   L_f + L_b >= d, so either d(s,u) <= L_f - 1 (u scanned by the s side)
//   or d(v,t) <= L_b - 1 (v scanned by the t side). For disconnected
//   pairs the exhausted side scanned its entire component, so any batch
//   edge that could reconnect the pair has an endpoint in the sketch.
//
// A sample whose sketch contains NO endpoint of any batch edge is CLEAN:
// its path and its distance balls are preserved by the batch (the balls
// can neither gain vertices - any new path enters through an unscanned
// endpoint at distance >= L, too far - nor lose them - deleted edges
// touch no ball vertex), so the stored sketch itself stays valid and the
// argument composes across stacked clean batches.
//
// Sketch representation: an exact sorted vertex list up to
// SketchParams::exact_cap scanned vertices, else a fixed-size Bloom
// filter. Bloom false positives are SAFE by construction - a clean sample
// misclassified dirty is resampled from the new graph, which only costs
// work, never correctness (tests/test_dynamic.cpp pins this property).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/edge_batch.hpp"
#include "graph/graph.hpp"

namespace distbc::dynamic {

struct SketchParams {
  /// Scanned sets at or under this size store exact sorted vertex lists;
  /// larger ones fall back to the Bloom filter. 0 = always Bloom.
  std::uint32_t exact_cap = 256;
  /// Bloom filter size in 64-bit words (4 probe bits per vertex).
  std::uint32_t bloom_words = 16;
};

class SampleLedger {
 public:
  SampleLedger() = default;
  explicit SampleLedger(SketchParams params) : params_(params) {}

  void clear() {
    records_.clear();
    bloom_sketches_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  /// Records currently sketched as Bloom filters (vs exact lists).
  [[nodiscard]] std::uint64_t bloom_sketches() const {
    return bloom_sketches_;
  }

  /// Appends the record of a freshly drawn sample. `path` holds the drawn
  /// path's interior vertices (empty for a disconnected pair), `scanned`
  /// the expanded vertices of both BFS sides.
  void record(std::uint64_t stream, bool connected,
              std::span<const graph::Vertex> path,
              std::span<const graph::Vertex> scanned);

  /// Replaces record `index` in place - the resample path: a dirty slot
  /// keeps its position, its contents become the fresh sample's.
  void replace(std::size_t index, std::uint64_t stream, bool connected,
               std::span<const graph::Vertex> path,
               std::span<const graph::Vertex> scanned);

  [[nodiscard]] std::span<const graph::Vertex> path(std::size_t index) const {
    return records_[index].path;
  }
  [[nodiscard]] bool connected(std::size_t index) const {
    return records_[index].connected;
  }
  [[nodiscard]] std::uint64_t stream(std::size_t index) const {
    return records_[index].stream;
  }
  [[nodiscard]] bool is_bloom(std::size_t index) const {
    return records_[index].bloom;
  }

  struct Classification {
    /// Dirty record indices, ascending.
    std::vector<std::uint32_t> dirty;
    /// Dirty verdicts decided by a Bloom sketch (possible false
    /// positives); exact-sketch verdicts are never spurious.
    std::uint64_t bloom_dirty = 0;
  };

  /// Classifies every record against `batch`: dirty iff the sketch may
  /// contain an endpoint of any batch edge.
  [[nodiscard]] Classification classify(const EdgeBatch& batch) const;

 private:
  struct Record {
    std::uint64_t stream = 0;
    bool connected = false;
    bool bloom = false;
    std::vector<graph::Vertex> path;     // interior vertices, draw order
    std::vector<graph::Vertex> touched;  // exact sketch: sorted scanned set
    std::vector<std::uint64_t> bits;     // Bloom sketch words
  };

  void fill(Record& record, std::uint64_t stream, bool connected,
            std::span<const graph::Vertex> path,
            std::span<const graph::Vertex> scanned) const;
  [[nodiscard]] static bool may_contain(const Record& record,
                                        graph::Vertex v);

  SketchParams params_;
  std::vector<Record> records_;
  std::uint64_t bloom_sketches_ = 0;
};

}  // namespace distbc::dynamic
