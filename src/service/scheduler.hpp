// service::FairScheduler - deterministic weighted fair queueing over
// tenants (stride scheduling).
//
// Each tenant carries a virtual "pass"; dispatching a tenant's query
// advances its pass by 1/weight, and the scheduler always serves the
// eligible tenant with the smallest (pass, name) - name as the
// deterministic tie-break. A tenant with weight w therefore receives a
// w-proportional share of dispatch slots under backlog, regardless of
// submission order, and the dispatch order is a pure function of the
// submission history (no clocks, no randomness - replayable in tests and
// the bench).
//
// A tenant that goes idle and returns is re-based onto the current global
// pass (max of its own and the last dispatched pass), so sleeping never
// banks credit that would later starve active tenants.
//
// The scheduler is externally synchronized: the Dispatcher calls it under
// its own mutex; tests drive it single-threaded.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

namespace distbc::service {

class FairScheduler {
 public:
  /// Sets a tenant's weight (share of dispatch slots under backlog).
  /// Weights must be positive; unknown tenants default to 1.
  void set_weight(const std::string& tenant, double weight);

  /// Enqueues one work handle for (tenant, graph_id). FIFO per
  /// (tenant, graph) - fairness reorders across tenants, never within.
  void push(const std::string& tenant, const std::string& graph_id,
            std::uint64_t handle);

  /// Dispatches the next handle destined for `graph_id`: the eligible
  /// tenant with the smallest (pass, name). std::nullopt when no tenant
  /// has pending work for that graph.
  [[nodiscard]] std::optional<std::uint64_t> pop(const std::string& graph_id);

  /// Pending handles, total and per graph.
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::size_t pending(const std::string& graph_id) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double pass = 0.0;
    /// Per-graph FIFO queues; total queued across graphs.
    std::map<std::string, std::deque<std::uint64_t>> queues;
    std::size_t queued = 0;
  };

  std::map<std::string, Tenant> tenants_;
  /// Pass of the most recent dispatch - the re-basing floor for tenants
  /// waking from idle.
  double global_pass_ = 0.0;
  std::size_t pending_ = 0;
};

}  // namespace distbc::service
