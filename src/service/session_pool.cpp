#include "service/session_pool.hpp"

#include <utility>
#include <variant>

#include "graph/stats.hpp"
#include "support/assert.hpp"
#include "tune/microbench.hpp"
#include "tune/tuner.hpp"

namespace distbc::service {

SessionPool::SessionPool(std::shared_ptr<const graph::Graph> graph,
                         api::Config config)
    : graph_(std::move(graph)),
      store_(config.service_warm_store,
             config.service_warm_store_max_entries) {
  DISTBC_ASSERT(graph_ != nullptr);
  bootstrap(std::move(config));
}

SessionPool::SessionPool(graph::Graph graph, api::Config config)
    : SessionPool(std::make_shared<const graph::Graph>(std::move(graph)),
                  std::move(config)) {}

void SessionPool::bootstrap(api::Config config) {
  status_ = config.validate();
  if (!status_.ok) return;
  fingerprint_ = graph::fingerprint(*graph_);
  queue_capacity_ = config.service_queue_capacity;

  // Resolve the tuning profile ONCE for the whole pool: replicas share one
  // capture instead of each microbenching lazily on its first query.
  if (config.profile == nullptr && config.tune_profile.empty() &&
      config.auto_tune) {
    const tune::ClusterShape shape{config.ranks, config.ranks_per_node,
                                   config.threads};
    if (auto stored = store_.load_profile(shape); stored.has_value()) {
      config.profile = std::make_shared<const tune::TuningProfile>(*stored);
      stats_.profile_from_store = true;
    } else {
      tune::MicrobenchConfig micro;
      micro.num_ranks = config.ranks;
      micro.ranks_per_node = config.ranks_per_node;
      micro.threads_per_rank = config.threads;
      micro.network = config.network;
      config.profile = std::make_shared<const tune::TuningProfile>(
          tune::capture_profile(micro));
      if (store_.enabled()) (void)store_.save_profile(*config.profile);
    }
    config.auto_tune = false;  // the bound profile supersedes lazy capture
  }

  const int pool_size = config.service_pool_size;
  // One shared dynamic state for the whole pool: every replica binds it,
  // so incremental engines (and their deterministic stream counters) are
  // pool-global and apply()/query results cannot depend on the pool size.
  dynamic::SketchParams sketch;
  sketch.exact_cap = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config.dynamic_sketch_cap, UINT32_MAX));
  dynamic_ = std::make_shared<dynamic::DynamicState>(graph_, sketch,
                                                     config.sample_batch);
  replicas_.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) {
    replicas_.push_back(std::make_unique<api::Session>(graph_, config));
    if (!replicas_.back()->status().ok) {
      status_ = replicas_.back()->status();
      replicas_.clear();
      return;
    }
    replicas_.back()->bind_dynamic_state(dynamic_);
  }
  warm_cursor_.assign(pool_size, 0);

  // Warm restart: preload every compatible stored calibration before the
  // first query. Replica 0 validates (provenance vs this graph/shape);
  // the rest pick accepted states up through sync_warm_into.
  if (store_.enabled()) {
    for (auto& state : store_.load_all(fingerprint_)) {
      const api::Status accepted =
          replicas_[0]->preload_calibration(state->context.params, state);
      if (accepted.ok) {
        warm_known_.insert(state.get());
        warm_states_.push_back(std::move(state));
        ++stats_.store_states_loaded;
      } else {
        ++stats_.store_states_rejected;
      }
    }
    warm_cursor_[0] = warm_states_.size();
  }

  workers_.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

SessionPool::~SessionPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Ticket SessionPool::submit(api::Query query, std::string tenant,
                           std::string graph_id) {
  Job job;
  job.query = std::move(query);
  job.tenant = std::move(tenant);
  job.graph_id = std::move(graph_id);
  const Ticket ticket = job.ticket;

  {
    const std::scoped_lock lock(mutex_);
    if (!status_.ok) {
      ++stats_.rejected;
      Response response;
      response.status = status_;
      response.tenant = job.tenant;
      response.graph_id = job.graph_id;
      ticket.fulfill(std::move(response));
      return ticket;
    }
    if (mutating_) {
      ++stats_.rejected_mutating;
      Response response;
      response.status = api::Status::error(
          "graph is mid-apply (edge batch in progress); retry");
      response.tenant = job.tenant;
      response.graph_id = job.graph_id;
      ticket.fulfill(std::move(response));
      return ticket;
    }
    if (queue_.size() >= queue_capacity_) {
      ++stats_.rejected;
      Response response;
      response.status = api::Status::error(
          "service queue full (" + std::to_string(queue_capacity_) +
          " pending queries; raise service_queue_capacity or retry)");
      response.tenant = job.tenant;
      response.graph_id = job.graph_id;
      ticket.fulfill(std::move(response));
      return ticket;
    }
    ++stats_.submitted;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return ticket;
}

void SessionPool::submit_async(api::Query query, std::string tenant,
                               std::string graph_id,
                               std::uint64_t dispatch_sequence,
                               Callback on_done) {
  DISTBC_ASSERT(on_done != nullptr);
  Job job;
  job.query = std::move(query);
  job.tenant = std::move(tenant);
  job.graph_id = std::move(graph_id);
  job.dispatch_sequence = dispatch_sequence;
  job.callback = std::move(on_done);

  api::Status rejection;
  {
    const std::scoped_lock lock(mutex_);
    if (!status_.ok) {
      ++stats_.rejected;
      rejection = status_;
    } else if (mutating_) {
      // Safety net for direct users; the Dispatcher stops forwarding to a
      // mutating shard before its own apply() reaches the pool.
      ++stats_.rejected_mutating;
      rejection = api::Status::error(
          "graph is mid-apply (edge batch in progress); retry");
    } else {
      // No capacity check: the Dispatcher is the admission authority on
      // this path and keeps at most pool-size queries in flight per pool.
      ++stats_.submitted;
      queue_.push_back(std::move(job));
    }
  }
  if (!rejection.ok) {
    Response response;
    response.status = std::move(rejection);
    response.tenant = std::move(job.tenant);
    response.graph_id = std::move(job.graph_id);
    job.callback(std::move(response));
    return;
  }
  work_cv_.notify_one();
}

void SessionPool::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_jobs_ == 0; });
}

dynamic::ApplyReport SessionPool::apply(dynamic::EdgeBatch batch) {
  // Whole applies serialize: two concurrent applies must not interleave
  // their quiesce/mutate/rebroadcast sequences (and api::Session is
  // single-threaded by contract).
  const std::scoped_lock apply_lock(apply_mutex_);
  {
    std::unique_lock lock(mutex_);
    if (!status_.ok) {
      dynamic::ApplyReport report;
      report.status = status_;
      return report;
    }
    // Quiesce: stop admitting (typed rejection in submit/submit_async),
    // let every accepted query finish, then mutate on idle replicas.
    mutating_ = true;
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && running_jobs_ == 0; });
  }

  dynamic::ApplyReport report = replicas_[0]->apply(std::move(batch));
  if (report.status.ok) {
    for (std::size_t i = 1; i < replicas_.size(); ++i)
      replicas_[i]->sync_dynamic(report);
    rebroadcast_warm();
  }
  {
    const std::scoped_lock lock(mutex_);
    if (report.status.ok) {
      graph_ = dynamic_->snapshot();
      fingerprint_ = report.fingerprint;
      ++stats_.applies;
    }
    mutating_ = false;
  }
  work_cv_.notify_all();
  return report;
}

void SessionPool::rebroadcast_warm() {
  // Replica 0's adopt pass re-stamped the surviving calibrations to the
  // new fingerprint and dropped the violated ones; that set becomes the
  // whole pool cache (old-fingerprint entries must not be re-preloaded -
  // provenance would reject them anyway).
  const auto states = replicas_[0]->calibrations();
  std::uint64_t saved = 0;
  {
    const std::scoped_lock lock(warm_mutex_);
    warm_states_.assign(states.begin(), states.end());
    warm_known_.clear();
    for (const auto& state : warm_states_) warm_known_.insert(state.get());
    // Replica 0 holds everything already; the rest re-preload from zero.
    for (std::size_t i = 0; i < warm_cursor_.size(); ++i) warm_cursor_[i] = 0;
    warm_cursor_[0] = warm_states_.size();
  }
  if (store_.enabled())
    for (const auto& state : states)
      if (store_.save(*state)) ++saved;
  const std::scoped_lock lock(mutex_);
  stats_.store_saves += saved;
}

std::size_t SessionPool::queue_depth() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

PoolStats SessionPool::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void SessionPool::worker_main(int index) {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_jobs_;
    }

    Response response;
    response.tenant = job.tenant;
    response.graph_id = job.graph_id;
    response.dispatch_sequence = job.dispatch_sequence;
    response.queue_seconds = job.queued.elapsed_s();

    const bool betweenness =
        std::holds_alternative<api::BetweennessQuery>(job.query);
    if (betweenness) sync_warm_into(index);

    const WallTimer run_timer;
    response.result = replicas_[index]->run(job.query);
    response.run_seconds = run_timer.elapsed_s();
    response.status = response.result.status;
    if (betweenness && response.result.status.ok) export_warm_from(index);

    {
      // Count the completion BEFORE delivering: anyone who learns of the
      // response (ticket holder, dispatcher callback) then already sees it
      // in stats(). The running_jobs_ decrement stays AFTER delivery so
      // drain() returning implies every response has been observed.
      const std::scoped_lock lock(mutex_);
      ++stats_.completed;
      if (response.result.calibration_reused) ++stats_.calibration_reuses;
    }
    if (job.callback != nullptr)
      job.callback(std::move(response));
    else
      job.ticket.fulfill(std::move(response));

    {
      const std::scoped_lock lock(mutex_);
      --running_jobs_;
      if (queue_.empty() && running_jobs_ == 0) idle_cv_.notify_all();
    }
  }
}

void SessionPool::sync_warm_into(int index) {
  std::vector<std::shared_ptr<const bc::KadabraWarmState>> fresh;
  {
    const std::scoped_lock lock(warm_mutex_);
    for (std::size_t i = warm_cursor_[index]; i < warm_states_.size(); ++i)
      fresh.push_back(warm_states_[i]);
    warm_cursor_[index] = warm_states_.size();
  }
  // Replica `index` is owned by this worker; preloading outside the pool
  // locks is safe. States in the pool cache were validated on admission,
  // and re-preloading a replica's own exports is a no-op, so the status
  // can be ignored here.
  for (auto& state : fresh) {
    // Copy the key out first: passing `state->context.params` and
    // `std::move(state)` in one call would leave the dereference racing
    // the move (argument evaluation order is unspecified).
    const bc::KadabraParams params = state->context.params;
    (void)replicas_[index]->preload_calibration(params, std::move(state));
  }
}

void SessionPool::export_warm_from(int index) {
  const auto states = replicas_[index]->calibrations();
  std::vector<std::shared_ptr<const bc::KadabraWarmState>> to_save;
  {
    const std::scoped_lock lock(warm_mutex_);
    for (const auto& state : states) {
      if (warm_known_.insert(state.get()).second) {
        warm_states_.push_back(state);
        to_save.push_back(state);
      }
    }
    // warm_cursor_[index] is deliberately NOT advanced: entries appended
    // by other replicas since this replica's last sync are still pending
    // for it, and re-preloading its own export is a harmless no-op.
  }
  if (to_save.empty() || !store_.enabled()) return;
  std::uint64_t saved = 0;
  for (const auto& state : to_save)
    if (store_.save(*state)) ++saved;
  const std::scoped_lock lock(mutex_);
  stats_.store_saves += saved;
}

}  // namespace distbc::service
