// service::SessionPool - N api::Session replicas bound to one graph,
// behind one bounded work queue, sharing their warm state.
//
// Sessions are single-threaded by contract (api/session.hpp); concurrency
// lives here. The pool constructs `Config::service_pool_size` sessions
// over a shared (not copied) graph, spawns one worker thread per replica,
// and feeds them from a FIFO queue. What makes the replicas a pool rather
// than N cold sessions is warm-state sharing:
//
//   * calibrations: a betweenness calibration computed by any replica is
//     exported (Session::calibrations) into a pool-level cache and
//     preloaded (Session::preload_calibration) into the serving replica
//     before each betweenness query - every replica skips phases 1-2 once
//     any one of them has paid for a (params, shape) combination;
//   * tuning profile: resolved ONCE at pool construction (store lookup,
//     else a single capture when Config::auto_tune is set) and bound to
//     every replica, instead of each replica microbenching on first use;
//   * persistence: with Config::service_warm_store set, calibrations and
//     the profile round-trip through a service::WarmStore, so a restarted
//     pool preloads them at construction and its first query performs
//     zero diameter/calibration work (the kDiameter/kCalibration phase
//     stats stay 0 - the restart acceptance check).
//
// In the engine's deterministic mode every replica produces bitwise-
// identical results for the same query, so pooling changes throughput
// and ordering only - never answers (tests/test_service.cpp).
//
// On this simulated-MPI substrate the concurrency win comes from overlap:
// ranks blocked in modeled collectives sleep on the real clock
// (mpisim::NetworkModel), and the pool runs other queries' sampling under
// those sleeps - which is exactly the effect bench/service_throughput
// measures.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "dynamic/dynamic_state.hpp"
#include "service/ticket.hpp"
#include "service/warm_store.hpp"
#include "support/timer.hpp"

namespace distbc::service {

/// Pool-lifetime counters (all monotonic; snapshot via stats()).
struct PoolStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Bounded-queue rejections (Ticket-path submissions only; the
  /// Dispatcher performs its own admission control upstream).
  std::uint64_t rejected = 0;
  /// Warm states found on disk and accepted by the replicas.
  std::uint64_t store_states_loaded = 0;
  /// Warm states found on disk but rejected (foreign shape/params).
  std::uint64_t store_states_rejected = 0;
  /// Fresh calibrations persisted to the store.
  std::uint64_t store_saves = 0;
  /// Queries that ran on a calibration cached before them (preloaded from
  /// the store or computed by any replica).
  std::uint64_t calibration_reuses = 0;
  /// Edge batches applied through apply().
  std::uint64_t applies = 0;
  /// Submissions rejected because an apply() was quiescing the pool.
  std::uint64_t rejected_mutating = 0;
  /// The tuning profile came from the warm store (vs captured/loaded).
  bool profile_from_store = false;
};

class SessionPool {
 public:
  using Callback = std::function<void(Response)>;

  /// Binds `config.service_pool_size` session replicas to the shared
  /// graph. Construction resolves the tuning profile and preloads the
  /// warm store; configuration problems surface through status() and
  /// reject every subsequent submission.
  SessionPool(std::shared_ptr<const graph::Graph> graph, api::Config config);
  SessionPool(graph::Graph graph, api::Config config);

  /// Drains the queue (every accepted query completes), then joins the
  /// workers.
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  [[nodiscard]] const api::Status& status() const { return status_; }
  [[nodiscard]] int size() const { return static_cast<int>(replicas_.size()); }
  /// The bound graph. NOT synchronized with apply(): callers that mutate
  /// the pool concurrently should hold graph_snapshot() instead.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
  /// The current snapshot, safe against concurrent apply().
  [[nodiscard]] std::shared_ptr<const graph::Graph> graph_snapshot() const {
    const std::scoped_lock lock(mutex_);
    return graph_;
  }
  [[nodiscard]] std::uint64_t graph_fingerprint() const {
    const std::scoped_lock lock(mutex_);
    return fingerprint_;
  }

  /// Asynchronous submission; rejects with a typed Status when the
  /// bounded queue (Config::service_queue_capacity) is full.
  [[nodiscard]] Ticket submit(api::Query query, std::string tenant = {},
                              std::string graph_id = {});

  /// Dispatcher path: callback delivery (invoked on a worker thread),
  /// admission already performed upstream - never rejects.
  void submit_async(api::Query query, std::string tenant,
                    std::string graph_id, std::uint64_t dispatch_sequence,
                    Callback on_done);

  /// Blocks until every accepted submission has completed.
  void drain();

  /// Applies one edge batch to the pooled graph: quiesces the replicas
  /// (new submissions are rejected with a typed Status while the apply is
  /// pending, queued work completes first), applies through replica 0's
  /// shared dynamic state, syncs the other replicas, and rebroadcasts the
  /// re-stamped warm cache. Post-apply responses are bitwise identical
  /// across pool sizes: every replica serves incremental queries from the
  /// ONE shared dynamic::DynamicState. Concurrent applies serialize.
  [[nodiscard]] dynamic::ApplyReport apply(dynamic::EdgeBatch batch);

  /// The shared dynamic state behind apply() (never null after a
  /// successful bootstrap).
  [[nodiscard]] const std::shared_ptr<dynamic::DynamicState>& dynamic_state()
      const {
    return dynamic_;
  }

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] PoolStats stats() const;

 private:
  struct Job {
    api::Query query;
    std::string tenant;
    std::string graph_id;
    std::uint64_t dispatch_sequence = 0;
    Callback callback;  // null -> fulfill `ticket`
    Ticket ticket;
    WallTimer queued;
  };

  void bootstrap(api::Config config);
  void enqueue(Job job);
  void worker_main(int index);
  /// Preloads pool-cache entries this replica has not seen yet.
  void sync_warm_into(int index);
  /// Exports calibrations the replica just computed into the pool cache
  /// (and the store).
  void export_warm_from(int index);
  /// Rebuilds the pool warm cache from replica 0 after an apply(): the
  /// old-fingerprint entries are gone, the re-stamped survivors become the
  /// new broadcast set (and are re-persisted under the new fingerprint).
  void rebroadcast_warm();

  std::shared_ptr<const graph::Graph> graph_;
  api::Status status_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t queue_capacity_ = 0;
  WarmStore store_;

  std::vector<std::unique_ptr<api::Session>> replicas_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  int running_jobs_ = 0;
  bool stopping_ = false;
  /// Set while an apply() quiesces and mutates the pool; submissions are
  /// rejected with a typed Status until it clears.
  bool mutating_ = false;
  PoolStats stats_;

  /// Serializes whole apply() calls (quiesce through rebroadcast).
  std::mutex apply_mutex_;
  /// The one dynamic state every replica binds (bootstrap).
  std::shared_ptr<dynamic::DynamicState> dynamic_;

  /// Pool-level warm cache: states accepted by the replicas, in arrival
  /// order (append-only; per-replica cursors track what is already
  /// preloaded). `known_` holds their identities for O(log n) new-state
  /// detection after a run.
  std::mutex warm_mutex_;
  std::vector<std::shared_ptr<const bc::KadabraWarmState>> warm_states_;
  std::set<const bc::KadabraWarmState*> warm_known_;
  std::vector<std::size_t> warm_cursor_;
};

}  // namespace distbc::service
