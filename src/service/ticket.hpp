// service::Ticket - the future-style handle a query submission returns.
//
// Submission (Dispatcher::submit / SessionPool::submit) is asynchronous:
// the caller gets a Ticket immediately and the Response is delivered when
// a pool worker finishes the query (or immediately, for typed admission
// rejections). Tickets are cheap shared handles - copy them freely; every
// copy observes the same Response exactly once it is fulfilled.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "api/session.hpp"
#include "api/status.hpp"

namespace distbc::service {

/// What one query submission came back with.
struct Response {
  /// Admission + execution status. Typed rejections ("service queue
  /// full", "unknown graph id ...") arrive here with an empty result;
  /// accepted queries carry the api::Result (whose own status covers
  /// query validation).
  api::Status status;
  api::Result result;

  /// Echo of the request routing.
  std::string tenant;
  std::string graph_id;

  /// Seconds spent queued before a session replica picked the query up.
  double queue_seconds = 0.0;
  /// Seconds inside Session::run.
  double run_seconds = 0.0;
  /// Global dispatch order (what the fair scheduler decided); rejected
  /// submissions keep 0.
  std::uint64_t dispatch_sequence = 0;
};

class Ticket {
 public:
  Ticket() : state_(std::make_shared<State>()) {}

  /// Blocks until the response is available, then returns it (stable
  /// reference for the ticket's lifetime).
  [[nodiscard]] const Response& wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->done; });
    return state_->response;
  }

  [[nodiscard]] bool done() const {
    const std::scoped_lock lock(state_->mutex);
    return state_->done;
  }

  /// Delivery side (SessionPool / Dispatcher internals). Fulfilling a
  /// ticket twice is a programming error; the second response is dropped.
  void fulfill(Response response) const {
    {
      const std::scoped_lock lock(state_->mutex);
      if (state_->done) return;
      state_->response = std::move(response);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

 private:
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };

  std::shared_ptr<State> state_;
};

}  // namespace distbc::service
