#include "service/dispatcher.hpp"

#include <utility>

namespace distbc::service {

Dispatcher::Dispatcher(std::uint64_t queue_capacity)
    : queue_capacity_(queue_capacity) {}

Dispatcher::~Dispatcher() {
  resume();
  drain();
  // Shard destruction joins each pool's workers (pools drain on their
  // own; after drain() above their queues are already empty).
}

api::Status Dispatcher::bind(const std::string& graph_id,
                             std::shared_ptr<const graph::Graph> graph,
                             const api::Config& config) {
  {
    const std::scoped_lock lock(mutex_);
    if (shards_.contains(graph_id))
      return api::Status::error("graph id '" + graph_id +
                                "' is already bound");
  }
  // Pool construction is heavyweight (sessions, workers, possibly a
  // profile capture) - run it outside the dispatcher lock.
  auto pool = std::make_unique<SessionPool>(std::move(graph), config);
  if (!pool->status().ok) return pool->status();

  const std::scoped_lock lock(mutex_);
  if (shards_.contains(graph_id))
    return api::Status::error("graph id '" + graph_id + "' is already bound");
  if (queue_capacity_ == 0) queue_capacity_ = config.service_queue_capacity;
  shards_[graph_id].pool = std::move(pool);
  return api::Status::success();
}

void Dispatcher::set_tenant_weight(const std::string& tenant, double weight) {
  const std::scoped_lock lock(mutex_);
  scheduler_.set_weight(tenant, weight);
}

Ticket Dispatcher::submit(Request request) {
  const Ticket ticket;
  Response rejection;
  {
    const std::scoped_lock lock(mutex_);
    const auto shard_it = shards_.find(request.graph_id);
    if (shard_it == shards_.end()) {
      ++stats_.rejected_unknown_graph;
      rejection.status = api::Status::error(
          "unknown graph id '" + request.graph_id + "' (not bound)");
    } else if (shard_it->second.mutating > 0) {
      ++stats_.rejected_mutating;
      rejection.status = api::Status::error(
          "graph '" + request.graph_id +
          "' is mid-apply (edge batch in progress); retry");
    } else if (stats_.scheduled >= queue_capacity_) {
      ++stats_.rejected_queue_full;
      rejection.status = api::Status::error(
          "service queue full (" + std::to_string(queue_capacity_) +
          " pending queries; raise service_queue_capacity or retry)");
    } else {
      ++stats_.submitted;
      ++stats_.scheduled;
      const std::uint64_t handle = next_handle_++;
      scheduler_.push(request.tenant, request.graph_id, handle);
      pending_.emplace(handle,
                       Pending{std::move(request), ticket, WallTimer{}});
      pump();
      return ticket;
    }
  }
  rejection.tenant = std::move(request.tenant);
  rejection.graph_id = std::move(request.graph_id);
  ticket.fulfill(std::move(rejection));
  return ticket;
}

void Dispatcher::pause() {
  const std::scoped_lock lock(mutex_);
  paused_ = true;
}

void Dispatcher::resume() {
  const std::scoped_lock lock(mutex_);
  paused_ = false;
  pump();
}

void Dispatcher::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (paused_ || stats_.scheduled == 0) && stats_.in_flight == 0;
  });
}

DispatcherStats Dispatcher::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

const SessionPool* Dispatcher::pool(const std::string& graph_id) const {
  const std::scoped_lock lock(mutex_);
  const auto it = shards_.find(graph_id);
  return it == shards_.end() ? nullptr : it->second.pool.get();
}

void Dispatcher::pump() {
  if (paused_) return;
  // Keep forwarding scheduler picks until every pool either has all
  // replica slots busy or no eligible work; the per-pool slot cap keeps
  // the scheduler's dispatch order authoritative (a pool's FIFO queue
  // never holds more than its replicas can start immediately).
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [graph_id, shard] : shards_) {
      // A mutating shard forwards nothing: its pool is quiescing for an
      // apply() and would reject (scheduled work waits it out instead).
      if (shard.mutating > 0) continue;
      while (shard.in_flight < shard.pool->size()) {
        const auto handle = scheduler_.pop(graph_id);
        if (!handle.has_value()) break;
        const auto it = pending_.find(*handle);
        Pending pending = std::move(it->second);
        pending_.erase(it);
        ++shard.in_flight;
        ++stats_.in_flight;
        --stats_.scheduled;
        const std::uint64_t sequence = next_sequence_++;
        const double scheduler_seconds = pending.queued.elapsed_s();
        const Ticket ticket = pending.ticket;
        const std::string gid = graph_id;
        shard.pool->submit_async(
            std::move(pending.request.query),
            std::move(pending.request.tenant), gid, sequence,
            [this, gid, ticket, scheduler_seconds](Response response) {
              on_complete(gid, std::move(response), ticket,
                          scheduler_seconds);
            });
        progress = true;
      }
    }
  }
}

void Dispatcher::on_complete(const std::string& graph_id, Response response,
                             const Ticket& ticket,
                             double scheduler_seconds) {
  // Time spent in the fair scheduler counts as queueing too.
  response.queue_seconds += scheduler_seconds;
  ticket.fulfill(std::move(response));

  const std::scoped_lock lock(mutex_);
  Shard& shard = shards_.at(graph_id);
  --shard.in_flight;
  --stats_.in_flight;
  ++stats_.completed;
  pump();
  // Unconditional: besides drain()'s global predicate, apply() waits for
  // ONE shard's in_flight to reach zero.
  idle_cv_.notify_all();
}

dynamic::ApplyReport Dispatcher::apply(const std::string& graph_id,
                                       dynamic::EdgeBatch batch) {
  SessionPool* pool = nullptr;
  {
    std::unique_lock lock(mutex_);
    const auto it = shards_.find(graph_id);
    if (it == shards_.end()) {
      dynamic::ApplyReport report;
      report.status = api::Status::error("unknown graph id '" + graph_id +
                                         "' (not bound)");
      return report;
    }
    Shard& shard = it->second;
    ++shard.mutating;  // closes the shard: submit rejects, pump skips
    idle_cv_.wait(lock, [&shard] { return shard.in_flight == 0; });
    pool = shard.pool.get();
  }
  // The pool quiesces and mutates on its own; other shards keep serving
  // because the dispatcher lock is NOT held across the apply.
  dynamic::ApplyReport report = pool->apply(std::move(batch));
  {
    const std::scoped_lock lock(mutex_);
    Shard& shard = shards_.at(graph_id);
    --shard.mutating;
    if (report.status.ok) ++stats_.applies;
    pump();
  }
  idle_cv_.notify_all();
  return report;
}

}  // namespace distbc::service
