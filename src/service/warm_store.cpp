#include "service/warm_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>

namespace distbc::service {

namespace {

constexpr std::uint64_t kFormatVersion = 1;

// --- Bit-exact scalar encoding ----------------------------------------------

std::string encode_double(double value) {
  char buffer[64];
  // C hexfloat: every double round-trips bit-exactly through strtod.
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

[[nodiscard]] bool decode_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  out = value;
  return true;
}

[[nodiscard]] bool decode_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 0);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  out = value;
  return true;
}

[[nodiscard]] std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// --- Key/value file helpers -------------------------------------------------

using Fields = std::unordered_map<std::string, std::string>;

[[nodiscard]] std::optional<Fields> read_fields(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Fields fields;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const auto trim = [](std::string_view s) {
      while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                            s.front() == '\r'))
        s.remove_prefix(1);
      while (!s.empty() &&
             (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
      return s;
    };
    fields[std::string(trim(std::string_view(line).substr(0, eq)))] =
        std::string(trim(std::string_view(line).substr(eq + 1)));
  }
  return fields;
}

[[nodiscard]] bool field_u64(const Fields& fields, const char* key,
                             std::uint64_t& out) {
  const auto it = fields.find(key);
  return it != fields.end() && decode_u64(it->second, out);
}

[[nodiscard]] bool field_double(const Fields& fields, const char* key,
                                double& out) {
  const auto it = fields.find(key);
  return it != fields.end() && decode_double(it->second, out);
}

[[nodiscard]] bool field_double_list(const Fields& fields, const char* key,
                                     std::size_t expected,
                                     std::vector<double>& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  out.clear();
  out.reserve(expected);
  std::istringstream stream(it->second);
  std::string token;
  while (stream >> token) {
    double value = 0.0;
    if (!decode_double(token, value)) return false;
    out.push_back(value);
  }
  return out.size() == expected;
}

[[nodiscard]] std::string hex16(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
  return buffer;
}

/// Parses one .warm file back into a state; nullptr on any damage.
[[nodiscard]] std::shared_ptr<const bc::KadabraWarmState> parse_state(
    const std::string& path, std::uint64_t expected_fingerprint) {
  const auto fields = read_fields(path);
  if (!fields.has_value()) return nullptr;

  std::uint64_t version = 0;
  if (!field_u64(*fields, "version", version) || version != kFormatVersion)
    return nullptr;

  auto state = std::make_shared<bc::KadabraWarmState>();
  std::uint64_t u64 = 0;
  if (!field_u64(*fields, "graph_fingerprint", state->graph_fingerprint) ||
      state->graph_fingerprint != expected_fingerprint)
    return nullptr;
  if (!field_u64(*fields, "ranks", u64)) return nullptr;
  state->ranks = static_cast<int>(u64);
  if (!field_u64(*fields, "threads_per_rank", u64)) return nullptr;
  state->threads_per_rank = static_cast<int>(u64);
  if (!field_u64(*fields, "deterministic", u64)) return nullptr;
  state->deterministic = u64 != 0;
  if (!field_u64(*fields, "virtual_streams", state->virtual_streams))
    return nullptr;

  bc::KadabraParams& params = state->context.params;
  if (!field_double(*fields, "epsilon", params.epsilon)) return nullptr;
  if (!field_double(*fields, "delta", params.delta)) return nullptr;
  if (!field_u64(*fields, "exact_diameter", u64)) return nullptr;
  params.exact_diameter = u64 != 0;
  if (!field_u64(*fields, "seed", params.seed)) return nullptr;
  if (!field_u64(*fields, "initial_samples", params.initial_samples))
    return nullptr;
  if (!field_double(*fields, "balancing", params.balancing)) return nullptr;

  if (!field_u64(*fields, "vertex_diameter", u64)) return nullptr;
  state->vertex_diameter = static_cast<std::uint32_t>(u64);
  state->context.vertex_diameter = state->vertex_diameter;
  if (!field_u64(*fields, "omega", state->context.omega)) return nullptr;
  if (!field_u64(*fields, "context_initial_samples",
                 state->context.initial_samples))
    return nullptr;
  if (!field_double(*fields, "predicted_tau",
                    state->context.calibration.predicted_tau))
    return nullptr;
  if (!field_double(*fields, "sample_seconds", state->sample_seconds))
    return nullptr;
  if (!field_double(*fields, "touched_words_per_sample",
                    state->touched_words_per_sample))
    return nullptr;

  std::uint64_t num_vertices = 0;
  if (!field_u64(*fields, "num_vertices", num_vertices)) return nullptr;
  if (!field_double_list(*fields, "delta_l", num_vertices,
                         state->context.calibration.delta_l))
    return nullptr;
  if (!field_double_list(*fields, "delta_u", num_vertices,
                         state->context.calibration.delta_u))
    return nullptr;
  return state;
}

}  // namespace

WarmStore::WarmStore(std::string root, std::uint64_t max_entries,
                     std::uint64_t max_bytes)
    : root_(std::move(root)),
      max_entries_(max_entries),
      max_bytes_(max_bytes) {}

std::string WarmStore::version_dir() const { return root_ + "/v1"; }

std::uint64_t WarmStore::key_hash(const bc::KadabraWarmState& state) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffu;
      hash *= 0x100000001b3ull;
    }
  };
  const bc::KadabraParams& params = state.context.params;
  mix(double_bits(params.epsilon));
  mix(double_bits(params.delta));
  mix(params.seed);
  mix(params.exact_diameter ? 1 : 0);
  mix(params.initial_samples);
  mix(double_bits(params.balancing));
  mix(static_cast<std::uint64_t>(state.ranks));
  mix(static_cast<std::uint64_t>(state.threads_per_rank));
  mix(state.deterministic ? 1 : 0);
  mix(state.virtual_streams);
  return hash;
}

std::string WarmStore::state_path(const bc::KadabraWarmState& state) const {
  if (!enabled() || state.graph_fingerprint == 0 || state.ranks == 0)
    return {};
  return version_dir() + "/bc_" + hex16(state.graph_fingerprint) + "_" +
         hex16(key_hash(state)) + ".warm";
}

bool WarmStore::save(const bc::KadabraWarmState& state) const {
  const std::string path = state_path(state);
  if (path.empty()) return false;  // disabled or no provenance

  std::error_code ec;
  std::filesystem::create_directories(version_dir(), ec);
  if (ec) return false;

  std::ostringstream out;
  out << "# distbc service warm state (bit-exact hexfloat doubles)\n";
  out << "version = " << kFormatVersion << '\n';
  out << "graph_fingerprint = 0x" << hex16(state.graph_fingerprint) << '\n';
  out << "ranks = " << state.ranks << '\n';
  out << "threads_per_rank = " << state.threads_per_rank << '\n';
  out << "deterministic = " << (state.deterministic ? 1 : 0) << '\n';
  out << "virtual_streams = " << state.virtual_streams << '\n';
  const bc::KadabraParams& params = state.context.params;
  out << "epsilon = " << encode_double(params.epsilon) << '\n';
  out << "delta = " << encode_double(params.delta) << '\n';
  out << "exact_diameter = " << (params.exact_diameter ? 1 : 0) << '\n';
  out << "seed = " << params.seed << '\n';
  out << "initial_samples = " << params.initial_samples << '\n';
  out << "balancing = " << encode_double(params.balancing) << '\n';
  out << "vertex_diameter = " << state.vertex_diameter << '\n';
  out << "omega = " << state.context.omega << '\n';
  out << "context_initial_samples = " << state.context.initial_samples << '\n';
  out << "predicted_tau = "
      << encode_double(state.context.calibration.predicted_tau) << '\n';
  out << "sample_seconds = " << encode_double(state.sample_seconds) << '\n';
  out << "touched_words_per_sample = "
      << encode_double(state.touched_words_per_sample) << '\n';
  const std::vector<double>& delta_l = state.context.calibration.delta_l;
  const std::vector<double>& delta_u = state.context.calibration.delta_u;
  out << "num_vertices = " << delta_l.size() << '\n';
  out << "delta_l =";
  for (const double value : delta_l) out << ' ' << encode_double(value);
  out << '\n';
  out << "delta_u =";
  for (const double value : delta_u) out << ' ' << encode_double(value);
  out << '\n';

  std::ofstream file(path);
  if (!file) return false;
  file << out.str();
  if (!file) return false;
  file.close();
  evict();
  return true;
}

void WarmStore::evict() const {
  if (max_entries_ == 0 && max_bytes_ == 0) return;

  struct Stored {
    std::filesystem::file_time_type mtime;
    std::string path;
    std::uint64_t bytes = 0;
  };
  std::error_code ec;
  std::filesystem::directory_iterator it(version_dir(), ec);
  if (ec) return;
  std::vector<Stored> stored;
  std::uint64_t total_bytes = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    // Only .warm states are capped; the handful of per-shape .tune
    // profiles is bounded by construction.
    if (name.rfind("bc_", 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".warm") continue;
    Stored file{entry.last_write_time(ec), entry.path().string(),
                entry.file_size(ec)};
    if (ec) continue;
    total_bytes += file.bytes;
    stored.push_back(std::move(file));
  }
  // Oldest writes go first; path breaks mtime ties so the pass is
  // deterministic on coarse-granularity filesystems.
  std::sort(stored.begin(), stored.end(), [](const Stored& a,
                                             const Stored& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  std::size_t remaining = stored.size();
  for (const Stored& file : stored) {
    const bool over_count = max_entries_ != 0 && remaining > max_entries_;
    const bool over_bytes = max_bytes_ != 0 && total_bytes > max_bytes_;
    if (!over_count && !over_bytes) break;
    if (std::filesystem::remove(file.path, ec); ec) continue;
    --remaining;
    total_bytes -= file.bytes;
  }
}

std::vector<std::shared_ptr<const bc::KadabraWarmState>> WarmStore::load_all(
    std::uint64_t graph_fingerprint) const {
  std::vector<std::shared_ptr<const bc::KadabraWarmState>> states;
  if (!enabled() || graph_fingerprint == 0) return states;

  std::error_code ec;
  std::filesystem::directory_iterator it(version_dir(), ec);
  if (ec) return states;  // store never written yet

  const std::string prefix = "bc_" + hex16(graph_fingerprint) + "_";
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".warm") continue;
    paths.push_back(entry.path().string());
  }
  // Deterministic load order regardless of directory enumeration order.
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    auto state = parse_state(path, graph_fingerprint);
    if (state != nullptr) states.push_back(std::move(state));
  }
  return states;
}

bool WarmStore::save_profile(const tune::TuningProfile& profile) const {
  if (!enabled()) return false;
  std::error_code ec;
  std::filesystem::create_directories(version_dir(), ec);
  if (ec) return false;
  const tune::ClusterShape& shape = profile.shape;
  const std::string path = version_dir() + "/profile_" +
                           std::to_string(shape.num_ranks) + "x" +
                           std::to_string(shape.ranks_per_node) + "x" +
                           std::to_string(shape.threads_per_rank) + ".tune";
  return profile.save(path);
}

std::optional<tune::TuningProfile> WarmStore::load_profile(
    const tune::ClusterShape& shape) const {
  if (!enabled()) return std::nullopt;
  const std::string path = version_dir() + "/profile_" +
                           std::to_string(shape.num_ranks) + "x" +
                           std::to_string(shape.ranks_per_node) + "x" +
                           std::to_string(shape.threads_per_rank) + ".tune";
  auto profile = tune::TuningProfile::load(path);
  // A profile stored for one shape must describe that shape; a mismatch
  // means a foreign file and is treated as a miss.
  if (profile.has_value() && !(profile->shape == shape)) return std::nullopt;
  return profile;
}

}  // namespace distbc::service
