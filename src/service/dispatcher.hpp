// service::Dispatcher - one entry point over many bound graphs, with
// admission control and weighted fair scheduling across tenants.
//
// The dispatcher shards queries by graph_id to per-graph SessionPools and
// decides WHO runs next; the pools decide nothing (plain FIFO workers).
// To keep the fairness decision authoritative, the dispatcher forwards at
// most pool-size queries per pool at a time (one per replica): the pool's
// internal queue then never holds a backlog that could reorder what the
// scheduler decided. Everything else waits in the FairScheduler under the
// dispatcher's admission cap.
//
// Admission is typed, not exceptional: an unknown graph_id or a full
// queue (Config of the target pool is irrelevant - the dispatcher's
// `queue_capacity` bounds TOTAL pending queries) fulfills the ticket
// immediately with an error Status, so callers distinguish overload from
// failure without string matching... the two canonical messages are
// "unknown graph id '...'" and "service queue full".
//
// pause()/resume() gate forwarding only - submissions still enqueue - so
// tests and the bench can build a deterministic backlog and release it at
// once (under backlog, dispatch order is a pure function of the
// submission history; see scheduler.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/session.hpp"
#include "dynamic/dynamic_state.hpp"
#include "dynamic/edge_batch.hpp"
#include "service/scheduler.hpp"
#include "service/session_pool.hpp"
#include "service/ticket.hpp"

namespace distbc::service {

/// One query addressed to one bound graph on behalf of one tenant.
struct Request {
  std::string tenant;
  std::string graph_id;
  api::Query query;
};

struct DispatcherStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_unknown_graph = 0;
  std::uint64_t rejected_queue_full = 0;
  /// Queries currently forwarded to pools (at most pool-size per graph).
  std::uint64_t in_flight = 0;
  /// Queries waiting in the fair scheduler.
  std::uint64_t scheduled = 0;
  /// Edge batches applied through apply().
  std::uint64_t applies = 0;
  /// Submissions rejected because their graph was mid-apply.
  std::uint64_t rejected_mutating = 0;
};

class Dispatcher {
 public:
  /// `queue_capacity` bounds the TOTAL scheduled-but-not-forwarded
  /// queries across all graphs and tenants (0 = use the first bound
  /// config's service_queue_capacity).
  explicit Dispatcher(std::uint64_t queue_capacity = 0);

  /// Resumes, drains, and tears the pools down.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Binds `graph_id` to a new SessionPool over `graph` with `config`.
  /// Rebinding an existing id or a pool that fails construction is an
  /// error.
  [[nodiscard]] api::Status bind(const std::string& graph_id,
                                 std::shared_ptr<const graph::Graph> graph,
                                 const api::Config& config);

  /// Weighted fair share under backlog (default 1; must be positive).
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Asynchronous submission; the ticket resolves with the result or a
  /// typed admission rejection.
  [[nodiscard]] Ticket submit(Request request);

  /// Gates forwarding to the pools (submissions still enqueue).
  void pause();
  void resume();

  /// Blocks until every admitted query has completed.
  void drain();

  /// Applies one edge batch to `graph_id`'s pool: new submissions routed
  /// to that graph are rejected with a typed Status ("graph ... is
  /// mid-apply") while the apply is pending, the shard's in-flight
  /// queries drain first, then the batch goes through SessionPool::apply.
  /// Other graphs keep serving throughout. Unknown ids reject typed.
  [[nodiscard]] dynamic::ApplyReport apply(const std::string& graph_id,
                                           dynamic::EdgeBatch batch);

  [[nodiscard]] DispatcherStats stats() const;
  [[nodiscard]] const SessionPool* pool(const std::string& graph_id) const;

 private:
  struct Pending {
    Request request;
    Ticket ticket;
    WallTimer queued;
  };
  struct Shard {
    std::unique_ptr<SessionPool> pool;
    int in_flight = 0;
    /// Pending apply() calls targeting this shard (a counter, not a flag:
    /// concurrent applies on one graph must keep the shard closed until
    /// the LAST one finishes). While positive, submit() rejects requests
    /// to this graph and pump() stops forwarding its scheduled work.
    int mutating = 0;
  };

  /// Forwards scheduler picks into pools with free replica slots. Caller
  /// holds mutex_.
  void pump();
  void on_complete(const std::string& graph_id, Response response,
                   const Ticket& ticket, double scheduler_seconds);

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<std::string, Shard> shards_;
  FairScheduler scheduler_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t queue_capacity_ = 0;
  bool paused_ = false;
  DispatcherStats stats_;
};

}  // namespace distbc::service
