// service::WarmStore - persistent on-disk store of KADABRA warm state and
// tuning profiles, so a service restart pays zero recalibration.
//
// Layout (everything under one root directory, versioned so a format
// change never misreads old files - unknown versions are skipped, not
// errors):
//
//   <root>/v1/bc_<graph_fp>_<key_hash>.warm     one KadabraWarmState
//   <root>/v1/profile_<R>x<N>x<T>.tune          one tune::TuningProfile
//
// <graph_fp> is graph::fingerprint (16 hex digits); <key_hash> hashes the
// statistical parameters AND the cluster shape the state was calibrated
// on, so the same graph stores one file per (params, shape) combination
// and a shape change naturally misses instead of loading a stale state.
// Profile files are keyed by shape alone (ranks x ranks_per_node x
// threads_per_rank) - tuning is graph-independent.
//
// Files are plain "key = value" text; doubles are written as C hexfloats
// ("%a") so every bit round-trips and a reloaded calibration is the
// calibration that was saved - bitwise, which is what lets a warm-started
// deterministic run reproduce the original run exactly.
//
// Saving requires provenance (KadabraWarmState::graph_fingerprint and
// ranks populated by a fresh calibration); states without it are refused
// rather than stored unverifiable. Loading validates internal consistency
// (vector sizes, fingerprint match with the file name) and skips - never
// aborts on - damaged or foreign files. WarmStore itself is stateless
// between calls and safe to share across threads for reads; concurrent
// saves of the same key last-write-win (the content is identical by
// construction).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bc/kadabra.hpp"
#include "tune/tuner.hpp"

namespace distbc::service {

class WarmStore {
 public:
  /// Binds the store to `root` (created on first save). An empty root
  /// disables the store: saves report false, loads report nothing.
  /// `max_entries` / `max_bytes` cap the persisted .warm files per version
  /// directory (0 = unbounded); every successful save evicts
  /// oldest-by-mtime files until both caps hold again, so the store is a
  /// bounded LRU-by-write of calibrations instead of growing forever.
  explicit WarmStore(std::string root, std::uint64_t max_entries = 0,
                     std::uint64_t max_bytes = 0);

  [[nodiscard]] bool enabled() const { return !root_.empty(); }
  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::uint64_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t max_bytes() const { return max_bytes_; }

  /// Persists one warm state. Returns false when the store is disabled,
  /// the state lacks provenance, or the write fails. A successful save
  /// runs the eviction pass (see the constructor).
  [[nodiscard]] bool save(const bc::KadabraWarmState& state) const;

  /// Loads every stored state of `graph_fingerprint`, any shape and any
  /// parameters - the caller (SessionPool via Session::preload_calibration)
  /// validates shape compatibility per state. Damaged files are skipped.
  [[nodiscard]] std::vector<std::shared_ptr<const bc::KadabraWarmState>>
  load_all(std::uint64_t graph_fingerprint) const;

  /// Persists / loads the tuning profile of one cluster shape.
  [[nodiscard]] bool save_profile(const tune::TuningProfile& profile) const;
  [[nodiscard]] std::optional<tune::TuningProfile> load_profile(
      const tune::ClusterShape& shape) const;

  /// The hash the .warm file name carries: statistical parameters + the
  /// calibrated cluster shape. Exposed for tests.
  [[nodiscard]] static std::uint64_t key_hash(const bc::KadabraWarmState& state);

  /// Full path a state would be stored at (empty when disabled/no
  /// provenance). Exposed for tests.
  [[nodiscard]] std::string state_path(const bc::KadabraWarmState& state) const;

 private:
  [[nodiscard]] std::string version_dir() const;
  void evict() const;

  std::string root_;
  std::uint64_t max_entries_ = 0;
  std::uint64_t max_bytes_ = 0;
};

}  // namespace distbc::service
