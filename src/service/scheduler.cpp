#include "service/scheduler.hpp"

#include "support/assert.hpp"

namespace distbc::service {

void FairScheduler::set_weight(const std::string& tenant, double weight) {
  DISTBC_ASSERT_MSG(weight > 0.0, "tenant weight must be positive");
  tenants_[tenant].weight = weight;
}

void FairScheduler::push(const std::string& tenant,
                         const std::string& graph_id, std::uint64_t handle) {
  Tenant& state = tenants_[tenant];
  if (state.queued == 0) {
    // Waking from idle: re-base onto the global pass so the time spent
    // idle earns no retroactive credit.
    if (global_pass_ > state.pass) state.pass = global_pass_;
  }
  state.queues[graph_id].push_back(handle);
  ++state.queued;
  ++pending_;
}

std::optional<std::uint64_t> FairScheduler::pop(const std::string& graph_id) {
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    const auto queue = tenant.queues.find(graph_id);
    if (queue == tenant.queues.end() || queue->second.empty()) continue;
    // Smallest (pass, name); map iteration is name-ordered, so strict <
    // on pass keeps the earlier name on ties.
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  if (best == nullptr) return std::nullopt;

  std::deque<std::uint64_t>& queue = best->queues[graph_id];
  const std::uint64_t handle = queue.front();
  queue.pop_front();
  --best->queued;
  --pending_;
  global_pass_ = best->pass;
  best->pass += 1.0 / best->weight;
  return handle;
}

std::size_t FairScheduler::pending(const std::string& graph_id) const {
  std::size_t count = 0;
  for (const auto& [name, tenant] : tenants_) {
    const auto queue = tenant.queues.find(graph_id);
    if (queue != tenant.queues.end()) count += queue->second.size();
  }
  return count;
}

}  // namespace distbc::service
