// Generic epoch-based MPI adaptive-sampling driver.
//
// The paper's conclusion: "In future work, we would like to apply our
// method to other adaptive sampling algorithms. We expect the necessary
// changes to be small." This header delivers that generalization: the
// KADABRA-specific pieces of Algorithm 2 (the state-frame layout, the
// sampling kernel, the stopping rule) become template parameters, while the
// parallelization machinery - per-thread wait-free frames, epoch
// transitions, the Ibarrier + blocking-Reduce aggregation, the overlapped
// termination broadcast - is reused verbatim.
//
// Requirements on Frame:
//   Frame(const Frame&)            - copyable prototype construction
//   void clear()
//   void merge(const Frame&)
//   std::span<std::uint64_t> raw() - flat aggregation view; merge must be
//                                    equivalent to elementwise sum of raw()
// Requirements on the sampler factory: Sampler make(global_thread_index),
// where Sampler provides void sample(Frame&). Requirements on the stop
// functor (evaluated at world rank 0 only, on a consistent aggregate):
// bool operator()(const Frame&).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "epoch/epoch_manager.hpp"
#include "mpisim/comm.hpp"
#include "support/timer.hpp"

namespace distbc::adaptive {

struct DriverOptions {
  int threads_per_rank = 1;
  /// Total samples per epoch across all threads: base * (PT)^exponent.
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
  /// Hard cap on epochs (safety net for never-converging stop rules).
  std::uint64_t max_epochs = 1u << 20;
};

template <typename Frame>
struct DriverResult {
  Frame aggregate;  // consistent final state (valid at world rank 0)
  std::uint64_t epochs = 0;
  std::uint64_t samples_attempted = 0;  // all ranks (valid at rank 0)
  PhaseTimer phases;
  double total_seconds = 0.0;
};

template <typename Frame, typename MakeSampler, typename StopFn>
DriverResult<Frame> run_epoch_mpi(mpisim::Comm& world, const Frame& prototype,
                                  MakeSampler&& make_sampler,
                                  StopFn&& should_stop,
                                  const DriverOptions& options) {
  DISTBC_ASSERT(options.threads_per_rank >= 1);
  WallTimer total_timer;
  DriverResult<Frame> result{prototype};
  result.aggregate.clear();

  const int num_ranks = world.size();
  const int num_threads = options.threads_per_rank;
  const int rank = world.rank();
  const bool is_root = rank == 0;
  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(num_ranks) * num_threads;
  const std::uint64_t n0 = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(options.epoch_base) *
             std::pow(static_cast<double>(total_threads),
                      options.epoch_exponent)) /
             total_threads);

  epoch::EpochManager<Frame> manager(num_threads, prototype);
  std::vector<std::uint64_t> taken(num_threads, 0);

  auto sampler_main = [&](int t) {
    auto sampler =
        make_sampler(static_cast<std::uint64_t>(rank) * num_threads + t);
    std::uint32_t epoch = 0;
    std::uint64_t count = 0;
    while (!manager.stopped()) {
      sampler.sample(manager.frame(t, epoch));
      ++count;
      if (manager.check_transition(t, epoch)) ++epoch;
    }
    taken[t] = count;
  };
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) workers.emplace_back(sampler_main, t);

  {
    auto sampler =
        make_sampler(static_cast<std::uint64_t>(rank) * num_threads);
    Frame snapshot(prototype);
    Frame epoch_agg(prototype);
    std::uint8_t done_flag = 0;
    std::uint32_t epoch = 0;
    std::uint64_t count = 0;

    auto overlap_sample = [&] {
      sampler.sample(manager.frame(0, epoch + 1));
      ++count;
    };

    while (true) {
      result.phases.timed(Phase::kSampling, [&] {
        for (std::uint64_t i = 0; i < n0; ++i) {
          sampler.sample(manager.frame(0, epoch));
          ++count;
        }
      });
      result.phases.timed(Phase::kEpochTransition, [&] {
        manager.force_transition(epoch);
        while (!manager.transition_done(epoch)) overlap_sample();
      });
      snapshot.clear();
      manager.collect(epoch, snapshot);

      result.phases.timed(Phase::kBarrier, [&] {
        mpisim::Request barrier = world.ibarrier();
        while (!barrier.test()) overlap_sample();
      });
      result.phases.timed(Phase::kReduction, [&] {
        world.reduce(std::span<const std::uint64_t>(snapshot.raw()),
                     epoch_agg.raw(), 0);
      });
      if (is_root) {
        result.aggregate.merge(epoch_agg);
        done_flag = result.phases.timed(Phase::kStopCheck, [&] {
          return should_stop(
                     static_cast<const Frame&>(result.aggregate)) ||
                         result.epochs + 1 >= options.max_epochs
                     ? 1
                     : 0;
        });
      }
      result.phases.timed(Phase::kBroadcast, [&] {
        mpisim::Request bcast = world.ibcast(std::span{&done_flag, 1}, 0);
        while (!bcast.test()) overlap_sample();
      });

      ++result.epochs;
      if (done_flag != 0) {
        manager.signal_stop();
        break;
      }
      ++epoch;
    }
    taken[0] = count;
  }
  for (auto& worker : workers) worker.join();

  std::uint64_t local_taken = 0;
  for (const std::uint64_t t : taken) local_taken += t;
  std::uint64_t world_taken = 0;
  world.reduce(std::span<const std::uint64_t>(&local_taken, 1),
               std::span{&world_taken, 1}, 0);
  result.samples_attempted = is_root ? world_taken : local_taken;
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace distbc::adaptive
