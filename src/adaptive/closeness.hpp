// Adaptive estimation of harmonic closeness centrality for all vertices -
// a third algorithm on the unified epoch-sampling engine, with a
// *per-vertex* stopping rule like KADABRA's (in contrast to the scalar rule
// of mean_distance), demonstrating that the framework accommodates both.
//
// Estimator (Eppstein-Wang style): sample a uniform source s, run one BFS,
// and credit every vertex v with 1 / d(s, v). The expectation of the credit
// at v is its normalized harmonic closeness
//   h(v) = (1/(n-1)) sum_{u != v} 1 / d(u, v)
// up to the n/(n-1) sampling factor handled at extraction. Credits and
// their squares are accumulated in fixed-point (2^-20) so frames stay flat
// uint64 arrays and aggregate by elementwise sum, exactly like betweenness
// state frames. Stopping is adaptive: for each vertex the tighter of the
// Hoeffding radius (credits lie in [0, 1]) and the empirical-Bernstein
// radius (which exploits the observed per-vertex variance) must drop below
// epsilon - low-variance vertices release the condition long before the
// worst-case bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/substrate.hpp"
#include "engine/engine.hpp"
#include "epoch/frame_codec.hpp"
#include "graph/graph.hpp"

namespace distbc::tune {
struct TuningProfile;  // tune/tuner.hpp
}

namespace distbc::adaptive {

/// Flat frame layout: [credit sums (n) | squared-credit sums (n) | sources].
/// A BFS source reaches every vertex of the (connected) graph, so these
/// frames are dense by nature; the wire-image interface below exists for
/// the representation-agnostic engine path (kAuto densifies immediately).
class ClosenessFrame {
 public:
  static constexpr double kFixedPointOne = 1048576.0;  // 2^20

  ClosenessFrame() = default;
  explicit ClosenessFrame(std::uint32_t num_vertices)
      : data_(2 * static_cast<std::size_t>(num_vertices) + 1, 0),
        num_vertices_(num_vertices) {}

  void clear() { std::fill(data_.begin(), data_.end(), 0); }
  /// A frame with no finished sources holds no credits (samples complete
  /// before frames are merged), so idle frames skip the O(n) sweep.
  [[nodiscard]] bool empty() const { return sources() == 0; }
  void merge(const ClosenessFrame& other) {
    if (other.empty()) return;
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }
  [[nodiscard]] std::span<std::uint64_t> raw() { return data_; }

  // --- Wire-image interface (epoch/frame_codec.hpp) ----------------------
  [[nodiscard]] std::size_t dense_words() const { return data_.size(); }
  epoch::FrameRep encode(std::vector<std::uint64_t>& out,
                         epoch::FrameRep preference) const {
    if (preference != epoch::FrameRep::kSparse) {
      // kAuto: credits are dense after any source; skip the pair scan.
      epoch::append_dense_image(data_, out);
      return epoch::FrameRep::kDense;
    }
    epoch::append_sparse_image_scan(data_, out);
    return epoch::FrameRep::kSparse;
  }
  void decode_add(std::span<const std::uint64_t> image) {
    epoch::decode_add_image(std::span<std::uint64_t>(data_), image);
  }
  void add_dense(std::span<const std::uint64_t> dense) {
    DISTBC_ASSERT(dense.size() == data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += dense[i];
  }

  /// Adds the credit 1 / distance for one (source, v) observation.
  void add_credit(std::uint32_t v, double credit) {
    const auto fixed =
        static_cast<std::uint64_t>(credit * kFixedPointOne);
    data_[v] += fixed;
    data_[num_vertices_ + v] +=
        static_cast<std::uint64_t>(credit * credit * kFixedPointOne);
  }
  void finish_source() { ++data_[2 * num_vertices_]; }

  [[nodiscard]] std::uint64_t sources() const {
    return data_[2 * num_vertices_];
  }
  [[nodiscard]] double credit_sum(std::uint32_t v) const {
    return static_cast<double>(data_[v]) / kFixedPointOne;
  }
  [[nodiscard]] double credit_sq_sum(std::uint32_t v) const {
    return static_cast<double>(data_[num_vertices_ + v]) / kFixedPointOne;
  }
  /// Biased per-vertex sample variance of the credit at v.
  [[nodiscard]] double variance(std::uint32_t v) const {
    const std::uint64_t n = sources();
    if (n < 2) return 0.25;  // worst case for a [0,1] variable
    const double mean = credit_sum(v) / static_cast<double>(n);
    return std::max(0.0,
                    credit_sq_sum(v) / static_cast<double>(n) - mean * mean);
  }
  [[nodiscard]] std::uint32_t num_vertices() const { return num_vertices_; }

 private:
  std::vector<std::uint64_t> data_;
  std::uint32_t num_vertices_ = 0;
};

struct ClosenessParams {
  double epsilon = 0.05;  // additive error on normalized harmonic closeness
  double delta = 0.1;
  std::uint64_t seed = 0x5eed;
  /// Epoch-engine configuration: threads per rank, aggregation strategy
  /// (§IV-F), hierarchical reduction (§IV-E), epoch-length rule - the
  /// same knobs as the KADABRA backends, for free via the shared engine.
  engine::EngineOptions engine;
  /// Autotune path: when set, the profile decides aggregation strategy,
  /// hierarchical reduction, threads per rank, and epoch sizing (against a
  /// quick per-sample BFS cost probe) instead of the fields in `engine`.
  std::shared_ptr<const tune::TuningProfile> auto_tune;
  /// Skip the rank-0 connectivity assertion: the caller (api::Session)
  /// already validated it and turned failure into a status instead of an
  /// abort.
  bool assume_connected = false;
};

struct ClosenessResult {
  std::vector<double> scores;  // normalized harmonic closeness estimates
  std::uint64_t samples = 0;   // BFS sources taken
  std::uint64_t epochs = 0;
  double total_seconds = 0.0;
  /// Engine phase windows and per-collective bytes moved (valid at world
  /// rank 0, like scores) - the same observability surface BcResult has,
  /// feeding the unified api::Result.
  PhaseTimer phases;
  comm::CommVolume comm_volume;
  /// Engine configuration the run actually used (after autotuning).
  engine::EngineOptions engine_used;
  /// The comm substrate the run executed on (comm::substrate_name value).
  std::string substrate_used;

  [[nodiscard]] std::vector<graph::Vertex> top_k(std::size_t k) const;
};

/// Worst-case (Hoeffding) source count after which the rule must fire;
/// exposed for tests.
[[nodiscard]] std::uint64_t closeness_sample_bound(std::uint32_t num_vertices,
                                                   double epsilon,
                                                   double delta);

/// Per-rank driver (result valid at world rank 0); connected graphs only.
[[nodiscard]] ClosenessResult closeness_rank(const graph::Graph& graph,
                                             const ClosenessParams& params,
                                             comm::Substrate& world);

[[nodiscard]] ClosenessResult closeness_mpi(const graph::Graph& graph,
                                            const ClosenessParams& params,
                                            int num_ranks,
                                            int ranks_per_node = 1,
                                            comm::NetworkModel network = {});

}  // namespace distbc::adaptive
