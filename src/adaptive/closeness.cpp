#include "adaptive/closeness.hpp"

#include <cmath>

#include "api/session.hpp"
#include "engine/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "support/random.hpp"
#include "tune/tuner.hpp"

namespace distbc::adaptive {

std::vector<graph::Vertex> ClosenessResult::top_k(std::size_t k) const {
  std::vector<graph::Vertex> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<graph::Vertex>(i);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](graph::Vertex a, graph::Vertex b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::uint64_t closeness_sample_bound(std::uint32_t num_vertices,
                                     double epsilon, double delta) {
  // Hoeffding + union bound over all vertices: tau >= ln(2n/delta)/(2 eps^2).
  return static_cast<std::uint64_t>(
      std::ceil(std::log(2.0 * num_vertices / delta) /
                (2.0 * epsilon * epsilon)));
}

namespace {

/// One sample: a full BFS from a uniform source, crediting 1/d to every
/// reached vertex.
class SourceSampler {
 public:
  SourceSampler(const graph::Graph& graph, Rng rng)
      : graph_(&graph), ws_(graph.num_vertices()), rng_(rng) {}

  void sample(ClosenessFrame& frame) {
    const auto source = static_cast<graph::Vertex>(
        rng_.next_bounded(graph_->num_vertices()));
    graph::bfs(*graph_, source, ws_);
    for (const graph::Vertex v : ws_.queue()) {
      if (v == source) continue;
      frame.add_credit(v, 1.0 / static_cast<double>(ws_.dist(v)));
    }
    frame.finish_source();
  }

 private:
  const graph::Graph* graph_;
  graph::BfsWorkspace ws_;
  Rng rng_;
};

}  // namespace

ClosenessResult closeness_rank(const graph::Graph& graph,
                               const ClosenessParams& params,
                               comm::Substrate& world) {
  const graph::Vertex n = graph.num_vertices();
  DISTBC_ASSERT(n >= 2);
  const bool is_root = world.rank() == 0;
  if (is_root && !params.assume_connected) {
    DISTBC_ASSERT_MSG(graph::is_connected(graph),
                      "closeness_mpi requires a connected graph");
  }

  const double log_bernstein =
      std::log(3.0 * static_cast<double>(n) / params.delta);
  const double hoeffding_radius_log =
      std::log(2.0 * static_cast<double>(n) / params.delta) / 2.0;

  auto make_sampler = [&](std::uint64_t stream) {
    return SourceSampler(graph, Rng(params.seed).split(stream));
  };
  auto should_stop = [&](const ClosenessFrame& aggregate) {
    const std::uint64_t tau = aggregate.sources();
    if (tau < 2) return false;
    const auto tau_d = static_cast<double>(tau);
    const double hoeffding = std::sqrt(hoeffding_radius_log / tau_d);
    if (hoeffding <= params.epsilon) return true;  // global worst case
    for (graph::Vertex v = 0; v < n; ++v) {
      const double bernstein =
          std::sqrt(2.0 * aggregate.variance(v) * log_bernstein / tau_d) +
          3.0 * log_bernstein / tau_d;
      if (std::min(hoeffding, bernstein) > params.epsilon) return false;
    }
    return true;
  };

  // First-stop-check clamp mirroring KADABRA's omega/2 rule: the Hoeffding
  // worst case bounds the useful sample count, so an epoch must never run
  // past a fraction of it or easy (low-variance) instances overshoot the
  // adaptive stopping point before the first check.
  engine::EngineOptions options = params.engine;
  if (params.auto_tune != nullptr) {
    ClosenessFrame probe(n);  // one O(n) frame serves size query and probe
    tune::TuneRequest request;
    request.frame_words = probe.raw().size();
    // A BFS source credits every vertex: samples write the whole frame, so
    // the tuner's frame_rep decision resolves to dense.
    request.touched_words_per_sample =
        static_cast<double>(probe.raw().size());
    request.sample_seconds = tune::measure_sample_seconds(probe, make_sampler);
    // All ranks must agree on the tuned epoch schedule.
    world.bcast(std::span{&request.sample_seconds, 1}, 0);
    request.base = options;
    options = tune::tuned_options(*params.auto_tune, request);
  }
  options.max_epoch_length = engine::paced_epoch_cap(
      closeness_sample_bound(n, params.epsilon, params.delta),
      /*budget_fraction=*/8, /*min_epoch_length=*/1,
      options.max_epoch_length);

  auto driver_result = engine::run_epochs(&world, ClosenessFrame(n),
                                          make_sampler, should_stop, options);

  ClosenessResult result;
  result.epochs = driver_result.epochs;
  result.total_seconds = driver_result.total_seconds;
  result.engine_used = options;
  result.substrate_used = world.name();
  if (is_root) {
    result.phases = driver_result.phases;
    result.comm_volume = driver_result.comm_volume;
    const ClosenessFrame& frame = driver_result.aggregate;
    result.samples = frame.sources();
    result.scores.resize(n);
    // E[credit at v] = ((n-1)/n) h(v); correct by n/(n-1).
    const double correction = static_cast<double>(n) / (n - 1.0);
    for (graph::Vertex v = 0; v < n; ++v) {
      result.scores[v] = frame.credit_sum(v) /
                         static_cast<double>(frame.sources()) * correction;
    }
  }
  return result;
}

ClosenessResult closeness_mpi(const graph::Graph& graph,
                              const ClosenessParams& params, int num_ranks,
                              int ranks_per_node,
                              comm::NetworkModel network) {
  // Compatibility layer: one-shot api::Session owning the cluster
  // lifecycle; the session binds the caller's graph without copying it.
  api::Config config;
  config.ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  api::Session session(
      std::shared_ptr<const graph::Graph>(&graph, [](const graph::Graph*) {}),
      std::move(config));
  return session.closeness(params);
}

}  // namespace distbc::adaptive
