// Adaptive estimation of a graph's mean shortest-path distance - the
// "other adaptive sampling algorithm" demonstrating the generic driver
// (paper's future-work claim).
//
// Samples uniform vertex pairs, measures d(s, t) with the same
// bidirectional BFS the betweenness sampler uses, and stops once the
// empirical-Bernstein confidence interval (Maurer & Pontil 2009) of the
// mean is tighter than epsilon:
//   hw(n) = sqrt(2 V_n ln(3/delta) / n) + 3 R ln(3/delta) / n <= epsilon,
// with V_n the sample variance and R an upper bound on the distance range
// (a cheap 2-approximate diameter). Everything else - wait-free per-thread
// frames, overlapped epoch transitions and reductions, selectable
// aggregation strategies, hierarchical reduction, rank-0 stop checks -
// comes from engine::run_epochs unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/substrate.hpp"
#include "engine/engine.hpp"
#include "epoch/frame_codec.hpp"
#include "graph/graph.hpp"
#include "support/timer.hpp"

namespace distbc::tune {
struct TuningProfile;  // tune/tuner.hpp
}

namespace distbc::adaptive {

/// Flat moment accumulator: [pair count, sum of d, sum of d^2]. Three
/// words never benefit from a sparse encoding, but the wire-image
/// interface keeps the frame eligible for the representation-agnostic
/// engine path (kAuto always densifies).
class MomentFrame {
 public:
  MomentFrame() : data_(3, 0) {}

  void clear() { std::fill(data_.begin(), data_.end(), 0); }
  [[nodiscard]] bool empty() const { return count() == 0; }
  void merge(const MomentFrame& other) {
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }
  [[nodiscard]] std::span<std::uint64_t> raw() { return data_; }
  [[nodiscard]] std::span<const std::uint64_t> raw() const { return data_; }

  // --- Wire-image interface (epoch/frame_codec.hpp) ----------------------
  [[nodiscard]] std::size_t dense_words() const { return data_.size(); }
  epoch::FrameRep encode(std::vector<std::uint64_t>& out,
                         epoch::FrameRep preference) const {
    if (preference == epoch::FrameRep::kSparse) {
      epoch::append_sparse_image_scan(data_, out);
      return epoch::FrameRep::kSparse;
    }
    epoch::append_dense_image(data_, out);
    return epoch::FrameRep::kDense;
  }
  void decode_add(std::span<const std::uint64_t> image) {
    epoch::decode_add_image(std::span<std::uint64_t>(data_), image);
  }
  void add_dense(std::span<const std::uint64_t> dense) {
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += dense[i];
  }

  void record(std::uint32_t distance) {
    data_[0] += 1;
    data_[1] += distance;
    data_[2] += static_cast<std::uint64_t>(distance) * distance;
  }

  [[nodiscard]] std::uint64_t count() const { return data_[0]; }
  [[nodiscard]] double mean() const {
    return count() == 0 ? 0.0
                        : static_cast<double>(data_[1]) /
                              static_cast<double>(data_[0]);
  }
  /// Unbiased sample variance (0 while fewer than two samples).
  [[nodiscard]] double variance() const;

 private:
  std::vector<std::uint64_t> data_;
};

struct MeanDistanceParams {
  double epsilon = 0.1;  // absolute half-width target, in hops
  double delta = 0.1;
  std::uint64_t seed = 0x5eed;
  /// Epoch-engine configuration (threads, §IV-F aggregation strategy,
  /// §IV-E hierarchical reduction, epoch-length rule).
  engine::EngineOptions engine;
  /// Autotune path: when set, the profile decides aggregation strategy,
  /// hierarchical reduction, threads per rank, and epoch sizing (against a
  /// quick per-sample probe) instead of the fields in `engine`.
  std::shared_ptr<const tune::TuningProfile> auto_tune;
  /// Distance-range upper bound for the Bernstein term; 0 = compute the
  /// 2-approximate diameter at rank 0 (and report it in
  /// MeanDistanceResult::range). api::Session feeds the reported value
  /// back so repeated queries skip the diameter probe.
  std::uint32_t known_range = 0;
  /// Skip the rank-0 connectivity assertion: the caller (api::Session)
  /// already validated it and turned failure into a status instead of an
  /// abort.
  bool assume_connected = false;
};

struct MeanDistanceResult {
  double mean = 0.0;
  double stddev = 0.0;
  double half_width = 0.0;   // final confidence half-width
  std::uint64_t samples = 0;
  std::uint64_t epochs = 0;
  std::uint32_t range = 0;   // the distance-range bound the run used
  double total_seconds = 0.0;
  /// Engine phase windows and per-collective bytes moved (valid at world
  /// rank 0) - the same observability surface BcResult has, feeding the
  /// unified api::Result.
  PhaseTimer phases;
  comm::CommVolume comm_volume;
  /// Engine configuration the run actually used (after autotuning).
  engine::EngineOptions engine_used;
  /// The comm substrate the run executed on (comm::substrate_name value).
  std::string substrate_used;
};

/// Empirical-Bernstein half-width; exposed for tests.
[[nodiscard]] double bernstein_half_width(double variance, double range,
                                          double delta, std::uint64_t n);

/// Per-rank driver; run inside mpisim::Runtime::run on every rank.
/// Result fields are valid at world rank 0. Requires a connected graph.
[[nodiscard]] MeanDistanceResult mean_distance_rank(
    const graph::Graph& graph, const MeanDistanceParams& params,
    comm::Substrate& world);

/// Convenience wrapper over a fresh simulated cluster.
[[nodiscard]] MeanDistanceResult mean_distance_mpi(
    const graph::Graph& graph, const MeanDistanceParams& params,
    int num_ranks, int ranks_per_node = 1, comm::NetworkModel network = {});

}  // namespace distbc::adaptive
