#include "adaptive/mean_distance.hpp"

#include <cmath>

#include "api/session.hpp"
#include "engine/engine.hpp"
#include "graph/bidirectional_bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "support/random.hpp"
#include "tune/tuner.hpp"

namespace distbc::adaptive {

double MomentFrame::variance() const {
  const std::uint64_t n = count();
  if (n < 2) return 0.0;
  const double mean_value = mean();
  const double raw_second =
      static_cast<double>(data_[2]) / static_cast<double>(n);
  const double biased = raw_second - mean_value * mean_value;
  return std::max(0.0, biased * static_cast<double>(n) /
                           static_cast<double>(n - 1));
}

double bernstein_half_width(double variance, double range, double delta,
                            std::uint64_t n) {
  DISTBC_ASSERT(n > 0);
  const double log_term = std::log(3.0 / delta);
  return std::sqrt(2.0 * variance * log_term / static_cast<double>(n)) +
         3.0 * range * log_term / static_cast<double>(n);
}

namespace {

/// One sample: a uniform distinct pair's shortest-path distance.
class DistanceSampler {
 public:
  DistanceSampler(const graph::Graph& graph, Rng rng)
      : graph_(&graph), bfs_(graph.num_vertices()), rng_(rng) {}

  void sample(MomentFrame& frame) {
    const auto [s, t] = rng_.next_distinct_pair(graph_->num_vertices());
    const auto pair = bfs_.run(*graph_, static_cast<graph::Vertex>(s),
                               static_cast<graph::Vertex>(t));
    DISTBC_ASSERT_MSG(pair.connected,
                      "mean_distance requires a connected graph");
    frame.record(pair.distance);
  }

 private:
  const graph::Graph* graph_;
  graph::BidirectionalBfs bfs_;
  Rng rng_;
};

}  // namespace

MeanDistanceResult mean_distance_rank(const graph::Graph& graph,
                                      const MeanDistanceParams& params,
                                      comm::Substrate& world) {
  DISTBC_ASSERT(graph.num_vertices() >= 2);
  const bool is_root = world.rank() == 0;

  // Range bound for the Bernstein term: cheap 2-approximate diameter,
  // computed once at rank 0 and broadcast (mirrors KADABRA's phase 1) -
  // or reused from a previous run via params.known_range.
  std::uint32_t range = params.known_range;
  if (range == 0) {
    if (is_root) {
      DISTBC_ASSERT_MSG(params.assume_connected ||
                            graph::is_connected(graph),
                        "mean_distance requires a connected graph");
      range = graph::vertex_diameter(graph, /*exact=*/false);
    }
    world.bcast(std::span{&range, 1}, 0);
  }

  auto make_sampler = [&](std::uint64_t stream) {
    return DistanceSampler(graph, Rng(params.seed).split(stream));
  };
  auto should_stop = [&](const MomentFrame& aggregate) {
    const std::uint64_t n = aggregate.count();
    if (n < 2) return false;
    return bernstein_half_width(aggregate.variance(), range, params.delta,
                                n) <= params.epsilon;
  };

  engine::EngineOptions engine_options = params.engine;
  if (params.auto_tune != nullptr) {
    tune::TuneRequest request;
    request.frame_words = MomentFrame{}.raw().size();
    // Every sample writes all three moment words; a sparse image of three
    // slots is larger than the frame, so the tuner keeps dense.
    request.touched_words_per_sample = 3.0;
    request.sample_seconds =
        tune::measure_sample_seconds(MomentFrame{}, make_sampler);
    // All ranks must agree on the tuned epoch schedule.
    world.bcast(std::span{&request.sample_seconds, 1}, 0);
    request.base = engine_options;
    engine_options = tune::tuned_options(*params.auto_tune, request);
  }
  auto driver_result = engine::run_epochs(&world, MomentFrame{}, make_sampler,
                                          should_stop, engine_options);

  MeanDistanceResult result;
  result.epochs = driver_result.epochs;
  result.range = range;
  result.total_seconds = driver_result.total_seconds;
  result.engine_used = engine_options;
  result.substrate_used = world.name();
  if (is_root) {
    result.phases = driver_result.phases;
    result.comm_volume = driver_result.comm_volume;
    const MomentFrame& frame = driver_result.aggregate;
    result.mean = frame.mean();
    result.stddev = std::sqrt(frame.variance());
    result.samples = frame.count();
    result.half_width = bernstein_half_width(frame.variance(), range,
                                             params.delta, frame.count());
  }
  return result;
}

MeanDistanceResult mean_distance_mpi(const graph::Graph& graph,
                                     const MeanDistanceParams& params,
                                     int num_ranks, int ranks_per_node,
                                     comm::NetworkModel network) {
  // Compatibility layer: one-shot api::Session owning the cluster
  // lifecycle; the session binds the caller's graph without copying it.
  api::Config config;
  config.ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  api::Session session(
      std::shared_ptr<const graph::Graph>(&graph, [](const graph::Graph*) {}),
      std::move(config));
  return session.mean_distance(params);
}

}  // namespace distbc::adaptive
