#include "comm/substrate.hpp"

namespace distbc::comm {

const char* substrate_name(SubstrateKind kind) {
  switch (kind) {
    case SubstrateKind::kMpisim:
      return "mpisim";
    case SubstrateKind::kNcclsim:
      return "ncclsim";
  }
  return "?";
}

std::optional<SubstrateKind> substrate_from_name(std::string_view name) {
  if (name == "mpisim") return SubstrateKind::kMpisim;
  if (name == "ncclsim") return SubstrateKind::kNcclsim;
  return std::nullopt;
}

NetworkModel network_model_for(SubstrateKind kind, const NetworkModel& base) {
  if (kind == SubstrateKind::kMpisim) return base;
  NetworkModel model = base;
  // NVLink-like intra-node links: ~an order of magnitude more bandwidth
  // than the shared-memory MPI transport, with a somewhat higher latency
  // floor (device-side transfers).
  model.local_latency_s = 1e-6;
  model.local_bandwidth_bps = 200e9;
  // IB/RoCE-like inter-node links.
  model.remote_latency_s = 2.5e-6;
  model.remote_bandwidth_bps = 25e9;
  // A device-side progress engine: non-blocking collectives advance
  // without host polling, so no §IV-F progression penalty and free polls.
  model.ireduce_progression_factor = 1.0;
  model.ireduce_poll_cost_s = 0.0;
  // Every collective pays a kernel-launch latency before data moves.
  model.launch_latency_s = 3e-6;
  // All-reduces run the NCCL ring schedule.
  model.ring_allreduce = true;
  return model;
}

std::unique_ptr<Substrate> make_substrate(SubstrateKind kind,
                                          mpisim::Comm comm) {
  switch (kind) {
    case SubstrateKind::kNcclsim:
      return std::make_unique<NcclSimSubstrate>(std::move(comm));
    case SubstrateKind::kMpisim:
      break;
  }
  return std::make_unique<MpisimSubstrate>(std::move(comm));
}

}  // namespace distbc::comm
