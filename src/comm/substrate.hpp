// Substrate-neutral communication API (the engine's transport seam).
//
// comm::Substrate declares the collective surface the epoch engine
// actually uses - blocking/non-blocking reductions, the variable-length
// merge family (flat, radix-tree, decentralized all-merge), gathers,
// broadcasts, barriers, the window hook the hierarchical pre-reduction
// rides, and the stats snapshot - so the engine, drivers, and tuner speak
// one interface while the transport behind it is pluggable:
//
//   * MpisimSubstrate  - the simulated MPI stack (mpisim's slot protocol
//     and interconnect model), the paper's CPU/OmniPath setting;
//   * NcclSimSubstrate - a modeled NCCL-style GPU collective stack:
//     NVLink-like intra-node and IB-like inter-node links, ring
//     all-reduce pricing, no Ireduce progression penalty (a device-side
//     progress engine), but a kernel-launch latency on every collective.
//
// Both backends share mpisim's slot data plane, so the deterministic
// rank-order merge replay is common code and deterministic scores are
// bitwise identical across substrates - only the cost model (and hence
// modeled time, overlap behavior, and tuner-visible economics) differs.
// This is the library axis of the CommBench library x pattern matrix
// (bench/commbench_matrix.cpp); adding a real transport means deriving
// from Substrate, implementing the byte-level do_* plane, and teaching
// substrate_from_name/make_substrate about the new kind.
//
// The typed template methods mirror mpisim::Comm's documented semantics
// verbatim (eager sends, slot matching by per-handle call order, merge
// callables run under the communicator lock); see mpisim/comm.hpp for
// the full contracts.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "mpisim/comm.hpp"
#include "support/assert.hpp"

namespace distbc::comm {

// The wire-level vocabulary is shared with mpisim so results, stats, and
// request handles flow through unchanged regardless of backend.
using Request = mpisim::Request;
using ReduceOp = mpisim::ReduceOp;
using CommStats = mpisim::CommStats;
using CommVolume = mpisim::CommVolume;
using NetworkModel = mpisim::NetworkModel;

/// The selectable backends (api::Config key `comm_substrate`, env
/// `DISTBC_COMM_SUBSTRATE`).
enum class SubstrateKind : std::uint8_t { kMpisim, kNcclsim };

[[nodiscard]] const char* substrate_name(SubstrateKind kind);
[[nodiscard]] std::optional<SubstrateKind> substrate_from_name(
    std::string_view name);

/// The interconnect model a substrate kind runs on, derived from `base`:
/// kMpisim returns base unchanged; kNcclsim swaps in NVLink-like local and
/// IB-like remote link parameters, ring all-reduce pricing, a per-
/// collective kernel-launch latency, and an ideal progress engine (no
/// Ireduce progression penalty, free polls), while keeping base's master
/// switch and dedicated-core economics.
[[nodiscard]] NetworkModel network_model_for(SubstrateKind kind,
                                             const NetworkModel& base);

class Substrate {
 public:
  virtual ~Substrate() = default;

  // --- Identity ---------------------------------------------------------

  [[nodiscard]] virtual SubstrateKind kind() const = 0;
  [[nodiscard]] const char* name() const { return substrate_name(kind()); }
  [[nodiscard]] virtual bool valid() const = 0;
  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual int node() const = 0;
  [[nodiscard]] virtual int num_nodes() const = 0;
  [[nodiscard]] virtual int max_ranks_per_node() const = 0;

  // --- Telemetry --------------------------------------------------------

  [[nodiscard]] virtual CommStats& stats() = 0;
  [[nodiscard]] virtual const NetworkModel& network() const = 0;
  [[nodiscard]] virtual double modeled_collective_seconds(
      std::uint64_t bytes) const = 0;

  /// Stats snapshot stamped with this substrate's name, so results and
  /// bench JSON attribute the bytes to the transport that moved them.
  [[nodiscard]] CommVolume volume() {
    CommVolume v = stats().volume();
    v.substrate = name();
    return v;
  }

  // --- Topology ---------------------------------------------------------

  /// Child substrate over the ranks sharing this rank's node. Same
  /// backend kind; always valid.
  [[nodiscard]] virtual std::unique_ptr<Substrate> split_by_node() = 0;

  /// Child substrate over the first rank of each node; non-leaders
  /// receive an invalid (valid() == false) substrate.
  [[nodiscard]] virtual std::unique_ptr<Substrate> split_node_leaders() = 0;

  /// Window pre-reduce hook (paper §IV-E): creates or attaches to a
  /// node-shared window of `bytes` zeroed bytes. Collective; all ranks
  /// receive the same state. Used by comm::Window.
  [[nodiscard]] virtual std::shared_ptr<mpisim::detail::WindowState>
  window_collective(std::size_t bytes) = 0;

  // --- Collectives (typed facade over the byte-level do_* plane) --------

  virtual void barrier() = 0;
  [[nodiscard]] virtual Request ibarrier() = 0;

  template <typename T>
  void reduce(std::span<const T> send, std::span<T> recv, int root,
              ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(rank() != root || recv.size() == send.size());
    do_reduce(as_bytes(send.data()), send.size() * sizeof(T), send.size(),
              as_bytes_mut(recv.data()), mpisim::detail::combine_fn<T>(op),
              root, /*blocking=*/true);
  }

  template <typename T>
  [[nodiscard]] Request ireduce(std::span<const T> send, std::span<T> recv,
                                int root, ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(rank() != root || recv.size() == send.size());
    return do_ireduce(as_bytes(send.data()), send.size() * sizeof(T),
                      send.size(), as_bytes_mut(recv.data()),
                      mpisim::detail::combine_fn<T>(op), root);
  }

  template <typename T>
  void allreduce(std::span<const T> send, std::span<T> recv,
                 ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(recv.size() == send.size());
    do_allreduce(as_bytes(send.data()), send.size() * sizeof(T), send.size(),
                 as_bytes_mut(recv.data()),
                 mpisim::detail::combine_fn<T>(op));
  }

  template <typename T>
  [[nodiscard]] Request iallreduce(std::span<const T> send, std::span<T> recv,
                                   ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(recv.size() == send.size());
    return do_iallreduce(as_bytes(send.data()), send.size() * sizeof(T),
                         send.size(), as_bytes_mut(recv.data()),
                         mpisim::detail::combine_fn<T>(op));
  }

  template <typename T>
  void reduce_scatter(std::span<const T> send, std::span<T> recv,
                      ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(send.size() ==
                  recv.size() * static_cast<std::size_t>(size()));
    do_reduce_scatter(as_bytes(send.data()), send.size() * sizeof(T),
                      send.size(), as_bytes_mut(recv.data()),
                      mpisim::detail::combine_fn<T>(op));
  }

  template <typename T>
  void all_gather(std::span<const T> send, std::span<T> recv) {
    DISTBC_ASSERT(recv.size() ==
                  send.size() * static_cast<std::size_t>(size()));
    do_all_gather(as_bytes(send.data()), send.size() * sizeof(T),
                  as_bytes_mut(recv.data()));
  }

  template <typename T>
  void bcast(std::span<T> buffer, int root) {
    do_bcast(as_bytes_mut(buffer.data()), buffer.size() * sizeof(T), root,
             /*blocking=*/true);
  }

  template <typename T>
  [[nodiscard]] Request ibcast(std::span<T> buffer, int root) {
    return do_ibcast(as_bytes_mut(buffer.data()), buffer.size() * sizeof(T),
                     root);
  }

  template <typename T, typename MergeFn>
  void reduce_merge(std::span<const T> send, MergeFn&& merge, int root) {
    do_mergev(mpisim::detail::SlotKind::kReduceMerge, as_bytes(send.data()),
              send.size() * sizeof(T),
              erase_merge<T>(std::forward<MergeFn>(merge), root), root);
  }

  template <typename T, typename MergeFn>
  [[nodiscard]] Request ireduce_merge(std::span<const T> send,
                                      MergeFn&& merge, int root) {
    return do_imergev(mpisim::detail::SlotKind::kReduceMerge,
                      as_bytes(send.data()), send.size() * sizeof(T),
                      erase_merge<T>(std::forward<MergeFn>(merge), root),
                      root);
  }

  template <typename T, typename MergeFn>
  void allreduce_merge(std::span<const T> send, MergeFn&& merge) {
    do_allmerge(as_bytes(send.data()), send.size() * sizeof(T),
                erase_merge_all<T>(std::forward<MergeFn>(merge)));
  }

  template <typename T, typename MergeFn>
  [[nodiscard]] Request iallreduce_merge(std::span<const T> send,
                                         MergeFn&& merge) {
    return do_iallmerge(as_bytes(send.data()), send.size() * sizeof(T),
                        erase_merge_all<T>(std::forward<MergeFn>(merge)));
  }

  template <typename T, typename CombineFn, typename MergeFn>
  void reduce_merge_tree(std::span<const T> send, CombineFn&& combine,
                         MergeFn&& merge, int root, int radix) {
    do_tree(as_bytes(send.data()), send.size() * sizeof(T),
            erase_combine<T>(std::forward<CombineFn>(combine)),
            erase_merge<T>(std::forward<MergeFn>(merge), root), root, radix);
  }

  template <typename T, typename CombineFn, typename MergeFn>
  [[nodiscard]] Request ireduce_merge_tree(std::span<const T> send,
                                           CombineFn&& combine,
                                           MergeFn&& merge, int root,
                                           int radix) {
    return do_itree(as_bytes(send.data()), send.size() * sizeof(T),
                    erase_combine<T>(std::forward<CombineFn>(combine)),
                    erase_merge<T>(std::forward<MergeFn>(merge), root), root,
                    radix);
  }

  template <typename T>
  void gatherv(std::span<const T> send, std::vector<std::vector<T>>& recv,
               int root) {
    do_mergev(mpisim::detail::SlotKind::kGatherv, as_bytes(send.data()),
              send.size() * sizeof(T), erase_gather<T>(recv, root), root);
  }

  template <typename T>
  [[nodiscard]] Request igatherv(std::span<const T> send,
                                 std::vector<std::vector<T>>& recv,
                                 int root) {
    return do_imergev(mpisim::detail::SlotKind::kGatherv,
                      as_bytes(send.data()), send.size() * sizeof(T),
                      erase_gather<T>(recv, root), root);
  }

 protected:
  // Byte-level data plane a backend implements. Signatures mirror
  // mpisim::Comm's byte layer; the typed facade above erases types once
  // and every backend shares that code.
  virtual void do_reduce(const std::byte* send, std::size_t bytes,
                         std::size_t count, std::byte* recv,
                         mpisim::detail::CombineFn combine, int root,
                         bool blocking) = 0;
  virtual Request do_ireduce(const std::byte* send, std::size_t bytes,
                             std::size_t count, std::byte* recv,
                             mpisim::detail::CombineFn combine, int root) = 0;
  virtual void do_allreduce(const std::byte* send, std::size_t bytes,
                            std::size_t count, std::byte* recv,
                            mpisim::detail::CombineFn combine) = 0;
  virtual Request do_iallreduce(const std::byte* send, std::size_t bytes,
                                std::size_t count, std::byte* recv,
                                mpisim::detail::CombineFn combine) = 0;
  virtual void do_reduce_scatter(const std::byte* send, std::size_t bytes,
                                 std::size_t count, std::byte* recv,
                                 mpisim::detail::CombineFn combine) = 0;
  virtual void do_all_gather(const std::byte* send, std::size_t bytes,
                             std::byte* recv) = 0;
  virtual void do_mergev(mpisim::detail::SlotKind slot_kind,
                         const std::byte* send, std::size_t bytes,
                         mpisim::detail::MergeBytesFn merge, int root) = 0;
  virtual Request do_imergev(mpisim::detail::SlotKind slot_kind,
                             const std::byte* send, std::size_t bytes,
                             mpisim::detail::MergeBytesFn merge,
                             int root) = 0;
  virtual void do_allmerge(const std::byte* send, std::size_t bytes,
                           mpisim::detail::MergeBytesFn merge) = 0;
  virtual Request do_iallmerge(const std::byte* send, std::size_t bytes,
                               mpisim::detail::MergeBytesFn merge) = 0;
  virtual void do_tree(const std::byte* send, std::size_t bytes,
                       mpisim::detail::CombineImagesFn combine,
                       mpisim::detail::MergeBytesFn merge, int root,
                       int radix) = 0;
  virtual Request do_itree(const std::byte* send, std::size_t bytes,
                           mpisim::detail::CombineImagesFn combine,
                           mpisim::detail::MergeBytesFn merge, int root,
                           int radix) = 0;
  virtual void do_bcast(std::byte* buffer, std::size_t bytes, int root,
                        bool blocking) = 0;
  virtual Request do_ibcast(std::byte* buffer, std::size_t bytes,
                            int root) = 0;

  static const std::byte* as_bytes(const void* p) {
    return static_cast<const std::byte*>(p);
  }
  static std::byte* as_bytes_mut(void* p) {
    return static_cast<std::byte*>(p);
  }

  // Type-erasure helpers shared by every backend (ported from mpisim's
  // typed layer; they depend only on rank()/size()).

  template <typename T, typename MergeFn>
  mpisim::detail::MergeBytesFn erase_merge(MergeFn&& merge, int root) {
    if (rank() != root) return {};
    return [m = std::forward<MergeFn>(merge)](int src, const std::byte* data,
                                              std::size_t bytes) mutable {
      m(src, std::span<const T>(reinterpret_cast<const T*>(data),
                                bytes / sizeof(T)));
    };
  }

  template <typename T, typename MergeFn>
  mpisim::detail::MergeBytesFn erase_merge_all(MergeFn&& merge) {
    return [m = std::forward<MergeFn>(merge)](int src, const std::byte* data,
                                              std::size_t bytes) mutable {
      m(src, std::span<const T>(reinterpret_cast<const T*>(data),
                                bytes / sizeof(T)));
    };
  }

  template <typename T>
  mpisim::detail::MergeBytesFn erase_gather(std::vector<std::vector<T>>& recv,
                                            int root) {
    if (rank() != root) return {};
    recv.assign(static_cast<std::size_t>(size()), {});
    return [&recv](int src, const std::byte* data, std::size_t bytes) {
      const T* typed = reinterpret_cast<const T*>(data);
      recv[static_cast<std::size_t>(src)].assign(typed,
                                                 typed + bytes / sizeof(T));
    };
  }

  template <typename T, typename CombineFn>
  mpisim::detail::CombineImagesFn erase_combine(CombineFn&& combine) {
    return [c = std::forward<CombineFn>(combine), words = std::vector<T>()](
               std::vector<std::byte>& acc, const std::byte* in,
               std::size_t bytes) mutable {
      const T* acc_typed = reinterpret_cast<const T*>(acc.data());
      words.assign(acc_typed, acc_typed + acc.size() / sizeof(T));
      c(words, std::span<const T>(reinterpret_cast<const T*>(in),
                                  bytes / sizeof(T)));
      const auto* out = reinterpret_cast<const std::byte*>(words.data());
      acc.assign(out, out + words.size() * sizeof(T));
    };
  }
};

/// The simulated-MPI backend: a thin forwarding shell over one
/// mpisim::Comm handle (which carries the per-handle collective call
/// counter, so all of a rank's traffic must flow through one substrate).
class MpisimSubstrate : public Substrate {
 public:
  explicit MpisimSubstrate(mpisim::Comm comm) : comm_(std::move(comm)) {}

  [[nodiscard]] SubstrateKind kind() const override {
    return SubstrateKind::kMpisim;
  }
  [[nodiscard]] bool valid() const override { return comm_.valid(); }
  [[nodiscard]] int rank() const override { return comm_.rank(); }
  [[nodiscard]] int size() const override { return comm_.size(); }
  [[nodiscard]] int node() const override { return comm_.node(); }
  [[nodiscard]] int num_nodes() const override { return comm_.num_nodes(); }
  [[nodiscard]] int max_ranks_per_node() const override {
    return comm_.max_ranks_per_node();
  }

  [[nodiscard]] CommStats& stats() override { return comm_.stats(); }
  [[nodiscard]] const NetworkModel& network() const override {
    return comm_.network();
  }
  [[nodiscard]] double modeled_collective_seconds(
      std::uint64_t bytes) const override {
    return comm_.modeled_collective_seconds(bytes);
  }

  [[nodiscard]] std::unique_ptr<Substrate> split_by_node() override {
    return wrap(comm_.split_by_node());
  }
  [[nodiscard]] std::unique_ptr<Substrate> split_node_leaders() override {
    return wrap(comm_.split_node_leaders());
  }
  [[nodiscard]] std::shared_ptr<mpisim::detail::WindowState>
  window_collective(std::size_t bytes) override {
    return comm_.window_collective(bytes);
  }

  void barrier() override { comm_.barrier(); }
  [[nodiscard]] Request ibarrier() override { return comm_.ibarrier(); }

  /// The wrapped native handle (tests and interop; library code should
  /// stay on the Substrate surface).
  [[nodiscard]] mpisim::Comm& native() { return comm_; }

 protected:
  /// Rewraps a child communicator in this backend's kind, so topology
  /// splits preserve the derived substrate.
  [[nodiscard]] virtual std::unique_ptr<Substrate> wrap(mpisim::Comm child) {
    return std::make_unique<MpisimSubstrate>(std::move(child));
  }

  void do_reduce(const std::byte* send, std::size_t bytes, std::size_t count,
                 std::byte* recv, mpisim::detail::CombineFn combine, int root,
                 bool blocking) override {
    comm_.reduce_bytes_impl(send, bytes, count, recv, combine, root,
                            blocking);
  }
  Request do_ireduce(const std::byte* send, std::size_t bytes,
                     std::size_t count, std::byte* recv,
                     mpisim::detail::CombineFn combine, int root) override {
    return comm_.ireduce_bytes_impl(send, bytes, count, recv, combine, root);
  }
  void do_allreduce(const std::byte* send, std::size_t bytes,
                    std::size_t count, std::byte* recv,
                    mpisim::detail::CombineFn combine) override {
    comm_.allreduce_bytes_impl(send, bytes, count, recv, combine);
  }
  Request do_iallreduce(const std::byte* send, std::size_t bytes,
                        std::size_t count, std::byte* recv,
                        mpisim::detail::CombineFn combine) override {
    return comm_.iallreduce_bytes_impl(send, bytes, count, recv, combine);
  }
  void do_reduce_scatter(const std::byte* send, std::size_t bytes,
                         std::size_t count, std::byte* recv,
                         mpisim::detail::CombineFn combine) override {
    comm_.reduce_scatter_bytes_impl(send, bytes, count, recv, combine);
  }
  void do_all_gather(const std::byte* send, std::size_t bytes,
                     std::byte* recv) override {
    comm_.all_gather_bytes_impl(send, bytes, recv);
  }
  void do_mergev(mpisim::detail::SlotKind slot_kind, const std::byte* send,
                 std::size_t bytes, mpisim::detail::MergeBytesFn merge,
                 int root) override {
    comm_.mergev_bytes_impl(slot_kind, send, bytes, std::move(merge), root);
  }
  Request do_imergev(mpisim::detail::SlotKind slot_kind,
                     const std::byte* send, std::size_t bytes,
                     mpisim::detail::MergeBytesFn merge, int root) override {
    return comm_.imergev_bytes_impl(slot_kind, send, bytes, std::move(merge),
                                    root);
  }
  void do_allmerge(const std::byte* send, std::size_t bytes,
                   mpisim::detail::MergeBytesFn merge) override {
    comm_.allmerge_bytes_impl(send, bytes, std::move(merge));
  }
  Request do_iallmerge(const std::byte* send, std::size_t bytes,
                       mpisim::detail::MergeBytesFn merge) override {
    return comm_.iallmerge_bytes_impl(send, bytes, std::move(merge));
  }
  void do_tree(const std::byte* send, std::size_t bytes,
               mpisim::detail::CombineImagesFn combine,
               mpisim::detail::MergeBytesFn merge, int root,
               int radix) override {
    comm_.tree_bytes_impl(send, bytes, std::move(combine), std::move(merge),
                          root, radix);
  }
  Request do_itree(const std::byte* send, std::size_t bytes,
                   mpisim::detail::CombineImagesFn combine,
                   mpisim::detail::MergeBytesFn merge, int root,
                   int radix) override {
    return comm_.itree_bytes_impl(send, bytes, std::move(combine),
                                  std::move(merge), root, radix);
  }
  void do_bcast(std::byte* buffer, std::size_t bytes, int root,
                bool blocking) override {
    comm_.bcast_bytes_impl(buffer, bytes, root, blocking);
  }
  Request do_ibcast(std::byte* buffer, std::size_t bytes, int root) override {
    return comm_.ibcast_bytes_impl(buffer, bytes, root);
  }

 private:
  mpisim::Comm comm_;
};

/// The modeled NCCL-style backend. Shares mpisim's slot data plane (the
/// deterministic rank-order merge replay is literally the same code), so
/// deterministic scores are bitwise identical to MpisimSubstrate; the
/// NCCL economics live in the NetworkModel the owning runtime was built
/// with - pair this class with network_model_for(kNcclsim, base).
class NcclSimSubstrate : public MpisimSubstrate {
 public:
  using MpisimSubstrate::MpisimSubstrate;

  [[nodiscard]] SubstrateKind kind() const override {
    return SubstrateKind::kNcclsim;
  }

 protected:
  [[nodiscard]] std::unique_ptr<Substrate> wrap(mpisim::Comm child) override {
    return std::make_unique<NcclSimSubstrate>(std::move(child));
  }
};

/// Wraps a per-rank native communicator in the selected backend. Call
/// once per rank before any traffic and route everything through the
/// result: the handle carries the collective call counter that matches
/// slots across ranks.
[[nodiscard]] std::unique_ptr<Substrate> make_substrate(SubstrateKind kind,
                                                        mpisim::Comm comm);

/// RMA-style shared window over a Substrate: the node-local pre-reduction
/// surface (paper §IV-E). Port of mpisim::Window onto the substrate seam;
/// traffic is charged to the owning substrate's stats.
template <typename T>
class Window {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective over `substrate`: every rank must construct the window
  /// with the same element count. Contents start zeroed.
  Window(Substrate& substrate, std::size_t count)
      : substrate_(&substrate),
        count_(count),
        state_(substrate.window_collective(count * sizeof(T))) {
    std::lock_guard lock(state_->mu);
    state_->touched_bits.resize((count + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Passive-target accumulate: atomically (under the window lock) adds
  /// `values` elementwise into the window. The touched union becomes the
  /// whole window (read_touched_pairs falls back to the dense read).
  void accumulate(std::span<const T> values) {
    DISTBC_ASSERT(values.size() == count_);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i < count_; ++i) data[i] += values[i];
    state_->dense_touched = true;
    substrate_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    substrate_->stats().p2p_bytes.fetch_add(values.size_bytes(),
                                            std::memory_order_relaxed);
  }

  /// Passive-target scatter-accumulate of flat (index, delta) pairs - the
  /// sparse-frame path of the pre-reduction, moving O(nonzeros).
  void accumulate_pairs(std::span<const T> pairs) {
    DISTBC_ASSERT(pairs.size() % 2 == 0);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
      const auto index = static_cast<std::size_t>(pairs[i]);
      DISTBC_ASSERT(index < count_);
      data[index] += pairs[i + 1];
      state_->touched_bits[index / 64] |= std::uint64_t{1} << (index % 64);
    }
    substrate_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    substrate_->stats().p2p_bytes.fetch_add(pairs.size_bytes(),
                                            std::memory_order_relaxed);
  }

  /// Windowed read-back: appends (index, value) pairs (ascending indices,
  /// nonzero values only) for every slot touched since the last clear.
  /// Returns false without touching `pairs` when a dense accumulate made
  /// the union the whole window; callers then pay the O(V) read().
  [[nodiscard]] bool read_touched_pairs(std::vector<T>& pairs) const {
    std::lock_guard lock(state_->mu);
    if (state_->dense_touched) return false;
    const T* data = reinterpret_cast<const T*>(state_->data.data());
    for (std::size_t w = 0; w < state_->touched_bits.size(); ++w) {
      std::uint64_t bits = state_->touched_bits[w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t index = w * 64 + bit;
        if (data[index] == 0) continue;  // deltas may cancel to zero
        pairs.push_back(static_cast<T>(index));
        pairs.push_back(data[index]);
      }
    }
    return true;
  }

  /// Zeroes only the touched slots and resets the tracking (O(touched);
  /// falls back to the full sweep after a dense accumulate).
  void clear_touched() {
    std::lock_guard lock(state_->mu);
    if (state_->dense_touched) {
      std::fill(state_->data.begin(), state_->data.end(), std::byte{0});
      state_->dense_touched = false;
    } else {
      T* data = reinterpret_cast<T*>(state_->data.data());
      for (std::size_t w = 0; w < state_->touched_bits.size(); ++w) {
        std::uint64_t bits = state_->touched_bits[w];
        while (bits != 0) {
          const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          data[w * 64 + bit] = 0;
        }
      }
    }
    std::fill(state_->touched_bits.begin(), state_->touched_bits.end(), 0);
  }

  /// Copies the window contents into `out` under the window lock.
  void read(std::span<T> out) const {
    DISTBC_ASSERT(out.size() == count_);
    std::lock_guard lock(state_->mu);
    const T* data = reinterpret_cast<const T*>(state_->data.data());
    std::copy(data, data + count_, out.begin());
  }

  /// Zeroes the window under the lock (start of a new aggregation round).
  void clear() {
    std::lock_guard lock(state_->mu);
    std::fill(state_->data.begin(), state_->data.end(), std::byte{0});
    std::fill(state_->touched_bits.begin(), state_->touched_bits.end(), 0);
    state_->dense_touched = false;
  }

  /// Synchronization fence: a barrier over the owning substrate.
  void fence() { substrate_->barrier(); }

 private:
  Substrate* substrate_;
  std::size_t count_;
  std::shared_ptr<mpisim::detail::WindowState> state_;
};

}  // namespace distbc::comm
