// Interconnect cost model for the simulated MPI runtime.
//
// Real MPI on the paper's cluster pays per-message latency plus a
// bandwidth-proportional transfer time, with cheaper intra-node (shared
// memory) than inter-node (OmniPath) hops. mpisim reproduces that cost shape:
// a collective over P ranks spread across N nodes is charged a tree of
// log2-many hops, each alpha + bytes / beta, with local and remote hop
// parameters. Completion times are computed when the last participant
// arrives; requests become ready only after the charged time has elapsed on
// the real clock, so overlapped computation (the paper's central technique)
// is faithfully rewarded.
#pragma once

#include <chrono>
#include <cstdint>

namespace distbc::mpisim {

struct NetworkModel {
  // Intra-node (shared-memory transport) hop parameters.
  double local_latency_s = 300e-9;
  double local_bandwidth_bps = 20e9;  // bytes per second
  // Inter-node hop parameters, modeled on Intel OmniPath.
  double remote_latency_s = 2e-6;
  double remote_bandwidth_bps = 12.5e9;
  // Paper §IV-F: "MPI_Ireduce progresses poorly" - non-blocking reductions
  // advance only inside library calls (test/wait), so their software
  // progression is slower than the synchronized path a blocking reduce
  // rides. Completion deadlines of non-blocking reductions are stretched
  // by this factor; 1.0 models an ideal asynchronous-progress engine.
  double ireduce_progression_factor = 3.0;
  // CPU time one unsuccessful test() of a pending non-blocking reduction
  // spends progressing the software tree - time stolen from the sampling
  // the caller interleaves with the polls (the §IV-F mechanism that makes
  // Ibarrier + blocking Reduce the better overlap strategy).
  double ireduce_poll_cost_s = 20e-6;
  // In-memory rate at which a rank folds one merge-reduction image into
  // its accumulator (the interior combines of a tree merge). Blocking
  // tree merges serialize this on the completion deadline; non-blocking
  // ones run it inside polls, overlapped with the caller's sampling.
  double combine_bandwidth_bps = 2e9;
  // Fixed per-collective startup charge, independent of payload and hop
  // count. Zero for a CPU MPI stack; an NCCL-style substrate pays a
  // kernel-launch latency before any data moves.
  double launch_latency_s = 0.0;
  // Price all-reduces as a flat ring instead of butterfly halving +
  // doubling: 2(P-1) alpha steps and a 2(P-1)/P byte share, the NCCL
  // ring schedule. Hop parameters are remote when the communicator spans
  // nodes, local otherwise.
  bool ring_allreduce = false;
  // Master switch; disabled means zero-cost transport (useful in unit
  // tests that check semantics rather than timing).
  bool enabled = true;
  // Dedicated-core economics (the paper's cluster: one core per rank, an
  // idle core produces nothing). When set, ranks blocked in collectives
  // yield-spin instead of sleeping, so on an oversubscribed simulation
  // host a blocked rank consumes its fair CPU share while producing
  // nothing - transferring the wall-clock cost of blocking correctly.
  // Default off: semantic tests prefer sleeps (faster, quieter).
  bool dedicated_cores = false;

  /// Charged duration for a collective moving `bytes` per hop across
  /// `ranks_per_node`-rank nodes, `num_nodes` of them.
  [[nodiscard]] std::chrono::nanoseconds collective_cost(
      std::uint64_t bytes, int ranks_per_node, int num_nodes) const;

  /// Charged duration for one point-to-point message.
  [[nodiscard]] std::chrono::nanoseconds message_cost(std::uint64_t bytes,
                                                      bool same_node) const;

  /// Charged duration for one butterfly phase (recursive halving or
  /// doubling) over `bytes` of buffer: log2-many latency steps per hop
  /// class, but only a (P-1)/P share of the buffer crosses each class's
  /// wire in total - the alpha-beta shape that makes reduce-scatter +
  /// all-gather beat reduce + bcast at scale.
  [[nodiscard]] std::chrono::nanoseconds butterfly_cost(
      std::uint64_t bytes, int ranks_per_node, int num_nodes) const;

  /// Charged duration for an all-reduce: a recursive-halving
  /// reduce-scatter followed by a recursive-doubling all-gather.
  [[nodiscard]] std::chrono::nanoseconds allreduce_cost(
      std::uint64_t bytes, int ranks_per_node, int num_nodes) const;

  /// Charged duration for folding one `bytes`-sized image into a local
  /// accumulator (interior tree-merge combine).
  [[nodiscard]] std::chrono::nanoseconds combine_cost(
      std::uint64_t bytes) const;

  /// Charged duration for eagerly injecting a collective contribution:
  /// line-rate only - per-hop latency is paid by the collective's
  /// completion deadline, not by the sender.
  [[nodiscard]] std::chrono::nanoseconds injection_cost(std::uint64_t bytes,
                                                        bool same_node) const;

  /// A zero-cost model for semantic tests.
  static NetworkModel disabled();
};

}  // namespace distbc::mpisim
