// Interconnect cost model for the simulated MPI runtime.
//
// Real MPI on the paper's cluster pays per-message latency plus a
// bandwidth-proportional transfer time, with cheaper intra-node (shared
// memory) than inter-node (OmniPath) hops. mpisim reproduces that cost shape:
// a collective over P ranks spread across N nodes is charged a tree of
// log2-many hops, each alpha + bytes / beta, with local and remote hop
// parameters. Completion times are computed when the last participant
// arrives; requests become ready only after the charged time has elapsed on
// the real clock, so overlapped computation (the paper's central technique)
// is faithfully rewarded.
#pragma once

#include <chrono>
#include <cstdint>

namespace distbc::mpisim {

struct NetworkModel {
  // Intra-node (shared-memory transport) hop parameters.
  double local_latency_s = 300e-9;
  double local_bandwidth_bps = 20e9;  // bytes per second
  // Inter-node hop parameters, modeled on Intel OmniPath.
  double remote_latency_s = 2e-6;
  double remote_bandwidth_bps = 12.5e9;
  // Master switch; disabled means zero-cost transport (useful in unit
  // tests that check semantics rather than timing).
  bool enabled = true;

  /// Charged duration for a collective moving `bytes` per hop across
  /// `ranks_per_node`-rank nodes, `num_nodes` of them.
  [[nodiscard]] std::chrono::nanoseconds collective_cost(
      std::uint64_t bytes, int ranks_per_node, int num_nodes) const;

  /// Charged duration for one point-to-point message.
  [[nodiscard]] std::chrono::nanoseconds message_cost(std::uint64_t bytes,
                                                      bool same_node) const;

  /// A zero-cost model for semantic tests.
  static NetworkModel disabled();
};

}  // namespace distbc::mpisim
