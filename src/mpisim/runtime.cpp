#include "mpisim/runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace distbc::mpisim {

Runtime::Runtime(RuntimeConfig config) : config_(config) {
  DISTBC_ASSERT(config_.num_ranks >= 1);
  DISTBC_ASSERT(config_.ranks_per_node >= 1);
}

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<int> node_of_rank(config_.num_ranks);
  for (int r = 0; r < config_.num_ranks; ++r)
    node_of_rank[r] = r / config_.ranks_per_node;
  auto world =
      std::make_shared<detail::CommState>(node_of_rank, config_.network);
  last_world_ = world;

  std::vector<std::thread> threads;
  threads.reserve(config_.num_ranks);
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (int r = 0; r < config_.num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

const CommStats& Runtime::last_world_stats() const {
  DISTBC_ASSERT_MSG(last_world_ != nullptr, "no run() has completed yet");
  return last_world_->stats;
}

}  // namespace distbc::mpisim
