#include "mpisim/comm.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

namespace distbc::mpisim {

namespace detail {

CommState::CommState(std::vector<int> node_of_rank_in, NetworkModel model_in)
    : node_of_rank(std::move(node_of_rank_in)), model(model_in) {
  DISTBC_ASSERT(!node_of_rank.empty());
  std::map<int, int> per_node;
  for (const int node : node_of_rank) ++per_node[node];
  num_nodes = static_cast<int>(per_node.size());
  max_ranks_per_node = 0;
  for (const auto& [node, count] : per_node)
    max_ranks_per_node = std::max(max_ranks_per_node, count);
}

namespace {

Slot& acquire_slot(CommState& state, std::uint64_t ticket, SlotKind kind) {
  // Caller holds state.mu.
  auto [it, inserted] = state.slots.try_emplace(ticket);
  Slot& slot = it->second;
  if (inserted) {
    slot.kind = kind;
    slot.rank_ready.assign(state.size(), Clock::time_point{});
  } else {
    DISTBC_ASSERT_MSG(slot.kind == kind,
                      "collectives must be called in matching order");
  }
  return slot;
}

void depart_slot(CommState& state, std::uint64_t ticket, Slot& slot) {
  // Caller holds state.mu.
  if (++slot.departed == state.size()) state.slots.erase(ticket);
}

/// Blocks until pred() holds. With dedicated-core economics the wait
/// yield-spins (a rank blocked in a collective burns its core, as on the
/// paper's cluster); otherwise it sleeps on the shared condition variable.
template <typename Pred>
void wait_predicate(CommState& state, std::unique_lock<std::mutex>& lock,
                    Pred&& pred) {
  if (state.model.dedicated_cores) {
    while (!pred()) {
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
  } else {
    state.cv.wait(lock, std::forward<Pred>(pred));
  }
}

/// Blocks until the modeled completion deadline passes (same economics).
void wait_deadline(CommState& state, std::unique_lock<std::mutex>& lock,
                   Clock::time_point deadline) {
  if (state.model.dedicated_cores) {
    lock.unlock();
    while (Clock::now() < deadline) std::this_thread::yield();
    lock.lock();
  } else {
    while (Clock::now() < deadline) state.cv.wait_until(lock, deadline);
  }
}

/// Accumulates the elapsed blocked time of one wait_* call into a CommStats
/// counter (per-collective blocking-share telemetry).
class WaitCharge {
 public:
  explicit WaitCharge(std::atomic<std::uint64_t>& counter)
      : counter_(counter), start_(Clock::now()) {}
  ~WaitCharge() {
    counter_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start_)
                .count()),
        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>& counter_;
  Clock::time_point start_;
};

}  // namespace
}  // namespace detail

using detail::Clock;
using detail::CommState;
using detail::Slot;
using detail::SlotKind;
using detail::acquire_slot;
using detail::depart_slot;
using detail::WaitCharge;
using detail::wait_deadline;
using detail::wait_predicate;

// --- Reduce ----------------------------------------------------------------

namespace {

/// Posts this rank's contribution; returns the ticket's slot (locked scope).
void post_reduce(CommState& state, std::uint64_t ticket, int rank,
                 const std::byte* send, std::size_t bytes, std::size_t count,
                 std::byte* recv, detail::CombineFn combine, int root,
                 bool nonblocking) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, SlotKind::kReduce);
  if (slot.arrived == 0) {
    slot.bytes = bytes;
    slot.count = count;
    slot.combine = combine;
    slot.root = root;
    slot.nonblocking = nonblocking;
    slot.contribs.resize(state.size());
  }
  DISTBC_ASSERT_MSG(slot.bytes == bytes && slot.root == root &&
                        slot.nonblocking == nonblocking,
                    "mismatched reduce participants");
  slot.contribs[rank].assign(send, send + bytes);
  if (rank == root) slot.root_recv = recv;

  const auto now = Clock::now();
  slot.rank_ready[rank] =
      now + state.model.injection_cost(bytes, state.num_nodes == 1);
  if (rank != root)
    state.stats.reduce_bytes.fetch_add(bytes, std::memory_order_relaxed);

  if (++slot.arrived == state.size()) {
    slot.all_arrived = true;
    auto cost = state.model.collective_cost(bytes, state.max_ranks_per_node,
                                            state.num_nodes);
    if (slot.nonblocking) {
      // §IV-F: software progression of non-blocking reductions is slower
      // than the synchronized blocking path.
      cost = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(cost.count()) *
          state.model.ireduce_progression_factor));
    }
    slot.ready_time = now + cost;
    state.cv.notify_all();
  }
}

/// Root-side completion: combine all contributions into root_recv. Caller
/// holds state.mu and has verified all_arrived and the deadline.
void run_reduce_action(CommState& state, Slot& slot) {
  if (slot.action_done) return;
  DISTBC_ASSERT(slot.root_recv != nullptr);
  std::memcpy(slot.root_recv, slot.contribs[slot.root].data(), slot.bytes);
  for (int r = 0; r < state.size(); ++r) {
    if (r == slot.root) continue;
    slot.combine(slot.root_recv, slot.contribs[r].data(), slot.count);
  }
  slot.action_done = true;
}

/// Non-blocking poll of a reduce at `rank`. For the root: all arrived and
/// tree deadline passed, then combine. For a non-root: own injection
/// deadline passed (eager send). An unsuccessful root poll of a
/// non-blocking reduction burns the modeled progression time (§IV-F):
/// the library only advances the tree inside test(), at real CPU cost.
bool poll_reduce(CommState& state, std::uint64_t ticket, int rank) {
  bool progress_pending = false;
  {
    std::lock_guard lock(state.mu);
    Slot& slot = state.slots.at(ticket);
    const auto now = Clock::now();
    if (rank == slot.root) {
      if (!slot.all_arrived || now < slot.ready_time) {
        progress_pending = slot.nonblocking;
      } else {
        run_reduce_action(state, slot);
        depart_slot(state, ticket, slot);
        return true;
      }
    } else {
      if (now >= slot.rank_ready[rank]) {
        depart_slot(state, ticket, slot);
        return true;
      }
    }
  }
  if (progress_pending && state.model.enabled &&
      state.model.ireduce_poll_cost_s > 0) {
    const auto until =
        Clock::now() + std::chrono::nanoseconds(static_cast<std::int64_t>(
                           state.model.ireduce_poll_cost_s * 1e9));
    while (Clock::now() < until) {
    }
  }
  return false;
}

void wait_reduce(CommState& state, std::uint64_t ticket, int rank) {
  WaitCharge charge(state.stats.reduce_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank == slot.root) {
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.ready_time);
    run_reduce_action(state, slot);
  } else {
    // Blocking reduce at a non-root models tree participation: the rank is
    // released once everybody has arrived (its subtree is drained), or after
    // its own injection deadline, whichever is later.
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.rank_ready[rank]);
  }
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::reduce_bytes_impl(const std::byte* send, std::size_t bytes,
                             std::size_t count, std::byte* recv,
                             detail::CombineFn combine, int root,
                             bool blocking) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.reduce_calls.fetch_add(1, std::memory_order_relaxed);
  post_reduce(*state_, ticket, rank_, send, bytes, count, recv, combine,
              root, /*nonblocking=*/false);
  DISTBC_ASSERT(blocking);
  wait_reduce(*state_, ticket, rank_);
}

Request Comm::ireduce_bytes_impl(const std::byte* send, std::size_t bytes,
                                 std::size_t count, std::byte* recv,
                                 detail::CombineFn combine, int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.ireduce_calls.fetch_add(1, std::memory_order_relaxed);
  post_reduce(*state_, ticket, rank_, send, bytes, count, recv, combine,
              root, /*nonblocking=*/true);
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  return Request(std::move(impl));
}

// --- Variable-length merge collectives (reduce_merge / gatherv) -------------

namespace {

/// Posts one variable-length contribution (shared by reduce_merge and
/// gatherv; they differ only in byte attribution and the root consumer).
void post_mergev(CommState& state, std::uint64_t ticket, SlotKind kind,
                 int rank, const std::byte* send, std::size_t bytes,
                 detail::MergeBytesFn merge, int root, bool nonblocking) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, kind);
  if (slot.arrived == 0) {
    slot.root = root;
    slot.nonblocking = nonblocking;
    slot.contribs.resize(state.size());
  }
  DISTBC_ASSERT_MSG(slot.root == root && slot.nonblocking == nonblocking,
                    "mismatched merge-collective participants");
  slot.contribs[rank].assign(send, send + bytes);
  if (rank == root) {
    DISTBC_ASSERT_MSG(static_cast<bool>(merge),
                      "merge collective needs a root-side consumer");
    slot.merge = std::move(merge);
  }

  const auto now = Clock::now();
  slot.rank_ready[rank] =
      now + state.model.injection_cost(bytes, state.num_nodes == 1);
  if (rank != root) {
    auto& counter = kind == SlotKind::kGatherv ? state.stats.gatherv_bytes
                                               : state.stats.reduce_merge_bytes;
    counter.fetch_add(bytes, std::memory_order_relaxed);
  }

  if (++slot.arrived == state.size()) {
    slot.all_arrived = true;
    // The tree's critical path carries the largest contribution.
    std::size_t max_bytes = 0;
    for (const auto& contrib : slot.contribs)
      max_bytes = std::max(max_bytes, contrib.size());
    slot.bytes = max_bytes;
    auto cost = state.model.collective_cost(max_bytes,
                                            state.max_ranks_per_node,
                                            state.num_nodes);
    if (slot.nonblocking) {
      // Same §IV-F software-progression penalty as Ireduce.
      cost = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(cost.count()) *
          state.model.ireduce_progression_factor));
    }
    slot.ready_time = now + cost;
    state.cv.notify_all();
  }
}

/// Root-side completion: feed every contribution to the consumer, in rank
/// order. Caller holds state.mu and has verified all_arrived + deadline.
void run_mergev_action(CommState& state, Slot& slot) {
  if (slot.action_done) return;
  for (int r = 0; r < state.size(); ++r)
    slot.merge(r, slot.contribs[r].data(), slot.contribs[r].size());
  slot.action_done = true;
}

bool poll_mergev(CommState& state, std::uint64_t ticket, int rank) {
  bool progress_pending = false;
  {
    std::lock_guard lock(state.mu);
    Slot& slot = state.slots.at(ticket);
    const auto now = Clock::now();
    if (rank == slot.root) {
      if (!slot.all_arrived || now < slot.ready_time) {
        progress_pending = slot.nonblocking;
      } else {
        run_mergev_action(state, slot);
        depart_slot(state, ticket, slot);
        return true;
      }
    } else {
      if (now >= slot.rank_ready[rank]) {
        depart_slot(state, ticket, slot);
        return true;
      }
    }
  }
  if (progress_pending && state.model.enabled &&
      state.model.ireduce_poll_cost_s > 0) {
    // Unsuccessful root polls of a non-blocking merge burn the same
    // software-progression CPU time as Ireduce polls.
    const auto until =
        Clock::now() + std::chrono::nanoseconds(static_cast<std::int64_t>(
                           state.model.ireduce_poll_cost_s * 1e9));
    while (Clock::now() < until) {
    }
  }
  return false;
}

void wait_mergev(CommState& state, std::uint64_t ticket, int rank) {
  WaitCharge charge(state.stats.reduce_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank == slot.root) {
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.ready_time);
    run_mergev_action(state, slot);
  } else {
    // Tree participation, as in wait_reduce: released once everybody has
    // arrived or after the own injection deadline, whichever is later.
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.rank_ready[rank]);
  }
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::mergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                             std::size_t bytes, detail::MergeBytesFn merge,
                             int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  auto& calls = kind == SlotKind::kGatherv ? state_->stats.gatherv_calls
                                           : state_->stats.reduce_merge_calls;
  calls.fetch_add(1, std::memory_order_relaxed);
  post_mergev(*state_, ticket, kind, rank_, send, bytes, std::move(merge),
              root, /*nonblocking=*/false);
  wait_mergev(*state_, ticket, rank_);
}

Request Comm::imergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                                 std::size_t bytes,
                                 detail::MergeBytesFn merge, int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  auto& calls = kind == SlotKind::kGatherv ? state_->stats.gatherv_calls
                                           : state_->stats.reduce_merge_calls;
  calls.fetch_add(1, std::memory_order_relaxed);
  post_mergev(*state_, ticket, kind, rank_, send, bytes, std::move(merge),
              root, /*nonblocking=*/true);
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  return Request(std::move(impl));
}

// --- Barrier ----------------------------------------------------------------

namespace {

void post_barrier(CommState& state, std::uint64_t ticket, int rank) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, SlotKind::kBarrier);
  slot.rank_ready[rank] = Clock::now();
  if (++slot.arrived == state.size()) {
    slot.all_arrived = true;
    slot.ready_time =
        Clock::now() + state.model.collective_cost(0, state.max_ranks_per_node,
                                                   state.num_nodes);
    state.cv.notify_all();
  }
}

bool poll_barrier(CommState& state, std::uint64_t ticket, int rank) {
  std::lock_guard lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (!slot.all_arrived || Clock::now() < slot.ready_time) return false;
  (void)rank;
  depart_slot(state, ticket, slot);
  return true;
}

void wait_barrier(CommState& state, std::uint64_t ticket) {
  WaitCharge charge(state.stats.barrier_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  wait_predicate(state, lock, [&] { return slot.all_arrived; });
  wait_deadline(state, lock, slot.ready_time);
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::barrier() {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.barrier_calls.fetch_add(1, std::memory_order_relaxed);
  post_barrier(*state_, ticket, rank_);
  wait_barrier(*state_, ticket);
}

Request Comm::ibarrier() {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.ibarrier_calls.fetch_add(1, std::memory_order_relaxed);
  post_barrier(*state_, ticket, rank_);
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  return Request(std::move(impl));
}

// --- Broadcast ---------------------------------------------------------------

namespace {

void post_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* buffer, std::size_t bytes, int root) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, SlotKind::kBcast);
  if (slot.arrived == 0) {
    slot.bytes = bytes;
    slot.root = root;
  }
  DISTBC_ASSERT(slot.bytes == bytes && slot.root == root);
  ++slot.arrived;
  const auto now = Clock::now();
  if (rank == root) {
    slot.payload.assign(buffer, buffer + bytes);
    slot.action_done = true;  // payload available
    slot.ready_time = now + state.model.collective_cost(
                                bytes, state.max_ranks_per_node,
                                state.num_nodes);
    state.stats.bcast_bytes.fetch_add(bytes * (state.size() - 1),
                                      std::memory_order_relaxed);
    state.cv.notify_all();
  }
}

bool poll_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* recv) {
  std::lock_guard lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank == slot.root) {
    depart_slot(state, ticket, slot);
    return true;  // eager: root's buffer was consumed at post
  }
  if (!slot.action_done || Clock::now() < slot.ready_time) return false;
  std::memcpy(recv, slot.payload.data(), slot.bytes);
  depart_slot(state, ticket, slot);
  return true;
}

void wait_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* recv) {
  WaitCharge charge(state.stats.bcast_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank != slot.root) {
    wait_predicate(state, lock, [&] { return slot.action_done; });
    wait_deadline(state, lock, slot.ready_time);
    std::memcpy(recv, slot.payload.data(), slot.bytes);
  }
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::bcast_bytes_impl(std::byte* buffer, std::size_t bytes, int root,
                            bool blocking) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.bcast_calls.fetch_add(1, std::memory_order_relaxed);
  post_bcast(*state_, ticket, rank_, buffer, bytes, root);
  DISTBC_ASSERT(blocking);
  wait_bcast(*state_, ticket, rank_, buffer);
}

Request Comm::ibcast_bytes_impl(std::byte* buffer, std::size_t bytes,
                                int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.bcast_calls.fetch_add(1, std::memory_order_relaxed);
  post_bcast(*state_, ticket, rank_, buffer, bytes, root);
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  impl->recv = buffer;
  return Request(std::move(impl));
}

// --- Request ----------------------------------------------------------------

namespace {

bool poll_request(Request::Impl& impl, bool blocking);

}  // namespace

bool Request::test() {
  DISTBC_ASSERT_MSG(valid(), "test() on an empty request");
  if (impl_->done) return true;
  if (!poll_request(*impl_, /*blocking=*/false)) return false;
  impl_->done = true;
  return true;
}

void Request::wait() {
  DISTBC_ASSERT_MSG(valid(), "wait() on an empty request");
  if (impl_->done) return;
  poll_request(*impl_, /*blocking=*/true);
  impl_->done = true;
}

namespace {

bool poll_request(Request::Impl& impl, bool blocking) {
  CommState& state = *impl.state;
  SlotKind kind;
  {
    std::lock_guard lock(state.mu);
    kind = state.slots.at(impl.ticket).kind;
  }
  switch (kind) {
    case SlotKind::kBarrier:
      if (blocking) {
        wait_barrier(state, impl.ticket);
        return true;
      }
      return poll_barrier(state, impl.ticket, impl.rank);
    case SlotKind::kReduce:
      if (blocking) {
        wait_reduce(state, impl.ticket, impl.rank);
        return true;
      }
      return poll_reduce(state, impl.ticket, impl.rank);
    case SlotKind::kReduceMerge:
    case SlotKind::kGatherv:
      if (blocking) {
        wait_mergev(state, impl.ticket, impl.rank);
        return true;
      }
      return poll_mergev(state, impl.ticket, impl.rank);
    case SlotKind::kBcast:
      if (blocking) {
        wait_bcast(state, impl.ticket, impl.rank, impl.recv);
        return true;
      }
      return poll_bcast(state, impl.ticket, impl.rank, impl.recv);
    case SlotKind::kSplit:
    case SlotKind::kWindow:
      break;
  }
  DISTBC_ASSERT_MSG(false, "request on a non-request slot");
  return false;
}

}  // namespace

// --- Point-to-point ----------------------------------------------------------

void Comm::send_bytes_impl(const std::byte* data, std::size_t bytes, int dst,
                           int tag) {
  DISTBC_ASSERT(valid());
  DISTBC_ASSERT(dst >= 0 && dst < size() && dst != rank_);
  std::lock_guard lock(state_->mu);
  const bool same_node =
      state_->node_of_rank[rank_] == state_->node_of_rank[dst];
  detail::P2pMessage message;
  message.bytes.assign(data, data + bytes);
  message.deliver_time =
      Clock::now() + state_->model.message_cost(bytes, same_node);
  state_->mailboxes[{rank_, dst, tag}].push_back(std::move(message));
  state_->stats.p2p_messages.fetch_add(1, std::memory_order_relaxed);
  state_->stats.p2p_bytes.fetch_add(bytes, std::memory_order_relaxed);
  state_->cv.notify_all();
}

void Comm::recv_bytes_impl(std::byte* data, std::size_t bytes, int src,
                           int tag) {
  DISTBC_ASSERT(valid());
  DISTBC_ASSERT(src >= 0 && src < size() && src != rank_);
  std::unique_lock lock(state_->mu);
  const auto key = std::tuple{src, rank_, tag};
  state_->cv.wait(lock, [&] {
    const auto it = state_->mailboxes.find(key);
    return it != state_->mailboxes.end() && !it->second.empty();
  });
  auto& queue = state_->mailboxes.at(key);
  detail::P2pMessage message = std::move(queue.front());
  queue.pop_front();
  DISTBC_ASSERT_MSG(message.bytes.size() == bytes,
                    "send/recv size mismatch");
  while (Clock::now() < message.deliver_time)
    state_->cv.wait_until(lock, message.deliver_time);
  std::memcpy(data, message.bytes.data(), bytes);
}

// --- Split -------------------------------------------------------------------

Comm Comm::split(int color, int key) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  std::unique_lock lock(state_->mu);
  Slot& slot = acquire_slot(*state_, ticket, SlotKind::kSplit);
  if (slot.arrived == 0) slot.color_key.assign(size(), {kUndefinedColor, 0});
  slot.color_key[rank_] = {color, key};
  ++slot.arrived;
  if (slot.arrived == size()) {
    slot.all_arrived = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.all_arrived; });

  if (!slot.action_done) {
    // First rank past the barrier materializes every child communicator;
    // the computation is deterministic, so it does not matter which.
    std::set<int> colors;
    for (const auto& [c, k] : slot.color_key)
      if (c != kUndefinedColor) colors.insert(c);
    for (const int c : colors) {
      std::vector<std::pair<std::pair<int, int>, int>> members;  // ((key,rank),rank)
      for (int r = 0; r < size(); ++r)
        if (slot.color_key[r].first == c)
          members.push_back({{slot.color_key[r].second, r}, r});
      std::sort(members.begin(), members.end());
      // Compact node ids while preserving grouping.
      std::map<int, int> node_remap;
      std::vector<int> child_nodes;
      child_nodes.reserve(members.size());
      for (const auto& [sort_key, r] : members) {
        const int node = state_->node_of_rank[r];
        const auto it =
            node_remap.try_emplace(node, static_cast<int>(node_remap.size()))
                .first;
        child_nodes.push_back(it->second);
      }
      slot.children[c] =
          std::make_shared<CommState>(std::move(child_nodes), state_->model);
    }
    slot.action_done = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.action_done; });

  Comm child;
  if (color != kUndefinedColor) {
    // New rank = position in the (key, old rank) order within the group.
    int new_rank = 0;
    for (int r = 0; r < size(); ++r) {
      if (slot.color_key[r].first != color) continue;
      const auto mine = std::pair{key, rank_};
      const auto theirs = std::pair{slot.color_key[r].second, r};
      if (theirs < mine) ++new_rank;
    }
    child = Comm(slot.children.at(color), new_rank);
  }
  depart_slot(*state_, ticket, slot);
  return child;
}

Comm Comm::split_by_node() { return split(node(), rank()); }

Comm Comm::split_node_leaders() {
  // Leader = lowest rank on each node.
  int leader = -1;
  for (int r = 0; r < size(); ++r) {
    if (state_->node_of_rank[r] == node()) {
      leader = r;
      break;
    }
  }
  const bool is_leader = leader == rank_;
  return split(is_leader ? 0 : kUndefinedColor, node());
}

// --- Windows -------------------------------------------------------------------

std::shared_ptr<detail::WindowState> Comm::window_collective(
    std::size_t bytes) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  std::unique_lock lock(state_->mu);
  Slot& slot = acquire_slot(*state_, ticket, SlotKind::kWindow);
  if (slot.arrived == 0) {
    auto window = std::make_shared<detail::WindowState>();
    window->data.assign(bytes, std::byte{0});
    slot.window = std::move(window);
    slot.bytes = bytes;
  }
  DISTBC_ASSERT_MSG(slot.bytes == bytes, "window size mismatch across ranks");
  ++slot.arrived;
  if (slot.arrived == size()) {
    slot.all_arrived = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.all_arrived; });
  auto result = std::static_pointer_cast<detail::WindowState>(slot.window);
  depart_slot(*state_, ticket, slot);
  return result;
}

}  // namespace distbc::mpisim
