#include "mpisim/comm.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>

namespace distbc::mpisim {

namespace detail {

CommState::CommState(std::vector<int> node_of_rank_in, NetworkModel model_in)
    : node_of_rank(std::move(node_of_rank_in)), model(model_in) {
  DISTBC_ASSERT(!node_of_rank.empty());
  std::map<int, int> per_node;
  for (const int node : node_of_rank) ++per_node[node];
  num_nodes = static_cast<int>(per_node.size());
  max_ranks_per_node = 0;
  for (const auto& [node, count] : per_node)
    max_ranks_per_node = std::max(max_ranks_per_node, count);
}

namespace {

Slot& acquire_slot(CommState& state, std::uint64_t ticket, SlotKind kind) {
  // Caller holds state.mu.
  auto [it, inserted] = state.slots.try_emplace(ticket);
  Slot& slot = it->second;
  if (inserted) {
    slot.kind = kind;
    slot.rank_ready.assign(state.size(), Clock::time_point{});
  } else {
    DISTBC_ASSERT_MSG(slot.kind == kind,
                      "collectives must be called in matching order");
  }
  return slot;
}

void depart_slot(CommState& state, std::uint64_t ticket, Slot& slot) {
  // Caller holds state.mu.
  if (++slot.departed == state.size()) state.slots.erase(ticket);
}

/// Blocks until pred() holds. With dedicated-core economics the wait
/// yield-spins (a rank blocked in a collective burns its core, as on the
/// paper's cluster); otherwise it sleeps on the shared condition variable.
template <typename Pred>
void wait_predicate(CommState& state, std::unique_lock<std::mutex>& lock,
                    Pred&& pred) {
  if (state.model.dedicated_cores) {
    while (!pred()) {
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
  } else {
    state.cv.wait(lock, std::forward<Pred>(pred));
  }
}

/// Blocks until the modeled completion deadline passes (same economics).
void wait_deadline(CommState& state, std::unique_lock<std::mutex>& lock,
                   Clock::time_point deadline) {
  if (state.model.dedicated_cores) {
    lock.unlock();
    while (Clock::now() < deadline) std::this_thread::yield();
    lock.lock();
  } else {
    while (Clock::now() < deadline) state.cv.wait_until(lock, deadline);
  }
}

/// Accumulates the elapsed blocked time of one wait_* call into a CommStats
/// counter (per-collective blocking-share telemetry).
class WaitCharge {
 public:
  explicit WaitCharge(std::atomic<std::uint64_t>& counter)
      : counter_(counter), start_(Clock::now()) {}
  ~WaitCharge() {
    counter_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start_)
                .count()),
        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>& counter_;
  Clock::time_point start_;
};

}  // namespace
}  // namespace detail

using detail::Clock;
using detail::CommState;
using detail::Slot;
using detail::SlotKind;
using detail::acquire_slot;
using detail::depart_slot;
using detail::WaitCharge;
using detail::wait_deadline;
using detail::wait_predicate;

// --- The slot protocol (reduce / reduce_merge / gatherv / tree merge) -------
//
// Every reduction-shaped collective runs one post/poll/wait state machine.
// The §IV-F economics - the software-progression penalty stretching
// non-blocking completion deadlines and the poll tax burned by every
// unsuccessful root test() - are therefore modeled exactly once; the
// flavors differ only in what post_collective records, how the completion
// deadline is priced at last arrival, and which completion action runs at
// the root (elementwise combine, per-rank merge consumer, or the tree
// inbox delivery).

namespace {

/// Everything a flavor contributes to the shared protocol. Built by the
/// Comm entry points; root-only fields are ignored at non-roots.
struct PostSpec {
  SlotKind kind{};
  int root = -1;
  bool nonblocking = false;
  // kReduce.
  std::size_t count = 0;
  detail::CombineFn combine = nullptr;
  std::byte* root_recv = nullptr;
  // kReduceMerge / kGatherv / kTreeMerge.
  detail::MergeBytesFn merge;
  // kTreeMerge.
  detail::CombineImagesFn combine_images;
  int radix = 0;
  /// Per-flavor non-root payload counter (reduce_bytes / reduce_merge_bytes
  /// / gatherv_bytes); null for flavors that account at last arrival.
  std::atomic<std::uint64_t>* byte_counter = nullptr;
};

std::chrono::nanoseconds stretch_nonblocking(
    const CommState& state, std::chrono::nanoseconds cost) {
  // §IV-F: software progression of non-blocking reductions is slower than
  // the synchronized blocking path.
  return std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(cost.count()) *
      state.model.ireduce_progression_factor));
}

/// The all-reduce family completes symmetrically: every rank behaves
/// root-like (all arrivals plus the modeled butterfly deadline), then
/// performs its own copy-out or merge replay.
bool is_symmetric(SlotKind kind) {
  return kind == SlotKind::kAllreduce || kind == SlotKind::kReduceScatter ||
         kind == SlotKind::kAllGather || kind == SlotKind::kAllreduceMerge;
}

/// Sets up the radix tree's deferred interior-combine schedule at last
/// arrival: positions are heap-shaped (position 0 = the root rank,
/// children of p are radix*p+1 .. radix*p+radix); contributions move into
/// position order and the per-position completion clocks start at the
/// arrival instant. The combines themselves run in advance_tree as their
/// modeled due times pass. Caller holds state.mu.
void schedule_tree(CommState& state, Slot& slot) {
  const int size = state.size();
  DISTBC_ASSERT_MSG(static_cast<bool>(slot.combine_images),
                    "tree merge needs an image combiner");
  slot.tree_up.resize(size);
  for (int p = 0; p < size; ++p)
    slot.tree_up[p] = std::move(slot.contribs[(slot.root + p) % size]);
  slot.tree_finish.assign(size, std::chrono::nanoseconds::zero());
  slot.tree_cursor = size - 1;
  slot.tree_start = Clock::now();
  slot.tree_scheduled = true;
}

/// Advances the deferred tree merge: processes positions in descending
/// order (reverse BFS - every child's upward hop is priced on its already
/// merged image before the parent's own hop) whose modeled subtree
/// deadline has passed, or all of them when forced (a blocking wait).
/// Each position's upward image folds into its parent via the caller's
/// combiner with the hop charged a point-to-point cost; the root's direct
/// children's merged images are parked in the slot inbox for the
/// completion action. Blocking merges serialize the interior-combine
/// compute on the parent's clock; non-blocking ones run it here inside
/// polls - overlapped with the caller's sampling (§IV-F) - and account it
/// in overlapped_combine_ns instead. Prices the completion deadline once
/// the last position retires. Caller holds state.mu.
void advance_tree(CommState& state, Slot& slot, bool force) {
  if (!slot.tree_scheduled || slot.tree_priced) return;
  const int radix = slot.radix;
  while (slot.tree_cursor >= 1) {
    const int p = slot.tree_cursor;
    const int parent = (p - 1) / radix;
    const int rank = (slot.root + p) % state.size();
    const int parent_rank = (slot.root + parent) % state.size();
    const bool same_node =
        state.node_of_rank[rank] == state.node_of_rank[parent_rank];
    auto& up = slot.tree_up[p];
    const auto arrive =
        slot.tree_finish[p] + state.model.message_cost(up.size(), same_node);
    if (!force && Clock::now() < slot.tree_start + arrive) return;
    state.stats.reduce_merge_bytes.fetch_add(up.size(),
                                             std::memory_order_relaxed);
    if (parent == 0) {
      state.stats.root_ingest_bytes.fetch_add(up.size(),
                                              std::memory_order_relaxed);
      slot.tree_finish[0] = std::max(slot.tree_finish[0], arrive);
      slot.root_inbox.emplace_back(rank, std::move(up));
    } else {
      const auto combine = state.model.combine_cost(up.size());
      slot.combine_images(slot.tree_up[parent], up.data(), up.size());
      slot.tree_finish[parent] =
          std::max(slot.tree_finish[parent],
                   slot.nonblocking ? arrive : arrive + combine);
      if (slot.nonblocking)
        state.stats.overlapped_combine_ns.fetch_add(
            static_cast<std::uint64_t>(combine.count()),
            std::memory_order_relaxed);
    }
    --slot.tree_cursor;
  }
  auto cost = slot.tree_finish[0];
  if (slot.nonblocking) cost = stretch_nonblocking(state, cost);
  state.stats.modeled_critical_ns.fetch_add(
      static_cast<std::uint64_t>(cost.count()), std::memory_order_relaxed);
  slot.ready_time = slot.tree_start + cost;
  // The root's own merged contribution goes back to its slot for the
  // completion action.
  slot.contribs[slot.root] = std::move(slot.tree_up[0]);
  slot.tree_priced = true;
  state.cv.notify_all();
}

/// Posts this rank's contribution. The last arrival prices the completion
/// deadline: fixed payload for kReduce, the largest contribution for the
/// flat variable-length flavors (the reduction tree's critical path
/// carries the biggest payload), the explicit per-hop critical path for
/// the tree merge.
void post_collective(CommState& state, std::uint64_t ticket, int rank,
                     const std::byte* send, std::size_t bytes,
                     PostSpec&& spec) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, spec.kind);
  if (slot.arrived == 0) {
    slot.bytes = bytes;
    slot.count = spec.count;
    slot.combine = spec.combine;
    slot.root = spec.root;
    slot.nonblocking = spec.nonblocking;
    slot.radix = spec.radix;
    slot.contribs.resize(state.size());
  }
  const bool fixed_size = spec.kind == SlotKind::kReduce ||
                          spec.kind == SlotKind::kAllreduce ||
                          spec.kind == SlotKind::kReduceScatter ||
                          spec.kind == SlotKind::kAllGather;
  DISTBC_ASSERT_MSG(slot.root == spec.root &&
                        slot.nonblocking == spec.nonblocking &&
                        slot.radix == spec.radix &&
                        (!fixed_size || slot.bytes == bytes),
                    "mismatched collective participants");
  slot.contribs[rank].assign(send, send + bytes);
  if (spec.kind == SlotKind::kAllreduceMerge) {
    DISTBC_ASSERT_MSG(static_cast<bool>(spec.merge),
                      "decentralized merge needs a consumer on every rank");
    if (slot.rank_merge.empty()) slot.rank_merge.resize(state.size());
    slot.rank_merge[rank] = std::move(spec.merge);
  } else if (rank == spec.root && !is_symmetric(spec.kind)) {
    slot.root_recv = spec.root_recv;
    if (spec.kind != SlotKind::kReduce) {
      DISTBC_ASSERT_MSG(static_cast<bool>(spec.merge),
                        "merge collective needs a root-side consumer");
      slot.merge = std::move(spec.merge);
    }
  }
  if (!slot.combine_images && spec.combine_images)
    slot.combine_images = std::move(spec.combine_images);

  const auto now = Clock::now();
  slot.rank_ready[rank] =
      now + state.model.injection_cost(bytes, state.num_nodes == 1);
  if (rank != spec.root && spec.byte_counter != nullptr) {
    spec.byte_counter->fetch_add(bytes, std::memory_order_relaxed);
    // Flat flavors ship every non-root contribution to the root whole.
    state.stats.root_ingest_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  if (++slot.arrived == state.size()) {
    slot.all_arrived = true;
    if (spec.kind == SlotKind::kTreeMerge) {
      // The completion deadline is priced incrementally: combines retire
      // as their modeled subtree deadlines pass (any rank's poll, or a
      // blocking wait forcing the rest).
      schedule_tree(state, slot);
      advance_tree(state, slot, /*force=*/false);
      state.cv.notify_all();
      return;
    }
    std::chrono::nanoseconds cost{};
    std::size_t wire_bytes = slot.bytes;
    if (!fixed_size) {
      std::size_t max_bytes = 0;
      for (const auto& contrib : slot.contribs)
        max_bytes = std::max(max_bytes, contrib.size());
      slot.bytes = wire_bytes = max_bytes;
    }
    const std::uint64_t fan_bytes =
        static_cast<std::uint64_t>(wire_bytes) *
        static_cast<std::uint64_t>(state.size() - 1);
    switch (spec.kind) {
      case SlotKind::kAllreduce:
        // Reduce-scatter + all-gather butterfly; the up phase is reduce
        // traffic, the down phase distributes the result (bcast-shaped).
        cost = state.model.allreduce_cost(wire_bytes,
                                          state.max_ranks_per_node,
                                          state.num_nodes);
        state.stats.reduce_bytes.fetch_add(fan_bytes,
                                           std::memory_order_relaxed);
        state.stats.bcast_bytes.fetch_add(fan_bytes,
                                          std::memory_order_relaxed);
        break;
      case SlotKind::kReduceScatter:
        cost = state.model.butterfly_cost(wire_bytes,
                                          state.max_ranks_per_node,
                                          state.num_nodes);
        state.stats.reduce_bytes.fetch_add(fan_bytes,
                                           std::memory_order_relaxed);
        break;
      case SlotKind::kAllGather:
        cost = state.model.butterfly_cost(wire_bytes,
                                          state.max_ranks_per_node,
                                          state.num_nodes);
        state.stats.gatherv_bytes.fetch_add(fan_bytes,
                                            std::memory_order_relaxed);
        break;
      case SlotKind::kAllreduceMerge: {
        // Butterfly at the largest image. Every rank's image crosses the
        // wire at least once (counted here); the down phase carries
        // merged images whose sizes the byte layer cannot know, so only
        // the up phase is accounted. No root, so no root_ingest_bytes.
        cost = state.model.allreduce_cost(wire_bytes,
                                          state.max_ranks_per_node,
                                          state.num_nodes);
        std::uint64_t contrib_total = 0;
        for (const auto& contrib : slot.contribs)
          contrib_total += contrib.size();
        state.stats.reduce_merge_bytes.fetch_add(contrib_total,
                                                 std::memory_order_relaxed);
        break;
      }
      default:
        cost = state.model.collective_cost(
            wire_bytes, state.max_ranks_per_node, state.num_nodes);
        break;
    }
    if (slot.nonblocking) cost = stretch_nonblocking(state, cost);
    state.stats.modeled_critical_ns.fetch_add(
        static_cast<std::uint64_t>(cost.count()), std::memory_order_relaxed);
    slot.ready_time = now + cost;
    state.cv.notify_all();
  }
}

/// Root-side completion action, run exactly once after all arrivals and
/// the modeled deadline. Caller holds state.mu.
void run_completion_action(CommState& state, Slot& slot) {
  if (slot.action_done) return;
  switch (slot.kind) {
    case SlotKind::kReduce: {
      DISTBC_ASSERT(slot.root_recv != nullptr);
      std::memcpy(slot.root_recv, slot.contribs[slot.root].data(),
                  slot.bytes);
      for (int r = 0; r < state.size(); ++r) {
        if (r == slot.root) continue;
        slot.combine(slot.root_recv, slot.contribs[r].data(), slot.count);
      }
      break;
    }
    case SlotKind::kReduceMerge:
    case SlotKind::kGatherv:
      // Feed every contribution to the consumer, in rank order.
      for (int r = 0; r < state.size(); ++r)
        slot.merge(r, slot.contribs[r].data(), slot.contribs[r].size());
      break;
    case SlotKind::kTreeMerge:
      // The root's own contribution, then the top-of-tree merged images
      // (reversed so sources ascend; decoding is additive, so delivery
      // order does not affect the aggregate).
      slot.merge(slot.root, slot.contribs[slot.root].data(),
                 slot.contribs[slot.root].size());
      for (auto it = slot.root_inbox.rbegin(); it != slot.root_inbox.rend();
           ++it)
        slot.merge(it->first, it->second.data(), it->second.size());
      break;
    case SlotKind::kAllreduce:
    case SlotKind::kReduceScatter:
      // One shared full reduction in rank order (bitwise identical to the
      // rooted combine); each rank slices its share out at its own
      // completion.
      slot.payload = slot.contribs[0];
      for (int r = 1; r < state.size(); ++r)
        slot.combine(slot.payload.data(), slot.contribs[r].data(),
                     slot.count);
      break;
    case SlotKind::kAllGather:
      slot.payload.clear();
      for (const auto& contrib : slot.contribs)
        slot.payload.insert(slot.payload.end(), contrib.begin(),
                            contrib.end());
      break;
    case SlotKind::kAllreduceMerge:
      break;  // per-rank consumers; nothing shared to do
    default:
      DISTBC_ASSERT_MSG(false, "slot kind has no completion action");
  }
  slot.action_done = true;
}

/// Per-rank completion of the all-reduce family, run at this rank's own
/// completing poll or wait (after the shared action). Caller holds
/// state.mu.
void complete_symmetric(CommState& state, Slot& slot, int rank,
                        std::byte* recv) {
  switch (slot.kind) {
    case SlotKind::kAllreduce: {
      DISTBC_ASSERT(recv != nullptr);
      std::memcpy(recv, slot.payload.data(), slot.bytes);
      break;
    }
    case SlotKind::kReduceScatter: {
      DISTBC_ASSERT(recv != nullptr);
      const std::size_t block =
          slot.bytes / static_cast<std::size_t>(state.size());
      std::memcpy(recv, slot.payload.data() + block * rank, block);
      break;
    }
    case SlotKind::kAllGather: {
      DISTBC_ASSERT(recv != nullptr);
      std::memcpy(recv, slot.payload.data(), slot.payload.size());
      break;
    }
    case SlotKind::kAllreduceMerge: {
      auto& merge = slot.rank_merge[rank];
      DISTBC_ASSERT(static_cast<bool>(merge));
      for (int r = 0; r < state.size(); ++r)
        merge(r, slot.contribs[r].data(), slot.contribs[r].size());
      break;
    }
    default:
      DISTBC_ASSERT_MSG(false, "not a symmetric collective");
  }
}

/// Non-blocking poll at `rank`. For the root (or every rank of a
/// symmetric flavor): all arrived and the modeled deadline passed, then
/// the completion action runs. For a non-root: own injection deadline
/// passed (eager send). Any rank's poll of a pending tree merge advances
/// its due interior combines (the overlap hook). An unsuccessful poll of
/// a non-blocking operation burns the modeled progression time (§IV-F) -
/// at the root for rooted flavors, at every rank for symmetric ones (all
/// of them progress the butterfly) - the library only advances the
/// reduction inside test(), at real CPU cost.
bool poll_collective(CommState& state, std::uint64_t ticket, int rank,
                     std::byte* recv) {
  bool progress_pending = false;
  {
    std::lock_guard lock(state.mu);
    Slot& slot = state.slots.at(ticket);
    if (slot.kind == SlotKind::kTreeMerge && slot.all_arrived)
      advance_tree(state, slot, /*force=*/false);
    const auto now = Clock::now();
    if (is_symmetric(slot.kind)) {
      if (!slot.all_arrived || now < slot.ready_time) {
        progress_pending = slot.nonblocking;
      } else {
        run_completion_action(state, slot);
        complete_symmetric(state, slot, rank, recv);
        depart_slot(state, ticket, slot);
        return true;
      }
    } else if (rank == slot.root) {
      const bool priced =
          slot.kind != SlotKind::kTreeMerge || slot.tree_priced;
      if (!slot.all_arrived || !priced || now < slot.ready_time) {
        progress_pending = slot.nonblocking;
      } else {
        run_completion_action(state, slot);
        depart_slot(state, ticket, slot);
        return true;
      }
    } else {
      if (now >= slot.rank_ready[rank]) {
        depart_slot(state, ticket, slot);
        return true;
      }
    }
  }
  if (progress_pending && state.model.enabled &&
      state.model.ireduce_poll_cost_s > 0) {
    const auto until =
        Clock::now() + std::chrono::nanoseconds(static_cast<std::int64_t>(
                           state.model.ireduce_poll_cost_s * 1e9));
    while (Clock::now() < until) {
    }
  }
  return false;
}

void wait_collective(CommState& state, std::uint64_t ticket, int rank,
                     std::byte* recv) {
  WaitCharge charge(state.stats.reduce_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (is_symmetric(slot.kind)) {
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.ready_time);
    run_completion_action(state, slot);
    complete_symmetric(state, slot, rank, recv);
  } else if (rank == slot.root) {
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    if (slot.kind == SlotKind::kTreeMerge)
      advance_tree(state, slot, /*force=*/true);
    wait_deadline(state, lock, slot.ready_time);
    run_completion_action(state, slot);
  } else {
    // Blocking participation models the reduction tree: the rank is
    // released once everybody has arrived (its subtree is drained), or
    // after its own injection deadline, whichever is later.
    wait_predicate(state, lock, [&] { return slot.all_arrived; });
    wait_deadline(state, lock, slot.rank_ready[rank]);
  }
  depart_slot(state, ticket, slot);
}

}  // namespace

// --- Entry points over the slot protocol -------------------------------------

void Comm::reduce_bytes_impl(const std::byte* send, std::size_t bytes,
                             std::size_t count, std::byte* recv,
                             detail::CombineFn combine, int root,
                             bool blocking) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.reduce_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec;
  spec.kind = SlotKind::kReduce;
  spec.root = root;
  spec.count = count;
  spec.combine = combine;
  spec.root_recv = recv;
  spec.byte_counter = &state_->stats.reduce_bytes;
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  DISTBC_ASSERT(blocking);
  wait_collective(*state_, ticket, rank_, nullptr);
}

Request Comm::ireduce_bytes_impl(const std::byte* send, std::size_t bytes,
                                 std::size_t count, std::byte* recv,
                                 detail::CombineFn combine, int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.ireduce_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec;
  spec.kind = SlotKind::kReduce;
  spec.root = root;
  spec.nonblocking = true;
  spec.count = count;
  spec.combine = combine;
  spec.root_recv = recv;
  spec.byte_counter = &state_->stats.reduce_bytes;
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  return make_request(ticket);
}

namespace {

PostSpec mergev_spec(CommState& state, SlotKind kind,
                     detail::MergeBytesFn merge, int root, bool nonblocking) {
  PostSpec spec;
  spec.kind = kind;
  spec.root = root;
  spec.nonblocking = nonblocking;
  spec.merge = std::move(merge);
  spec.byte_counter = kind == SlotKind::kGatherv
                          ? &state.stats.gatherv_bytes
                          : &state.stats.reduce_merge_bytes;
  return spec;
}

}  // namespace

void Comm::mergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                             std::size_t bytes, detail::MergeBytesFn merge,
                             int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  auto& calls = kind == SlotKind::kGatherv ? state_->stats.gatherv_calls
                                           : state_->stats.reduce_merge_calls;
  calls.fetch_add(1, std::memory_order_relaxed);
  post_collective(*state_, ticket, rank_, send, bytes,
                  mergev_spec(*state_, kind, std::move(merge), root,
                              /*nonblocking=*/false));
  wait_collective(*state_, ticket, rank_, nullptr);
}

Request Comm::imergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                                 std::size_t bytes,
                                 detail::MergeBytesFn merge, int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  auto& calls = kind == SlotKind::kGatherv ? state_->stats.gatherv_calls
                                           : state_->stats.reduce_merge_calls;
  calls.fetch_add(1, std::memory_order_relaxed);
  post_collective(*state_, ticket, rank_, send, bytes,
                  mergev_spec(*state_, kind, std::move(merge), root,
                              /*nonblocking=*/true));
  return make_request(ticket);
}

namespace {

PostSpec tree_spec(detail::CombineImagesFn combine,
                   detail::MergeBytesFn merge, int root, int radix,
                   bool nonblocking) {
  DISTBC_ASSERT_MSG(radix >= 2, "tree merge needs radix >= 2");
  PostSpec spec;
  spec.kind = SlotKind::kTreeMerge;
  spec.root = root;
  spec.nonblocking = nonblocking;
  spec.merge = std::move(merge);
  spec.combine_images = std::move(combine);
  spec.radix = radix;
  // Upward payloads are only known once the interior combines ran; bytes
  // are accounted in advance_tree, not at post time.
  spec.byte_counter = nullptr;
  return spec;
}

}  // namespace

void Comm::tree_bytes_impl(const std::byte* send, std::size_t bytes,
                           detail::CombineImagesFn combine,
                           detail::MergeBytesFn merge, int root, int radix) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.tree_merge_calls.fetch_add(1, std::memory_order_relaxed);
  post_collective(*state_, ticket, rank_, send, bytes,
                  tree_spec(std::move(combine), std::move(merge), root, radix,
                            /*nonblocking=*/false));
  wait_collective(*state_, ticket, rank_, nullptr);
}

Request Comm::itree_bytes_impl(const std::byte* send, std::size_t bytes,
                               detail::CombineImagesFn combine,
                               detail::MergeBytesFn merge, int root,
                               int radix) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.tree_merge_calls.fetch_add(1, std::memory_order_relaxed);
  post_collective(*state_, ticket, rank_, send, bytes,
                  tree_spec(std::move(combine), std::move(merge), root, radix,
                            /*nonblocking=*/true));
  return make_request(ticket);
}

// --- All-reduce family (decentralized termination substrate) -----------------

namespace {

PostSpec symmetric_spec(SlotKind kind, bool nonblocking) {
  PostSpec spec;
  spec.kind = kind;
  spec.root = 0;  // sentinel; symmetric flavors have no root
  spec.nonblocking = nonblocking;
  // Priced and accounted at last arrival (butterfly, no root ingest).
  spec.byte_counter = nullptr;
  return spec;
}

}  // namespace

void Comm::allreduce_bytes_impl(const std::byte* send, std::size_t bytes,
                                std::size_t count, std::byte* recv,
                                detail::CombineFn combine) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.allreduce_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec = symmetric_spec(SlotKind::kAllreduce, /*nonblocking=*/false);
  spec.count = count;
  spec.combine = combine;
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  wait_collective(*state_, ticket, rank_, recv);
}

Request Comm::iallreduce_bytes_impl(const std::byte* send, std::size_t bytes,
                                    std::size_t count, std::byte* recv,
                                    detail::CombineFn combine) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.allreduce_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec = symmetric_spec(SlotKind::kAllreduce, /*nonblocking=*/true);
  spec.count = count;
  spec.combine = combine;
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  return make_request(ticket, recv);
}

void Comm::reduce_scatter_bytes_impl(const std::byte* send, std::size_t bytes,
                                     std::size_t count, std::byte* recv,
                                     detail::CombineFn combine) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.reduce_scatter_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec =
      symmetric_spec(SlotKind::kReduceScatter, /*nonblocking=*/false);
  spec.count = count;
  spec.combine = combine;
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  wait_collective(*state_, ticket, rank_, recv);
}

void Comm::all_gather_bytes_impl(const std::byte* send, std::size_t bytes,
                                 std::byte* recv) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.all_gather_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec = symmetric_spec(SlotKind::kAllGather, /*nonblocking=*/false);
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  wait_collective(*state_, ticket, rank_, recv);
}

void Comm::allmerge_bytes_impl(const std::byte* send, std::size_t bytes,
                               detail::MergeBytesFn merge) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.allreduce_merge_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec =
      symmetric_spec(SlotKind::kAllreduceMerge, /*nonblocking=*/false);
  spec.merge = std::move(merge);
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  wait_collective(*state_, ticket, rank_, nullptr);
}

Request Comm::iallmerge_bytes_impl(const std::byte* send, std::size_t bytes,
                                   detail::MergeBytesFn merge) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.allreduce_merge_calls.fetch_add(1, std::memory_order_relaxed);
  PostSpec spec =
      symmetric_spec(SlotKind::kAllreduceMerge, /*nonblocking=*/true);
  spec.merge = std::move(merge);
  post_collective(*state_, ticket, rank_, send, bytes, std::move(spec));
  return make_request(ticket);
}

// --- Barrier ----------------------------------------------------------------

namespace {

void post_barrier(CommState& state, std::uint64_t ticket, int rank) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, SlotKind::kBarrier);
  slot.rank_ready[rank] = Clock::now();
  if (++slot.arrived == state.size()) {
    slot.all_arrived = true;
    const auto cost = state.model.collective_cost(
        0, state.max_ranks_per_node, state.num_nodes);
    state.stats.modeled_critical_ns.fetch_add(
        static_cast<std::uint64_t>(cost.count()), std::memory_order_relaxed);
    slot.ready_time = Clock::now() + cost;
    state.cv.notify_all();
  }
}

bool poll_barrier(CommState& state, std::uint64_t ticket, int rank) {
  std::lock_guard lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (!slot.all_arrived || Clock::now() < slot.ready_time) return false;
  (void)rank;
  depart_slot(state, ticket, slot);
  return true;
}

void wait_barrier(CommState& state, std::uint64_t ticket) {
  WaitCharge charge(state.stats.barrier_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  wait_predicate(state, lock, [&] { return slot.all_arrived; });
  wait_deadline(state, lock, slot.ready_time);
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::barrier() {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.barrier_calls.fetch_add(1, std::memory_order_relaxed);
  post_barrier(*state_, ticket, rank_);
  wait_barrier(*state_, ticket);
}

Request Comm::ibarrier() {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.ibarrier_calls.fetch_add(1, std::memory_order_relaxed);
  post_barrier(*state_, ticket, rank_);
  return make_request(ticket);
}

// --- Broadcast ---------------------------------------------------------------

namespace {

void post_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* buffer, std::size_t bytes, int root) {
  std::lock_guard lock(state.mu);
  Slot& slot = acquire_slot(state, ticket, SlotKind::kBcast);
  if (slot.arrived == 0) {
    slot.bytes = bytes;
    slot.root = root;
  }
  DISTBC_ASSERT(slot.bytes == bytes && slot.root == root);
  ++slot.arrived;
  const auto now = Clock::now();
  if (rank == root) {
    slot.payload.assign(buffer, buffer + bytes);
    slot.action_done = true;  // payload available
    const auto cost = state.model.collective_cost(
        bytes, state.max_ranks_per_node, state.num_nodes);
    state.stats.modeled_critical_ns.fetch_add(
        static_cast<std::uint64_t>(cost.count()), std::memory_order_relaxed);
    slot.ready_time = now + cost;
    state.stats.bcast_bytes.fetch_add(bytes * (state.size() - 1),
                                      std::memory_order_relaxed);
    state.cv.notify_all();
  }
}

bool poll_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* recv) {
  std::lock_guard lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank == slot.root) {
    depart_slot(state, ticket, slot);
    return true;  // eager: root's buffer was consumed at post
  }
  if (!slot.action_done || Clock::now() < slot.ready_time) return false;
  std::memcpy(recv, slot.payload.data(), slot.bytes);
  depart_slot(state, ticket, slot);
  return true;
}

void wait_bcast(CommState& state, std::uint64_t ticket, int rank,
                std::byte* recv) {
  WaitCharge charge(state.stats.bcast_wait_ns);
  std::unique_lock lock(state.mu);
  Slot& slot = state.slots.at(ticket);
  if (rank != slot.root) {
    wait_predicate(state, lock, [&] { return slot.action_done; });
    wait_deadline(state, lock, slot.ready_time);
    std::memcpy(recv, slot.payload.data(), slot.bytes);
  }
  depart_slot(state, ticket, slot);
}

}  // namespace

void Comm::bcast_bytes_impl(std::byte* buffer, std::size_t bytes, int root,
                            bool blocking) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.bcast_calls.fetch_add(1, std::memory_order_relaxed);
  post_bcast(*state_, ticket, rank_, buffer, bytes, root);
  DISTBC_ASSERT(blocking);
  wait_bcast(*state_, ticket, rank_, buffer);
}

Request Comm::ibcast_bytes_impl(std::byte* buffer, std::size_t bytes,
                                int root) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  state_->stats.bcast_calls.fetch_add(1, std::memory_order_relaxed);
  post_bcast(*state_, ticket, rank_, buffer, bytes, root);
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  impl->recv = buffer;
  return Request(std::move(impl));
}

// --- Request ----------------------------------------------------------------

namespace {

bool poll_request(Request::Impl& impl, bool blocking);

}  // namespace

Request Comm::make_request(std::uint64_t ticket, std::byte* recv) {
  auto impl = std::make_shared<Request::Impl>();
  impl->state = state_;
  impl->ticket = ticket;
  impl->rank = rank_;
  impl->recv = recv;
  return Request(std::move(impl));
}

bool Request::test() {
  DISTBC_ASSERT_MSG(valid(), "test() on an empty request");
  if (impl_->done) return true;
  if (!poll_request(*impl_, /*blocking=*/false)) return false;
  impl_->done = true;
  return true;
}

void Request::wait() {
  DISTBC_ASSERT_MSG(valid(), "wait() on an empty request");
  if (impl_->done) return;
  poll_request(*impl_, /*blocking=*/true);
  impl_->done = true;
}

namespace {

bool poll_request(Request::Impl& impl, bool blocking) {
  CommState& state = *impl.state;
  SlotKind kind;
  {
    std::lock_guard lock(state.mu);
    kind = state.slots.at(impl.ticket).kind;
  }
  switch (kind) {
    case SlotKind::kBarrier:
      if (blocking) {
        wait_barrier(state, impl.ticket);
        return true;
      }
      return poll_barrier(state, impl.ticket, impl.rank);
    case SlotKind::kReduce:
    case SlotKind::kReduceMerge:
    case SlotKind::kTreeMerge:
    case SlotKind::kGatherv:
    case SlotKind::kAllreduce:
    case SlotKind::kReduceScatter:
    case SlotKind::kAllGather:
    case SlotKind::kAllreduceMerge:
      if (blocking) {
        wait_collective(state, impl.ticket, impl.rank, impl.recv);
        return true;
      }
      return poll_collective(state, impl.ticket, impl.rank, impl.recv);
    case SlotKind::kBcast:
      if (blocking) {
        wait_bcast(state, impl.ticket, impl.rank, impl.recv);
        return true;
      }
      return poll_bcast(state, impl.ticket, impl.rank, impl.recv);
    case SlotKind::kSplit:
    case SlotKind::kWindow:
      break;
  }
  DISTBC_ASSERT_MSG(false, "request on a non-request slot");
  return false;
}

}  // namespace

// --- Point-to-point ----------------------------------------------------------

void Comm::send_bytes_impl(const std::byte* data, std::size_t bytes, int dst,
                           int tag) {
  DISTBC_ASSERT(valid());
  DISTBC_ASSERT(dst >= 0 && dst < size() && dst != rank_);
  std::lock_guard lock(state_->mu);
  const bool same_node =
      state_->node_of_rank[rank_] == state_->node_of_rank[dst];
  detail::P2pMessage message;
  message.bytes.assign(data, data + bytes);
  message.deliver_time =
      Clock::now() + state_->model.message_cost(bytes, same_node);
  state_->mailboxes[{rank_, dst, tag}].push_back(std::move(message));
  state_->stats.p2p_messages.fetch_add(1, std::memory_order_relaxed);
  state_->stats.p2p_bytes.fetch_add(bytes, std::memory_order_relaxed);
  state_->cv.notify_all();
}

void Comm::recv_bytes_impl(std::byte* data, std::size_t bytes, int src,
                           int tag) {
  DISTBC_ASSERT(valid());
  DISTBC_ASSERT(src >= 0 && src < size() && src != rank_);
  std::unique_lock lock(state_->mu);
  const auto key = std::tuple{src, rank_, tag};
  state_->cv.wait(lock, [&] {
    const auto it = state_->mailboxes.find(key);
    return it != state_->mailboxes.end() && !it->second.empty();
  });
  auto& queue = state_->mailboxes.at(key);
  detail::P2pMessage message = std::move(queue.front());
  queue.pop_front();
  DISTBC_ASSERT_MSG(message.bytes.size() == bytes,
                    "send/recv size mismatch");
  while (Clock::now() < message.deliver_time)
    state_->cv.wait_until(lock, message.deliver_time);
  std::memcpy(data, message.bytes.data(), bytes);
}

// --- Split -------------------------------------------------------------------

Comm Comm::split(int color, int key) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  std::unique_lock lock(state_->mu);
  Slot& slot = acquire_slot(*state_, ticket, SlotKind::kSplit);
  if (slot.arrived == 0) slot.color_key.assign(size(), {kUndefinedColor, 0});
  slot.color_key[rank_] = {color, key};
  ++slot.arrived;
  if (slot.arrived == size()) {
    slot.all_arrived = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.all_arrived; });

  if (!slot.action_done) {
    // First rank past the barrier materializes every child communicator;
    // the computation is deterministic, so it does not matter which.
    std::set<int> colors;
    for (const auto& [c, k] : slot.color_key)
      if (c != kUndefinedColor) colors.insert(c);
    for (const int c : colors) {
      std::vector<std::pair<std::pair<int, int>, int>> members;  // ((key,rank),rank)
      for (int r = 0; r < size(); ++r)
        if (slot.color_key[r].first == c)
          members.push_back({{slot.color_key[r].second, r}, r});
      std::sort(members.begin(), members.end());
      // Compact node ids while preserving grouping.
      std::map<int, int> node_remap;
      std::vector<int> child_nodes;
      child_nodes.reserve(members.size());
      for (const auto& [sort_key, r] : members) {
        const int node = state_->node_of_rank[r];
        const auto it =
            node_remap.try_emplace(node, static_cast<int>(node_remap.size()))
                .first;
        child_nodes.push_back(it->second);
      }
      slot.children[c] =
          std::make_shared<CommState>(std::move(child_nodes), state_->model);
    }
    slot.action_done = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.action_done; });

  Comm child;
  if (color != kUndefinedColor) {
    // New rank = position in the (key, old rank) order within the group.
    int new_rank = 0;
    for (int r = 0; r < size(); ++r) {
      if (slot.color_key[r].first != color) continue;
      const auto mine = std::pair{key, rank_};
      const auto theirs = std::pair{slot.color_key[r].second, r};
      if (theirs < mine) ++new_rank;
    }
    child = Comm(slot.children.at(color), new_rank);
  }
  depart_slot(*state_, ticket, slot);
  return child;
}

Comm Comm::split_by_node() { return split(node(), rank()); }

Comm Comm::split_node_leaders() {
  // Leader = lowest rank on each node.
  int leader = -1;
  for (int r = 0; r < size(); ++r) {
    if (state_->node_of_rank[r] == node()) {
      leader = r;
      break;
    }
  }
  const bool is_leader = leader == rank_;
  return split(is_leader ? 0 : kUndefinedColor, node());
}

// --- Windows -------------------------------------------------------------------

std::shared_ptr<detail::WindowState> Comm::window_collective(
    std::size_t bytes) {
  DISTBC_ASSERT(valid());
  const std::uint64_t ticket = next_ticket();
  std::unique_lock lock(state_->mu);
  Slot& slot = acquire_slot(*state_, ticket, SlotKind::kWindow);
  if (slot.arrived == 0) {
    auto window = std::make_shared<detail::WindowState>();
    window->data.assign(bytes, std::byte{0});
    slot.window = std::move(window);
    slot.bytes = bytes;
  }
  DISTBC_ASSERT_MSG(slot.bytes == bytes, "window size mismatch across ranks");
  ++slot.arrived;
  if (slot.arrived == size()) {
    slot.all_arrived = true;
    state_->cv.notify_all();
  }
  state_->cv.wait(lock, [&] { return slot.all_arrived; });
  auto result = std::static_pointer_cast<detail::WindowState>(slot.window);
  depart_slot(*state_, ticket, slot);
  return result;
}

}  // namespace distbc::mpisim
