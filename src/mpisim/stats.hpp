// Communication accounting, the source of Table II's "communication volume
// per epoch" and the blocking-time shares in Figure 2b.
#pragma once

#include <atomic>
#include <cstdint>

namespace distbc::mpisim {

/// Plain copyable snapshot of the per-collective bytes-moved counters -
/// what engine results and bench JSON reports carry so payload volume can
/// be attributed to the path that moved it (dense reductions vs sparse
/// merge reductions vs gathers vs broadcasts vs window/p2p traffic).
struct CommVolume {
  std::uint64_t reduce_bytes = 0;
  std::uint64_t reduce_merge_bytes = 0;
  std::uint64_t gatherv_bytes = 0;
  std::uint64_t bcast_bytes = 0;
  std::uint64_t p2p_bytes = 0;
  /// Reduction payload arriving *directly at the root rank*: every non-root
  /// contribution under a flat reduction, but only the top-of-tree merged
  /// images under a tree merge - the metric tree-merge reductions exist to
  /// shrink (ablation_tree_merge). A locality view of bytes already counted
  /// above, so it is excluded from aggregation_bytes()/total(). All-reduce
  /// flavors have no root and charge nothing here.
  std::uint64_t root_ingest_bytes = 0;
  /// Sum of the modeled completion costs charged to collectives on this
  /// communicator - the analytic aggregation critical path. A pure
  /// function of payload bytes and topology, so deterministic-mode runs
  /// report it machine-independently (the CI modeled_s anchors).
  std::uint64_t modeled_critical_ns = 0;
  /// Modeled interior-combine compute that non-blocking tree merges moved
  /// OFF the completion deadline (overlapped with the caller's sampling);
  /// blocking tree merges keep it on the critical path instead.
  std::uint64_t overlapped_combine_ns = 0;
  /// The comm substrate that moved these bytes (comm::substrate_name
  /// string, static storage). Empty until a substrate stamps it; += keeps
  /// the first non-empty tag so a world + hierarchy sum stays attributed.
  const char* substrate = "";

  [[nodiscard]] double modeled_seconds() const {
    return static_cast<double>(modeled_critical_ns) * 1e-9;
  }

  /// Bytes moved by the epoch-aggregation paths (dense elementwise
  /// reductions, sparse merge reductions, and the window/p2p substrate the
  /// hierarchical pre-reduction rides) - the ablation_frame_rep metric.
  [[nodiscard]] std::uint64_t aggregation_bytes() const {
    return reduce_bytes + reduce_merge_bytes + gatherv_bytes + p2p_bytes;
  }

  [[nodiscard]] std::uint64_t total() const {
    return aggregation_bytes() + bcast_bytes;
  }

  CommVolume& operator+=(const CommVolume& other) {
    reduce_bytes += other.reduce_bytes;
    reduce_merge_bytes += other.reduce_merge_bytes;
    gatherv_bytes += other.gatherv_bytes;
    bcast_bytes += other.bcast_bytes;
    p2p_bytes += other.p2p_bytes;
    root_ingest_bytes += other.root_ingest_bytes;
    modeled_critical_ns += other.modeled_critical_ns;
    overlapped_combine_ns += other.overlapped_combine_ns;
    if (substrate[0] == '\0') substrate = other.substrate;
    return *this;
  }
};

/// Shared per-communicator counters; all ranks update them atomically.
struct CommStats {
  std::atomic<std::uint64_t> reduce_calls{0};
  std::atomic<std::uint64_t> ireduce_calls{0};
  std::atomic<std::uint64_t> reduce_merge_calls{0};
  std::atomic<std::uint64_t> tree_merge_calls{0};
  std::atomic<std::uint64_t> gatherv_calls{0};
  std::atomic<std::uint64_t> barrier_calls{0};
  std::atomic<std::uint64_t> ibarrier_calls{0};
  std::atomic<std::uint64_t> bcast_calls{0};
  std::atomic<std::uint64_t> allreduce_calls{0};
  std::atomic<std::uint64_t> reduce_scatter_calls{0};
  std::atomic<std::uint64_t> all_gather_calls{0};
  std::atomic<std::uint64_t> allreduce_merge_calls{0};
  std::atomic<std::uint64_t> p2p_messages{0};
  /// Payload bytes moved by reductions: buffer size x (participants - 1),
  /// i.e. every non-root contribution crosses the wire once.
  std::atomic<std::uint64_t> reduce_bytes{0};
  /// Non-root payload bytes of variable-length merge reductions (sparse
  /// frame images) and gathers - the same crossing-the-wire convention.
  std::atomic<std::uint64_t> reduce_merge_bytes{0};
  std::atomic<std::uint64_t> gatherv_bytes{0};
  std::atomic<std::uint64_t> bcast_bytes{0};
  std::atomic<std::uint64_t> p2p_bytes{0};
  /// Reduction payload arriving directly at the root (see CommVolume).
  std::atomic<std::uint64_t> root_ingest_bytes{0};
  /// Modeled critical-path nanoseconds and overlapped interior-combine
  /// compute (see CommVolume for the reporting semantics).
  std::atomic<std::uint64_t> modeled_critical_ns{0};
  std::atomic<std::uint64_t> overlapped_combine_ns{0};
  /// Wall time ranks spent blocked inside collectives - per-collective
  /// blocking-share telemetry for Figure 2b-style reporting and tooling.
  /// Only blocking calls (and blocking waits on requests) are charged;
  /// unsuccessful test() polls are not. Variable-length reductions and
  /// gathers charge reduce_wait_ns (they are the aggregation path).
  std::atomic<std::uint64_t> reduce_wait_ns{0};
  std::atomic<std::uint64_t> barrier_wait_ns{0};
  std::atomic<std::uint64_t> bcast_wait_ns{0};

  [[nodiscard]] CommVolume volume() const {
    CommVolume v;
    v.reduce_bytes = reduce_bytes.load(std::memory_order_relaxed);
    v.reduce_merge_bytes = reduce_merge_bytes.load(std::memory_order_relaxed);
    v.gatherv_bytes = gatherv_bytes.load(std::memory_order_relaxed);
    v.bcast_bytes = bcast_bytes.load(std::memory_order_relaxed);
    v.p2p_bytes = p2p_bytes.load(std::memory_order_relaxed);
    v.root_ingest_bytes = root_ingest_bytes.load(std::memory_order_relaxed);
    v.modeled_critical_ns =
        modeled_critical_ns.load(std::memory_order_relaxed);
    v.overlapped_combine_ns =
        overlapped_combine_ns.load(std::memory_order_relaxed);
    return v;
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return volume().total(); }

  [[nodiscard]] double total_wait_seconds() const {
    return static_cast<double>(
               reduce_wait_ns.load(std::memory_order_relaxed) +
               barrier_wait_ns.load(std::memory_order_relaxed) +
               bcast_wait_ns.load(std::memory_order_relaxed)) *
           1e-9;
  }

  void reset() {
    reduce_calls = 0;
    ireduce_calls = 0;
    reduce_merge_calls = 0;
    tree_merge_calls = 0;
    gatherv_calls = 0;
    barrier_calls = 0;
    ibarrier_calls = 0;
    bcast_calls = 0;
    allreduce_calls = 0;
    reduce_scatter_calls = 0;
    all_gather_calls = 0;
    allreduce_merge_calls = 0;
    p2p_messages = 0;
    reduce_bytes = 0;
    reduce_merge_bytes = 0;
    gatherv_bytes = 0;
    bcast_bytes = 0;
    p2p_bytes = 0;
    root_ingest_bytes = 0;
    modeled_critical_ns = 0;
    overlapped_combine_ns = 0;
    reduce_wait_ns = 0;
    barrier_wait_ns = 0;
    bcast_wait_ns = 0;
  }
};

}  // namespace distbc::mpisim
