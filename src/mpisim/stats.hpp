// Communication accounting, the source of Table II's "communication volume
// per epoch" and the blocking-time shares in Figure 2b.
#pragma once

#include <atomic>
#include <cstdint>

namespace distbc::mpisim {

/// Shared per-communicator counters; all ranks update them atomically.
struct CommStats {
  std::atomic<std::uint64_t> reduce_calls{0};
  std::atomic<std::uint64_t> ireduce_calls{0};
  std::atomic<std::uint64_t> barrier_calls{0};
  std::atomic<std::uint64_t> ibarrier_calls{0};
  std::atomic<std::uint64_t> bcast_calls{0};
  std::atomic<std::uint64_t> p2p_messages{0};
  /// Payload bytes moved by reductions: buffer size x (participants - 1),
  /// i.e. every non-root contribution crosses the wire once.
  std::atomic<std::uint64_t> reduce_bytes{0};
  std::atomic<std::uint64_t> bcast_bytes{0};
  std::atomic<std::uint64_t> p2p_bytes{0};
  /// Wall time ranks spent blocked inside collectives - per-collective
  /// blocking-share telemetry for Figure 2b-style reporting and tooling.
  /// Only blocking calls (and blocking waits on requests) are charged;
  /// unsuccessful test() polls are not.
  std::atomic<std::uint64_t> reduce_wait_ns{0};
  std::atomic<std::uint64_t> barrier_wait_ns{0};
  std::atomic<std::uint64_t> bcast_wait_ns{0};

  [[nodiscard]] std::uint64_t total_bytes() const {
    return reduce_bytes.load(std::memory_order_relaxed) +
           bcast_bytes.load(std::memory_order_relaxed) +
           p2p_bytes.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double total_wait_seconds() const {
    return static_cast<double>(
               reduce_wait_ns.load(std::memory_order_relaxed) +
               barrier_wait_ns.load(std::memory_order_relaxed) +
               bcast_wait_ns.load(std::memory_order_relaxed)) *
           1e-9;
  }

  void reset() {
    reduce_calls = 0;
    ireduce_calls = 0;
    barrier_calls = 0;
    ibarrier_calls = 0;
    bcast_calls = 0;
    p2p_messages = 0;
    reduce_bytes = 0;
    bcast_bytes = 0;
    p2p_bytes = 0;
    reduce_wait_ns = 0;
    barrier_wait_ns = 0;
    bcast_wait_ns = 0;
  }
};

}  // namespace distbc::mpisim
