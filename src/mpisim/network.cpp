#include "mpisim/network.hpp"

#include <cmath>

namespace distbc::mpisim {

namespace {

int ceil_log2(int value) {
  int bits = 0;
  int running = 1;
  while (running < value) {
    running *= 2;
    ++bits;
  }
  return bits;
}

std::chrono::nanoseconds to_ns(double seconds) {
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(seconds * 1e9));
}

}  // namespace

std::chrono::nanoseconds NetworkModel::collective_cost(std::uint64_t bytes,
                                                       int ranks_per_node,
                                                       int num_nodes) const {
  if (!enabled) return std::chrono::nanoseconds::zero();
  const int local_hops = ceil_log2(ranks_per_node);
  const int remote_hops = ceil_log2(num_nodes);
  const double bytes_d = static_cast<double>(bytes);
  const double local =
      local_hops * (local_latency_s + bytes_d / local_bandwidth_bps);
  const double remote =
      remote_hops * (remote_latency_s + bytes_d / remote_bandwidth_bps);
  return to_ns(launch_latency_s + local + remote);
}

std::chrono::nanoseconds NetworkModel::message_cost(std::uint64_t bytes,
                                                    bool same_node) const {
  if (!enabled) return std::chrono::nanoseconds::zero();
  const double bytes_d = static_cast<double>(bytes);
  const double cost =
      same_node ? local_latency_s + bytes_d / local_bandwidth_bps
                : remote_latency_s + bytes_d / remote_bandwidth_bps;
  return to_ns(cost);
}

std::chrono::nanoseconds NetworkModel::butterfly_cost(
    std::uint64_t bytes, int ranks_per_node, int num_nodes) const {
  if (!enabled) return std::chrono::nanoseconds::zero();
  const int local_hops = ceil_log2(ranks_per_node);
  const int remote_hops = ceil_log2(num_nodes);
  const double bytes_d = static_cast<double>(bytes);
  // Each hop class moves a (P-1)/P share of the buffer in total across
  // its log2 steps (halving: B/2 + B/4 + ...), unlike collective_cost's
  // full-buffer-per-hop tree.
  const double local_share =
      ranks_per_node > 1
          ? static_cast<double>(ranks_per_node - 1) / ranks_per_node
          : 0.0;
  const double remote_share =
      num_nodes > 1 ? static_cast<double>(num_nodes - 1) / num_nodes : 0.0;
  const double local = local_hops * local_latency_s +
                       local_share * bytes_d / local_bandwidth_bps;
  const double remote = remote_hops * remote_latency_s +
                        remote_share * bytes_d / remote_bandwidth_bps;
  return to_ns(launch_latency_s + local + remote);
}

std::chrono::nanoseconds NetworkModel::allreduce_cost(std::uint64_t bytes,
                                                      int ranks_per_node,
                                                      int num_nodes) const {
  if (ring_allreduce) {
    if (!enabled) return std::chrono::nanoseconds::zero();
    const int total_ranks = ranks_per_node * num_nodes;
    if (total_ranks <= 1) return to_ns(launch_latency_s);
    // NCCL ring: reduce-scatter then all-gather, each (P-1) steps moving
    // B/P per step. The slowest link prices every step, so hop parameters
    // are remote as soon as the ring crosses a node boundary.
    const double alpha = num_nodes > 1 ? remote_latency_s : local_latency_s;
    const double beta =
        num_nodes > 1 ? remote_bandwidth_bps : local_bandwidth_bps;
    const double steps = 2.0 * (total_ranks - 1);
    const double share =
        steps / total_ranks * static_cast<double>(bytes) / beta;
    return to_ns(launch_latency_s + steps * alpha + share);
  }
  return butterfly_cost(bytes, ranks_per_node, num_nodes) +
         butterfly_cost(bytes, ranks_per_node, num_nodes);
}

std::chrono::nanoseconds NetworkModel::combine_cost(
    std::uint64_t bytes) const {
  if (!enabled) return std::chrono::nanoseconds::zero();
  return to_ns(static_cast<double>(bytes) / combine_bandwidth_bps);
}

std::chrono::nanoseconds NetworkModel::injection_cost(std::uint64_t bytes,
                                                      bool same_node) const {
  if (!enabled) return std::chrono::nanoseconds::zero();
  const double bytes_d = static_cast<double>(bytes);
  return to_ns(same_node ? bytes_d / local_bandwidth_bps
                         : bytes_d / remote_bandwidth_bps);
}

NetworkModel NetworkModel::disabled() {
  NetworkModel model;
  model.enabled = false;
  return model;
}

}  // namespace distbc::mpisim
