// RMA-style shared window: the substrate for the paper's node-local
// aggregation (§IV-E), which uses MPI passive-target one-sided communication
// over shared memory to pre-reduce sampling states inside each compute node
// before the global inter-node reduction.
#pragma once

#include <bit>
#include <span>
#include <vector>

#include "mpisim/comm.hpp"

namespace distbc::mpisim {

template <typename T>
class Window {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective over `comm`: every rank must construct the window with the
  /// same element count. Contents start zeroed.
  Window(Comm& comm, std::size_t count)
      : comm_(&comm),
        count_(count),
        state_(comm.window_collective(count * sizeof(T))) {
    // All ranks size the shared touched bitmap; idempotent under the lock.
    std::lock_guard lock(state_->mu);
    state_->touched_bits.resize((count + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Passive-target accumulate: atomically (under the window lock) adds
  /// `values` elementwise into the window. The touched union becomes the
  /// whole window (read_touched_pairs falls back to the dense read).
  void accumulate(std::span<const T> values) {
    DISTBC_ASSERT(values.size() == count_);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i < count_; ++i) data[i] += values[i];
    state_->dense_touched = true;
    comm_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    comm_->stats().p2p_bytes.fetch_add(values.size_bytes(),
                                       std::memory_order_relaxed);
  }

  /// Passive-target scatter-accumulate: atomically (under the window lock)
  /// adds flat (index, delta) pairs into the window - the sparse-frame
  /// path of the §IV-E pre-reduction, moving O(nonzeros) instead of O(V).
  /// Touched slots are tracked so the leader read-back stays O(union nnz).
  void accumulate_pairs(std::span<const T> pairs) {
    DISTBC_ASSERT(pairs.size() % 2 == 0);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
      const auto index = static_cast<std::size_t>(pairs[i]);
      DISTBC_ASSERT(index < count_);
      data[index] += pairs[i + 1];
      state_->touched_bits[index / 64] |= std::uint64_t{1} << (index % 64);
    }
    comm_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    comm_->stats().p2p_bytes.fetch_add(pairs.size_bytes(),
                                       std::memory_order_relaxed);
  }

  /// Windowed read-back: appends (index, value) pairs (ascending indices,
  /// nonzero values only) for every slot touched since the last clear -
  /// O(union of accumulated nonzeros), the leader's per-epoch cost under
  /// sparse pre-reduction. Returns false without touching `pairs` when a
  /// dense accumulate made the union the whole window; callers then pay
  /// the O(V) read() instead. Only meaningful for integral T.
  [[nodiscard]] bool read_touched_pairs(std::vector<T>& pairs) const {
    std::lock_guard lock(state_->mu);
    if (state_->dense_touched) return false;
    const T* data = reinterpret_cast<const T*>(state_->data.data());
    for (std::size_t w = 0; w < state_->touched_bits.size(); ++w) {
      std::uint64_t bits = state_->touched_bits[w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t index = w * 64 + bit;
        if (data[index] == 0) continue;  // deltas may cancel to zero
        pairs.push_back(static_cast<T>(index));
        pairs.push_back(data[index]);
      }
    }
    return true;
  }

  /// Zeroes only the touched slots and resets the tracking (O(touched);
  /// falls back to the full sweep after a dense accumulate).
  void clear_touched() {
    std::lock_guard lock(state_->mu);
    if (state_->dense_touched) {
      std::fill(state_->data.begin(), state_->data.end(), std::byte{0});
      state_->dense_touched = false;
    } else {
      T* data = reinterpret_cast<T*>(state_->data.data());
      for (std::size_t w = 0; w < state_->touched_bits.size(); ++w) {
        std::uint64_t bits = state_->touched_bits[w];
        while (bits != 0) {
          const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          data[w * 64 + bit] = 0;
        }
      }
    }
    std::fill(state_->touched_bits.begin(), state_->touched_bits.end(), 0);
  }

  /// Copies the window contents into `out` under the window lock.
  void read(std::span<T> out) const {
    DISTBC_ASSERT(out.size() == count_);
    std::lock_guard lock(state_->mu);
    const T* data = reinterpret_cast<const T*>(state_->data.data());
    std::copy(data, data + count_, out.begin());
  }

  /// Zeroes the window under the lock (start of a new aggregation round).
  void clear() {
    std::lock_guard lock(state_->mu);
    std::fill(state_->data.begin(), state_->data.end(), std::byte{0});
    std::fill(state_->touched_bits.begin(), state_->touched_bits.end(), 0);
    state_->dense_touched = false;
  }

  /// Synchronization fence: a barrier over the owning communicator.
  void fence() { comm_->barrier(); }

 private:
  Comm* comm_;
  std::size_t count_;
  std::shared_ptr<detail::WindowState> state_;
};

}  // namespace distbc::mpisim
