// RMA-style shared window: the substrate for the paper's node-local
// aggregation (§IV-E), which uses MPI passive-target one-sided communication
// over shared memory to pre-reduce sampling states inside each compute node
// before the global inter-node reduction.
#pragma once

#include <span>

#include "mpisim/comm.hpp"

namespace distbc::mpisim {

template <typename T>
class Window {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective over `comm`: every rank must construct the window with the
  /// same element count. Contents start zeroed.
  Window(Comm& comm, std::size_t count)
      : comm_(&comm),
        count_(count),
        state_(comm.window_collective(count * sizeof(T))) {}

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Passive-target accumulate: atomically (under the window lock) adds
  /// `values` elementwise into the window.
  void accumulate(std::span<const T> values) {
    DISTBC_ASSERT(values.size() == count_);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i < count_; ++i) data[i] += values[i];
    comm_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    comm_->stats().p2p_bytes.fetch_add(values.size_bytes(),
                                       std::memory_order_relaxed);
  }

  /// Passive-target scatter-accumulate: atomically (under the window lock)
  /// adds flat (index, delta) pairs into the window - the sparse-frame
  /// path of the §IV-E pre-reduction, moving O(nonzeros) instead of O(V).
  void accumulate_pairs(std::span<const T> pairs) {
    DISTBC_ASSERT(pairs.size() % 2 == 0);
    std::lock_guard lock(state_->mu);
    T* data = reinterpret_cast<T*>(state_->data.data());
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
      const auto index = static_cast<std::size_t>(pairs[i]);
      DISTBC_ASSERT(index < count_);
      data[index] += pairs[i + 1];
    }
    comm_->stats().p2p_messages.fetch_add(1, std::memory_order_relaxed);
    comm_->stats().p2p_bytes.fetch_add(pairs.size_bytes(),
                                       std::memory_order_relaxed);
  }

  /// Copies the window contents into `out` under the window lock.
  void read(std::span<T> out) const {
    DISTBC_ASSERT(out.size() == count_);
    std::lock_guard lock(state_->mu);
    const T* data = reinterpret_cast<const T*>(state_->data.data());
    std::copy(data, data + count_, out.begin());
  }

  /// Zeroes the window under the lock (start of a new aggregation round).
  void clear() {
    std::lock_guard lock(state_->mu);
    std::fill(state_->data.begin(), state_->data.end(), std::byte{0});
  }

  /// Synchronization fence: a barrier over the owning communicator.
  void fence() { comm_->barrier(); }

 private:
  Comm* comm_;
  std::size_t count_;
  std::shared_ptr<detail::WindowState> state_;
};

}  // namespace distbc::mpisim
