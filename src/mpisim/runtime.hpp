// Simulated MPI runtime: spawns ranks as threads and hands each its Comm.
//
// RuntimeConfig mirrors the paper's deployment knobs: number of ranks
// (MPI processes), ranks per node (the paper launches one process per NUMA
// socket, i.e. two per compute node, §IV-E), and the interconnect model.
#pragma once

#include <functional>

#include "mpisim/comm.hpp"

namespace distbc::mpisim {

struct RuntimeConfig {
  int num_ranks = 1;
  int ranks_per_node = 1;
  NetworkModel network{};
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);

  /// Runs `rank_main` on every rank in its own thread and joins them all.
  /// The first exception thrown by any rank is rethrown here afterwards.
  /// May be called multiple times; every call creates a fresh world
  /// communicator.
  void run(const std::function<void(Comm&)>& rank_main);

  [[nodiscard]] const RuntimeConfig& config() const { return config_; }

  /// Statistics of the world communicator of the most recent run().
  [[nodiscard]] const CommStats& last_world_stats() const;

 private:
  RuntimeConfig config_;
  std::shared_ptr<detail::CommState> last_world_;
};

}  // namespace distbc::mpisim
