#include "mpisim/window.hpp"

namespace distbc::mpisim {

// Window<T> is header-only; instantiate the types the library uses so that
// template errors surface when this library builds rather than in clients.
template class Window<std::uint64_t>;
template class Window<double>;

}  // namespace distbc::mpisim
