// Simulated MPI communicator.
//
// mpisim substitutes for an MPI library on a cluster (none is available in
// this environment): ranks are threads inside one process, and every data
// exchange goes through explicit slot-based collectives with an interconnect
// cost model (see network.hpp). The API mirrors the MPI subset the paper's
// algorithm needs — Reduce / Ireduce / Ibarrier / Bcast / Ibcast /
// communicator split — plus the all-reduce family (allreduce /
// reduce_scatter / all_gather / allreduce_merge, priced as
// recursive-halving/doubling butterflies) that decentralized termination
// rides, and point-to-point send/recv for tests.
//
// Semantics notes:
//  * Collectives must be called by all ranks of the communicator in the
//    same order (standard MPI requirement); slots are matched by a per-rank
//    call counter.
//  * Sends are eager: the contribution is copied into the slot at post time,
//    so a non-root Ireduce completes after its own (modeled) injection cost
//    and the caller may immediately reuse its buffer — same guarantee real
//    MPI gives on request completion.
//  * The root's completion time is the last arrival plus a modeled
//    tree-reduction cost; blocking calls sleep until then, non-blocking
//    requests report done only once the deadline passed. This makes
//    communication/computation overlap behave as on a real network.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "mpisim/network.hpp"
#include "mpisim/stats.hpp"
#include "support/assert.hpp"

namespace distbc::mpisim {

enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

namespace detail {

using Clock = std::chrono::steady_clock;
using CombineFn = void (*)(void* acc, const void* in, std::size_t count);

template <typename T, ReduceOp Op>
void combine_impl(void* acc_void, const void* in_void, std::size_t count) {
  T* acc = static_cast<T*>(acc_void);
  const T* in = static_cast<const T*>(in_void);
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (Op == ReduceOp::kSum) {
      acc[i] += in[i];
    } else if constexpr (Op == ReduceOp::kMin) {
      acc[i] = in[i] < acc[i] ? in[i] : acc[i];
    } else {
      acc[i] = in[i] > acc[i] ? in[i] : acc[i];
    }
  }
}

template <typename T>
CombineFn combine_fn(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return &combine_impl<T, ReduceOp::kSum>;
    case ReduceOp::kMin:
      return &combine_impl<T, ReduceOp::kMin>;
    case ReduceOp::kMax:
      return &combine_impl<T, ReduceOp::kMax>;
  }
  return nullptr;
}

enum class SlotKind : std::uint8_t { kBarrier, kReduce, kReduceMerge,
                                     kTreeMerge, kGatherv, kBcast,
                                     kAllreduce, kReduceScatter, kAllGather,
                                     kAllreduceMerge, kSplit, kWindow };

/// Root-side consumer of one variable-length contribution:
/// (source rank, payload pointer, payload bytes).
using MergeBytesFn =
    std::function<void(int, const std::byte*, std::size_t)>;

/// Interior-hop combiner of a tree merge: additively folds one upward
/// image into the accumulator, re-encoding in place (e.g. sparse merge
/// join with mid-tree densification).
using CombineImagesFn =
    std::function<void(std::vector<std::byte>&, const std::byte*,
                       std::size_t)>;

struct Slot {
  SlotKind kind{};
  int arrived = 0;
  int departed = 0;
  bool all_arrived = false;
  bool action_done = false;  // root combine / payload availability
  Clock::time_point ready_time{};
  std::vector<Clock::time_point> rank_ready;  // per-rank completion deadline

  // Reduce state.
  std::size_t bytes = 0;
  std::size_t count = 0;
  CombineFn combine = nullptr;
  int root = -1;
  bool nonblocking = false;  // Ireduce: §IV-F progression penalty applies
  std::vector<std::vector<std::byte>> contribs;
  std::byte* root_recv = nullptr;

  // Bcast payload (copied from the root).
  std::vector<std::byte> payload;

  // Variable-length merge state (kReduceMerge / kGatherv / kTreeMerge):
  // the root's per-contribution consumer, run at completion.
  MergeBytesFn merge;

  // Decentralized merge state (kAllreduceMerge): every rank's own
  // consumer, replaying all contributions in rank order at that rank's
  // completion (contributions outlive every consumer: the slot is erased
  // only once all ranks departed).
  std::vector<MergeBytesFn> rank_merge;

  // Tree-merge state (kTreeMerge): fan-in, the interior-hop combiner
  // (taken from the first posting rank; all ranks must pass equivalent
  // callables), and the merged top-of-tree images awaiting the root.
  int radix = 0;
  CombineImagesFn combine_images;
  std::vector<std::pair<int, std::vector<std::byte>>> root_inbox;

  // Deferred tree-merge schedule (kTreeMerge): contributions in
  // heap-position order, per-position completion clocks relative to
  // tree_start (the last arrival), and a descending cursor over the
  // positions still to process (children before parents). Interior
  // combines run in advance_tree as their modeled due times pass - any
  // rank's poll makes progress, overlapping combines with the caller's
  // sampling - instead of all at once inside the last-arrival critical
  // section; tree_priced flips once the root deadline is known.
  std::vector<std::vector<std::byte>> tree_up;
  std::vector<std::chrono::nanoseconds> tree_finish;
  Clock::time_point tree_start{};
  int tree_cursor = 0;
  bool tree_scheduled = false;
  bool tree_priced = false;

  // Split state.
  std::vector<std::pair<int, int>> color_key;  // per-rank (color, key)
  std::map<int, std::shared_ptr<struct CommState>> children;

  // Window creation state.
  std::shared_ptr<void> window;
};

struct P2pMessage {
  std::vector<std::byte> bytes;
  Clock::time_point deliver_time;
};

/// Backing storage of an RMA-style shared window (paper §IV-E: passive
/// target one-sided communication over node-local shared memory).
struct WindowState {
  std::mutex mu;
  std::vector<std::byte> data;
  /// Touched-slot tracking for windowed sparse read-back (one bit per
  /// element slot, maintained by Window<T>): scatter-accumulates set bits;
  /// a full-span accumulate sets dense_touched instead (the union is the
  /// whole window, so leaders fall back to the dense read).
  std::vector<std::uint64_t> touched_bits;
  bool dense_touched = false;
};

struct CommState {
  CommState(std::vector<int> node_of_rank_in, NetworkModel model_in);

  [[nodiscard]] int size() const {
    return static_cast<int>(node_of_rank.size());
  }

  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, Slot> slots;
  std::map<std::tuple<int, int, int>, std::deque<P2pMessage>> mailboxes;

  std::vector<int> node_of_rank;
  int num_nodes = 1;
  int max_ranks_per_node = 1;
  NetworkModel model;
  CommStats stats;
};

}  // namespace detail

class Comm;

/// Handle for a pending non-blocking operation. Copyable; all copies refer
/// to the same pending operation.
class Request {
 public:
  Request() = default;

  /// Polls for completion; performs the completion action (root combine,
  /// bcast copy-out) exactly once. Idempotent after success.
  bool test();

  /// Blocks until the operation completes.
  void wait();

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  /// Implementation detail (public so the out-of-line pollers can name it;
  /// not part of the user API).
  struct Impl {
    std::shared_ptr<detail::CommState> state;
    std::uint64_t ticket = 0;
    int rank = -1;
    std::byte* recv = nullptr;  // bcast / all-reduce destination, if any
    bool done = false;
  };

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

/// Sentinel color for split(): the calling rank joins no child communicator.
inline constexpr int kUndefinedColor = -1;

class Comm {
 public:
  Comm() = default;  // invalid communicator (e.g. split with undefined color)

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size(); }
  [[nodiscard]] int node() const { return state_->node_of_rank[rank_]; }
  [[nodiscard]] int num_nodes() const { return state_->num_nodes; }
  /// Largest number of ranks sharing one node - the cluster-shape fact
  /// collective cost charging is based on.
  [[nodiscard]] int max_ranks_per_node() const {
    return state_->max_ranks_per_node;
  }

  // --- Collectives -------------------------------------------------------

  void barrier();
  [[nodiscard]] Request ibarrier();

  template <typename T>
  void reduce(std::span<const T> send, std::span<T> recv, int root,
              ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(rank_ != root || recv.size() == send.size());
    reduce_bytes_impl(as_bytes_ptr(send.data()), send.size() * sizeof(T),
                      send.size(), as_bytes_ptr_mut(recv.data()),
                      detail::combine_fn<T>(op), root, /*blocking=*/true);
  }

  template <typename T>
  [[nodiscard]] Request ireduce(std::span<const T> send, std::span<T> recv,
                                int root, ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(rank_ != root || recv.size() == send.size());
    return ireduce_bytes_impl(as_bytes_ptr(send.data()),
                              send.size() * sizeof(T), send.size(),
                              as_bytes_ptr_mut(recv.data()),
                              detail::combine_fn<T>(op), root);
  }

  /// All-reduce: every rank receives the full reduction. One collective,
  /// priced as a recursive-halving reduce-scatter followed by a
  /// recursive-doubling all-gather (butterfly alpha-beta accounting) -
  /// no root hotspot, so nothing lands in root_ingest_bytes. The shared
  /// reduction combines contributions in rank order, so the result is
  /// bitwise identical on every rank to a reduce-to-rank-0 + broadcast.
  template <typename T>
  void allreduce(std::span<const T> send, std::span<T> recv,
                 ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(recv.size() == send.size());
    allreduce_bytes_impl(as_bytes_ptr(send.data()), send.size() * sizeof(T),
                         send.size(), as_bytes_ptr_mut(recv.data()),
                         detail::combine_fn<T>(op));
  }

  /// Non-blocking all-reduce; every rank completes once the butterfly's
  /// modeled deadline passes (§IV-F progression penalty and poll tax
  /// apply to every rank - all of them progress the butterfly).
  template <typename T>
  [[nodiscard]] Request iallreduce(std::span<const T> send, std::span<T> recv,
                                   ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(recv.size() == send.size());
    return iallreduce_bytes_impl(as_bytes_ptr(send.data()),
                                 send.size() * sizeof(T), send.size(),
                                 as_bytes_ptr_mut(recv.data()),
                                 detail::combine_fn<T>(op));
  }

  /// Reduce-scatter: the elementwise reduction of every rank's `send`
  /// (size() * recv.size() elements each) scattered in rank-order blocks;
  /// rank r receives block r. One recursive-halving butterfly phase.
  template <typename T>
  void reduce_scatter(std::span<const T> send, std::span<T> recv,
                      ReduceOp op = ReduceOp::kSum) {
    DISTBC_ASSERT(send.size() ==
                  recv.size() * static_cast<std::size_t>(size()));
    reduce_scatter_bytes_impl(as_bytes_ptr(send.data()),
                              send.size() * sizeof(T), send.size(),
                              as_bytes_ptr_mut(recv.data()),
                              detail::combine_fn<T>(op));
  }

  /// All-gather: the rank-order concatenation of every rank's `send`
  /// (equal sizes) delivered to every rank; recv holds size() *
  /// send.size() elements. One recursive-doubling butterfly phase.
  /// reduce_scatter + all_gather compose to allreduce.
  template <typename T>
  void all_gather(std::span<const T> send, std::span<T> recv) {
    DISTBC_ASSERT(recv.size() ==
                  send.size() * static_cast<std::size_t>(size()));
    all_gather_bytes_impl(as_bytes_ptr(send.data()), send.size() * sizeof(T),
                          as_bytes_ptr_mut(recv.data()));
  }

  template <typename T>
  void bcast(std::span<T> buffer, int root) {
    bcast_bytes_impl(as_bytes_ptr_mut(buffer.data()),
                     buffer.size() * sizeof(T), root, /*blocking=*/true);
  }

  template <typename T>
  [[nodiscard]] Request ibcast(std::span<T> buffer, int root) {
    return ibcast_bytes_impl(as_bytes_ptr_mut(buffer.data()),
                             buffer.size() * sizeof(T), root);
  }

  // --- Variable-length collectives (sparse frame images, §IV-F over the
  // --- delta representation) ---------------------------------------------
  //
  // Unlike the fixed-size collectives above, every rank may contribute a
  // different element count. Contributions are eager (buffer reusable on
  // return/completion); the root's completion deadline is the last arrival
  // plus the alpha-beta tree cost charged at the *largest* contribution
  // (the reduction tree's critical path carries the biggest payload; with
  // auto-densifying frames, merged payloads stay within the densify
  // threshold of the dense frame, bounding union growth). Non-root bytes
  // are accounted per path (CommStats::reduce_merge_bytes/gatherv_bytes).

  /// Sparse-merge reduction: `merge(src_rank, payload)` is invoked at the
  /// root exactly once per rank, in rank order, when the reduction
  /// completes (inside the blocking call, or the completing test()/wait()
  /// of the non-blocking form). `merge` runs under the communicator lock
  /// and must not call back into the communicator. Non-roots may pass any
  /// callable; it is ignored.
  template <typename T, typename MergeFn>
  void reduce_merge(std::span<const T> send, MergeFn&& merge, int root) {
    mergev_bytes_impl(detail::SlotKind::kReduceMerge,
                      as_bytes_ptr(send.data()), send.size() * sizeof(T),
                      erase_merge<T>(std::forward<MergeFn>(merge), root),
                      root);
  }

  /// Non-blocking merge reduction; progresses like Ireduce (§IV-F
  /// progression penalty and poll tax apply).
  template <typename T, typename MergeFn>
  [[nodiscard]] Request ireduce_merge(std::span<const T> send,
                                      MergeFn&& merge, int root) {
    return imergev_bytes_impl(detail::SlotKind::kReduceMerge,
                              as_bytes_ptr(send.data()),
                              send.size() * sizeof(T),
                              erase_merge<T>(std::forward<MergeFn>(merge),
                                             root),
                              root);
  }

  /// Decentralized merge reduction: like reduce_merge, but EVERY rank
  /// supplies its own `merge(src_rank, payload)` consumer, and each
  /// rank's consumer replays all size() contributions in rank order at
  /// that rank's own completion - identical inputs in identical order, so
  /// every rank reconstructs the root-side aggregate bitwise. Priced as
  /// an all-reduce butterfly at the largest contribution; there is no
  /// root, so nothing lands in root_ingest_bytes (the decentralized
  /// termination path this exists for). Consumers run under the
  /// communicator lock and must not call back into the communicator.
  template <typename T, typename MergeFn>
  void allreduce_merge(std::span<const T> send, MergeFn&& merge) {
    allmerge_bytes_impl(as_bytes_ptr(send.data()), send.size() * sizeof(T),
                        erase_merge_all<T>(std::forward<MergeFn>(merge)));
  }

  /// Non-blocking decentralized merge; progresses like Iallreduce (§IV-F
  /// progression penalty, and every rank pays the poll tax). The consumer
  /// must own its state (capture by value): it runs at this rank's
  /// completing test()/wait(), which other ranks' polls may precede.
  template <typename T, typename MergeFn>
  [[nodiscard]] Request iallreduce_merge(std::span<const T> send,
                                         MergeFn&& merge) {
    return iallmerge_bytes_impl(
        as_bytes_ptr(send.data()), send.size() * sizeof(T),
        erase_merge_all<T>(std::forward<MergeFn>(merge)));
  }

  /// Tree-merge reduction: contributions combine at interior ranks of a
  /// radix-`radix` tree rooted at `root` instead of all landing at the
  /// root. Every rank supplies the same image combiner
  /// `combine(acc, contribution)` - an additive in-place re-encode (e.g.
  /// epoch::merge_images, which densifies mid-tree once the merged image
  /// stops paying). Each tree hop is charged a point-to-point alpha-beta
  /// cost and the completion deadline follows the tree's critical path, so
  /// latency grows with depth (log_radix P) while the root ingests only
  /// its direct children's merged images (root_ingest_bytes) instead of
  /// every per-rank payload. At completion the root's `merge` consumer
  /// receives the root's own contribution (src = root) and one merged
  /// image per direct child subtree (src = that child's rank). Both
  /// callables run under the communicator lock and must not call back
  /// into the communicator; decoding must be order-independent (additive).
  /// Lifetime: the slot stores the FIRST poster's combiner and invokes it
  /// at the last arrival - by which time a non-root's non-blocking form
  /// may already have completed - so the combiner must own its state
  /// (capture by value), never reference the caller's stack.
  template <typename T, typename CombineFn, typename MergeFn>
  void reduce_merge_tree(std::span<const T> send, CombineFn&& combine,
                         MergeFn&& merge, int root, int radix) {
    tree_bytes_impl(as_bytes_ptr(send.data()), send.size() * sizeof(T),
                    erase_combine<T>(std::forward<CombineFn>(combine)),
                    erase_merge<T>(std::forward<MergeFn>(merge), root), root,
                    radix);
  }

  /// Non-blocking tree merge; progresses like Ireduce (§IV-F progression
  /// penalty and poll tax apply). Interior combines are charged as each
  /// subtree's modeled deadline passes - any rank's test() advances them,
  /// the same progress-polling hook the engine uses for ibcast - so their
  /// compute cost overlaps the caller's sampling instead of extending the
  /// completion deadline (the blocking form keeps combine time on the
  /// critical path).
  template <typename T, typename CombineFn, typename MergeFn>
  [[nodiscard]] Request ireduce_merge_tree(std::span<const T> send,
                                           CombineFn&& combine,
                                           MergeFn&& merge, int root,
                                           int radix) {
    return itree_bytes_impl(
        as_bytes_ptr(send.data()), send.size() * sizeof(T),
        erase_combine<T>(std::forward<CombineFn>(combine)),
        erase_merge<T>(std::forward<MergeFn>(merge), root), root, radix);
  }

  /// Variable-length gather: at the root, `recv` is resized to size() and
  /// recv[r] receives rank r's contribution; untouched at non-roots.
  template <typename T>
  void gatherv(std::span<const T> send, std::vector<std::vector<T>>& recv,
               int root) {
    mergev_bytes_impl(detail::SlotKind::kGatherv, as_bytes_ptr(send.data()),
                      send.size() * sizeof(T), erase_gather<T>(recv, root),
                      root);
  }

  /// Non-blocking gatherv; `recv` must stay alive until completion.
  template <typename T>
  [[nodiscard]] Request igatherv(std::span<const T> send,
                                 std::vector<std::vector<T>>& recv,
                                 int root) {
    return imergev_bytes_impl(detail::SlotKind::kGatherv,
                              as_bytes_ptr(send.data()),
                              send.size() * sizeof(T),
                              erase_gather<T>(recv, root), root);
  }

  // --- Point-to-point (used by tests and the window substrate) -----------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    send_bytes_impl(as_bytes_ptr(data.data()), data.size() * sizeof(T), dst,
                    tag);
  }

  template <typename T>
  void recv(std::span<T> data, int src, int tag) {
    recv_bytes_impl(as_bytes_ptr_mut(data.data()), data.size() * sizeof(T),
                    src, tag);
  }

  // --- Topology ----------------------------------------------------------

  /// Splits into child communicators by color, ranked by (key, old rank).
  /// Ranks passing kUndefinedColor receive an invalid Comm.
  [[nodiscard]] Comm split(int color, int key);

  /// Child communicator of all ranks on this rank's node (paper §IV-E).
  [[nodiscard]] Comm split_by_node();

  /// Child communicator of the first rank of each node (the paper's global
  /// communicator for the inter-node reduction); other ranks get an
  /// invalid Comm.
  [[nodiscard]] Comm split_node_leaders();

  [[nodiscard]] CommStats& stats() { return state_->stats; }
  [[nodiscard]] const NetworkModel& network() const { return state_->model; }

  /// The interconnect model's charged duration for one collective over this
  /// communicator's topology moving `bytes` per hop - the analytic anchor
  /// the tune/ microbench reports its measurements against.
  [[nodiscard]] double modeled_collective_seconds(std::uint64_t bytes) const {
    return std::chrono::duration<double>(
               state_->model.collective_cost(bytes, state_->max_ranks_per_node,
                                             state_->num_nodes))
        .count();
  }

  /// Collective: creates (or attaches to) a shared window of `bytes` zeroed
  /// bytes. All ranks receive the same state. Used by Window<T>.
  [[nodiscard]] std::shared_ptr<detail::WindowState> window_collective(
      std::size_t bytes);

 private:
  friend class Runtime;
  template <typename T>
  friend class Window;

  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  static const std::byte* as_bytes_ptr(const void* p) {
    return static_cast<const std::byte*>(p);
  }
  static std::byte* as_bytes_ptr_mut(void* p) {
    return static_cast<std::byte*>(p);
  }

  std::uint64_t next_ticket() { return ticket_++; }

  /// A Request handle for a freshly posted non-blocking slot. `recv` is
  /// the completion destination of the all-reduce family (null for the
  /// rooted flavors, whose destination lives in the slot).
  [[nodiscard]] Request make_request(std::uint64_t ticket,
                                     std::byte* recv = nullptr);

  /// Wraps a typed merge callable as the byte-level consumer stored in the
  /// slot; non-roots carry an empty function (their callable is ignored).
  template <typename T, typename MergeFn>
  detail::MergeBytesFn erase_merge(MergeFn&& merge, int root) {
    if (rank_ != root) return {};
    return [m = std::forward<MergeFn>(merge)](int src, const std::byte* data,
                                              std::size_t bytes) mutable {
      m(src, std::span<const T>(reinterpret_cast<const T*>(data),
                                bytes / sizeof(T)));
    };
  }

  /// Like erase_merge, but every rank keeps its callable (the
  /// decentralized merge has a consumer per rank, not per root).
  template <typename T, typename MergeFn>
  detail::MergeBytesFn erase_merge_all(MergeFn&& merge) {
    return [m = std::forward<MergeFn>(merge)](int src, const std::byte* data,
                                              std::size_t bytes) mutable {
      m(src, std::span<const T>(reinterpret_cast<const T*>(data),
                                bytes / sizeof(T)));
    };
  }

  template <typename T>
  detail::MergeBytesFn erase_gather(std::vector<std::vector<T>>& recv,
                                    int root) {
    if (rank_ != root) return {};
    recv.assign(static_cast<std::size_t>(size()), {});
    return [&recv](int src, const std::byte* data, std::size_t bytes) {
      const T* typed = reinterpret_cast<const T*>(data);
      recv[static_cast<std::size_t>(src)].assign(typed,
                                                 typed + bytes / sizeof(T));
    };
  }

  /// Wraps a typed in-place image combiner as the byte-level callable the
  /// tree-merge slot stores (reused word scratch; images are word-typed at
  /// the caller, byte-typed in slot storage).
  template <typename T, typename CombineFn>
  detail::CombineImagesFn erase_combine(CombineFn&& combine) {
    return [c = std::forward<CombineFn>(combine), words = std::vector<T>()](
               std::vector<std::byte>& acc, const std::byte* in,
               std::size_t bytes) mutable {
      const T* acc_typed = reinterpret_cast<const T*>(acc.data());
      words.assign(acc_typed, acc_typed + acc.size() / sizeof(T));
      c(words, std::span<const T>(reinterpret_cast<const T*>(in),
                                  bytes / sizeof(T)));
      const auto* out = reinterpret_cast<const std::byte*>(words.data());
      acc.assign(out, out + words.size() * sizeof(T));
    };
  }

 public:
  // Byte-level data plane. The typed templates above funnel into these;
  // they are also the forwarding surface comm::Substrate implementations
  // ride, so a substrate backend reuses the slot protocol (and with it
  // the deterministic rank-order merge replay) without re-erasing types.
  void mergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                         std::size_t bytes, detail::MergeBytesFn merge,
                         int root);
  Request imergev_bytes_impl(detail::SlotKind kind, const std::byte* send,
                             std::size_t bytes, detail::MergeBytesFn merge,
                             int root);
  void tree_bytes_impl(const std::byte* send, std::size_t bytes,
                       detail::CombineImagesFn combine,
                       detail::MergeBytesFn merge, int root, int radix);
  Request itree_bytes_impl(const std::byte* send, std::size_t bytes,
                           detail::CombineImagesFn combine,
                           detail::MergeBytesFn merge, int root, int radix);

  void reduce_bytes_impl(const std::byte* send, std::size_t bytes,
                         std::size_t count, std::byte* recv,
                         detail::CombineFn combine, int root, bool blocking);
  Request ireduce_bytes_impl(const std::byte* send, std::size_t bytes,
                             std::size_t count, std::byte* recv,
                             detail::CombineFn combine, int root);
  void allreduce_bytes_impl(const std::byte* send, std::size_t bytes,
                            std::size_t count, std::byte* recv,
                            detail::CombineFn combine);
  Request iallreduce_bytes_impl(const std::byte* send, std::size_t bytes,
                                std::size_t count, std::byte* recv,
                                detail::CombineFn combine);
  void reduce_scatter_bytes_impl(const std::byte* send, std::size_t bytes,
                                 std::size_t count, std::byte* recv,
                                 detail::CombineFn combine);
  void all_gather_bytes_impl(const std::byte* send, std::size_t bytes,
                             std::byte* recv);
  void allmerge_bytes_impl(const std::byte* send, std::size_t bytes,
                           detail::MergeBytesFn merge);
  Request iallmerge_bytes_impl(const std::byte* send, std::size_t bytes,
                               detail::MergeBytesFn merge);
  void bcast_bytes_impl(std::byte* buffer, std::size_t bytes, int root,
                        bool blocking);
  Request ibcast_bytes_impl(std::byte* buffer, std::size_t bytes, int root);
  void send_bytes_impl(const std::byte* data, std::size_t bytes, int dst,
                       int tag);
  void recv_bytes_impl(std::byte* data, std::size_t bytes, int src, int tag);

 private:
  std::shared_ptr<detail::CommState> state_;
  int rank_ = -1;
  std::uint64_t ticket_ = 0;
};

}  // namespace distbc::mpisim
