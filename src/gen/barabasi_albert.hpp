// Barabasi-Albert preferential attachment: every new vertex attaches to
// `attach` existing vertices with probability proportional to degree.
// A second power-law model for generator cross-validation in tests.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace distbc::gen {

[[nodiscard]] graph::Graph barabasi_albert(graph::Vertex num_vertices,
                                           std::uint32_t attach,
                                           std::uint64_t seed);

}  // namespace distbc::gen
