// Threshold random hyperbolic graph generator, the paper's second synthetic
// model (power-law exponent 3, |E| ≈ 30 |V|).
//
// Vertices are placed in a hyperbolic disk of radius R with radial density
// alpha * sinh(alpha r) / (cosh(alpha R) - 1) and uniform angle; two vertices
// connect iff their hyperbolic distance is at most R. The power-law exponent
// is gamma = 2 * alpha + 1, so gamma = 3 corresponds to alpha = 1. R is
// calibrated from the target average degree using the Gugelmann et al.
// asymptotic expectation.
//
// Generation uses the band partitioning of von Looz et al.: the disk is cut
// into concentric bands, each band's vertices are sorted by angle, and for
// every vertex only an angular window (computed from the band's inner
// radius) is examined — near-linear work instead of all n^2 pairs.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace distbc::gen {

struct HyperbolicParams {
  std::uint32_t num_vertices = 1u << 16;
  double average_degree = 60.0;  // 2 * edge_factor; paper uses |E| = 30 |V|
  double gamma = 3.0;            // power-law exponent, must be > 2
  std::uint32_t num_bands = 0;   // 0 = auto (ceil(log2 n))
};

[[nodiscard]] graph::Graph hyperbolic(const HyperbolicParams& params,
                                      std::uint64_t seed);

/// Hyperbolic distance between polar points (r1, t1) and (r2, t2);
/// exposed for tests.
[[nodiscard]] double hyperbolic_distance(double r1, double t1, double r2,
                                         double t2);

}  // namespace distbc::gen
