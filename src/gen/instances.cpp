#include "gen/instances.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "gen/hyperbolic.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"
#include "support/assert.hpp"

namespace distbc::gen {

namespace {

graph::Graph build_road(double scale, std::uint64_t seed, std::uint32_t width,
                        std::uint32_t height) {
  RoadParams params;
  // Scale area by `scale`, keeping the aspect ratio (and thus the
  // diameter-vs-size relation) intact.
  const double side = std::sqrt(scale);
  params.width = std::max(4u, static_cast<std::uint32_t>(width * side));
  params.height = std::max(4u, static_cast<std::uint32_t>(height * side));
  return road(params, seed);
}

graph::Graph build_rmat(double scale, std::uint64_t seed, std::uint32_t base_scale,
                        double edge_factor) {
  RmatParams params;
  const int shift = scale >= 1.0 ? 0
                                 : static_cast<int>(std::round(-std::log2(scale)));
  params.scale = base_scale > static_cast<std::uint32_t>(shift) + 4
                     ? base_scale - static_cast<std::uint32_t>(shift)
                     : 4;
  params.edge_factor = edge_factor;
  return graph::largest_component(rmat(params, seed));
}

graph::Graph build_hyperbolic(double scale, std::uint64_t seed,
                              std::uint32_t base_vertices, double avg_degree) {
  HyperbolicParams params;
  params.num_vertices = std::max(
      64u, static_cast<std::uint32_t>(base_vertices * scale));
  params.average_degree = avg_degree;
  return graph::largest_component(hyperbolic(params, seed));
}

std::vector<InstanceSpec> make_suite() {
  std::vector<InstanceSpec> suite;

  // --- Road networks: sparse, near-planar, huge diameter. -----------------
  suite.push_back({.name = "road-pa-proxy",
                   .paper_name = "roadNet-PA",
                   .family = InstanceFamily::kRoad,
                   .paper_vertices = 1'087'562,
                   .paper_edges = 1'541'514,
                   .paper_diameter = 794,
                   .build = [](double s, std::uint64_t seed) {
                     return build_road(s, seed, 360, 120);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "road-ca-proxy",
                   .paper_name = "roadNet-CA",
                   .family = InstanceFamily::kRoad,
                   .paper_vertices = 1'957'027,
                   .paper_edges = 2'760'388,
                   .paper_diameter = 865,
                   .build = [](double s, std::uint64_t seed) {
                     return build_road(s, seed, 440, 150);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "road-ne-proxy",
                   .paper_name = "dimacs9-NE",
                   .family = InstanceFamily::kRoad,
                   .paper_vertices = 1'524'453,
                   .paper_edges = 3'868'020,
                   .paper_diameter = 2'098,
                   .build = [](double s, std::uint64_t seed) {
                     // Long, thin region: highest diameter of the suite.
                     return build_road(s, seed, 1000, 56);
                   },
                   .bench_epsilon = 0.01});

  // --- Social networks: heavy tail, avg degree 15-76, tiny diameter. ------
  suite.push_back({.name = "orkut-proxy",
                   .paper_name = "orkut-links",
                   .family = InstanceFamily::kSocial,
                   .paper_vertices = 3'072'441,
                   .paper_edges = 117'184'899,
                   .paper_diameter = 10,
                   .build = [](double s, std::uint64_t seed) {
                     return build_rmat(s, seed, 15, 38.0);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "dbpedia-proxy",
                   .paper_name = "dbpedia-link",
                   .family = InstanceFamily::kSocial,
                   .paper_vertices = 18'265'512,
                   .paper_edges = 136'535'446,
                   .paper_diameter = 12,
                   .build = [](double s, std::uint64_t seed) {
                     return build_rmat(s, seed, 16, 7.5);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "wikipedia-proxy",
                   .paper_name = "wikipedia_link_en",
                   .family = InstanceFamily::kSocial,
                   .paper_vertices = 13'591'759,
                   .paper_edges = 437'266'152,
                   .paper_diameter = 10,
                   .build = [](double s, std::uint64_t seed) {
                     return build_rmat(s, seed, 15, 32.0);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "twitter-proxy",
                   .paper_name = "twitter",
                   .family = InstanceFamily::kSocial,
                   .paper_vertices = 41'652'230,
                   .paper_edges = 1'468'365'480,
                   .paper_diameter = 23,
                   .build = [](double s, std::uint64_t seed) {
                     return build_rmat(s, seed, 16, 35.0);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "friendster-proxy",
                   .paper_name = "friendster",
                   .family = InstanceFamily::kSocial,
                   .paper_vertices = 67'492'106,
                   .paper_edges = 2'585'071'391,
                   .paper_diameter = 38,
                   .build = [](double s, std::uint64_t seed) {
                     return build_hyperbolic(s, seed, 1u << 16, 60.0);
                   },
                   .bench_epsilon = 0.01});

  // --- Hyperlink/web graphs: heavy tail with moderate diameter. -----------
  suite.push_back({.name = "uk2002-proxy",
                   .paper_name = "dimacs10-uk-2002",
                   .family = InstanceFamily::kWeb,
                   .paper_vertices = 18'459'128,
                   .paper_edges = 261'556'721,
                   .paper_diameter = 45,
                   .build = [](double s, std::uint64_t seed) {
                     return build_hyperbolic(s, seed, 1u << 15, 28.0);
                   },
                   .bench_epsilon = 0.01});
  suite.push_back({.name = "uk2007-proxy",
                   .paper_name = "dimacs10-uk-2007-05",
                   .family = InstanceFamily::kWeb,
                   .paper_vertices = 104'288'749,
                   .paper_edges = 3'293'805'080,
                   .paper_diameter = 112,
                   .build = [](double s, std::uint64_t seed) {
                     return build_hyperbolic(s, seed, 1u << 16, 63.0);
                   },
                   .bench_epsilon = 0.01});
  return suite;
}

std::vector<InstanceSpec> make_quick_suite() {
  std::vector<InstanceSpec> suite;
  suite.push_back({.name = "quick-road",
                   .paper_name = "(road smoke instance)",
                   .family = InstanceFamily::kRoad,
                   .build = [](double s, std::uint64_t seed) {
                     return build_road(s, seed, 80, 40);
                   },
                   .bench_epsilon = 0.05});
  suite.push_back({.name = "quick-social",
                   .paper_name = "(social smoke instance)",
                   .family = InstanceFamily::kSocial,
                   .build = [](double s, std::uint64_t seed) {
                     return build_rmat(s, seed, 11, 16.0);
                   },
                   .bench_epsilon = 0.05});
  suite.push_back({.name = "quick-web",
                   .paper_name = "(web smoke instance)",
                   .family = InstanceFamily::kWeb,
                   .build = [](double s, std::uint64_t seed) {
                     return build_hyperbolic(s, seed, 2048, 16.0);
                   },
                   .bench_epsilon = 0.05});
  return suite;
}

}  // namespace

const std::vector<InstanceSpec>& instance_suite() {
  static const std::vector<InstanceSpec> suite = make_suite();
  return suite;
}

const std::vector<InstanceSpec>& quick_suite() {
  static const std::vector<InstanceSpec> suite = make_quick_suite();
  return suite;
}

const InstanceSpec& instance_by_name(const std::string& name) {
  for (const auto& spec : instance_suite())
    if (spec.name == name) return spec;
  for (const auto& spec : quick_suite())
    if (spec.name == name) return spec;
  std::fprintf(stderr, "unknown instance '%s'; valid names:\n", name.c_str());
  for (const auto& spec : instance_suite())
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  for (const auto& spec : quick_suite())
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  std::exit(2);
}

}  // namespace distbc::gen
