// Road-network-like generator.
//
// The paper's hardest shared-memory instances are road networks
// (roadNet-PA/CA, dimacs9-NE): near-planar, average degree < 3, and diameter
// in the hundreds to thousands — exactly the regime where sampling via BFS
// is slow and many epochs are needed. Real DIMACS/KONECT road graphs are not
// available offline, so this generator produces a perturbed grid with the
// same signature: a W x H lattice where each lattice edge survives with
// probability `keep`, plus a few local diagonal shortcuts; the largest
// connected component is returned.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace distbc::gen {

struct RoadParams {
  std::uint32_t width = 512;
  std::uint32_t height = 128;
  double keep = 0.80;              // survival probability of lattice edges
  double shortcut_fraction = 0.02; // diagonal shortcuts per vertex
};

[[nodiscard]] graph::Graph road(const RoadParams& params, std::uint64_t seed);

}  // namespace distbc::gen
