#include "gen/hyperbolic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "graph/builder.hpp"
#include "support/random.hpp"

namespace distbc::gen {

namespace {

constexpr double kPi = std::numbers::pi;

/// Inverse-CDF sample of the radial coordinate:
/// F(r) = (cosh(alpha r) - 1) / (cosh(alpha R) - 1).
double sample_radius(Rng& rng, double alpha, double radius) {
  const double u = rng.next_double();
  const double cosh_ar = 1.0 + u * (std::cosh(alpha * radius) - 1.0);
  return std::acosh(cosh_ar) / alpha;
}

/// Disk radius such that the expected average degree matches `target`
/// (Gugelmann, Panagiotou, Peter asymptotics):
///   E[deg] ~ (2 / pi) * n * e^{-R/2} * (alpha / (alpha - 1/2))^2.
double calibrate_radius(double n, double alpha, double target) {
  DISTBC_ASSERT_MSG(alpha > 0.5, "gamma must exceed 2 (alpha > 1/2)");
  const double xi = alpha / (alpha - 0.5);
  return 2.0 * std::log(2.0 * n * xi * xi / (kPi * target));
}

}  // namespace

double hyperbolic_distance(double r1, double t1, double r2, double t2) {
  const double dt = kPi - std::abs(kPi - std::abs(t1 - t2));
  const double arg = std::cosh(r1) * std::cosh(r2) -
                     std::sinh(r1) * std::sinh(r2) * std::cos(dt);
  return std::acosh(std::max(1.0, arg));
}

graph::Graph hyperbolic(const HyperbolicParams& params, std::uint64_t seed) {
  DISTBC_ASSERT(params.num_vertices >= 2);
  DISTBC_ASSERT(params.gamma > 2.0);
  const auto n = params.num_vertices;
  const double alpha = (params.gamma - 1.0) / 2.0;
  const double radius =
      calibrate_radius(static_cast<double>(n), alpha, params.average_degree);
  const std::uint32_t num_bands =
      params.num_bands > 0
          ? params.num_bands
          : std::max(2u, static_cast<std::uint32_t>(std::ceil(
                             std::log2(static_cast<double>(n)))));

  Rng rng(seed);
  std::vector<double> vertex_radius(n);
  std::vector<double> vertex_angle(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    vertex_radius[v] = sample_radius(rng, alpha, radius);
    vertex_angle[v] = rng.next_double() * 2.0 * kPi;
  }

  // Concentric bands with geometrically shrinking widths toward the rim,
  // where most vertices concentrate. band_floor[j] is the inner radius.
  std::vector<double> band_floor(num_bands + 1);
  for (std::uint32_t j = 0; j <= num_bands; ++j) {
    const double frac = static_cast<double>(j) / num_bands;
    band_floor[j] = radius * (1.0 - std::pow(2.0, -frac * 10.0)) /
                    (1.0 - std::pow(2.0, -10.0));
  }
  band_floor[0] = 0.0;
  band_floor[num_bands] = radius + 1e-9;

  auto band_of = [&](double r) {
    const auto it =
        std::upper_bound(band_floor.begin(), band_floor.end(), r);
    const auto j = static_cast<std::uint32_t>(it - band_floor.begin());
    return std::min(j == 0 ? 0u : j - 1, num_bands - 1);
  };

  // Per band: vertex ids sorted by angle.
  std::vector<std::vector<graph::Vertex>> bands(num_bands);
  for (std::uint32_t v = 0; v < n; ++v)
    bands[band_of(vertex_radius[v])].push_back(v);
  for (auto& band : bands) {
    std::sort(band.begin(), band.end(),
              [&](graph::Vertex a, graph::Vertex b) {
                return vertex_angle[a] < vertex_angle[b];
              });
  }

  // Max angular separation at which (r1, band inner radius rb) can still be
  // within hyperbolic distance R. Monotone in rb, so using the band floor
  // yields a superset of true neighbours, each checked exactly below.
  auto angular_window = [&](double r1, double rb) {
    if (r1 + rb <= radius) return kPi;  // always connected regardless of angle
    const double num = std::cosh(r1) * std::cosh(rb) - std::cosh(radius);
    const double den = std::sinh(r1) * std::sinh(rb);
    if (den <= 0.0) return kPi;
    const double cos_dt = num / den;
    if (cos_dt <= -1.0) return kPi;
    if (cos_dt >= 1.0) return 0.0;
    return std::acos(cos_dt);
  };

  graph::Builder builder(n);
  builder.reserve(static_cast<std::size_t>(params.average_degree / 2.0 * n));

  // Scan candidates of vertex v inside `band` within +-window of v's angle.
  auto scan_band = [&](graph::Vertex v, const std::vector<graph::Vertex>& band,
                       double window, bool same_band) {
    if (band.empty()) return;
    const double theta = vertex_angle[v];
    auto angle_less = [&](graph::Vertex a, double value) {
      return vertex_angle[a] < value;
    };
    // Examine the circular interval [theta - window, theta + window].
    const double lo = theta - window;
    const double hi = theta + window;
    auto emit_range = [&](double from, double to) {
      auto first = std::lower_bound(band.begin(), band.end(), from, angle_less);
      for (auto it = first; it != band.end() && vertex_angle[*it] <= to; ++it) {
        const graph::Vertex u = *it;
        if (u == v) continue;
        // In the shared band, count each pair once via id ordering.
        if (same_band && u < v) continue;
        if (hyperbolic_distance(vertex_radius[v], theta, vertex_radius[u],
                                vertex_angle[u]) <= radius) {
          builder.add_edge(v, u);
        }
      }
    };
    if (window >= kPi) {
      emit_range(0.0, 2.0 * kPi);
    } else {
      if (lo < 0.0) emit_range(lo + 2.0 * kPi, 2.0 * kPi);
      emit_range(std::max(0.0, lo), std::min(hi, 2.0 * kPi));
      if (hi > 2.0 * kPi) emit_range(0.0, hi - 2.0 * kPi);
    }
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t home = band_of(vertex_radius[v]);
    for (std::uint32_t j = home; j < num_bands; ++j) {
      const double window = angular_window(vertex_radius[v], band_floor[j]);
      if (window <= 0.0) continue;
      scan_band(v, bands[j], window, j == home);
    }
  }
  return builder.finish();
}

}  // namespace distbc::gen
