// Erdos-Renyi G(n, m)-style generator: m candidate edges sampled uniformly
// with replacement, then deduplicated. Used in tests as the "no structure"
// control model.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace distbc::gen {

[[nodiscard]] graph::Graph erdos_renyi(graph::Vertex num_vertices,
                                       std::uint64_t num_edges,
                                       std::uint64_t seed);

}  // namespace distbc::gen
