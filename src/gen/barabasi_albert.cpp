#include "gen/barabasi_albert.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "support/random.hpp"

namespace distbc::gen {

graph::Graph barabasi_albert(graph::Vertex num_vertices, std::uint32_t attach,
                             std::uint64_t seed) {
  DISTBC_ASSERT(attach >= 1);
  DISTBC_ASSERT(num_vertices > attach);

  Rng rng(seed);
  graph::Builder builder(num_vertices);

  // Endpoint list trick: picking a uniform entry of `endpoints` selects a
  // vertex with probability proportional to its degree.
  std::vector<graph::Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(num_vertices) * attach * 2);

  // Seed clique over the first (attach + 1) vertices.
  for (graph::Vertex u = 0; u <= attach; ++u) {
    for (graph::Vertex v = u + 1; v <= attach; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (graph::Vertex v = attach + 1; v < num_vertices; ++v) {
    for (std::uint32_t k = 0; k < attach; ++k) {
      const graph::Vertex target =
          endpoints[rng.next_bounded(endpoints.size())];
      // Parallel edges collapse in the builder; acceptable for BA.
      builder.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.finish();
}

}  // namespace distbc::gen
