#include "gen/erdos_renyi.hpp"

#include "graph/builder.hpp"
#include "support/random.hpp"

namespace distbc::gen {

graph::Graph erdos_renyi(graph::Vertex num_vertices, std::uint64_t num_edges,
                         std::uint64_t seed) {
  DISTBC_ASSERT(num_vertices >= 2);
  Rng rng(seed);
  graph::Builder builder(num_vertices);
  builder.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const auto [u, v] = rng.next_distinct_pair(num_vertices);
    builder.add_edge(static_cast<graph::Vertex>(u),
                     static_cast<graph::Vertex>(v));
  }
  return builder.finish();
}

}  // namespace distbc::gen
