#include "gen/rmat.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "support/random.hpp"

namespace distbc::gen {

graph::Graph rmat(const RmatParams& params, std::uint64_t seed) {
  DISTBC_ASSERT(params.scale >= 1 && params.scale <= 31);
  const double sum = params.a + params.b + params.c + params.d;
  DISTBC_ASSERT_MSG(std::abs(sum - 1.0) < 1e-9,
                    "R-MAT quadrant probabilities must sum to 1");

  const auto n = static_cast<graph::Vertex>(1u << params.scale);
  const auto target_edges =
      static_cast<std::uint64_t>(params.edge_factor * n);

  Rng rng(seed);
  graph::Builder builder(n);
  builder.reserve(target_edges);

  for (std::uint64_t i = 0; i < target_edges; ++i) {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    for (std::uint32_t bit = params.scale; bit > 0; --bit) {
      // Jitter the quadrant probabilities per level, then renormalize.
      const double na = params.a * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double nb = params.b * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double nc = params.c * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double nd = params.d * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double total = na + nb + nc + nd;
      const double pick = rng.next_double() * total;
      u <<= 1;
      v <<= 1;
      if (pick < na) {
        // upper-left quadrant: no bits set
      } else if (pick < na + nb) {
        v |= 1;
      } else if (pick < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.add_edge(u, v);
  }
  return builder.finish();
}

}  // namespace distbc::gen
