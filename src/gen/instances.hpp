// Proxy-instance suite mirroring the paper's Table I.
//
// The paper evaluates on the 10 largest non-bipartite KONECT graphs (road,
// social, hyperlink networks) with up to 3.3 billion edges. Those data sets
// are not available offline and exceed single-host memory, so each row is
// substituted by a *synthetic proxy* with the same structural signature
// (degree regime, heavy tail or not, diameter regime), scaled down by
// roughly 2^4 - 2^10. DESIGN.md documents the substitution rationale;
// EXPERIMENTS.md records the paper-vs-proxy comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace distbc::gen {

enum class InstanceFamily : std::uint8_t { kRoad, kSocial, kWeb };

struct InstanceSpec {
  std::string name;        // proxy name, e.g. "road-pa-proxy"
  std::string paper_name;  // KONECT/DIMACS name in the paper's Table I
  InstanceFamily family = InstanceFamily::kSocial;

  // The paper's Table I row for side-by-side reporting.
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
  std::uint32_t paper_diameter = 0;

  /// Builds the proxy at the given size scale (1.0 = default proxy size;
  /// benches use < 1 for quick runs). Result is connected (largest CC).
  std::function<graph::Graph(double scale, std::uint64_t seed)> build;

  /// Approximation error used by benches on this proxy. Scaled up from the
  /// paper's 0.001 so that sample counts stay proportionate to the scaled
  /// instance sizes.
  double bench_epsilon = 0.01;
};

/// All 10 proxies, in the paper's Table I order.
const std::vector<InstanceSpec>& instance_suite();

/// Lookup by proxy name; aborts with a message listing valid names if
/// absent.
const InstanceSpec& instance_by_name(const std::string& name);

/// Small instances for unit tests and quick smoke benches (a road grid,
/// a social R-MAT, a hyperbolic web proxy — each a few thousand vertices).
const std::vector<InstanceSpec>& quick_suite();

}  // namespace distbc::gen
