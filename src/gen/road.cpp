#include "gen/road.hpp"

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "support/random.hpp"

namespace distbc::gen {

graph::Graph road(const RoadParams& params, std::uint64_t seed) {
  DISTBC_ASSERT(params.width >= 2 && params.height >= 2);
  DISTBC_ASSERT(params.keep > 0.0 && params.keep <= 1.0);
  const std::uint64_t n64 =
      static_cast<std::uint64_t>(params.width) * params.height;
  DISTBC_ASSERT_MSG(n64 < graph::kInvalidVertex, "grid too large");
  const auto n = static_cast<graph::Vertex>(n64);

  Rng rng(seed);
  graph::Builder builder(n);
  auto id = [&](std::uint32_t x, std::uint32_t y) {
    return static_cast<graph::Vertex>(y * params.width + x);
  };

  for (std::uint32_t y = 0; y < params.height; ++y) {
    for (std::uint32_t x = 0; x < params.width; ++x) {
      if (x + 1 < params.width && rng.next_bool(params.keep))
        builder.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < params.height && rng.next_bool(params.keep))
        builder.add_edge(id(x, y), id(x, y + 1));
      // Local diagonal shortcuts model highway ramps / bridges.
      if (x + 1 < params.width && y + 1 < params.height &&
          rng.next_bool(params.shortcut_fraction)) {
        builder.add_edge(id(x, y), id(x + 1, y + 1));
      }
    }
  }
  return graph::largest_component(builder.finish());
}

}  // namespace distbc::gen
