// R-MAT generator (Chakrabarti, Zhan, Faloutsos), the paper's first
// synthetic model: (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) matching the
// Graph500 benchmark, |E| = edge_factor * |V|.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace distbc::gen {

struct RmatParams {
  std::uint32_t scale = 16;      // |V| = 2^scale
  double edge_factor = 30.0;     // undirected edges per vertex (paper: 30)
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Per-level multiplicative noise on (a,b,c,d); Graph500 uses ~0.1 to
  /// avoid degenerate self-similarity.
  double noise = 0.1;
};

/// Generates the simple undirected R-MAT graph (deduplicated, no self
/// loops); the realized edge count is therefore slightly below
/// edge_factor * |V|.
[[nodiscard]] graph::Graph rmat(const RmatParams& params, std::uint64_t seed);

}  // namespace distbc::gen
