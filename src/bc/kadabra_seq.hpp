// Sequential KADABRA (Borassi & Natale): the reference implementation of
// the three-phase algorithm - diameter, calibration, adaptive sampling -
// and the correctness oracle for the parallel drivers.
#pragma once

#include "bc/kadabra_context.hpp"
#include "bc/result.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

[[nodiscard]] BcResult kadabra_sequential(const graph::Graph& graph,
                                          const KadabraParams& params);

}  // namespace distbc::bc
