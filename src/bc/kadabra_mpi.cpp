#include "bc/kadabra_mpi.hpp"

#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bc/sampler.hpp"
#include "epoch/epoch_manager.hpp"
#include "mpisim/window.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

namespace {

using epoch::StateFrame;

/// Phase 2: this rank's share of the calibration budget, sampled by all T
/// threads in parallel into private frames (paper §IV-F: "sampling in all
/// threads in parallel, followed by a blocking aggregation").
StateFrame local_initial_samples(const graph::Graph& graph,
                                 std::uint64_t total_budget,
                                 std::uint64_t seed, int rank, int ranks,
                                 int threads) {
  const graph::Vertex n = graph.num_vertices();
  const std::uint64_t pt = static_cast<std::uint64_t>(ranks) * threads;
  std::vector<StateFrame> frames(threads, StateFrame(n));
  auto worker = [&](int t) {
    const std::uint64_t gti = static_cast<std::uint64_t>(rank) * threads + t;
    PathSampler sampler(graph, Rng(seed).split(gti));
    const std::uint64_t share =
        total_budget / pt + (gti < total_budget % pt ? 1 : 0);
    for (std::uint64_t i = 0; i < share; ++i) sampler.sample(frames[t]);
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& thread : pool) thread.join();

  StateFrame total(n);
  for (const auto& frame : frames) total.merge(frame);
  return total;
}

}  // namespace

BcResult kadabra_mpi_rank(const graph::Graph& graph,
                          const MpiKadabraOptions& options,
                          mpisim::Comm& world) {
  DISTBC_ASSERT(options.threads_per_rank >= 1);
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  const int num_ranks = world.size();
  const int num_threads = options.threads_per_rank;
  const int rank = world.rank();
  const bool is_root = rank == 0;
  const KadabraParams& params = options.params;
  if (n < 2) {
    if (is_root) result.scores.assign(n, 0.0);
    return result;
  }

  // --- Phase 1: diameter at rank zero (sequential, §IV-F), broadcast. ----
  std::uint32_t vd = 0;
  if (is_root) {
    vd = phases.timed(Phase::kDiameter,
                      [&] { return kadabra_vertex_diameter(graph, params); });
  }
  world.bcast(std::span{&vd, 1}, 0);
  KadabraContext context = begin_context(params, vd);

  // --- Phase 2: parallel calibration sampling + blocking reduce. ----------
  phases.timed(Phase::kCalibration, [&] {
    const StateFrame local = local_initial_samples(
        graph, context.initial_samples, params.seed, rank, num_ranks,
        num_threads);
    StateFrame initial(n);
    world.reduce(std::span<const std::uint64_t>(local.raw()),
                 initial.raw(), 0);
    if (is_root) finish_calibration(context, initial);
  });

  // --- Phase 3: epoch-based adaptive sampling (Algorithm 2). -------------
  WallTimer adaptive_timer;

  // Hierarchical topology (§IV-E): node-local window + node-leader comm.
  std::optional<mpisim::Comm> local_comm;
  std::optional<mpisim::Comm> leader_comm;
  std::optional<mpisim::Window<std::uint64_t>> window;
  if (options.hierarchical) {
    local_comm.emplace(world.split_by_node());
    leader_comm.emplace(world.split_node_leaders());
    window.emplace(*local_comm, static_cast<std::size_t>(n) + 1);
  }

  epoch::EpochManager<StateFrame> manager(num_threads, StateFrame(n));
  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(num_ranks) * num_threads;
  // Thread zero's per-epoch share: the §IV-D rule fixes the *total*
  // samples per epoch; all PT threads sample at the same rate. Clamp so
  // the first stopping check happens within half the omega budget - on
  // easy instances an unclamped epoch would sample far past termination.
  const std::uint64_t n0 = std::min(
      epoch_share(options.epoch_base, options.epoch_exponent, total_threads),
      std::max<std::uint64_t>(1, context.omega / (2 * total_threads)));
  std::vector<std::uint64_t> taken(num_threads, 0);

  auto sampler_main = [&](int t) {
    const std::uint64_t gti =
        total_threads + static_cast<std::uint64_t>(rank) * num_threads + t;
    PathSampler sampler(graph, Rng(params.seed).split(gti));
    std::uint32_t epoch = 0;
    while (!manager.stopped()) {
      sampler.sample(manager.frame(t, epoch));
      if (manager.check_transition(t, epoch)) ++epoch;
    }
    taken[t] = sampler.samples_taken();
  };
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) workers.emplace_back(sampler_main, t);

  // Thread zero of this rank: Algorithm 2's main loop.
  {
    const std::uint64_t gti =
        total_threads + static_cast<std::uint64_t>(rank) * num_threads;
    PathSampler sampler(graph, Rng(params.seed).split(gti));
    StateFrame snapshot(n);   // S^e_loc: this rank's epoch aggregate
    StateFrame epoch_agg(n);  // S^e: global epoch aggregate (valid at root)
    StateFrame running(n);    // S: running total (valid at root)
    std::uint8_t done_flag = 0;
    std::uint32_t epoch = 0;

    // Overlap helper: one sample into the *next* epoch's frame.
    auto overlap_sample = [&] { sampler.sample(manager.frame(0, epoch + 1)); };

    while (true) {
      phases.timed(Phase::kSampling, [&] {
        for (std::uint64_t i = 0; i < n0; ++i)
          sampler.sample(manager.frame(0, epoch));
      });

      // Epoch transition, overlapped with sampling (Fig. 1).
      phases.timed(Phase::kEpochTransition, [&] {
        manager.force_transition(epoch);
        while (!manager.transition_done(epoch)) overlap_sample();
      });
      snapshot.clear();
      manager.collect(epoch, snapshot);

      // Node-local pre-aggregation via the shared window (§IV-E).
      bool in_global = true;
      if (options.hierarchical) {
        window->accumulate(snapshot.raw());
        local_comm->barrier();
        in_global = local_comm->rank() == 0;
        if (in_global) {
          window->read(snapshot.raw());
          window->clear();
        }
        local_comm->barrier();
      }

      // Global aggregation to world rank zero (§IV-F strategies). With
      // hierarchy the reduction runs on the node-leader communicator whose
      // rank zero is world rank zero.
      if (in_global) {
        mpisim::Comm& global =
            options.hierarchical ? *leader_comm : world;
        const std::span<const std::uint64_t> send(snapshot.raw());
        switch (options.aggregation) {
          case Aggregation::kIbarrierReduce: {
            phases.timed(Phase::kBarrier, [&] {
              mpisim::Request barrier = global.ibarrier();
              while (!barrier.test()) overlap_sample();
            });
            phases.timed(Phase::kReduction,
                         [&] { global.reduce(send, epoch_agg.raw(), 0); });
            break;
          }
          case Aggregation::kIreduce: {
            phases.timed(Phase::kReduction, [&] {
              mpisim::Request reduce =
                  global.ireduce(send, epoch_agg.raw(), 0);
              while (!reduce.test()) overlap_sample();
            });
            break;
          }
          case Aggregation::kBlocking: {
            phases.timed(Phase::kReduction,
                         [&] { global.reduce(send, epoch_agg.raw(), 0); });
            break;
          }
        }
      }

      // Only rank zero evaluates the stopping condition (§IV): aggregation
      // is the expensive part; shipping the verdict costs one byte.
      if (is_root) {
        running.merge(epoch_agg);
        done_flag = phases.timed(Phase::kStopCheck, [&] {
          return context.stop_satisfied(running) ? 1 : 0;
        });
      }
      phases.timed(Phase::kBroadcast, [&] {
        mpisim::Request bcast = world.ibcast(std::span{&done_flag, 1}, 0);
        while (!bcast.test()) overlap_sample();
      });

      ++result.epochs;
      if (done_flag != 0) {
        manager.signal_stop();
        break;
      }
      ++epoch;
    }
    taken[0] = sampler.samples_taken();

    if (is_root) {
      result.scores.assign(n, 0.0);
      const auto tau = static_cast<double>(running.tau());
      for (graph::Vertex v = 0; v < n; ++v)
        result.scores[v] = static_cast<double>(running.count(v)) / tau;
      result.samples = running.tau();
    }
  }
  for (auto& worker : workers) worker.join();
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  // Work accounting for Figure 3b: total samples attempted by all threads
  // of all ranks (including overlap samples that were never aggregated).
  std::uint64_t local_taken = 0;
  for (const std::uint64_t t : taken) local_taken += t;
  std::uint64_t world_taken = 0;
  world.reduce(std::span<const std::uint64_t>(&local_taken, 1),
               std::span{&world_taken, 1}, 0);

  if (is_root) {
    result.comm_bytes = world.stats().total_bytes();
    if (options.hierarchical) {
      result.comm_bytes += leader_comm->stats().total_bytes() +
                           local_comm->stats().total_bytes();
    }
    result.omega = context.omega;
    result.vertex_diameter = vd;
    result.phases = phases;
    result.samples_attempted = world_taken;
  } else {
    // Expose per-rank activity to tests: attempted samples of this rank.
    result.samples_attempted = local_taken;
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

BcResult kadabra_mpi(const graph::Graph& graph,
                     const MpiKadabraOptions& options, int num_ranks,
                     int ranks_per_node, mpisim::NetworkModel network) {
  mpisim::RuntimeConfig config;
  config.num_ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  mpisim::Runtime runtime(config);

  BcResult root_result;
  std::mutex result_mu;
  runtime.run([&](mpisim::Comm& world) {
    BcResult local = kadabra_mpi_rank(graph, options, world);
    if (world.rank() == 0) {
      std::lock_guard lock(result_mu);
      root_result = std::move(local);
    }
  });
  return root_result;
}

}  // namespace distbc::bc
