#include "bc/kadabra_shm.hpp"

#include <thread>
#include <vector>

#include "bc/sampler.hpp"
#include "epoch/epoch_manager.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

namespace {

/// Phase-2 helper shared conceptually with the MPI driver: all T threads
/// sample their share of the calibration budget into private frames.
epoch::StateFrame parallel_initial_samples(const graph::Graph& graph,
                                           std::uint64_t budget,
                                           std::uint64_t seed,
                                           int num_threads) {
  const graph::Vertex n = graph.num_vertices();
  std::vector<epoch::StateFrame> frames(num_threads, epoch::StateFrame(n));
  auto worker = [&](int t) {
    PathSampler sampler(graph, Rng(seed).split(t));
    const std::uint64_t share =
        budget / num_threads + (t < static_cast<int>(budget % num_threads));
    for (std::uint64_t i = 0; i < share; ++i) sampler.sample(frames[t]);
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& thread : threads) thread.join();

  epoch::StateFrame total(n);
  for (const auto& frame : frames) total.merge(frame);
  return total;
}

}  // namespace

BcResult kadabra_shm(const graph::Graph& graph,
                     const ShmKadabraOptions& options) {
  DISTBC_ASSERT(options.num_threads >= 1);
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  result.scores.assign(n, 0.0);
  if (n < 2) return result;
  const int num_threads = options.num_threads;
  const KadabraParams& params = options.params;

  // Phase 1: diameter (sequential, as in the paper).
  const std::uint32_t vd = phases.timed(Phase::kDiameter, [&] {
    return kadabra_vertex_diameter(graph, params);
  });
  KadabraContext context = begin_context(params, vd);

  // Phase 2: embarrassingly parallel calibration sampling.
  phases.timed(Phase::kCalibration, [&] {
    const epoch::StateFrame initial = parallel_initial_samples(
        graph, context.initial_samples, params.seed, num_threads);
    finish_calibration(context, initial);
  });

  // Phase 3: epoch-based adaptive sampling.
  WallTimer adaptive_timer;
  epoch::EpochManager<epoch::StateFrame> manager(num_threads,
                                                 epoch::StateFrame(n));
  // Per-thread epoch share, clamped so the first stopping check happens
  // within half the omega budget (see the MPI driver for rationale).
  const std::uint64_t n0 = std::min(
      epoch_share(options.epoch_base, options.epoch_exponent,
                  static_cast<std::uint64_t>(num_threads)),
      std::max<std::uint64_t>(
          1, context.omega / (2 * static_cast<std::uint64_t>(num_threads))));
  std::vector<std::uint64_t> taken(num_threads, 0);

  auto sampler_main = [&](int t) {
    PathSampler sampler(graph,
                        Rng(params.seed).split(num_threads + t));
    std::uint32_t epoch = 0;
    while (!manager.stopped()) {
      sampler.sample(manager.frame(t, epoch));
      if (manager.check_transition(t, epoch)) ++epoch;
    }
    taken[t] = sampler.samples_taken();
  };

  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) workers.emplace_back(sampler_main, t);

  // Thread zero: Algorithm 2 without the MPI layer.
  {
    PathSampler sampler(graph, Rng(params.seed).split(num_threads));
    epoch::StateFrame aggregate(n);
    std::uint32_t epoch = 0;
    while (true) {
      phases.timed(Phase::kSampling, [&] {
        for (std::uint64_t i = 0; i < n0; ++i)
          sampler.sample(manager.frame(0, epoch));
      });
      phases.timed(Phase::kEpochTransition, [&] {
        manager.force_transition(epoch);
        while (!manager.transition_done(epoch))
          sampler.sample(manager.frame(0, epoch + 1));
      });
      manager.collect(epoch, aggregate);
      ++result.epochs;
      const bool done = phases.timed(Phase::kStopCheck, [&] {
        return context.stop_satisfied(aggregate);
      });
      if (done) {
        manager.signal_stop();
        break;
      }
      ++epoch;
    }
    taken[0] = sampler.samples_taken();

    const auto tau = static_cast<double>(aggregate.tau());
    for (graph::Vertex v = 0; v < n; ++v)
      result.scores[v] = static_cast<double>(aggregate.count(v)) / tau;
    result.samples = aggregate.tau();
  }
  for (auto& worker : workers) worker.join();
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  result.omega = context.omega;
  result.vertex_diameter = vd;
  result.phases = phases;
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace distbc::bc
