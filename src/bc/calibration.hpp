// Per-vertex failure-probability calibration (KADABRA phase 2).
//
// KADABRA splits the global failure budget delta into per-vertex shares
// delta_L(x), delta_U(x) with sum < delta; any split is *correct*, but the
// split determines when the stopping condition fires (paper footnote 2).
// Following KADABRA's Lagrange-balancing idea, we equalize the predicted
// stopping time across vertices: with initial estimates b~0 from a
// non-adaptive phase, a Bernstein bound predicts vertex x needs
//   tau(x) ~ (2 b~0(x) + 2 eps / 3) ln(1 / delta(x)) / eps^2
// samples; we binary-search the common deadline tau* whose induced shares
// exp(-eps^2 tau* / (2 b~0(x) + 2 eps/3)) exhaust (1 - lambda) delta, and
// spread the remaining lambda delta uniformly as a floor for vertices the
// initial phase never saw.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace distbc::bc {

struct Calibration {
  std::vector<double> delta_l;
  std::vector<double> delta_u;
  double predicted_tau = 0.0;  // the balanced deadline tau*

  [[nodiscard]] double budget_used() const;
};

/// `initial_counts` are the per-vertex path counts over `initial_tau`
/// non-adaptive samples (counts[i] <= initial_tau).
[[nodiscard]] Calibration calibrate(std::span<const std::uint64_t> initial_counts,
                                    std::uint64_t initial_tau, double epsilon,
                                    double delta, double balancing);

}  // namespace distbc::bc
