#include "bc/kadabra_seq.hpp"

#include <algorithm>

#include "bc/sampler.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

BcResult kadabra_sequential(const graph::Graph& graph,
                            const KadabraParams& params) {
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  result.scores.assign(n, 0.0);
  if (n < 2) return result;

  // Phase 1: diameter.
  const std::uint32_t vd = phases.timed(Phase::kDiameter, [&] {
    return kadabra_vertex_diameter(graph, params);
  });
  KadabraContext context = begin_context(params, vd);

  // Phase 2: calibration on non-adaptive samples (discarded afterwards, as
  // in KADABRA: the adaptive guarantee is only over fresh samples).
  phases.timed(Phase::kCalibration, [&] {
    epoch::StateFrame initial(n);
    PathSampler sampler(graph, Rng(params.seed).split(0));
    for (std::uint64_t i = 0; i < context.initial_samples; ++i)
      sampler.sample(initial);
    finish_calibration(context, initial);
  });

  // Phase 3: adaptive sampling; the stopping condition is evaluated every
  // n0 samples (the sequential analogue of an epoch).
  WallTimer adaptive_timer;
  epoch::StateFrame aggregate(n);
  PathSampler sampler(graph, Rng(params.seed).split(1));
  // Sequentially, a stop check costs O(|V|) against O(n0) BFS samples, so
  // it can run much more often than in the parallel drivers; scale the
  // interval with the budget so small instances do not overshoot omega.
  const std::uint64_t n0 = std::clamp<std::uint64_t>(
      context.omega / 20, 100, epoch_length(1000, 1.33, 1));
  while (true) {
    phases.timed(Phase::kSampling, [&] {
      for (std::uint64_t i = 0; i < n0; ++i) sampler.sample(aggregate);
    });
    ++result.epochs;
    const bool done = phases.timed(Phase::kStopCheck, [&] {
      return context.stop_satisfied(aggregate);
    });
    if (done) break;
  }
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  const auto tau = static_cast<double>(aggregate.tau());
  for (graph::Vertex v = 0; v < n; ++v)
    result.scores[v] = static_cast<double>(aggregate.count(v)) / tau;
  result.samples = aggregate.tau();
  result.omega = context.omega;
  result.vertex_diameter = vd;
  result.phases = phases;
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace distbc::bc
