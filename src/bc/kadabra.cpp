#include "bc/kadabra.hpp"

#include <algorithm>
#include <mutex>

#include "bc/sampler.hpp"
#include "epoch/state_frame.hpp"
#include "support/timer.hpp"
#include "tune/tuner.hpp"

namespace distbc::bc {

BcResult kadabra_run(const graph::Graph& graph, const KadabraOptions& options,
                     mpisim::Comm* world) {
  DISTBC_ASSERT(options.engine.threads_per_rank >= 1);
  DISTBC_ASSERT(options.omega_fraction > 0);
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  const int num_ranks = world != nullptr ? world->size() : 1;
  const int rank = world != nullptr ? world->rank() : 0;
  const bool is_root = rank == 0;
  const KadabraParams& params = options.params;
  if (n < 2) {
    if (is_root) result.scores.assign(n, 0.0);
    result.total_seconds = total_timer.elapsed_s();
    return result;
  }

  // --- Phase 1: diameter at rank zero (sequential, §IV-F), broadcast. ----
  std::uint32_t vd = 0;
  if (is_root) {
    vd = phases.timed(Phase::kDiameter,
                      [&] { return kadabra_vertex_diameter(graph, params); });
  }
  if (world != nullptr) world->bcast(std::span{&vd, 1}, 0);
  KadabraContext context = begin_context(params, vd);

  // The autotune path decides the thread count up front (calibration and
  // the adaptive phase must agree on the stream layout).
  engine::EngineOptions engine_options = options.engine;
  if (options.auto_tune != nullptr)
    engine_options.threads_per_rank =
        options.auto_tune->shape.threads_per_rank;

  // --- Phase 2: parallel calibration through the engine's hook. ----------
  // Calibration streams occupy stream indices [0, V); the adaptive phase
  // continues with fresh streams [V, 2V) so the adaptive guarantee is only
  // over fresh samples, as in KADABRA.
  const std::uint64_t streams = engine::num_streams(engine_options, num_ranks);
  WallTimer calibration_timer;
  phases.timed(Phase::kCalibration, [&] {
    const epoch::StateFrame initial = engine::calibrate(
        world, epoch::StateFrame(n),
        [&](std::uint64_t v) {
          return PathSampler(graph, Rng(params.seed).split(v));
        },
        context.initial_samples, engine_options);
    if (is_root) finish_calibration(context, initial);
  });
  const double calibration_seconds = calibration_timer.elapsed_s();

  // --- Phase 3: epoch-based adaptive sampling (Algorithm 2). -------------
  if (options.auto_tune != nullptr) {
    // Per-sample cost in cluster CPU-seconds, measured on the calibration
    // phase this run just paid for anyway.
    const auto total_threads =
        static_cast<double>(num_ranks) * engine_options.threads_per_rank;
    tune::TuneRequest request;
    request.frame_words = epoch::StateFrame(n).raw().size();
    if (context.initial_samples > 0)
      request.sample_seconds = calibration_seconds * total_threads /
                               static_cast<double>(context.initial_samples);
    // Every rank must tune the same epoch schedule: use rank zero's
    // measurement everywhere.
    if (world != nullptr)
      world->bcast(std::span{&request.sample_seconds, 1}, 0);
    request.base = engine_options;
    engine_options = tune::tuned_options(*options.auto_tune, request);
  }
  WallTimer adaptive_timer;
  const std::uint64_t omega_clamp = std::max(
      options.min_epoch_length,
      std::max<std::uint64_t>(1, context.omega / options.omega_fraction));
  engine_options.max_epoch_length =
      engine_options.max_epoch_length != 0
          ? std::min(engine_options.max_epoch_length, omega_clamp)
          : omega_clamp;
  auto driver = engine::run_epochs(
      world, epoch::StateFrame(n),
      [&](std::uint64_t v) {
        return PathSampler(graph, Rng(params.seed).split(streams + v));
      },
      [&](const epoch::StateFrame& aggregate) {
        return context.stop_satisfied(aggregate);
      },
      engine_options);
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  phases.merge(driver.phases);
  result.engine_used = engine_options;
  result.epochs = driver.epochs;
  result.samples_attempted = driver.samples_attempted;
  if (is_root) {
    const epoch::StateFrame& aggregate = driver.aggregate;
    result.scores.assign(n, 0.0);
    const auto tau = static_cast<double>(aggregate.tau());
    for (graph::Vertex v = 0; v < n; ++v)
      result.scores[v] = static_cast<double>(aggregate.count(v)) / tau;
    result.samples = aggregate.tau();
    result.comm_bytes = driver.comm_bytes;
    result.omega = context.omega;
    result.vertex_diameter = vd;
    result.phases = phases;
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

BcResult kadabra_sequential(const graph::Graph& graph,
                            const KadabraParams& params) {
  KadabraOptions options;
  options.params = params;
  options.engine.threads_per_rank = 1;
  // Sequentially, a stop check costs O(|V|) against O(n0) BFS samples, so
  // it can run much more often than in the parallel drivers; scale the
  // interval with the budget so small instances do not overshoot omega.
  options.omega_fraction = 20;
  options.min_epoch_length = 100;
  return kadabra_run(graph, options, nullptr);
}

BcResult kadabra_shm(const graph::Graph& graph,
                     const KadabraOptions& options) {
  return kadabra_run(graph, options, nullptr);
}

BcResult kadabra_mpi_rank(const graph::Graph& graph,
                          const KadabraOptions& options,
                          mpisim::Comm& world) {
  return kadabra_run(graph, options, &world);
}

BcResult kadabra_mpi(const graph::Graph& graph, const KadabraOptions& options,
                     int num_ranks, int ranks_per_node,
                     mpisim::NetworkModel network) {
  mpisim::RuntimeConfig config;
  config.num_ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  mpisim::Runtime runtime(config);

  BcResult root_result;
  std::mutex result_mu;
  runtime.run([&](mpisim::Comm& world) {
    BcResult local = kadabra_run(graph, options, &world);
    if (world.rank() == 0) {
      std::lock_guard lock(result_mu);
      root_result = std::move(local);
    }
  });
  return root_result;
}

}  // namespace distbc::bc
