#include "bc/kadabra.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "api/session.hpp"
#include "bc/batch_sampler.hpp"
#include "bc/sampler.hpp"
#include "bc/topk.hpp"
#include "epoch/sparse_frame.hpp"
#include "epoch/state_frame.hpp"
#include "graph/stats.hpp"
#include "support/timer.hpp"
#include "tune/tuner.hpp"

namespace distbc::bc {

namespace {

/// The three-phase driver, generic over the frame representation. kDense
/// runs use StateFrame (flat elementwise reductions, the paper's layout);
/// sparse/auto runs use SparseFrame (touched-set tracking + delta images).
/// Deterministic-mode results are bitwise identical across the two.
template <typename Frame>
BcResult kadabra_run_frames(const graph::Graph& graph,
                            const KadabraOptions& options,
                            comm::Substrate* world) {
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  const int num_ranks = world != nullptr ? world->size() : 1;
  const int rank = world != nullptr ? world->rank() : 0;
  const bool is_root = rank == 0;
  const KadabraParams& params = options.params;
  if (n < 2) {
    if (is_root) result.scores.assign(n, 0.0);
    result.total_seconds = total_timer.elapsed_s();
    return result;
  }

  // The autotune path decides the thread count up front (calibration and
  // the adaptive phase must agree on the stream layout).
  engine::EngineOptions engine_options = options.engine;
  if (options.auto_tune != nullptr)
    engine_options.threads_per_rank =
        options.auto_tune->shape.threads_per_rank;
  // Calibration streams occupy stream indices [0, V); the adaptive phase
  // continues with fresh streams [V, 2V) so the adaptive guarantee is only
  // over fresh samples, as in KADABRA. The split holds whether or not a
  // warm start skips the calibration sampling itself.
  const std::uint64_t streams = engine::num_streams(engine_options, num_ranks);
  const auto total_threads =
      static_cast<std::uint64_t>(num_ranks) *
      static_cast<std::uint64_t>(engine_options.threads_per_rank);

  // Resolve the traversal-batch width up front: calibration and the
  // adaptive phase use the same sampler shape. 0 = auto: rank zero probes
  // the candidate widths (tune::pick_sample_batch, throwaway RNG stream
  // past the run's [0, 2V) range) and broadcasts the winner so every rank
  // builds identical samplers.
  {
    int batch = engine_options.sample_batch;
    if (batch == 0) {
      std::uint32_t winner = 1;
      if (is_root) {
        winner = static_cast<std::uint32_t>(tune::pick_sample_batch(
            Frame(n), [&](int candidate) {
              return BatchSampler(graph,
                                  Rng(params.seed).split(2 * streams),
                                  candidate);
            }));
      }
      if (world != nullptr) world->bcast(std::span{&winner, 1}, 0);
      batch = static_cast<int>(winner);
    }
    engine_options.sample_batch =
        std::clamp(batch, 1, graph::BatchedBidirectionalBfs::kMaxBatch);
  }
  const int sample_batch = engine_options.sample_batch;

  // Sampler factories for both phases. The batched shape hands every
  // stream of a physical thread the SAME traversal kernel (stream v lives
  // on global thread v mod PT - the engine's assignment rule), so virtual
  // streams batch across streams without growing the per-thread working
  // set; the engine's BatchSampling protocol keeps each stream's RNG
  // sequence scalar-identical.
  const auto scalar_factory = [&](std::uint64_t base_stream) {
    return [&graph, &params, base_stream](std::uint64_t v) {
      return PathSampler(graph, Rng(params.seed).split(base_stream + v));
    };
  };
  const auto batched_factory = [&](std::uint64_t base_stream) {
    return [&graph, &params, sample_batch, total_threads,
            threads = engine_options.threads_per_rank,
            kernels = std::make_shared<
                std::vector<std::shared_ptr<graph::BatchedBidirectionalBfs>>>(
                static_cast<std::size_t>(engine_options.threads_per_rank)),
            base_stream](std::uint64_t v) {
      const auto local = static_cast<std::size_t>(
          engine::stream_owner(v, total_threads) %
          static_cast<std::uint64_t>(threads));
      auto& kernel = (*kernels)[local];
      if (kernel == nullptr)
        kernel = std::make_shared<graph::BatchedBidirectionalBfs>(
            graph, sample_batch);
      return BatchSampler(graph, Rng(params.seed).split(base_stream + v),
                          kernel);
    };
  };

  std::shared_ptr<const KadabraWarmState> warm = options.warm_start;
  if (warm == nullptr) {
    auto state = std::make_shared<KadabraWarmState>();
    // Provenance for reuse-time validation (the fingerprint pass is one
    // linear CSR scan at rank 0 - noise next to the diameter phase).
    if (is_root) state->graph_fingerprint = graph::fingerprint(graph);
    state->ranks = num_ranks;
    state->threads_per_rank = engine_options.threads_per_rank;
    state->deterministic = engine_options.deterministic;
    state->virtual_streams = engine_options.virtual_streams;

    // --- Phase 1: diameter at rank zero (sequential, §IV-F), broadcast. --
    std::uint32_t vd = 0;
    if (is_root) {
      vd = phases.timed(Phase::kDiameter, [&] {
        return kadabra_vertex_diameter(graph, params);
      });
    }
    if (world != nullptr) world->bcast(std::span{&vd, 1}, 0);
    state->vertex_diameter = vd;
    state->context = begin_context(params, vd);

    // --- Phase 2: parallel calibration through the engine's hook. --------
    WallTimer calibration_timer;
    phases.timed(Phase::kCalibration, [&] {
      const Frame initial =
          sample_batch > 1
              ? engine::calibrate(world, Frame(n), batched_factory(0),
                                  state->context.initial_samples,
                                  engine_options)
              : engine::calibrate(world, Frame(n), scalar_factory(0),
                                  state->context.initial_samples,
                                  engine_options);
      if (is_root) {
        finish_calibration(state->context, initial);
        // Average dense slots one sample writes (internal path vertices
        // plus the tau slot) - the wire-payload predictor the tuner prices
        // the frame_rep axis with.
        state->touched_words_per_sample =
            1.0 + static_cast<double>(initial.count_sum()) /
                      static_cast<double>(initial.tau());
      }
    });
    // Decentralized termination: every rank evaluates the stopping rule on
    // the distributed aggregate, so the calibrated per-vertex failure
    // shares must be identical everywhere, not just at rank zero.
    if (world != nullptr && num_ranks > 1) {
      Calibration& cal = state->context.calibration;
      if (!is_root) {
        cal.delta_l.assign(n, 0.0);
        cal.delta_u.assign(n, 0.0);
      }
      world->bcast(std::span<double>(cal.delta_l), 0);
      world->bcast(std::span<double>(cal.delta_u), 0);
      world->bcast(std::span{&cal.predicted_tau, 1}, 0);
    }
    // Per-sample cost in cluster CPU-seconds, measured on the calibration
    // phase this run just paid for anyway.
    if (state->context.initial_samples > 0) {
      state->sample_seconds =
          calibration_timer.elapsed_s() *
          static_cast<double>(num_ranks) * engine_options.threads_per_rank /
          static_cast<double>(state->context.initial_samples);
    }
    warm = std::move(state);
  }
  const KadabraContext& context = warm->context;
  result.warm = warm;

  // --- Phase 3: epoch-based adaptive sampling (Algorithm 2). -------------
  if (options.auto_tune != nullptr) {
    tune::TuneRequest request;
    request.frame_words = static_cast<std::size_t>(n) + 1;
    request.sample_seconds = warm->sample_seconds;
    request.touched_words_per_sample = warm->touched_words_per_sample;
    // Every rank must tune the same epoch schedule: use rank zero's
    // measurements everywhere.
    if (world != nullptr) {
      world->bcast(std::span{&request.sample_seconds, 1}, 0);
      world->bcast(std::span{&request.touched_words_per_sample, 1}, 0);
    }
    request.base = engine_options;
    engine_options = tune::tuned_options(*options.auto_tune, request);
  }
  // Distributed top-k extraction needs every rank's own partial aggregate;
  // single-rank runs select straight off the global aggregate instead.
  if (options.top_k > 0 && world != nullptr && num_ranks > 1)
    engine_options.local_aggregates = true;
  WallTimer adaptive_timer;
  // First-stop-check pacing: the one shared clamp (engine/streams.hpp).
  engine_options.max_epoch_length = engine::paced_epoch_cap(
      context.omega, options.omega_fraction, options.min_epoch_length,
      engine_options.max_epoch_length);
  const auto stop = [&](const Frame& aggregate) {
    return context.stop_satisfied(aggregate);
  };
  auto driver = sample_batch > 1
                    ? engine::run_epochs(world, Frame(n),
                                         batched_factory(streams), stop,
                                         engine_options)
                    : engine::run_epochs(world, Frame(n),
                                         scalar_factory(streams), stop,
                                         engine_options);
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  phases.merge(driver.phases);
  result.engine_used = engine_options;
  result.substrate_used = world != nullptr ? world->name() : "";
  result.epochs = driver.epochs;
  result.samples_attempted = driver.samples_attempted;

  // Top-k extraction: exact selection at the root - through the TPUT-style
  // gatherv protocol over the per-rank partials when multi-rank - then one
  // small broadcast, so every rank serves the same answer without a full
  // |V| frame ever moving.
  if (options.top_k > 0) {
    const auto k = std::min<std::size_t>(options.top_k, n);
    const std::vector<TopKEntry> top =
        world == nullptr || num_ranks <= 1
            ? local_top_k(driver.aggregate, k)
            : distributed_top_k(*world, driver.local_aggregate, k);
    std::uint64_t header[2] = {top.size(),
                               is_root ? driver.aggregate.tau() : 0};
    std::vector<std::uint64_t> packed;
    if (is_root) {
      for (const TopKEntry& entry : top) {
        packed.push_back(entry.vertex);
        packed.push_back(entry.count);
      }
    }
    if (world != nullptr && num_ranks > 1) {
      world->bcast(std::span<std::uint64_t>(header), 0);
      packed.resize(2 * header[0]);
      if (!packed.empty()) world->bcast(std::span<std::uint64_t>(packed), 0);
    }
    const auto tau = static_cast<double>(header[1]);
    result.top_k_pairs.clear();
    for (std::size_t i = 0; i + 1 < packed.size(); i += 2) {
      result.top_k_pairs.emplace_back(
          static_cast<graph::Vertex>(packed[i]),
          tau == 0.0 ? 0.0 : static_cast<double>(packed[i + 1]) / tau);
    }
  }
  if (is_root) {
    const Frame& aggregate = driver.aggregate;
    scores_from_frame(aggregate, result.scores);
    result.samples = aggregate.tau();
    result.comm_bytes = driver.comm_bytes;
    result.comm_volume = driver.comm_volume;
    result.omega = context.omega;
    result.vertex_diameter = warm->vertex_diameter;
    result.phases = phases;
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace

BcResult kadabra_run(const graph::Graph& graph, const KadabraOptions& options,
                     comm::Substrate* world) {
  DISTBC_ASSERT(options.engine.threads_per_rank >= 1);
  DISTBC_ASSERT(options.omega_fraction > 0);
  // Autotuned runs also get SparseFrame: the tuner may upgrade frame_rep
  // to auto mid-run (after calibration), and only SparseFrame's touched
  // set makes that upgrade O(nonzeros) per encode instead of an O(V) scan.
  // Should the tuner keep dense, SparseFrame's dense images are bitwise
  // equivalent on the wire.
  const bool dense_frames = options.engine.frame_rep ==
                                engine::FrameRep::kDense &&
                            options.auto_tune == nullptr;
  return dense_frames
             ? kadabra_run_frames<epoch::StateFrame>(graph, options, world)
             : kadabra_run_frames<epoch::SparseFrame>(graph, options, world);
}

BcResult kadabra_sequential(const graph::Graph& graph,
                            const KadabraParams& params) {
  KadabraOptions options;
  options.params = params;
  options.engine.threads_per_rank = 1;
  // Sequentially, a stop check costs O(|V|) against O(n0) BFS samples, so
  // it can run much more often than in the parallel drivers; scale the
  // interval with the budget so small instances do not overshoot omega.
  options.omega_fraction = 20;
  options.min_epoch_length = 100;
  return kadabra_run(graph, options, nullptr);
}

BcResult kadabra_shm(const graph::Graph& graph,
                     const KadabraOptions& options) {
  return kadabra_run(graph, options, nullptr);
}

BcResult kadabra_mpi_rank(const graph::Graph& graph,
                          const KadabraOptions& options,
                          comm::Substrate& world) {
  return kadabra_run(graph, options, &world);
}

BcResult kadabra_mpi(const graph::Graph& graph, const KadabraOptions& options,
                     int num_ranks, int ranks_per_node,
                     comm::NetworkModel network) {
  // Compatibility layer: one-shot api::Session owning the cluster
  // lifecycle; the session binds the caller's graph without copying it.
  api::Config config;
  config.ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  api::Session session(
      std::shared_ptr<const graph::Graph>(&graph, [](const graph::Graph*) {}),
      std::move(config));
  return session.kadabra(options);
}

}  // namespace distbc::bc
