// Brandes' exact betweenness algorithm (J. Math. Sociol. 2001) - the
// O(|V||E|) baseline the paper's Section II discusses, and the accuracy
// oracle for every approximation algorithm in this library.
#pragma once

#include "bc/result.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

/// Exact normalized betweenness: b(x) = (1/(n(n-1))) sum_{s != t}
/// sigma_st(x)/sigma_st. Sequential; use brandes_parallel for large inputs.
[[nodiscard]] BcResult brandes(const graph::Graph& graph);

}  // namespace distbc::bc
