// The Riondato-Kornaropoulos (RK) algorithm: fixed-budget shortest-path
// sampling with a VC-dimension bound (DMKD 2016). KADABRA's predecessor and
// the non-adaptive baseline: it always takes the full budget
//   r = (c/eps^2) (floor(log2(VD - 2)) + 1 + ln(1/delta))
// samples, where adaptive KADABRA usually stops far earlier.
#pragma once

#include "bc/result.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

struct RkParams {
  double epsilon = 0.01;
  double delta = 0.1;
  bool exact_diameter = true;
  std::uint64_t seed = 0x5eed;
};

/// `num_threads` workers sample in parallel into private frames that are
/// merged once at the end (non-adaptive sampling parallelizes trivially -
/// the contrast motivating the paper's entire aggregation machinery).
[[nodiscard]] BcResult rk(const graph::Graph& graph, const RkParams& params,
                          int num_threads = 1);

}  // namespace distbc::bc
