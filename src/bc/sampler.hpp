// Per-thread path sampler: one KADABRA sample = a uniform vertex pair plus
// a uniform shortest path between them, taken via bidirectional BFS.
// Threads own their sampler (workspaces and RNG stream included), so taking
// a sample involves no shared state whatsoever - the property the paper's
// scenario assumes ("a single sample can be taken locally").
#pragma once

#include <cstdint>

#include "epoch/state_frame.hpp"
#include "graph/bidirectional_bfs.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distbc::bc {

class PathSampler {
 public:
  PathSampler(const graph::Graph& graph, Rng rng)
      : graph_(&graph), bfs_(graph.num_vertices()), rng_(rng) {
    scratch_.reserve(64);
  }

  /// Takes one sample and records it into `frame` - any frame offering the
  /// record()/record_empty() contract (StateFrame, SparseFrame), so the
  /// sampler is agnostic to the run's frame representation.
  template <typename Frame>
  void sample(Frame& frame) {
    const auto [s64, t64] = rng_.next_distinct_pair(graph_->num_vertices());
    const auto s = static_cast<graph::Vertex>(s64);
    const auto t = static_cast<graph::Vertex>(t64);
    const auto pair = bfs_.run(*graph_, s, t);
    ++taken_;
    if (!pair.connected) {
      frame.record_empty();
      return;
    }
    scratch_.clear();
    bfs_.sample_path(*graph_, rng_, scratch_);
    frame.record(scratch_);
  }

  [[nodiscard]] std::uint64_t samples_taken() const { return taken_; }

 private:
  const graph::Graph* graph_;
  graph::BidirectionalBfs bfs_;
  Rng rng_;
  std::vector<graph::Vertex> scratch_;
  std::uint64_t taken_ = 0;
};

}  // namespace distbc::bc
