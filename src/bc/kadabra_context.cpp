#include "bc/kadabra_context.hpp"

#include <cmath>

#include "graph/components.hpp"
#include "graph/diameter.hpp"

namespace distbc::bc {

bool KadabraContext::stop_satisfied(
    const epoch::StateFrame& aggregate) const {
  const std::uint64_t tau = aggregate.tau();
  if (tau == 0) return false;
  if (tau >= omega) return true;  // VC-dimension budget exhausted

  const double omega_d = static_cast<double>(omega);
  const std::uint32_t n = aggregate.num_vertices();
  for (std::uint32_t v = 0; v < n; ++v) {
    const double b_tilde = static_cast<double>(aggregate.count(v)) /
                           static_cast<double>(tau);
    if (stopping_f(b_tilde, calibration.delta_l[v], omega_d, tau) >=
        params.epsilon) {
      return false;
    }
    if (stopping_g(b_tilde, calibration.delta_u[v], omega_d, tau) >=
        params.epsilon) {
      return false;
    }
  }
  return true;
}

std::uint32_t kadabra_vertex_diameter(const graph::Graph& graph,
                                      const KadabraParams& params) {
  DISTBC_ASSERT_MSG(graph::is_connected(graph),
                    "KADABRA drivers expect the largest connected component");
  return graph::vertex_diameter(graph, params.exact_diameter);
}

KadabraContext begin_context(const KadabraParams& params,
                             std::uint32_t vertex_diameter) {
  KadabraContext context;
  context.params = params;
  context.vertex_diameter = vertex_diameter;
  context.omega = compute_omega(vertex_diameter, params.epsilon, params.delta);
  context.initial_samples = params.initial_samples != 0
                                ? params.initial_samples
                                : auto_initial_samples(context.omega);
  return context;
}

void finish_calibration(KadabraContext& context,
                        const epoch::StateFrame& initial_frame) {
  DISTBC_ASSERT(initial_frame.tau() > 0);
  const auto raw = initial_frame.raw();
  context.calibration =
      calibrate(raw.subspan(0, initial_frame.num_vertices()),
                initial_frame.tau(), context.params.epsilon,
                context.params.delta, context.params.balancing);
}

}  // namespace distbc::bc
