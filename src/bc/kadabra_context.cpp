#include "bc/kadabra_context.hpp"

#include "graph/components.hpp"
#include "graph/diameter.hpp"

namespace distbc::bc {

std::uint32_t kadabra_vertex_diameter(const graph::Graph& graph,
                                      const KadabraParams& params) {
  DISTBC_ASSERT_MSG(graph::is_connected(graph),
                    "KADABRA drivers expect the largest connected component");
  return graph::vertex_diameter(graph, params.exact_diameter);
}

KadabraContext begin_context(const KadabraParams& params,
                             std::uint32_t vertex_diameter) {
  KadabraContext context;
  context.params = params;
  context.vertex_diameter = vertex_diameter;
  context.omega = compute_omega(vertex_diameter, params.epsilon, params.delta);
  context.initial_samples = params.initial_samples != 0
                                ? params.initial_samples
                                : auto_initial_samples(context.omega);
  return context;
}

}  // namespace distbc::bc
