#include "bc/brandes_parallel.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

namespace {

// Same augmented SSSP as brandes.cpp; duplicated locally to keep both
// translation units self-contained (the routine is 40 lines).
void accumulate_source(const graph::Graph& graph, graph::Vertex source,
                       std::vector<std::uint32_t>& dist,
                       std::vector<double>& sigma,
                       std::vector<double>& delta,
                       std::vector<graph::Vertex>& order,
                       std::vector<double>& scores) {
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::fill(dist.begin(), dist.end(), kUnset);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  dist[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const graph::Vertex u = order[head];
    for (const graph::Vertex w : graph.neighbors(u)) {
      if (dist[w] == kUnset) {
        dist[w] = dist[u] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[u] + 1) sigma[w] += sigma[u];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::Vertex w = *it;
    for (const graph::Vertex u : graph.neighbors(w)) {
      if (dist[u] + 1 == dist[w])
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
    }
    if (w != source) scores[w] += delta[w];
  }
}

}  // namespace

BcResult brandes_parallel(const graph::Graph& graph, int num_threads) {
  DISTBC_ASSERT(num_threads >= 1);
  WallTimer timer;
  const graph::Vertex n = graph.num_vertices();
  BcResult result;
  result.scores.assign(n, 0.0);
  if (n < 2) return result;

  std::vector<std::vector<double>> partials(
      num_threads, std::vector<double>(n, 0.0));
  std::atomic<graph::Vertex> next_source{0};

  auto worker = [&](int thread_index) {
    std::vector<std::uint32_t> dist(n);
    std::vector<double> sigma(n);
    std::vector<double> delta(n);
    std::vector<graph::Vertex> order;
    order.reserve(n);
    auto& scores = partials[thread_index];
    // Dynamic work stealing over sources: BFS cost varies wildly between
    // hub and periphery sources on power-law graphs.
    while (true) {
      const graph::Vertex source =
          next_source.fetch_add(1, std::memory_order_relaxed);
      if (source >= n) break;
      accumulate_source(graph, source, dist, sigma, delta, order, scores);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  const double norm = 1.0 / (static_cast<double>(n) * (n - 1.0));
  for (const auto& partial : partials)
    for (graph::Vertex v = 0; v < n; ++v) result.scores[v] += partial[v];
  for (double& score : result.scores) score *= norm;
  result.total_seconds = timer.elapsed_s();
  return result;
}

}  // namespace distbc::bc
