// Shared preparation logic for all KADABRA drivers (sequential,
// shared-memory, MPI): phase 1 (diameter -> omega) and phase 2
// (calibration) produce a KadabraContext; phase 3 (adaptive sampling)
// consults stop_satisfied() on consistent aggregated state frames.
#pragma once

#include <cstdint>

#include "bc/calibration.hpp"
#include "bc/kadabra_math.hpp"
#include "epoch/state_frame.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

struct KadabraContext {
  KadabraParams params;
  std::uint32_t vertex_diameter = 0;
  std::uint64_t omega = 0;
  std::uint64_t initial_samples = 0;
  Calibration calibration;

  /// Evaluates KADABRA's stopping condition on an aggregated state frame.
  /// The frame must be a consistent snapshot (f and g are not monotone).
  [[nodiscard]] bool stop_satisfied(const epoch::StateFrame& aggregate) const;
};

/// Phase 1: vertex diameter of the (connected) input graph.
[[nodiscard]] std::uint32_t kadabra_vertex_diameter(const graph::Graph& graph,
                                                    const KadabraParams& params);

/// Derives omega and the calibration sample count from the diameter.
[[nodiscard]] KadabraContext begin_context(const KadabraParams& params,
                                           std::uint32_t vertex_diameter);

/// Phase 2 completion: calibrate per-vertex failure shares from the
/// aggregated non-adaptive samples.
void finish_calibration(KadabraContext& context,
                        const epoch::StateFrame& initial_frame);

}  // namespace distbc::bc
