// Shared preparation logic for all KADABRA drivers (sequential,
// shared-memory, MPI): phase 1 (diameter -> omega) and phase 2
// (calibration) produce a KadabraContext; phase 3 (adaptive sampling)
// consults stop_satisfied() on consistent aggregated state frames.
//
// The context is frame-representation agnostic: stop_satisfied and
// finish_calibration accept any aggregate exposing count()/tau()/
// num_vertices() (epoch::StateFrame and epoch::SparseFrame both do), so
// the same stopping machinery serves every wire representation.
#pragma once

#include <cstdint>
#include <span>

#include "bc/calibration.hpp"
#include "bc/kadabra_math.hpp"
#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace distbc::bc {

struct KadabraContext {
  KadabraParams params;
  std::uint32_t vertex_diameter = 0;
  std::uint64_t omega = 0;
  std::uint64_t initial_samples = 0;
  Calibration calibration;

  /// Evaluates KADABRA's stopping condition on an aggregated state frame.
  /// The frame must be a consistent snapshot (f and g are not monotone).
  template <typename Frame>
  [[nodiscard]] bool stop_satisfied(const Frame& aggregate) const {
    const std::uint64_t tau = aggregate.tau();
    if (tau == 0) return false;
    if (tau >= omega) return true;  // VC-dimension budget exhausted

    const double omega_d = static_cast<double>(omega);
    const std::uint32_t n = aggregate.num_vertices();
    for (std::uint32_t v = 0; v < n; ++v) {
      const double b_tilde = static_cast<double>(aggregate.count(v)) /
                             static_cast<double>(tau);
      if (stopping_f(b_tilde, calibration.delta_l[v], omega_d, tau) >=
          params.epsilon) {
        return false;
      }
      if (stopping_g(b_tilde, calibration.delta_u[v], omega_d, tau) >=
          params.epsilon) {
        return false;
      }
    }
    return true;
  }
};

/// Phase 1: vertex diameter of the (connected) input graph.
[[nodiscard]] std::uint32_t kadabra_vertex_diameter(const graph::Graph& graph,
                                                    const KadabraParams& params);

/// Derives omega and the calibration sample count from the diameter.
[[nodiscard]] KadabraContext begin_context(const KadabraParams& params,
                                           std::uint32_t vertex_diameter);

/// Phase 2 completion: calibrate per-vertex failure shares from the
/// aggregated non-adaptive samples. Zero-copy: both frame types expose
/// their dense counts-then-tau layout through a (const) raw() span.
template <typename Frame>
void finish_calibration(KadabraContext& context, const Frame& initial_frame) {
  DISTBC_ASSERT(initial_frame.tau() > 0);
  const std::span<const std::uint64_t> raw(initial_frame.raw());
  context.calibration =
      calibrate(raw.subspan(0, initial_frame.num_vertices()),
                initial_frame.tau(), context.params.epsilon,
                context.params.delta, context.params.balancing);
}

}  // namespace distbc::bc
