// Shared-memory parallel KADABRA: the epoch-based algorithm of van der
// Grinten, Angriman, Meyerhenke (Euro-Par 2019), the paper's Ref. [24] and
// the state-of-the-art competitor the MPI algorithm is benchmarked against
// (Figures 2a and 3a).
//
// T threads sample wait-free into per-epoch state frames; thread zero
// periodically forces an epoch transition (overlapping it with its own
// sampling), aggregates the completed epoch's frames, and evaluates the
// stopping condition on the consistent aggregate.
#pragma once

#include "bc/kadabra_context.hpp"
#include "bc/result.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

struct ShmKadabraOptions {
  KadabraParams params;
  int num_threads = 1;
  /// Epoch length rule n0 = epoch_base * T^epoch_exponent (paper §IV-D).
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
};

[[nodiscard]] BcResult kadabra_shm(const graph::Graph& graph,
                                   const ShmKadabraOptions& options);

}  // namespace distbc::bc
