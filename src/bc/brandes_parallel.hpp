// Thread-parallel exact Brandes: sources are distributed over worker
// threads (each with private workspaces and score accumulators, merged at
// the end). This mirrors the "shared-memory parallel exact" baselines of
// the paper's related-work section and keeps oracle computations for
// medium-sized test graphs fast.
#pragma once

#include "bc/result.hpp"
#include "graph/graph.hpp"

namespace distbc::bc {

[[nodiscard]] BcResult brandes_parallel(const graph::Graph& graph,
                                        int num_threads);

}  // namespace distbc::bc
