#include "bc/result.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace distbc::bc {

std::vector<graph::Vertex> BcResult::top_k(std::size_t k) const {
  std::vector<graph::Vertex> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<graph::Vertex>(i);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](graph::Vertex a, graph::Vertex b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double BcResult::max_abs_difference(const BcResult& other) const {
  DISTBC_ASSERT(scores.size() == other.scores.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i)
    worst = std::max(worst, std::abs(scores[i] - other.scores[i]));
  return worst;
}

}  // namespace distbc::bc
