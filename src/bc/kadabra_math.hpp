// KADABRA's statistical machinery (Borassi & Natale, ESA 2016): the static
// sample budget omega and the adaptive stopping functions f and g
// (paper §III-A).
//
// The algorithm stops once, for every vertex x,
//   f(b~(x), delta_L(x), omega, tau) < eps  and
//   g(b~(x), delta_U(x), omega, tau) < eps,
// or unconditionally at tau >= omega (the Riondato-Kornaropoulos
// VC-dimension budget, which alone guarantees the (eps, delta) property).
// f and g are NOT monotone in the sampling state, which is why the check
// must run on a consistent aggregated snapshot (paper §III-B).
#pragma once

#include <cstdint>

namespace distbc::bc {

struct KadabraParams {
  double epsilon = 0.01;  // absolute error bound (paper experiments: 0.001)
  double delta = 0.1;     // failure probability (paper: 0.1)
  bool exact_diameter = true;  // iFUB (true) or 2-approximation (false)
  std::uint64_t seed = 0x5eed;
  /// Non-adaptive samples used to calibrate delta_L/delta_U; 0 = automatic
  /// (scales with omega, see auto_initial_samples()).
  std::uint64_t initial_samples = 0;
  /// Fraction of the failure budget spread uniformly over all vertices
  /// (guards vertices whose initial estimate was 0); the rest is balanced
  /// by predicted stopping time.
  double balancing = 0.01;
};

/// Upper confidence radius: after tau of at most omega samples, the true
/// betweenness of a vertex with estimate b~ exceeds b~ + f only with
/// probability delta_l.
[[nodiscard]] double stopping_f(double b_tilde, double delta_l, double omega,
                                std::uint64_t tau);

/// Lower confidence radius, symmetric to stopping_f.
[[nodiscard]] double stopping_g(double b_tilde, double delta_u, double omega,
                                std::uint64_t tau);

/// Static sample budget: omega = (c/eps^2) (floor(log2(VD-2)) + 1 +
/// ln(2/delta)) with c = 0.5 and VD the vertex diameter (hops + 1).
[[nodiscard]] std::uint64_t compute_omega(std::uint32_t vertex_diameter,
                                          double epsilon, double delta);

/// Default calibration sample count for a given budget omega.
[[nodiscard]] std::uint64_t auto_initial_samples(std::uint64_t omega);

}  // namespace distbc::bc
