// Unified result type for all betweenness algorithms in the library:
// exact (Brandes), fixed sampling (RK), and the KADABRA variants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

struct KadabraWarmState;  // bc/kadabra.hpp

struct BcResult {
  /// Normalized betweenness per vertex: exact values or estimates b~.
  std::vector<double> scores;

  // --- Sampling statistics (zero for exact algorithms) -------------------
  std::uint64_t samples = 0;          // tau at termination
  /// Samples attempted across all threads/ranks, including overlap samples
  /// never aggregated (>= samples); drives the Figure 3b rate metric.
  std::uint64_t samples_attempted = 0;
  std::uint64_t epochs = 0;           // aggregation rounds
  std::uint64_t omega = 0;            // static budget
  std::uint32_t vertex_diameter = 0;  // VD used for omega

  // --- Timing -------------------------------------------------------------
  double total_seconds = 0.0;
  double adaptive_seconds = 0.0;  // adaptive-sampling phase only
  PhaseTimer phases;              // thread-zero/rank-zero phase windows

  // --- Communication (MPI variants only) ----------------------------------
  std::uint64_t comm_bytes = 0;  // total payload moved by aggregations
  /// Per-collective breakdown of comm_bytes (dense reductions, sparse
  /// merge reductions, window/p2p traffic, broadcasts), tagged with the
  /// substrate that moved it.
  comm::CommVolume comm_volume;

  /// Engine configuration the adaptive phase actually ran with - identical
  /// to the caller's request unless the autotune path rewrote it.
  engine::EngineOptions engine_used;

  /// The comm substrate the run executed on (comm::substrate_name value;
  /// empty for communicator-free runs).
  std::string substrate_used;

  /// The k highest (vertex, score) pairs, descending by score (ties by
  /// vertex id) - filled on *every* rank when KadabraOptions::top_k > 0,
  /// delivered without moving any full |V| frame (bc/topk.hpp).
  std::vector<std::pair<graph::Vertex, double>> top_k_pairs;

  /// The phases-1-2 state this KADABRA run used (computed or passed in);
  /// feed it back through KadabraOptions::warm_start to skip diameter and
  /// calibration on a repeat run. Null for non-KADABRA algorithms.
  std::shared_ptr<const KadabraWarmState> warm;

  /// Indices of the k highest-scoring vertices, descending by score.
  [[nodiscard]] std::vector<graph::Vertex> top_k(std::size_t k) const;

  /// Largest absolute difference to another score vector (same graph).
  [[nodiscard]] double max_abs_difference(const BcResult& other) const;
};

/// Extracts normalized betweenness estimates b~(v) = c~(v) / tau from an
/// aggregated state frame - representation-agnostic (any frame with
/// count()/tau()/num_vertices()), shared by every sampling driver.
template <typename Frame>
void scores_from_frame(const Frame& aggregate, std::vector<double>& scores) {
  const std::uint32_t n = aggregate.num_vertices();
  scores.assign(n, 0.0);
  const auto tau = static_cast<double>(aggregate.tau());
  if (tau == 0.0) return;
  for (std::uint32_t v = 0; v < n; ++v)
    scores[v] = static_cast<double>(aggregate.count(v)) / tau;
}

}  // namespace distbc::bc
