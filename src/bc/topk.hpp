// Distributed top-k score extraction (the workload that drives the
// gatherv/igatherv collectives).
//
// Given per-rank additive local aggregates (every rank holds the counts of
// its own samples; the elementwise sum over ranks is the global state),
// the root obtains the exact k highest-count vertices with O(k +
// candidates) wire traffic instead of moving any full |V| frame - the
// TPUT-style three-round threshold protocol (Cao & Wang, PODC'04):
//
//   1. Every rank gathers its local top-k (variable length: ranks may hold
//      fewer than k nonzero vertices). The root lower-bounds the k-th
//      global count by tau1 = the k-th largest partial sum.
//   2. The root broadcasts the threshold T = ceil(tau1 / P). Any vertex in
//      the global top-k has count >= tau1, hence a local count >= T on at
//      least one rank, so gathering every (vertex, count) with local count
//      >= T yields a complete candidate set.
//   3. The root broadcasts the candidate list; an elementwise reduction of
//      each rank's local counts over it produces exact global counts, from
//      which the root selects the top k.
//
// Ordering is (count descending, vertex ascending) throughout - the same
// tie-break BcResult::top_k applies to scores - so the result is exactly
// the root-side selection over the global aggregate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "comm/substrate.hpp"
#include "support/assert.hpp"

namespace distbc::bc {

struct TopKEntry {
  graph::Vertex vertex = 0;
  std::uint64_t count = 0;

  [[nodiscard]] bool operator==(const TopKEntry&) const = default;
};

/// (count desc, vertex asc) - matches BcResult::top_k's score tie-break.
inline bool top_k_before(const TopKEntry& a, const TopKEntry& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.vertex < b.vertex;
}

/// The k highest-count vertices of one frame (any frame exposing
/// num_vertices()/count()), ordered by top_k_before. O(V log k).
template <typename Frame>
[[nodiscard]] std::vector<TopKEntry> local_top_k(const Frame& frame,
                                                 std::size_t k) {
  std::vector<TopKEntry> heap;  // min-heap on top_k_before's inverse
  const auto worse = [](const TopKEntry& a, const TopKEntry& b) {
    return top_k_before(a, b);
  };
  for (graph::Vertex v = 0; v < frame.num_vertices(); ++v) {
    const std::uint64_t count = frame.count(v);
    if (count == 0) continue;
    const TopKEntry entry{v, count};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (k > 0 && top_k_before(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

/// Exact global top-k over per-rank local aggregates. Collective over
/// `world`; the result is valid at rank zero (other ranks return empty -
/// callers that want it everywhere broadcast the 2k-word pair list, not a
/// frame). Every round moves flat (vertex, count) uint64 pairs.
template <typename Frame>
[[nodiscard]] std::vector<TopKEntry> distributed_top_k(comm::Substrate& world,
                                                       const Frame& local,
                                                       std::size_t k) {
  const bool is_root = world.rank() == 0;
  const auto num_ranks = static_cast<std::uint64_t>(world.size());
  if (k == 0) return {};

  const auto pack = [](const std::vector<TopKEntry>& entries,
                       std::vector<std::uint64_t>& flat) {
    flat.clear();
    for (const TopKEntry& entry : entries) {
      flat.push_back(entry.vertex);
      flat.push_back(entry.count);
    }
  };

  // Round 1: local top-k in, tau1 lower bound out.
  std::vector<std::uint64_t> flat;
  pack(local_top_k(local, k), flat);
  std::vector<std::vector<std::uint64_t>> gathered;
  world.gatherv(std::span<const std::uint64_t>(flat), gathered, 0);
  std::uint64_t threshold = 1;
  if (is_root) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> partial;  // (v, sum)
    for (const auto& contribution : gathered) {
      for (std::size_t i = 0; i + 1 < contribution.size(); i += 2) {
        partial.emplace_back(contribution[i], contribution[i + 1]);
      }
    }
    std::sort(partial.begin(), partial.end());
    std::vector<std::uint64_t> sums;
    for (std::size_t i = 0; i < partial.size();) {
      std::uint64_t sum = 0;
      std::size_t j = i;
      while (j < partial.size() && partial[j].first == partial[i].first)
        sum += partial[j++].second;
      sums.push_back(sum);
      i = j;
    }
    std::uint64_t tau1 = 0;
    if (sums.size() >= k) {
      std::nth_element(sums.begin(),
                       sums.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       sums.end(), std::greater<>());
      tau1 = sums[k - 1];
    }
    threshold = std::max<std::uint64_t>(1, (tau1 + num_ranks - 1) / num_ranks);
  }
  world.bcast(std::span{&threshold, 1}, 0);

  // Round 2: everything locally at or above the threshold; the union is a
  // complete candidate set for the global top-k.
  flat.clear();
  for (graph::Vertex v = 0; v < local.num_vertices(); ++v) {
    const std::uint64_t count = local.count(v);
    if (count >= threshold) {
      flat.push_back(v);
      flat.push_back(count);
    }
  }
  world.gatherv(std::span<const std::uint64_t>(flat), gathered, 0);
  std::uint64_t num_candidates = 0;
  std::vector<std::uint64_t> candidates;
  if (is_root) {
    for (const auto& contribution : gathered)
      for (std::size_t i = 0; i + 1 < contribution.size(); i += 2)
        candidates.push_back(contribution[i]);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    num_candidates = candidates.size();
  }

  // Round 3: exact global counts for the candidates via one elementwise
  // reduction, then the final selection.
  world.bcast(std::span{&num_candidates, 1}, 0);
  if (num_candidates == 0) return {};  // every rank agrees: nothing sampled
  candidates.resize(num_candidates);
  world.bcast(std::span<std::uint64_t>(candidates), 0);
  std::vector<std::uint64_t> counts(num_candidates, 0);
  for (std::size_t i = 0; i < num_candidates; ++i) {
    DISTBC_ASSERT(candidates[i] < local.num_vertices());
    counts[i] = local.count(static_cast<graph::Vertex>(candidates[i]));
  }
  std::vector<std::uint64_t> totals(is_root ? num_candidates : 0, 0);
  world.reduce(std::span<const std::uint64_t>(counts),
               std::span<std::uint64_t>(totals), 0);
  if (!is_root) return {};

  std::vector<TopKEntry> result;
  result.reserve(num_candidates);
  for (std::size_t i = 0; i < num_candidates; ++i) {
    if (totals[i] == 0) continue;
    result.push_back({static_cast<graph::Vertex>(candidates[i]), totals[i]});
  }
  std::sort(result.begin(), result.end(), top_k_before);
  if (result.size() > k) result.resize(k);
  return result;
}

}  // namespace distbc::bc
