// Batched per-stream path sampler over graph::BatchedBidirectionalBfs.
//
// A BatchSampler is the batched drop-in for PathSampler: one instance per
// RNG stream, drawing pairs and path choices from that stream in exactly
// the scalar order. Batching happens through a (possibly shared) traversal
// kernel in two shapes:
//
//   * Across streams (deterministic mode): every stream of a physical
//     thread holds the SAME kernel; the engine posts one pair per stream
//     (post_sample), runs the batch once (flush_staged), then finishes in
//     stream order (finish_sample). Each stream's RNG sequence — pair,
//     then path draws — is untouched, so deterministic aggregates are
//     bitwise identical to scalar sampling for every batch size.
//   * Within a stream (free-running mode): sample_batch() draws up to
//     capacity pairs ahead, runs them as one batch and records in lane
//     order. Statistically equivalent, not draw-order identical — exactly
//     the modes' existing contract.
//
// sample() (the scalar protocol) stages, runs and finishes a single lane:
// with a drained kernel it is bitwise identical to PathSampler::sample.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "graph/batched_bidirectional_bfs.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distbc::bc {

/// Per-sample tap on a BatchSampler: called once per finished sample,
/// right after the frame record, while the lane's traversal state is
/// still current. `path` holds the drawn path's interior vertices (empty
/// for a disconnected pair), `scanned` the expanded vertices of both BFS
/// sides. dynamic::SampleLedger records its invalidation sketches here.
class SampleObserver {
 public:
  virtual ~SampleObserver() = default;
  virtual void on_sample(bool connected, std::span<const graph::Vertex> path,
                         std::span<const graph::Vertex> scanned) = 0;
};

class BatchSampler {
 public:
  /// Shares `kernel` with every other sampler of the owning thread; the
  /// caller guarantees single-threaded kernel use.
  BatchSampler(const graph::Graph& graph, Rng rng,
               std::shared_ptr<graph::BatchedBidirectionalBfs> kernel)
      : graph_(&graph), kernel_(std::move(kernel)), rng_(rng) {
    scratch_.reserve(64);
  }

  /// Convenience: a private kernel of width `batch`.
  BatchSampler(const graph::Graph& graph, Rng rng, int batch)
      : BatchSampler(graph, rng,
                     std::make_shared<graph::BatchedBidirectionalBfs>(
                         graph, batch)) {}

  [[nodiscard]] int batch_capacity() const { return kernel_->capacity(); }

  /// Installs (or clears, with nullptr) the per-sample observer. The
  /// observer must outlive every subsequent sample.
  void set_observer(SampleObserver* observer) { observer_ = observer; }

  /// Scalar protocol: one sample, recorded immediately. Bitwise identical
  /// to PathSampler::sample for the same stream.
  template <typename Frame>
  void sample(Frame& frame) {
    const bool posted = post_sample();
    DISTBC_ASSERT_MSG(posted, "sample() needs a drained kernel");
    flush_staged();
    finish_sample(frame);
  }

  /// Cross-stream protocol, step 1: draw this stream's next pair and stage
  /// it into the shared kernel. Returns false — consuming nothing — when
  /// the kernel batch is full; the caller must flush and finish the posted
  /// lanes first. At most one in-flight sample per stream.
  bool post_sample() {
    DISTBC_ASSERT_MSG(lane_ < 0, "one in-flight sample per stream");
    if (!kernel_->ran() && kernel_->staged() == kernel_->capacity())
      return false;
    const auto [s64, t64] = rng_.next_distinct_pair(graph_->num_vertices());
    lane_ = kernel_->stage(static_cast<graph::Vertex>(s64),
                           static_cast<graph::Vertex>(t64));
    DISTBC_ASSERT(lane_ >= 0);
    return true;
  }

  /// Cross-stream protocol, step 2: run the staged batch (no-op if some
  /// sharing stream already did).
  void flush_staged() {
    if (!kernel_->ran()) kernel_->run_staged();
  }

  /// Cross-stream protocol, step 3: finish this stream's posted sample —
  /// path draw from this stream's RNG, then the frame record.
  template <typename Frame>
  void finish_sample(Frame& frame) {
    DISTBC_ASSERT_MSG(lane_ >= 0 && kernel_->ran(),
                      "finish_sample needs a posted, flushed sample");
    ++taken_;
    const bool connected = kernel_->result(lane_).connected;
    scratch_.clear();
    if (connected) {
      kernel_->sample_path(lane_, rng_, scratch_);
      frame.record(scratch_);
    } else {
      frame.record_empty();
    }
    notify_observer(lane_, connected);
    lane_ = -1;
  }

  /// Within-stream batching: takes exactly `count` samples in kernel-wide
  /// chunks. Requires exclusive use of the kernel and no in-flight sample.
  template <typename Frame>
  void sample_batch(Frame& frame, std::uint64_t count) {
    DISTBC_ASSERT_MSG(lane_ < 0, "sample_batch with a sample in flight");
    const auto n = graph_->num_vertices();
    while (count > 0) {
      const int width = static_cast<int>(std::min<std::uint64_t>(
          count, static_cast<std::uint64_t>(kernel_->capacity())));
      for (int i = 0; i < width; ++i) {
        const auto [s64, t64] = rng_.next_distinct_pair(n);
        const int lane = kernel_->stage(static_cast<graph::Vertex>(s64),
                                        static_cast<graph::Vertex>(t64));
        DISTBC_ASSERT(lane == i);
      }
      kernel_->run_staged();
      for (int lane = 0; lane < width; ++lane) {
        ++taken_;
        const bool connected = kernel_->result(lane).connected;
        scratch_.clear();
        if (connected) {
          kernel_->sample_path(lane, rng_, scratch_);
          frame.record(scratch_);
        } else {
          frame.record_empty();
        }
        notify_observer(lane, connected);
      }
      count -= static_cast<std::uint64_t>(width);
    }
  }

  [[nodiscard]] std::uint64_t samples_taken() const { return taken_; }

 private:
  /// Observer tap for the lane just finished (scratch_ still holds its
  /// path). Reads the scanned set while the lane state is current.
  void notify_observer(int lane, bool connected) {
    if (observer_ == nullptr) return;
    scanned_scratch_.clear();
    kernel_->append_lane_scanned(lane, scanned_scratch_);
    observer_->on_sample(connected, scratch_, scanned_scratch_);
  }

  const graph::Graph* graph_;
  std::shared_ptr<graph::BatchedBidirectionalBfs> kernel_;
  Rng rng_;
  std::vector<graph::Vertex> scratch_;
  std::vector<graph::Vertex> scanned_scratch_;
  std::uint64_t taken_ = 0;
  int lane_ = -1;
  SampleObserver* observer_ = nullptr;
};

}  // namespace distbc::bc
