#include "bc/kadabra_math.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace distbc::bc {

double stopping_f(double b_tilde, double delta_l, double omega,
                  std::uint64_t tau) {
  DISTBC_ASSERT(tau > 0);
  DISTBC_ASSERT(delta_l > 0.0 && delta_l < 1.0);
  const double log_term = std::log(1.0 / delta_l);
  const double tmp = omega / static_cast<double>(tau) - 1.0 / 3.0;
  const double err =
      std::sqrt(tmp * tmp + 2.0 * b_tilde * omega / log_term) - tmp;
  return err * log_term / static_cast<double>(tau);
}

double stopping_g(double b_tilde, double delta_u, double omega,
                  std::uint64_t tau) {
  DISTBC_ASSERT(tau > 0);
  DISTBC_ASSERT(delta_u > 0.0 && delta_u < 1.0);
  const double log_term = std::log(1.0 / delta_u);
  const double tmp = omega / static_cast<double>(tau) + 1.0 / 3.0;
  const double err =
      std::sqrt(tmp * tmp + 2.0 * b_tilde * omega / log_term) + tmp;
  return err * log_term / static_cast<double>(tau);
}

std::uint64_t compute_omega(std::uint32_t vertex_diameter, double epsilon,
                            double delta) {
  DISTBC_ASSERT(epsilon > 0.0 && epsilon < 1.0);
  DISTBC_ASSERT(delta > 0.0 && delta < 1.0);
  constexpr double kUniversalConstant = 0.5;
  const double log2_vd =
      vertex_diameter > 2
          ? std::floor(std::log2(static_cast<double>(vertex_diameter - 2)))
          : 0.0;
  const double omega = kUniversalConstant / (epsilon * epsilon) *
                       (log2_vd + 1.0 + std::log(2.0 / delta));
  return static_cast<std::uint64_t>(std::ceil(omega));
}

std::uint64_t auto_initial_samples(std::uint64_t omega) {
  // Enough to see the heavy hitters (whose delta allocation matters most)
  // while remaining a small fraction of the adaptive budget.
  return std::clamp<std::uint64_t>(omega / 64, 512, 65536);
}

}  // namespace distbc::bc
