#include "bc/rk.hpp"

#include <cmath>
#include <thread>
#include <vector>

#include "bc/sampler.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

BcResult rk(const graph::Graph& graph, const RkParams& params,
            int num_threads) {
  DISTBC_ASSERT(num_threads >= 1);
  DISTBC_ASSERT_MSG(graph::is_connected(graph),
                    "rk expects the largest connected component");
  WallTimer timer;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  result.scores.assign(n, 0.0);
  if (n < 2) return result;

  PhaseTimer phases;
  const std::uint32_t vd = phases.timed(Phase::kDiameter, [&] {
    return graph::vertex_diameter(graph, params.exact_diameter);
  });
  result.vertex_diameter = vd;

  // RK budget: like KADABRA's omega but with ln(1/delta) - RK needs no
  // union bound over the two-sided adaptive checks.
  constexpr double kUniversalConstant = 0.5;
  const double log2_vd =
      vd > 2 ? std::floor(std::log2(static_cast<double>(vd - 2))) : 0.0;
  const auto budget = static_cast<std::uint64_t>(
      std::ceil(kUniversalConstant / (params.epsilon * params.epsilon) *
                (log2_vd + 1.0 + std::log(1.0 / params.delta))));
  result.omega = budget;

  WallTimer sampling_timer;
  std::vector<epoch::StateFrame> frames(num_threads,
                                        epoch::StateFrame(n));
  auto worker = [&](int t) {
    PathSampler sampler(graph, Rng(params.seed).split(t));
    const std::uint64_t share =
        budget / num_threads + (t < static_cast<int>(budget % num_threads));
    for (std::uint64_t i = 0; i < share; ++i) sampler.sample(frames[t]);
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();

  epoch::StateFrame total(n);
  for (const auto& frame : frames) total.merge(frame);
  DISTBC_ASSERT(total.tau() == budget);

  scores_from_frame(total, result.scores);
  result.samples = total.tau();
  result.epochs = 1;
  phases.add(Phase::kSampling, sampling_timer.elapsed_s());
  result.adaptive_seconds = sampling_timer.elapsed_s();
  result.phases = phases;
  result.total_seconds = timer.elapsed_s();
  return result;
}

}  // namespace distbc::bc
