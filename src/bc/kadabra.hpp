// KADABRA betweenness approximation on the unified epoch-sampling engine.
//
// One implementation (kadabra_run) covers the three-phase algorithm -
// diameter, calibration, epoch-based adaptive sampling (Algorithm 2) - and
// the three deployment backends are thin configurations of it:
//   kadabra_sequential : 1 rank x 1 thread, no communicator - the bitwise-
//                        reproducible reference (Borassi & Natale's KADABRA);
//   kadabra_shm        : 1 rank x T threads, no communicator - the
//                        shared-memory algorithm of the paper's Ref. [24];
//   kadabra_mpi        : P ranks x T threads over mpisim - the paper's
//                        contribution, with selectable §IV-F aggregation
//                        strategies and §IV-E hierarchical reduction.
// All backends derive their RNG streams from global stream indices (engine
// streams), so a (seed, stream) pair samples the same sequence regardless
// of the deployment shape. In the engine's deterministic mode, any two
// KadabraOptions-driven runs (shm / mpi / kadabra_run) with the same seed
// and virtual-stream count produce bitwise-identical results across
// cluster shapes and aggregation strategies (tests/test_engine.cpp);
// kadabra_sequential is the fixed reference configuration and keeps its
// own denser stop-check schedule, so compare against kadabra_shm with one
// thread for cross-backend equivalence.
#pragma once

#include <memory>

#include "bc/kadabra_context.hpp"
#include "bc/result.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"

namespace distbc::tune {
struct TuningProfile;  // tune/tuner.hpp
}

namespace distbc::bc {

/// Aggregation strategy vocabulary, re-exported from the engine.
using engine::Aggregation;

/// Frame-representation vocabulary, re-exported from the engine.
using engine::FrameRep;

/// Everything KADABRA's phases 1-2 produce that phase 3 consumes: the
/// diameter estimate, the calibrated context (omega; delta_l/delta_u valid
/// at world rank 0), and the calibration-time measurements the autotune
/// path prices epochs with. A fresh kadabra_run computes one and reports
/// it in BcResult::warm; handing it back through KadabraOptions::warm_start
/// skips phases 1-2 entirely (zero diameter/calibration work - the
/// kDiameter/kCalibration phase stats stay 0). Valid only for the same
/// (graph, params, engine shape) it was computed on: api::Session owns
/// that keying and is the intended consumer.
struct KadabraWarmState {
  std::uint32_t vertex_diameter = 0;
  KadabraContext context;
  /// Measured per-sample cost in cluster CPU-seconds (rank 0's value).
  double sample_seconds = 0.0;
  /// Average dense frame words one sample writes - the tuner's
  /// wire-payload predictor for the frame_rep decision (rank 0's value).
  double touched_words_per_sample = 0.0;

  // --- Provenance (filled at rank 0 on a fresh calibration) --------------
  // What the state was computed on, so consumers (Session::
  // preload_calibration, service::WarmStore) can validate a reuse instead
  // of silently mis-caching: the calibration content depends on the graph,
  // the statistical parameters (in context.params), and the stream layout
  // of the cluster shape below. Zero ranks / fingerprint mark a state from
  // before this accounting ("unknown", accepted as-is).
  std::uint64_t graph_fingerprint = 0;  // graph::fingerprint of the input
  int ranks = 0;
  int threads_per_rank = 0;
  bool deterministic = false;
  std::uint64_t virtual_streams = 0;
};

struct KadabraOptions {
  KadabraParams params;
  /// Engine configuration: threads per rank, aggregation strategy,
  /// hierarchical reduction, epoch-length rule, deterministic mode, and
  /// the frame representation (engine.frame_rep): kDense runs on
  /// epoch::StateFrame with flat elementwise reductions; kSparse/kAuto run
  /// on epoch::SparseFrame, shipping index/count delta images whose size
  /// scales with samples taken instead of |V|. Deterministic-mode results
  /// are bitwise identical across representations. Autotuned runs (below)
  /// always use SparseFrame, since the tuner may upgrade frame_rep to
  /// auto after calibration and only SparseFrame encodes in O(nonzeros).
  engine::EngineOptions engine;
  /// First-stop-check pacing knobs, applied through the one shared clamp
  /// implementation (engine::paced_epoch_cap in engine/streams.hpp): the
  /// total epoch length is capped at max(min_epoch_length,
  /// omega / omega_fraction) so easy instances do not sample far past
  /// termination before the first check.
  std::uint64_t omega_fraction = 2;
  std::uint64_t min_epoch_length = 1;
  /// Skip phases 1-2 using a previously computed state (see
  /// KadabraWarmState above). nullptr = compute them in this run.
  std::shared_ptr<const KadabraWarmState> warm_start;
  /// When > 0, the run additionally extracts the k highest betweenness
  /// scores and delivers them to *every* rank (BcResult::top_k_pairs):
  /// multi-rank runs keep per-rank local aggregates and run the TPUT-style
  /// distributed selection over gatherv (bc/topk.hpp) followed by one
  /// 2k-word broadcast - O(k + candidates) wire bytes instead of a full
  /// |V| score broadcast.
  std::size_t top_k = 0;
  /// Autotune path: when set, the §IV-F aggregation strategy, §IV-E
  /// hierarchical reduction, threads per rank, and the epoch-length knobs
  /// are decided by the profile (measured on this cluster shape by
  /// tune::capture_profile) instead of the fields above; the per-sample
  /// cost feeding the epoch sizing is measured during calibration. The
  /// applied configuration is reported in BcResult::engine_used.
  std::shared_ptr<const tune::TuningProfile> auto_tune;
};

/// The unified driver: runs all three phases on `world` (nullptr = no
/// communicator, single-rank). Scores and global statistics are valid at
/// world rank 0; other ranks carry local timing and work counts.
[[nodiscard]] BcResult kadabra_run(const graph::Graph& graph,
                                   const KadabraOptions& options,
                                   comm::Substrate* world);

/// Sequential reference configuration (1 rank x 1 thread, no comm).
[[nodiscard]] BcResult kadabra_sequential(const graph::Graph& graph,
                                          const KadabraParams& params);

/// Shared-memory configuration (1 rank x engine.threads_per_rank threads).
[[nodiscard]] BcResult kadabra_shm(const graph::Graph& graph,
                                   const KadabraOptions& options);

/// Per-rank MPI driver; call from inside Runtime::run on every rank, after
/// wrapping the rank's communicator in a substrate (comm::make_substrate).
[[nodiscard]] BcResult kadabra_mpi_rank(const graph::Graph& graph,
                                        const KadabraOptions& options,
                                        comm::Substrate& world);

/// Convenience wrapper: spins up a simulated cluster of `num_ranks` ranks
/// (`ranks_per_node` per node) and returns rank zero's result.
[[nodiscard]] BcResult kadabra_mpi(const graph::Graph& graph,
                                   const KadabraOptions& options,
                                   int num_ranks, int ranks_per_node = 1,
                                   comm::NetworkModel network = {});

}  // namespace distbc::bc
