// Epoch-based MPI-parallel KADABRA - the paper's contribution (Algorithm 2).
//
// Every rank runs T sampler threads coordinated by the epoch-based
// framework; thread zero of each rank additionally drives the inter-rank
// aggregation: after an epoch transition it aggregates its rank's frames
// into a snapshot, participates in a global reduction to rank zero, which
// folds the epoch aggregate into the running state S and evaluates the
// stopping condition on it; the verdict is broadcast back. Every
// communication step is overlapped with sampling into the next epoch's
// frame (Algorithm 2 lines 15, 21, 27).
//
// The aggregation strategy is selectable to reproduce the paper's §IV-F
// finding (Ibarrier + blocking Reduce beats Ireduce beats fully blocking),
// and the §IV-E hierarchical mode pre-reduces over node-local shared
// memory (RMA window) before the inter-node reduction of node leaders.
#pragma once

#include "bc/kadabra_context.hpp"
#include "bc/result.hpp"
#include "graph/graph.hpp"
#include "mpisim/runtime.hpp"

namespace distbc::bc {

enum class Aggregation : std::uint8_t {
  kIbarrierReduce,  // paper's final choice (§IV-F)
  kIreduce,         // plain non-blocking reduction
  kBlocking         // no overlap at all ("again detrimental", §IV-F)
};

struct MpiKadabraOptions {
  KadabraParams params;
  int threads_per_rank = 1;
  Aggregation aggregation = Aggregation::kIbarrierReduce;
  /// §IV-E: node-local shared-memory pre-aggregation; only node leaders
  /// join the global reduction.
  bool hierarchical = false;
  /// Epoch length rule n0 = epoch_base * (P*T)^epoch_exponent (§IV-D).
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
};

/// Per-rank driver; call from inside mpisim::Runtime::run() on every rank.
/// The returned result carries scores and statistics on world rank 0 and
/// only local timing elsewhere.
[[nodiscard]] BcResult kadabra_mpi_rank(const graph::Graph& graph,
                                        const MpiKadabraOptions& options,
                                        mpisim::Comm& world);

/// Convenience wrapper: spins up a simulated cluster of `num_ranks` ranks
/// (`ranks_per_node` per node) and returns rank zero's result.
[[nodiscard]] BcResult kadabra_mpi(const graph::Graph& graph,
                                   const MpiKadabraOptions& options,
                                   int num_ranks, int ranks_per_node = 1,
                                   mpisim::NetworkModel network = {});

}  // namespace distbc::bc
