// The "simple" synchronous parallelization of adaptive sampling that the
// paper's §III-B rules out: every thread takes a fixed number of samples,
// then all threads and ranks synchronize with *blocking* collectives to
// check the stopping condition - no overlap of computation and
// communication whatsoever. Kept as an honest ablation baseline
// demonstrating why the epoch-based machinery exists.
#pragma once

#include "bc/kadabra_context.hpp"
#include "bc/result.hpp"
#include "epoch/frame_codec.hpp"
#include "graph/graph.hpp"
#include "comm/substrate.hpp"

namespace distbc::bc {

struct LockstepOptions {
  KadabraParams params;
  int threads_per_rank = 1;
  /// Samples per round per thread; 0 = the epoch rule divided by P*T.
  std::uint64_t round_share = 0;
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
  /// Frame representation of the per-round reduction (the lockstep
  /// baseline aggregates with blocking collectives either way): dense
  /// elementwise reduce, or sparse/auto delta images via reduce_merge.
  /// Env defaulting (DISTBC_FRAME_REP) is resolved by api::Config.
  epoch::FrameRep frame_rep = epoch::FrameRep::kDense;
};

[[nodiscard]] BcResult lockstep_mpi_rank(const graph::Graph& graph,
                                         const LockstepOptions& options,
                                         comm::Substrate& world);

[[nodiscard]] BcResult lockstep_mpi(const graph::Graph& graph,
                                    const LockstepOptions& options,
                                    int num_ranks, int ranks_per_node = 1,
                                    comm::NetworkModel network = {});

}  // namespace distbc::bc
