#include "bc/calibration.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace distbc::bc {

double Calibration::budget_used() const {
  double sum = 0.0;
  for (const double d : delta_l) sum += d;
  for (const double d : delta_u) sum += d;
  return sum;
}

Calibration calibrate(std::span<const std::uint64_t> initial_counts,
                      std::uint64_t initial_tau, double epsilon, double delta,
                      double balancing) {
  DISTBC_ASSERT(initial_tau > 0);
  DISTBC_ASSERT(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  DISTBC_ASSERT(balancing > 0.0 && balancing < 1.0);
  const std::size_t n = initial_counts.size();
  DISTBC_ASSERT(n > 0);

  // Bernstein denominator per vertex: 2 b~0 + 2 eps / 3.
  std::vector<double> cost(n);
  for (std::size_t v = 0; v < n; ++v) {
    const double b0 =
        static_cast<double>(initial_counts[v]) / static_cast<double>(initial_tau);
    cost[v] = 2.0 * b0 + 2.0 * epsilon / 3.0;
  }

  const double eps_sq = epsilon * epsilon;
  const double adaptive_budget = (1.0 - balancing) * delta;
  auto share_sum = [&](double tau_star) {
    double sum = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      sum += 2.0 * std::exp(-eps_sq * tau_star / cost[v]);
    return sum;
  };

  // share_sum is strictly decreasing in tau*; bracket then bisect.
  double lo = 0.0;
  const double max_cost = 2.0 + 2.0 * epsilon / 3.0;
  double hi = max_cost *
              std::log(2.0 * static_cast<double>(n) / adaptive_budget) /
              eps_sq;
  DISTBC_ASSERT(share_sum(hi) <= adaptive_budget);
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (share_sum(mid) > adaptive_budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double tau_star = hi;  // upper end: guaranteed within budget

  Calibration result;
  result.predicted_tau = tau_star;
  result.delta_l.resize(n);
  result.delta_u.resize(n);
  const double uniform_floor = balancing * delta / (4.0 * static_cast<double>(n));
  for (std::size_t v = 0; v < n; ++v) {
    const double share = std::exp(-eps_sq * tau_star / cost[v]);
    result.delta_l[v] = share + uniform_floor;
    result.delta_u[v] = share + uniform_floor;
  }
  DISTBC_ASSERT_MSG(result.budget_used() < delta,
                    "calibration must respect the total failure budget");
  return result;
}

}  // namespace distbc::bc
