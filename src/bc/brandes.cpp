#include "bc/brandes.hpp"

#include <vector>

#include "support/timer.hpp"

namespace distbc::bc {

namespace {

/// One augmented SSSP from `source`: BFS with path counting, then
/// dependency accumulation bottom-up over the BFS order (which is a valid
/// reverse-topological order of the shortest-path DAG).
void accumulate_source(const graph::Graph& graph, graph::Vertex source,
                       std::vector<std::uint32_t>& dist,
                       std::vector<double>& sigma,
                       std::vector<double>& delta,
                       std::vector<graph::Vertex>& order,
                       std::vector<double>& scores) {
  constexpr std::uint32_t kUnset = 0xffffffffu;
  const graph::Vertex n = graph.num_vertices();
  // Dense reset: Brandes does n of these anyway, so O(n) per source is
  // within the algorithm's asymptotic budget (unlike in the samplers).
  std::fill(dist.begin(), dist.end(), kUnset);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  dist[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const graph::Vertex u = order[head];
    for (const graph::Vertex w : graph.neighbors(u)) {
      if (dist[w] == kUnset) {
        dist[w] = dist[u] + 1;
        order.push_back(w);
      }
      if (dist[w] == dist[u] + 1) sigma[w] += sigma[u];
    }
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const graph::Vertex w = *it;
    for (const graph::Vertex u : graph.neighbors(w)) {
      // u is a predecessor of w on shortest paths from source.
      if (dist[u] + 1 == dist[w])
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
    }
    if (w != source) scores[w] += delta[w];
  }
  (void)n;
}

}  // namespace

BcResult brandes(const graph::Graph& graph) {
  WallTimer timer;
  const graph::Vertex n = graph.num_vertices();
  BcResult result;
  result.scores.assign(n, 0.0);
  if (n < 2) return result;

  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<graph::Vertex> order;
  order.reserve(n);

  for (graph::Vertex source = 0; source < n; ++source)
    accumulate_source(graph, source, dist, sigma, delta, order,
                      result.scores);

  // The accumulation counts every unordered pair once per direction via the
  // n sources, i.e. the ordered-pair sum; normalize by n(n-1).
  const double norm = 1.0 / (static_cast<double>(n) * (n - 1.0));
  for (double& score : result.scores) score *= norm;
  result.total_seconds = timer.elapsed_s();
  return result;
}

}  // namespace distbc::bc
