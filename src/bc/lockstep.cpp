#include "bc/lockstep.hpp"

#include <atomic>
#include <barrier>
#include <mutex>
#include <thread>
#include <vector>

#include "bc/sampler.hpp"
#include "mpisim/runtime.hpp"
#include "engine/streams.hpp"
#include "epoch/sparse_frame.hpp"
#include "epoch/state_frame.hpp"
#include "support/timer.hpp"

namespace distbc::bc {

namespace {

/// Reduces `local` to `round_agg` at world rank 0, honoring the frame
/// representation: flat elementwise reduce for StateFrame, delta images
/// via reduce_merge for SparseFrame (the same wire formats the epoch
/// engine uses, minus every overlap trick - this is the baseline).
void round_reduce(comm::Substrate& world, const epoch::StateFrame& local,
                  epoch::StateFrame& round_agg, epoch::FrameRep /*rep*/,
                  std::vector<std::uint64_t>& /*scratch*/) {
  world.reduce(std::span<const std::uint64_t>(local.raw()), round_agg.raw(),
               0);
}

void round_reduce(comm::Substrate& world, const epoch::SparseFrame& local,
                  epoch::SparseFrame& round_agg, epoch::FrameRep rep,
                  std::vector<std::uint64_t>& scratch) {
  scratch.clear();
  local.encode(scratch, rep);
  round_agg.clear();
  world.reduce_merge(std::span<const std::uint64_t>(scratch),
                     [&](int, std::span<const std::uint64_t> image) {
                       round_agg.decode_add(image);
                     },
                     0);
}

template <typename Frame>
BcResult lockstep_frames(const graph::Graph& graph,
                         const LockstepOptions& options,
                         comm::Substrate& world) {
  WallTimer total_timer;
  PhaseTimer phases;
  BcResult result;
  const graph::Vertex n = graph.num_vertices();
  const int num_ranks = world.size();
  const int num_threads = options.threads_per_rank;
  const int rank = world.rank();
  const bool is_root = rank == 0;
  const KadabraParams& params = options.params;
  if (n < 2) {
    if (is_root) result.scores.assign(n, 0.0);
    return result;
  }

  // Phases 1 + 2 identical in structure to the epoch-based driver.
  std::uint32_t vd = 0;
  if (is_root) {
    vd = phases.timed(Phase::kDiameter,
                      [&] { return kadabra_vertex_diameter(graph, params); });
  }
  world.bcast(std::span{&vd, 1}, 0);
  KadabraContext context = begin_context(params, vd);

  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(num_ranks) * num_threads;
  std::vector<std::uint64_t> wire_scratch;
  phases.timed(Phase::kCalibration, [&] {
    std::vector<Frame> frames(num_threads, Frame(n));
    auto worker = [&](int t) {
      const std::uint64_t gti =
          static_cast<std::uint64_t>(rank) * num_threads + t;
      PathSampler sampler(graph, Rng(params.seed).split(gti));
      const std::uint64_t budget = context.initial_samples;
      const std::uint64_t share =
          budget / total_threads + (gti < budget % total_threads ? 1 : 0);
      for (std::uint64_t i = 0; i < share; ++i) sampler.sample(frames[t]);
    };
    std::vector<std::thread> pool;
    for (int t = 1; t < num_threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (auto& thread : pool) thread.join();
    Frame local(n);
    for (const auto& frame : frames) local.merge(frame);
    Frame initial(n);
    round_reduce(world, local, initial, options.frame_rep, wire_scratch);
    if (is_root) finish_calibration(context, initial);
  });

  // Phase 3: synchronous rounds.
  WallTimer adaptive_timer;
  const std::uint64_t round_share =
      options.round_share != 0
          ? options.round_share
          : std::min(engine::epoch_share(options.epoch_base,
                                         options.epoch_exponent,
                                         total_threads),
                     std::max<std::uint64_t>(
                         1, context.omega / (2 * total_threads)));

  std::vector<Frame> frames(num_threads, Frame(n));
  std::vector<PathSampler> samplers;
  samplers.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    const std::uint64_t gti =
        total_threads + static_cast<std::uint64_t>(rank) * num_threads + t;
    samplers.emplace_back(graph, Rng(params.seed).split(gti));
  }

  std::barrier sync(num_threads);
  std::atomic<bool> stop{false};
  Frame running(n);  // valid at root

  auto round_worker = [&](int t) {
    while (!stop.load(std::memory_order_acquire)) {
      for (std::uint64_t i = 0; i < round_share; ++i)
        samplers[t].sample(frames[t]);
      sync.arrive_and_wait();  // all local samples of this round done
      if (t == 0) {
        Frame local(n);
        for (auto& frame : frames) {
          local.merge(frame);
          frame.clear();
        }
        Frame round_agg(n);
        phases.timed(Phase::kReduction, [&] {
          round_reduce(world, local, round_agg, options.frame_rep,
                       wire_scratch);
        });
        std::uint8_t done_flag = 0;
        if (is_root) {
          running.merge(round_agg);
          done_flag = phases.timed(Phase::kStopCheck, [&] {
            return context.stop_satisfied(running) ? 1 : 0;
          });
        }
        phases.timed(Phase::kBroadcast, [&] {
          world.bcast(std::span{&done_flag, 1}, 0);
        });
        ++result.epochs;
        if (done_flag != 0) stop.store(true, std::memory_order_release);
      }
      sync.arrive_and_wait();  // verdict visible to all local threads
    }
  };

  std::vector<std::thread> pool;
  for (int t = 1; t < num_threads; ++t) pool.emplace_back(round_worker, t);
  round_worker(0);
  for (auto& thread : pool) thread.join();
  result.adaptive_seconds = adaptive_timer.elapsed_s();

  std::uint64_t local_taken = 0;
  for (const auto& sampler : samplers) local_taken += sampler.samples_taken();
  std::uint64_t world_taken = 0;
  world.reduce(std::span<const std::uint64_t>(&local_taken, 1),
               std::span{&world_taken, 1}, 0);

  if (is_root) {
    scores_from_frame(running, result.scores);
    result.samples = running.tau();
    result.samples_attempted = world_taken;
    result.omega = context.omega;
    result.vertex_diameter = vd;
    result.comm_volume = world.volume();
    result.substrate_used = world.name();
    result.comm_bytes = result.comm_volume.total();
    result.phases = phases;
  } else {
    result.samples_attempted = local_taken;
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace

BcResult lockstep_mpi_rank(const graph::Graph& graph,
                           const LockstepOptions& options,
                           comm::Substrate& world) {
  DISTBC_ASSERT(options.threads_per_rank >= 1);
  return options.frame_rep == epoch::FrameRep::kDense
             ? lockstep_frames<epoch::StateFrame>(graph, options, world)
             : lockstep_frames<epoch::SparseFrame>(graph, options, world);
}

BcResult lockstep_mpi(const graph::Graph& graph,
                      const LockstepOptions& options, int num_ranks,
                      int ranks_per_node, comm::NetworkModel network) {
  mpisim::RuntimeConfig config;
  config.num_ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = network;
  mpisim::Runtime runtime(config);

  BcResult root_result;
  std::mutex result_mu;
  runtime.run([&](auto& rank_comm) {
    const auto substrate = comm::make_substrate(
        comm::SubstrateKind::kMpisim, rank_comm);
    BcResult local = lockstep_mpi_rank(graph, options, *substrate);
    if (substrate->rank() == 0) {
      std::lock_guard lock(result_mu);
      root_result = std::move(local);
    }
  });
  return root_result;
}

}  // namespace distbc::bc
