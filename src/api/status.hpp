// The facade's error channel: api-layer validation returns a Status (and
// api::Result carries one) instead of tripping support/assert aborts deep
// inside the drivers. The driver layer keeps its asserts - misuse of the
// low-level API is still a programming error - but everything reachable
// from Session::run is validated up front and reported as a message.
#pragma once

#include <string>
#include <utility>

namespace distbc::api {

struct Status {
  bool ok = true;
  std::string message;

  [[nodiscard]] static Status success() { return {}; }
  [[nodiscard]] static Status error(std::string msg) {
    return {false, std::move(msg)};
  }
  explicit operator bool() const { return ok; }
};

}  // namespace distbc::api
