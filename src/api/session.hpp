// distbc::api::Session - one job-submission facade over every driver.
//
// A Session binds a graph to a runtime/cluster shape (an owned
// mpisim::Runtime built from Config::ranks / ranks_per_node / network) and
// owns the reusable per-(graph, cluster-shape) state that the free
// functions recompute on every call:
//   * the KADABRA phases-1-2 warm state (diameter estimate + calibration
//     + per-sample cost), cached per statistical key, so repeated
//     betweenness queries skip both phases (bc::KadabraWarmState);
//   * the mean-distance range bound (2-approximate diameter);
//   * the connectivity check;
//   * an optional tune::TuningProfile (loaded from Config::tune_profile,
//     handed in via Config::profile, or captured lazily when
//     Config::auto_tune is set) reused by every query.
//
// session.run(query) dispatches the typed queries to the existing drivers
// and returns one unified Result: a Status instead of deep asserts for
// invalid submissions, the score view, top-k pairs, phase timings, the
// per-collective communication volume, and the engine configuration the
// run actually used. In the engine's deterministic mode, session.run is
// bitwise identical to calling the drivers directly with the same knobs
// (tests/test_api.cpp).
//
// The legacy free functions (bc::kadabra_mpi, adaptive::closeness_mpi,
// adaptive::mean_distance_mpi) are thin wrappers over the native
// entry points below - one facade, one cluster lifecycle.
//
// Sessions are NOT thread-safe - this is a contract, not an accident.
// Every run()/native entry mutates the session's caches (calibrations,
// connectivity, tune profile, mean-distance range), so queries run one at
// a time on one thread (each query already fans out over the session's
// ranks and threads). Concurrent submission from two threads corrupts the
// caches silently; the session therefore carries a re-entrancy tripwire
// (active in every build type - one atomic exchange per query) that aborts
// loudly on overlapping cross-thread calls. Concurrency belongs one layer
// up: service::SessionPool holds N replicas bound to the same graph and
// shares their warm state instead of sharing a session.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <variant>
#include <vector>

#include "adaptive/closeness.hpp"
#include "adaptive/mean_distance.hpp"
#include "api/config.hpp"
#include "api/status.hpp"
#include "bc/kadabra.hpp"
#include "dynamic/dynamic_state.hpp"
#include "graph/graph.hpp"
#include "mpisim/runtime.hpp"
#include "support/timer.hpp"

namespace distbc::api {

// --- Typed queries ----------------------------------------------------------

/// Per-query engine overrides: exactly the knobs that do NOT change
/// deterministic-mode results (bitwise invariant across representations,
/// tree radixes, and traversal-batch widths) and do NOT enter the
/// calibration cache key - so a service can run mixed configurations on
/// one session or pool without splitting the cached warm state. Unset
/// fields keep the session Config's value. On autotuned queries the tuner
/// may still re-decide frame_rep/tree_radix; sample_batch is honored as
/// the starting width (0 = auto probe).
struct EngineOverrides {
  std::optional<engine::FrameRep> frame_rep;
  std::optional<int> tree_radix;    // 0 = flat, else >= 2
  std::optional<int> sample_batch;  // [0, 64]; 0 = auto

  [[nodiscard]] bool any() const {
    return frame_rep.has_value() || tree_radix.has_value() ||
           sample_batch.has_value();
  }
};

/// Approximate betweenness (KADABRA) with optional exact top-k extraction;
/// runs exact Brandes instead when `exact` is set or |V| is at or below
/// Config::exact_threshold.
struct BetweennessQuery {
  double epsilon = 0.05;
  double delta = 0.1;
  std::size_t top_k = 0;  // 0 = score vector only
  bool exact = false;     // force the exact-Brandes path
  /// Route through the session's dynamic::IncrementalBc engine: the sample
  /// set survives Session::apply(EdgeBatch) churn, so post-apply queries
  /// pay only for the invalidated samples. Single-threaded engine, keyed
  /// by (epsilon, delta) + the session's statistical config; ignored when
  /// the exact-Brandes path is selected. EngineOverrides do not apply.
  bool incremental = false;
  EngineOverrides engine{};
};

/// Adaptive harmonic-closeness estimation for all vertices.
struct ClosenessRankQuery {
  double epsilon = 0.05;
  double delta = 0.1;
  std::size_t top_k = 0;  // 0 = score vector only
  EngineOverrides engine{};
};

/// Adaptive mean shortest-path distance estimation.
struct MeanDistanceQuery {
  double epsilon = 0.1;
  double delta = 0.1;
  EngineOverrides engine{};
};

using Query = std::variant<BetweennessQuery, ClosenessRankQuery,
                           MeanDistanceQuery>;

// --- Unified result ---------------------------------------------------------

struct Result {
  /// Validation / execution status; every other field is meaningful only
  /// when status.ok.
  Status status;
  /// "kadabra" | "brandes" | "closeness" | "mean_distance".
  std::string algorithm;

  /// Per-vertex scores (betweenness / closeness queries).
  std::vector<double> scores;
  /// The k highest (vertex, score) pairs, descending (top_k > 0 queries).
  std::vector<std::pair<graph::Vertex, double>> top_k;
  /// Mean-distance queries only.
  double mean = 0.0;
  double stddev = 0.0;
  double half_width = 0.0;

  std::uint64_t samples = 0;
  std::uint64_t epochs = 0;
  double total_seconds = 0.0;
  /// Phase windows of this query only: a query that reused the session's
  /// cached calibration reports zero kDiameter/kCalibration seconds.
  PhaseTimer phases;
  /// Per-collective bytes moved by this query (MPI shapes only), tagged
  /// with the substrate that moved them.
  comm::CommVolume comm_volume;
  /// The engine configuration the adaptive phase actually ran with.
  engine::EngineOptions engine_used;
  /// The comm substrate the query executed on (comm::substrate_name
  /// value; empty for runs that never touched a communicator, e.g. exact
  /// Brandes).
  std::string substrate_used;

  /// Reuse accounting: what session state this query skipped recomputing.
  bool calibration_reused = false;
  bool profile_reused = false;
};

// --- Session ----------------------------------------------------------------

class Session {
 public:
  /// Binds an owned copy/moved graph to the cluster shape in `config`.
  /// Construction never aborts: configuration problems (validate(),
  /// unloadable tune_profile) surface through status() and fail every
  /// subsequent run() with the same message.
  Session(graph::Graph graph, Config config);

  /// Non-owning binding for callers whose graph outlives the session (the
  /// compatibility wrappers).
  Session(std::shared_ptr<const graph::Graph> graph, Config config);

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// Typed dispatch. Invalid submissions (bad epsilon/delta/k, graphs with
  /// fewer than two vertices, disconnected input for the sampling
  /// estimators, mismatched runtime configuration) return an error Result
  /// instead of tripping driver asserts.
  [[nodiscard]] Result run(const BetweennessQuery& query);
  [[nodiscard]] Result run(const ClosenessRankQuery& query);
  [[nodiscard]] Result run(const MeanDistanceQuery& query);
  [[nodiscard]] Result run(const Query& query);
  [[nodiscard]] std::vector<Result> run_batch(std::span<const Query> queries);

  /// Seeds the calibration cache from a previous run's BcResult::warm
  /// (e.g. persisted across processes by a service), keyed like the
  /// session's own cache entries. The warm state's provenance is validated
  /// against this session - same graph fingerprint, same statistical
  /// parameters, same cluster shape (ranks, effective threads,
  /// deterministic mode, virtual streams) - and a mismatch returns an
  /// error Status with the cache untouched, instead of silently
  /// mis-caching a state the stopping rule was never calibrated for.
  /// States without provenance (fingerprint/ranks zero, from before the
  /// accounting) are accepted as-is.
  [[nodiscard]] Status preload_calibration(
      const bc::KadabraParams& params,
      std::shared_ptr<const bc::KadabraWarmState> warm);

  /// The cached phases-1-2 warm states of this session, exportable to
  /// other sessions bound to the same (graph, cluster shape) via
  /// preload_calibration (each state's KadabraParams travel inside
  /// context.params) - the service tier's cross-replica sharing and
  /// persistence hook.
  [[nodiscard]] std::vector<std::shared_ptr<const bc::KadabraWarmState>>
  calibrations() const;

  /// The tuning profile bound to or captured by this session (null until
  /// one exists). Exposed so a pool can persist and share one capture.
  [[nodiscard]] std::shared_ptr<const tune::TuningProfile> tuning_profile()
      const {
    return profile_;
  }

  // --- Dynamic graphs (src/dynamic/) --------------------------------------

  /// Applies one edge batch to the session's graph: validates it against
  /// the current snapshot, publishes the next version, refreshes every
  /// live incremental engine (clean samples kept, dirty ones resampled),
  /// and updates the session caches - connectivity and fingerprint are
  /// re-derived; cached calibrations survive insert-only batches unchanged
  /// (distances only shrink, so their vertex-diameter bounds hold) and
  /// survive deletion batches when their bound covers the recomputed one,
  /// re-stamped to the new fingerprint; violated bounds drop the entry.
  /// A rejected batch (report.status) leaves the session untouched.
  [[nodiscard]] dynamic::ApplyReport apply(dynamic::EdgeBatch batch);

  /// Adopts an apply() performed by another session sharing this one's
  /// DynamicState (service::SessionPool replicas): updates this session's
  /// snapshot and caches without re-applying the batch.
  void sync_dynamic(const dynamic::ApplyReport& report);

  /// Binds a shared DynamicState (pool replicas all bind the same one so
  /// incremental results are identical across pool sizes). Must happen
  /// before the first apply()/incremental query; the state's current
  /// snapshot must be this session's graph.
  void bind_dynamic_state(std::shared_ptr<dynamic::DynamicState> state);

  /// The session's dynamic state (null until an apply() or incremental
  /// query created one, or bind_dynamic_state installed a shared one).
  [[nodiscard]] const std::shared_ptr<dynamic::DynamicState>& dynamic_state()
      const {
    return dynamic_;
  }

  // --- Native entry points (the compatibility wrappers delegate here) ----
  // Same cluster lifecycle and caching as run(), legacy option/result
  // types, legacy misuse semantics (driver asserts, no Status).

  [[nodiscard]] bc::BcResult kadabra(const bc::KadabraOptions& options);
  [[nodiscard]] adaptive::ClosenessResult closeness(
      const adaptive::ClosenessParams& params);
  [[nodiscard]] adaptive::MeanDistanceResult mean_distance(
      const adaptive::MeanDistanceParams& params);

 private:
  /// RAII tripwire enforcing the "Sessions are not thread-safe" contract:
  /// entry points claim the session for their thread and abort (loudly,
  /// in every build type) when another thread already holds it. Same-
  /// thread nesting (run() -> native entry) is fine.
  class [[nodiscard]] ThreadGuard {
   public:
    explicit ThreadGuard(const Session& session);
    ~ThreadGuard();
    ThreadGuard(const ThreadGuard&) = delete;
    ThreadGuard& operator=(const ThreadGuard&) = delete;

   private:
    const Session& session_;
    bool owner_ = false;
  };

  /// Everything the calibration outcome depends on besides the graph and
  /// the rank count (fixed per session): the statistical parameters and
  /// the stream layout.
  using CalibrationKey =
      std::tuple<double, double, std::uint64_t, bool, std::uint64_t, double,
                 int, bool, std::uint64_t>;
  [[nodiscard]] CalibrationKey calibration_key(
      const bc::KadabraParams& params, int threads_per_rank,
      bool deterministic, std::uint64_t virtual_streams) const;

  [[nodiscard]] Status validate_query(double epsilon, double delta,
                                      std::size_t top_k,
                                      bool needs_connected);
  /// Creates the session-private DynamicState on first dynamic use.
  void ensure_dynamic();
  /// The incremental-betweenness dispatch target of run(BetweennessQuery).
  [[nodiscard]] Result run_incremental(const BetweennessQuery& query);
  /// Cache updates shared by apply() and sync_dynamic() (see apply()).
  void adopt_apply(const dynamic::ApplyReport& report);
  [[nodiscard]] bool connected();
  /// Lazily computed graph::fingerprint of the bound graph (cached; used
  /// by preload_calibration validation).
  [[nodiscard]] std::uint64_t graph_fingerprint();
  /// The thread count queries effectively run at (the bound profile's
  /// shape overrides Config::threads).
  [[nodiscard]] int effective_threads() const;
  /// The profile queries should use (loads/captures per Config); `reused`
  /// reports whether an already-used profile served this query.
  [[nodiscard]] std::shared_ptr<const tune::TuningProfile> active_profile(
      bool& reused);

  std::shared_ptr<const graph::Graph> graph_;
  Config config_;
  Status status_;
  std::unique_ptr<mpisim::Runtime> runtime_;

  // Cached per-(graph, cluster-shape) state.
  std::optional<bool> connected_;
  std::optional<std::uint64_t> fingerprint_;
  std::map<CalibrationKey, std::shared_ptr<const bc::KadabraWarmState>>
      calibrations_;
  std::uint32_t mean_distance_range_ = 0;
  std::shared_ptr<const tune::TuningProfile> profile_;
  bool profile_used_ = false;
  std::shared_ptr<dynamic::DynamicState> dynamic_;

  /// Thread currently inside an entry point (default id = none).
  mutable std::atomic<std::thread::id> active_thread_{};
};

}  // namespace distbc::api
