#include "api/config.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

#include "support/assert.hpp"

namespace distbc::api {

namespace {

// --- Value parsers ----------------------------------------------------------

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) {
  // strtoull silently wraps negative inputs; demand a leading digit.
  if (text.empty() || text.front() < '0' || text.front() > '9') return false;
  errno = 0;
  char* end = nullptr;
  const std::string owned(text);
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  out = value;
  return true;
}

[[nodiscard]] bool parse_int(std::string_view text, int& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string owned(text);
  const long value = std::strtol(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  if (value < INT_MIN || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

[[nodiscard]] bool parse_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  out = value;
  return true;
}

[[nodiscard]] bool parse_bool(std::string_view text, bool& out) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    out = false;
    return true;
  }
  return false;
}

// --- Key table --------------------------------------------------------------

struct Entry {
  ConfigKey info;
  Status (*apply)(Config&, std::string_view);
  std::string (*read)(const Config&);
};

Status bad_value(std::string_view key, std::string_view value,
                 const char* expected) {
  std::string message = "bad value '";
  message += value;
  message += "' for config key '";
  message += key;
  message += "' (expected ";
  message += expected;
  message += ")";
  return Status::error(std::move(message));
}

// One macro per field family keeps the key table honest: every key gets
// a parser, a range check, and a serializer from the same three tokens.
#define DISTBC_U64_KEY(key_name, env_name, field, help_text)               \
  Entry{{key_name, env_name, help_text},                                   \
        [](Config& config, std::string_view value) {                       \
          std::uint64_t parsed = 0;                                        \
          if (!parse_u64(value, parsed))                                   \
            return bad_value(key_name, value, "unsigned integer");         \
          config.field = parsed;                                           \
          return Status::success();                                        \
        },                                                                 \
        [](const Config& config) { return std::to_string(config.field); }}

#define DISTBC_BOOL_KEY(key_name, env_name, field, help_text)            \
  Entry{{key_name, env_name, help_text},                                 \
        [](Config& config, std::string_view value) {                     \
          bool parsed = false;                                           \
          if (!parse_bool(value, parsed))                                \
            return bad_value(key_name, value, "0|1|true|false|yes|no");  \
          config.field = parsed;                                         \
          return Status::success();                                      \
        },                                                               \
        [](const Config& config) {                                       \
          return std::string(config.field ? "1" : "0");                  \
        }}

#define DISTBC_DOUBLE_KEY(key_name, env_name, field, help_text)   \
  Entry{{key_name, env_name, help_text},                          \
        [](Config& config, std::string_view value) {              \
          double parsed = 0.0;                                    \
          if (!parse_double(value, parsed))                       \
            return bad_value(key_name, value, "number");          \
          config.field = parsed;                                  \
          return Status::success();                               \
        },                                                        \
        [](const Config& config) {                                \
          std::ostringstream out;                                 \
          out << config.field;                                    \
          return out.str();                                       \
        }}

#define DISTBC_POSITIVE_INT_KEY(key_name, env_name, field, help_text)  \
  Entry{{key_name, env_name, help_text},                               \
        [](Config& config, std::string_view value) {                   \
          int parsed = 0;                                              \
          if (!parse_int(value, parsed) || parsed < 1)                 \
            return bad_value(key_name, value, "integer >= 1");         \
          config.field = parsed;                                       \
          return Status::success();                                    \
        },                                                             \
        [](const Config& config) { return std::to_string(config.field); }}

const std::vector<Entry>& entries() {
  static const std::vector<Entry> table = {
      DISTBC_POSITIVE_INT_KEY("ranks", "DISTBC_RANKS", ranks,
                              "simulated MPI ranks of the session"),
      DISTBC_POSITIVE_INT_KEY("ranks_per_node", "DISTBC_RANKS_PER_NODE",
                              ranks_per_node, "MPI processes per node"),
      DISTBC_POSITIVE_INT_KEY("threads", "DISTBC_THREADS", threads,
                              "sampling threads per rank"),
      Entry{{"aggregation", "DISTBC_AGGREGATION",
             "ibarrier+reduce | ireduce | blocking (paper SIV-F)"},
            [](Config& config, std::string_view value) {
              const auto parsed = engine::aggregation_from_name(value);
              if (!parsed.has_value())
                return bad_value("aggregation", value,
                                 "ibarrier+reduce|ireduce|blocking");
              config.aggregation = *parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::string(
                  engine::aggregation_name(config.aggregation));
            }},
      DISTBC_BOOL_KEY("hierarchical", "DISTBC_HIERARCHICAL", hierarchical,
                      "node-local RMA pre-reduction (paper SIV-E)"),
      DISTBC_U64_KEY("epoch_base", "DISTBC_EPOCH_BASE", epoch_base,
                     "epoch-length rule base (paper SIV-D)"),
      DISTBC_DOUBLE_KEY("epoch_exponent", "DISTBC_EPOCH_EXPONENT",
                        epoch_exponent,
                        "epoch-length rule exponent (paper SIV-D)"),
      DISTBC_U64_KEY("max_epoch_length", "DISTBC_MAX_EPOCH_LENGTH",
                     max_epoch_length, "hard epoch-length cap (0 = none)"),
      DISTBC_U64_KEY("max_epochs", "DISTBC_MAX_EPOCHS", max_epochs,
                     "hard cap on aggregation rounds"),
      DISTBC_BOOL_KEY("deterministic", "DISTBC_DETERMINISTIC", deterministic,
                      "bitwise-reproducible engine mode"),
      DISTBC_U64_KEY("virtual_streams", "DISTBC_VIRTUAL_STREAMS",
                     virtual_streams,
                     "deterministic-mode stream count (0 = physical)"),
      Entry{{"frame_rep", "DISTBC_FRAME_REP",
             "wire representation: dense | sparse | auto"},
            [](Config& config, std::string_view value) {
              const auto parsed = epoch::frame_rep_from_name(value);
              if (!parsed.has_value())
                return bad_value("frame_rep", value, "dense|sparse|auto");
              config.frame_rep = *parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::string(epoch::frame_rep_name(config.frame_rep));
            }},
      Entry{{"tree_radix", "DISTBC_TREE_RADIX",
             "tree-merge radix (0 = flat, else >= 2)"},
            [](Config& config, std::string_view value) {
              int parsed = 0;
              if (!parse_int(value, parsed) || parsed < 0 || parsed == 1)
                return bad_value("tree_radix", value, "0 or an integer >= 2");
              config.tree_radix = parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::to_string(config.tree_radix);
            }},
      Entry{{"leader_radix", "DISTBC_LEADER_RADIX",
             "two-level leader-merge radix (0 = inherit tree_radix)"},
            [](Config& config, std::string_view value) {
              int parsed = 0;
              if (!parse_int(value, parsed) || parsed < 0 || parsed == 1)
                return bad_value("leader_radix", value,
                                 "0 or an integer >= 2");
              config.leader_radix = parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::to_string(config.leader_radix);
            }},
      DISTBC_BOOL_KEY("local_aggregates", "DISTBC_LOCAL_AGGREGATES",
                      local_aggregates,
                      "keep per-rank partial aggregates (top-k substrate)"),
      Entry{{"sample_batch", "DISTBC_SAMPLE_BATCH",
             "samples per traversal batch (1 = scalar, 0 = auto, max 64)"},
            [](Config& config, std::string_view value) {
              int parsed = 0;
              if (!parse_int(value, parsed) || parsed < 0 || parsed > 64)
                return bad_value("sample_batch", value,
                                 "integer in [0, 64]; 0 = auto");
              config.sample_batch = parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::to_string(config.sample_batch);
            }},
      Entry{{"comm_substrate", "DISTBC_COMM_SUBSTRATE",
             "collective backend: mpisim | ncclsim"},
            [](Config& config, std::string_view value) {
              const auto parsed = comm::substrate_from_name(value);
              if (!parsed.has_value())
                return bad_value("comm_substrate", value, "mpisim|ncclsim");
              config.comm_substrate = *parsed;
              return Status::success();
            },
            [](const Config& config) {
              return std::string(
                  comm::substrate_name(config.comm_substrate));
            }},
      DISTBC_U64_KEY("seed", "DISTBC_SEED", seed, "RNG seed"),
      DISTBC_BOOL_KEY("exact_diameter", "DISTBC_EXACT_DIAMETER",
                      exact_diameter,
                      "phase 1: iFUB (1) or 2-approximation (0)"),
      DISTBC_U64_KEY("initial_samples", "DISTBC_INITIAL_SAMPLES",
                     initial_samples,
                     "calibration sample count (0 = automatic)"),
      DISTBC_DOUBLE_KEY("balancing", "DISTBC_BALANCING", balancing,
                        "calibration failure-budget floor fraction"),
      DISTBC_U64_KEY("omega_fraction", "DISTBC_OMEGA_FRACTION",
                     omega_fraction,
                     "first stop check after budget/omega_fraction samples"),
      DISTBC_U64_KEY("min_epoch_length", "DISTBC_MIN_EPOCH_LENGTH",
                     min_epoch_length, "stop-check pacing floor"),
      DISTBC_U64_KEY("exact_threshold", "DISTBC_EXACT_THRESHOLD",
                     exact_threshold,
                     "|V| at or below which betweenness runs exact Brandes"),
      Entry{{"tune_profile", "DISTBC_TUNE_PROFILE",
             "tuning-profile file to load at session construction"},
            [](Config& config, std::string_view value) {
              config.tune_profile = std::string(value);
              return Status::success();
            },
            [](const Config& config) { return config.tune_profile; }},
      DISTBC_BOOL_KEY("auto_tune", "DISTBC_AUTO_TUNE", auto_tune,
                      "capture a tuning profile at the first query"),
      DISTBC_POSITIVE_INT_KEY("service_pool_size", "DISTBC_SERVICE_POOL_SIZE",
                              service_pool_size,
                              "session replicas per pooled graph"),
      DISTBC_U64_KEY("service_queue_capacity", "DISTBC_SERVICE_QUEUE_CAPACITY",
                     service_queue_capacity,
                     "pending-query cap before typed rejection"),
      Entry{{"service_warm_store", "DISTBC_SERVICE_WARM_STORE",
             "warm-state store directory (empty = no persistence)"},
            [](Config& config, std::string_view value) {
              config.service_warm_store = std::string(value);
              return Status::success();
            },
            [](const Config& config) { return config.service_warm_store; }},
      DISTBC_U64_KEY("service_warm_store_max_entries",
                     "DISTBC_SERVICE_WARM_STORE_MAX_ENTRIES",
                     service_warm_store_max_entries,
                     "persisted warm states kept per version (0 = unbounded)"),
      DISTBC_U64_KEY("dynamic_sketch_cap", "DISTBC_DYNAMIC_SKETCH_CAP",
                     dynamic_sketch_cap,
                     "scanned-set sketch size kept exact (larger -> Bloom)"),
  };
  return table;
}

#undef DISTBC_U64_KEY
#undef DISTBC_BOOL_KEY
#undef DISTBC_DOUBLE_KEY
#undef DISTBC_POSITIVE_INT_KEY

}  // namespace

const std::vector<ConfigKey>& Config::keys() {
  static const std::vector<ConfigKey> infos = [] {
    std::vector<ConfigKey> out;
    out.reserve(entries().size());
    for (const Entry& entry : entries()) out.push_back(entry.info);
    return out;
  }();
  return infos;
}

Status Config::set(std::string_view key, std::string_view value) {
  for (const Entry& entry : entries()) {
    if (key == entry.info.key) return entry.apply(*this, value);
  }
  std::string message = "unknown config key '";
  message += key;
  message += "' (known:";
  for (const Entry& entry : entries()) {
    message += ' ';
    message += entry.info.key;
  }
  message += ")";
  return Status::error(std::move(message));
}

Status Config::load_text(std::string_view text) {
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    const std::size_t line_end = text.find('\n', line_start);
    std::string_view line = text.substr(
        line_start, line_end == std::string_view::npos ? std::string_view::npos
                                                       : line_end - line_start);
    line_start = line_end == std::string_view::npos ? text.size() + 1
                                                    : line_end + 1;
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    const auto trim = [](std::string_view s) {
      while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                            s.front() == '\r'))
        s.remove_prefix(1);
      while (!s.empty() &&
             (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
      return s;
    };
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      std::string message = "malformed config line '";
      message += line;
      message += "' (expected key = value)";
      return Status::error(std::move(message));
    }
    const Status status =
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    if (!status.ok) return status;
  }
  return Status::success();
}

Status Config::load_env() {
  for (const Entry& entry : entries()) {
    // The one environment read of the whole library (see the file comment
    // in api/config.hpp).
    const char* value = std::getenv(entry.info.env);
    if (value == nullptr) continue;
    const Status status = entry.apply(*this, value);
    if (!status.ok) {
      Status wrapped = status;
      wrapped.message += " [from environment variable ";
      wrapped.message += entry.info.env;
      wrapped.message += "]";
      return wrapped;
    }
  }
  return Status::success();
}

Config Config::from_env() {
  Config config;
  const Status status = config.load_env();
  DISTBC_ASSERT_MSG(status.ok, status.message.c_str());
  return config;
}

Status Config::validate() const {
  if (ranks < 1) return Status::error("ranks must be >= 1");
  if (ranks_per_node < 1) return Status::error("ranks_per_node must be >= 1");
  if (threads < 1) return Status::error("threads must be >= 1");
  if (tree_radix == 1 || tree_radix < 0)
    return Status::error("tree_radix must be 0 (flat) or >= 2");
  if (leader_radix == 1 || leader_radix < 0)
    return Status::error("leader_radix must be 0 (inherit) or >= 2");
  if (epoch_base == 0) return Status::error("epoch_base must be >= 1");
  if (omega_fraction == 0) return Status::error("omega_fraction must be >= 1");
  if (virtual_streams != 0 && !deterministic)
    return Status::error(
        "virtual_streams requires deterministic mode (mismatched runtime: "
        "free-running streams are the physical thread count)");
  if (!(balancing > 0.0) || balancing >= 1.0)
    return Status::error("balancing must be in (0, 1)");
  if (sample_batch < 0 || sample_batch > 64)
    return Status::error(
        "sample_batch must be in [0, 64] (0 = auto, 1 = scalar)");
  if (service_pool_size < 1)
    return Status::error("service_pool_size must be >= 1");
  if (service_queue_capacity == 0)
    return Status::error("service_queue_capacity must be >= 1");
  return Status::success();
}

engine::EngineOptions Config::engine_options() const {
  engine::EngineOptions options;
  options.threads_per_rank = threads;
  options.aggregation = aggregation;
  options.hierarchical = hierarchical;
  options.epoch_base = epoch_base;
  options.epoch_exponent = epoch_exponent;
  options.max_epoch_length = max_epoch_length;
  options.max_epochs = max_epochs;
  options.deterministic = deterministic;
  options.virtual_streams = virtual_streams;
  options.frame_rep = frame_rep;
  options.tree_radix = tree_radix;
  options.leader_radix = leader_radix;
  options.local_aggregates = local_aggregates;
  options.sample_batch = sample_batch;
  return options;
}

std::string Config::serialize() const {
  std::string out;
  for (const Entry& entry : entries()) {
    out += entry.info.key;
    out += " = ";
    out += entry.read(*this);
    out += '\n';
  }
  return out;
}

}  // namespace distbc::api
