#include "api/session.hpp"

#include <algorithm>
#include <utility>

#include "bc/brandes.hpp"
#include "bc/brandes_parallel.hpp"
#include "comm/substrate.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "tune/microbench.hpp"
#include "tune/tuner.hpp"

namespace distbc::api {

namespace {

/// (vertex, score) pairs for an already-ranked vertex order.
std::vector<std::pair<graph::Vertex, double>> pairs_from_order(
    const std::vector<double>& scores,
    const std::vector<graph::Vertex>& order) {
  std::vector<std::pair<graph::Vertex, double>> pairs;
  pairs.reserve(order.size());
  for (const graph::Vertex v : order) pairs.emplace_back(v, scores[v]);
  return pairs;
}

/// Validates and applies a query's EngineOverrides onto the engine options
/// built from the session Config. The three overridable knobs mirror the
/// Config table's ranges.
Status apply_overrides(const EngineOverrides& overrides,
                       engine::EngineOptions& options) {
  if (overrides.tree_radix.has_value() &&
      (*overrides.tree_radix < 0 || *overrides.tree_radix == 1)) {
    return Status::error(
        "query override tree_radix must be 0 (flat) or >= 2");
  }
  if (overrides.sample_batch.has_value() &&
      (*overrides.sample_batch < 0 || *overrides.sample_batch > 64)) {
    return Status::error(
        "query override sample_batch must be in [0, 64] (0 = auto)");
  }
  if (overrides.frame_rep.has_value())
    options.frame_rep = *overrides.frame_rep;
  if (overrides.tree_radix.has_value())
    options.tree_radix = *overrides.tree_radix;
  if (overrides.sample_batch.has_value())
    options.sample_batch = *overrides.sample_batch;
  return Status::success();
}

}  // namespace

// --- Thread-safety tripwire -------------------------------------------------

Session::ThreadGuard::ThreadGuard(const Session& session)
    : session_(session) {
  const std::thread::id self = std::this_thread::get_id();
  if (session_.active_thread_.load(std::memory_order_acquire) == self)
    return;  // same-thread nesting: run() delegating to a native entry
  std::thread::id unowned{};
  owner_ = session_.active_thread_.compare_exchange_strong(
      unowned, self, std::memory_order_acq_rel);
  DISTBC_ASSERT_MSG(owner_,
                    "api::Session is not thread-safe: overlapping queries "
                    "from two threads detected - every entry point mutates "
                    "the session's caches. Use one session per thread or "
                    "service::SessionPool for concurrency.");
}

Session::ThreadGuard::~ThreadGuard() {
  if (owner_)
    session_.active_thread_.store(std::thread::id{},
                                  std::memory_order_release);
}

Session::Session(graph::Graph graph, Config config)
    : Session(std::make_shared<const graph::Graph>(std::move(graph)),
              std::move(config)) {}

Session::Session(std::shared_ptr<const graph::Graph> graph, Config config)
    : graph_(std::move(graph)), config_(std::move(config)) {
  DISTBC_ASSERT(graph_ != nullptr);
  status_ = config_.validate();
  if (!status_.ok) return;
  profile_ = config_.profile;
  if (profile_ == nullptr && !config_.tune_profile.empty()) {
    auto loaded = tune::TuningProfile::load(config_.tune_profile);
    if (!loaded.has_value()) {
      status_ = Status::error("cannot load tuning profile '" +
                              config_.tune_profile + "'");
      return;
    }
    profile_ = std::make_shared<const tune::TuningProfile>(*loaded);
  }
  mpisim::RuntimeConfig runtime_config;
  runtime_config.num_ranks = config_.ranks;
  runtime_config.ranks_per_node = config_.ranks_per_node;
  // The substrate's link economics (NVLink/IB profile, launch latency,
  // ring all-reduce pricing for ncclsim) layer over the configured model.
  runtime_config.network =
      comm::network_model_for(config_.comm_substrate, config_.network);
  runtime_ = std::make_unique<mpisim::Runtime>(runtime_config);
}

bool Session::connected() {
  if (!connected_.has_value()) connected_ = graph::is_connected(*graph_);
  return *connected_;
}

std::uint64_t Session::graph_fingerprint() {
  if (!fingerprint_.has_value()) fingerprint_ = graph::fingerprint(*graph_);
  return *fingerprint_;
}

int Session::effective_threads() const {
  // With a profile bound to the session, the autotune path runs at the
  // profile's thread count, not config's.
  return profile_ != nullptr ? profile_->shape.threads_per_rank
                             : config_.threads;
}

Status Session::validate_query(double epsilon, double delta,
                               std::size_t top_k, bool needs_connected) {
  if (!status_.ok) return status_;
  if (graph_->num_vertices() < 2)
    return Status::error("graph has fewer than 2 vertices");
  if (!(epsilon > 0.0)) return Status::error("epsilon must be > 0");
  if (!(delta > 0.0) || !(delta < 1.0))
    return Status::error("delta must be in (0, 1)");
  if (top_k > graph_->num_vertices())
    return Status::error("top_k exceeds the number of vertices");
  if (needs_connected && !connected())
    return Status::error(
        "graph is not connected; the sampling estimators require a "
        "connected graph (run on its largest component)");
  return Status::success();
}

std::shared_ptr<const tune::TuningProfile> Session::active_profile(
    bool& reused) {
  reused = profile_ != nullptr && profile_used_;
  if (profile_ == nullptr && config_.auto_tune) {
    // Lazy capture: one microbench run on this session's cluster shape,
    // amortized over every subsequent query.
    tune::MicrobenchConfig micro;
    micro.num_ranks = config_.ranks;
    micro.ranks_per_node = config_.ranks_per_node;
    micro.threads_per_rank = config_.threads;
    micro.network = config_.network;
    micro.substrate = config_.comm_substrate;
    profile_ =
        std::make_shared<const tune::TuningProfile>(capture_profile(micro));
  }
  if (profile_ != nullptr) profile_used_ = true;
  return profile_;
}

Session::CalibrationKey Session::calibration_key(
    const bc::KadabraParams& params, int threads_per_rank, bool deterministic,
    std::uint64_t virtual_streams) const {
  return {params.epsilon,    params.delta,     params.seed,
          params.exact_diameter, params.initial_samples, params.balancing,
          threads_per_rank,  deterministic,    virtual_streams};
}

Status Session::preload_calibration(
    const bc::KadabraParams& params,
    std::shared_ptr<const bc::KadabraWarmState> warm) {
  const ThreadGuard guard(*this);
  if (!status_.ok) return status_;
  if (warm == nullptr)
    return Status::error("preload_calibration: null warm state");

  // The state must have been calibrated with the parameters it is being
  // keyed under - KadabraContext carries them.
  const bc::KadabraParams& wp = warm->context.params;
  if (wp.epsilon != params.epsilon || wp.delta != params.delta ||
      wp.seed != params.seed || wp.exact_diameter != params.exact_diameter ||
      wp.initial_samples != params.initial_samples ||
      wp.balancing != params.balancing) {
    return Status::error(
        "preload_calibration: warm state was calibrated with different "
        "KadabraParams than the key it is being preloaded under");
  }
  // Provenance validation (states from before the accounting carry zero
  // fingerprint/ranks and are accepted as-is).
  if (warm->graph_fingerprint != 0 &&
      warm->graph_fingerprint != graph_fingerprint()) {
    return Status::error(
        "preload_calibration: warm state was computed on a different graph "
        "(fingerprint mismatch)");
  }
  const int threads = effective_threads();
  if (warm->ranks != 0 &&
      (warm->ranks != config_.ranks || warm->threads_per_rank != threads ||
       warm->deterministic != config_.deterministic ||
       warm->virtual_streams != config_.virtual_streams)) {
    return Status::error(
        "preload_calibration: warm state was calibrated on a different "
        "cluster shape (ranks x threads / deterministic stream layout "
        "changed) - recalibrate instead of reusing it");
  }
  // Match the key run() will look up.
  calibrations_[calibration_key(params, threads, config_.deterministic,
                                config_.virtual_streams)] = std::move(warm);
  return Status::success();
}

// --- Dynamic graphs ---------------------------------------------------------

void Session::ensure_dynamic() {
  if (dynamic_ != nullptr) return;
  dynamic::SketchParams sketch;
  sketch.exact_cap = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.dynamic_sketch_cap, UINT32_MAX));
  dynamic_ = std::make_shared<dynamic::DynamicState>(graph_, sketch,
                                                     config_.sample_batch);
}

void Session::bind_dynamic_state(
    std::shared_ptr<dynamic::DynamicState> state) {
  const ThreadGuard guard(*this);
  DISTBC_ASSERT(state != nullptr);
  dynamic_ = std::move(state);
  graph_ = dynamic_->snapshot();
  connected_.reset();
  fingerprint_.reset();
}

void Session::adopt_apply(const dynamic::ApplyReport& report) {
  graph_ = dynamic_->snapshot();
  fingerprint_ = report.fingerprint;
  connected_.reset();  // re-derived lazily (apply() checked deletions)
  mean_distance_range_ = 0;
  // Calibration-bound policy: a warm state survives as long as its cached
  // vertex-diameter bound still covers the new graph - always on
  // insert-only batches (distances only shrink; diameter_bound stays 0),
  // and on deletion batches when the bound is at or above the recomputed
  // one. Survivors are re-stamped to the new fingerprint so provenance
  // checks keep accepting them; violated bounds drop the entry (omega
  // would be too small for the grown diameter).
  for (auto it = calibrations_.begin(); it != calibrations_.end();) {
    const auto& warm = it->second;
    if (report.had_deletes && warm->vertex_diameter < report.diameter_bound) {
      it = calibrations_.erase(it);
      continue;
    }
    auto restamped = std::make_shared<bc::KadabraWarmState>(*warm);
    restamped->graph_fingerprint = report.fingerprint;
    it->second = std::move(restamped);
    ++it;
  }
}

dynamic::ApplyReport Session::apply(dynamic::EdgeBatch batch) {
  const ThreadGuard guard(*this);
  if (!status_.ok) {
    dynamic::ApplyReport report;
    report.status = status_;
    return report;
  }
  ensure_dynamic();
  dynamic::ApplyReport report = dynamic_->apply(std::move(batch));
  if (report.status.ok) adopt_apply(report);
  return report;
}

void Session::sync_dynamic(const dynamic::ApplyReport& report) {
  const ThreadGuard guard(*this);
  DISTBC_ASSERT_MSG(dynamic_ != nullptr,
                    "sync_dynamic requires a bound DynamicState");
  DISTBC_ASSERT(report.status.ok);
  adopt_apply(report);
}

std::vector<std::shared_ptr<const bc::KadabraWarmState>>
Session::calibrations() const {
  const ThreadGuard guard(*this);
  std::vector<std::shared_ptr<const bc::KadabraWarmState>> out;
  out.reserve(calibrations_.size());
  for (const auto& [key, warm] : calibrations_) out.push_back(warm);
  return out;
}

// --- Native entry points ----------------------------------------------------

bc::BcResult Session::kadabra(const bc::KadabraOptions& options) {
  const ThreadGuard guard(*this);
  DISTBC_ASSERT_MSG(status_.ok, status_.message.c_str());
  bc::KadabraOptions run_options = options;
  // The autotune path overrides the thread count, and with it the stream
  // layout the calibration aggregate depends on - key on the effective
  // value.
  const int threads = options.auto_tune != nullptr
                          ? options.auto_tune->shape.threads_per_rank
                          : options.engine.threads_per_rank;
  const CalibrationKey key =
      calibration_key(options.params, threads, options.engine.deterministic,
                      options.engine.virtual_streams);
  if (run_options.warm_start == nullptr) {
    if (const auto it = calibrations_.find(key); it != calibrations_.end())
      run_options.warm_start = it->second;
  }
  bc::BcResult result;
  runtime_->run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(config_.comm_substrate, rank_comm);
    bc::BcResult local = bc::kadabra_run(*graph_, run_options, world.get());
    if (world->rank() == 0) result = std::move(local);
  });
  if (result.warm != nullptr) calibrations_[key] = result.warm;
  return result;
}

adaptive::ClosenessResult Session::closeness(
    const adaptive::ClosenessParams& params) {
  const ThreadGuard guard(*this);
  DISTBC_ASSERT_MSG(status_.ok, status_.message.c_str());
  adaptive::ClosenessResult result;
  runtime_->run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(config_.comm_substrate, rank_comm);
    adaptive::ClosenessResult local =
        adaptive::closeness_rank(*graph_, params, *world);
    if (world->rank() == 0) result = std::move(local);
  });
  return result;
}

adaptive::MeanDistanceResult Session::mean_distance(
    const adaptive::MeanDistanceParams& params) {
  const ThreadGuard guard(*this);
  DISTBC_ASSERT_MSG(status_.ok, status_.message.c_str());
  adaptive::MeanDistanceResult result;
  runtime_->run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(config_.comm_substrate, rank_comm);
    adaptive::MeanDistanceResult local =
        adaptive::mean_distance_rank(*graph_, params, *world);
    if (world->rank() == 0) result = local;
  });
  if (result.range > 0) mean_distance_range_ = result.range;
  return result;
}

// --- Typed dispatch ---------------------------------------------------------

Result Session::run(const BetweennessQuery& query) {
  const ThreadGuard guard(*this);
  Result result;
  const bool exact =
      query.exact || graph_->num_vertices() <= config_.exact_threshold;
  result.status = validate_query(query.epsilon, query.delta, query.top_k,
                                 /*needs_connected=*/!exact);
  // Betweenness scores lie in [0, 1]: KADABRA's budget math requires
  // epsilon < 1 (the driver asserts it).
  if (result.status.ok && !exact && query.epsilon >= 1.0)
    result.status = Status::error("epsilon must be in (0, 1)");
  if (!result.status.ok) return result;

  if (exact) {
    bc::BcResult brandes = config_.threads > 1
                               ? bc::brandes_parallel(*graph_, config_.threads)
                               : bc::brandes(*graph_);
    result.algorithm = "brandes";
    result.samples = brandes.samples;
    result.total_seconds = brandes.total_seconds;
    result.phases = brandes.phases;
    if (query.top_k > 0)
      result.top_k =
          pairs_from_order(brandes.scores, brandes.top_k(query.top_k));
    result.scores = std::move(brandes.scores);
    return result;
  }

  if (query.incremental) return run_incremental(query);

  bc::KadabraOptions options;
  options.params.epsilon = query.epsilon;
  options.params.delta = query.delta;
  options.params.exact_diameter = config_.exact_diameter;
  options.params.seed = config_.seed;
  options.params.initial_samples = config_.initial_samples;
  options.params.balancing = config_.balancing;
  options.engine = config_.engine_options();
  result.status = apply_overrides(query.engine, options.engine);
  if (!result.status.ok) return result;
  options.omega_fraction = config_.omega_fraction;
  options.min_epoch_length = config_.min_epoch_length;
  options.top_k = query.top_k;
  options.auto_tune = active_profile(result.profile_reused);

  const int threads = options.auto_tune != nullptr
                          ? options.auto_tune->shape.threads_per_rank
                          : options.engine.threads_per_rank;
  result.calibration_reused = calibrations_.contains(
      calibration_key(options.params, threads, options.engine.deterministic,
                      options.engine.virtual_streams));

  bc::BcResult bc_result = kadabra(options);
  result.algorithm = "kadabra";
  result.samples = bc_result.samples;
  result.epochs = bc_result.epochs;
  result.total_seconds = bc_result.total_seconds;
  result.phases = bc_result.phases;
  result.comm_volume = bc_result.comm_volume;
  result.engine_used = bc_result.engine_used;
  result.substrate_used = std::move(bc_result.substrate_used);
  result.top_k = std::move(bc_result.top_k_pairs);
  result.scores = std::move(bc_result.scores);
  return result;
}

Result Session::run_incremental(const BetweennessQuery& query) {
  // Caller (run) already validated epsilon/delta/top_k/connectivity and
  // holds the thread guard.
  Result result;
  ensure_dynamic();
  bc::KadabraParams params;
  params.epsilon = query.epsilon;
  params.delta = query.delta;
  params.exact_diameter = config_.exact_diameter;
  params.seed = config_.seed;
  params.initial_samples = config_.initial_samples;
  params.balancing = config_.balancing;

  const WallTimer timer;
  dynamic::DynamicState::QueryView view = dynamic_->query(params);
  result.status = view.status;
  if (!result.status.ok) return result;
  result.algorithm = "kadabra-incremental";
  result.samples = view.samples;
  result.epochs = view.epochs;
  result.total_seconds = timer.elapsed_s();
  // An engine that already existed served this query from retained state -
  // the incremental analogue of a calibration-cache hit.
  result.calibration_reused = !view.first_run;
  if (query.top_k > 0) {
    std::vector<graph::Vertex> order(graph_->num_vertices());
    for (graph::Vertex v = 0; v < graph_->num_vertices(); ++v) order[v] = v;
    const std::size_t k = std::min(query.top_k, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](graph::Vertex a, graph::Vertex b) {
                        if (view.scores[a] != view.scores[b])
                          return view.scores[a] > view.scores[b];
                        return a < b;
                      });
    order.resize(k);
    result.top_k = pairs_from_order(view.scores, order);
  }
  result.scores = std::move(view.scores);
  return result;
}

Result Session::run(const ClosenessRankQuery& query) {
  const ThreadGuard guard(*this);
  Result result;
  result.status = validate_query(query.epsilon, query.delta, query.top_k,
                                 /*needs_connected=*/true);
  if (!result.status.ok) return result;

  adaptive::ClosenessParams params;
  params.epsilon = query.epsilon;
  params.delta = query.delta;
  params.seed = config_.seed;
  params.engine = config_.engine_options();
  result.status = apply_overrides(query.engine, params.engine);
  if (!result.status.ok) return result;
  params.auto_tune = active_profile(result.profile_reused);
  params.assume_connected = true;  // the session just validated it

  adaptive::ClosenessResult closeness_result = closeness(params);
  result.algorithm = "closeness";
  result.samples = closeness_result.samples;
  result.epochs = closeness_result.epochs;
  result.total_seconds = closeness_result.total_seconds;
  result.phases = closeness_result.phases;
  result.comm_volume = closeness_result.comm_volume;
  result.engine_used = closeness_result.engine_used;
  result.substrate_used = std::move(closeness_result.substrate_used);
  if (query.top_k > 0)
    result.top_k = pairs_from_order(closeness_result.scores,
                                    closeness_result.top_k(query.top_k));
  result.scores = std::move(closeness_result.scores);
  return result;
}

Result Session::run(const MeanDistanceQuery& query) {
  const ThreadGuard guard(*this);
  Result result;
  result.status = validate_query(query.epsilon, query.delta, /*top_k=*/0,
                                 /*needs_connected=*/true);
  if (!result.status.ok) return result;

  adaptive::MeanDistanceParams params;
  params.epsilon = query.epsilon;
  params.delta = query.delta;
  params.seed = config_.seed;
  params.engine = config_.engine_options();
  result.status = apply_overrides(query.engine, params.engine);
  if (!result.status.ok) return result;
  params.auto_tune = active_profile(result.profile_reused);
  params.known_range = mean_distance_range_;  // 0 until a first query ran
  params.assume_connected = true;

  adaptive::MeanDistanceResult mean_result = mean_distance(params);
  result.algorithm = "mean_distance";
  result.mean = mean_result.mean;
  result.stddev = mean_result.stddev;
  result.half_width = mean_result.half_width;
  result.samples = mean_result.samples;
  result.epochs = mean_result.epochs;
  result.total_seconds = mean_result.total_seconds;
  result.phases = mean_result.phases;
  result.comm_volume = mean_result.comm_volume;
  result.engine_used = mean_result.engine_used;
  result.substrate_used = std::move(mean_result.substrate_used);
  return result;
}

Result Session::run(const Query& query) {
  return std::visit([&](const auto& typed) { return run(typed); }, query);
}

std::vector<Result> Session::run_batch(std::span<const Query> queries) {
  std::vector<Result> results;
  results.reserve(queries.size());
  for (const Query& query : queries) results.push_back(run(query));
  return results;
}

}  // namespace distbc::api
