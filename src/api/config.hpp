// api::Config - the one typed configuration surface of the library.
//
// Every engine/driver knob that used to be scattered over KadabraOptions,
// ClosenessParams, MeanDistanceParams, EngineOptions defaults, and
// DISTBC_* environment peeking inside epoch/engine headers resolves here,
// in ONE documented precedence order (lowest to highest):
//
//   1. built-in defaults        - the field initializers below;
//   2. environment              - load_env(): DISTBC_<KEY> for every key
//                                 in the table (e.g. DISTBC_FRAME_REP,
//                                 DISTBC_TREE_RADIX - the names the old
//                                 scattered overrides used);
//   3. key=value text           - load_text(): one `key = value` per line,
//                                 '#' comments, same format as tuning
//                                 profiles;
//   4. programmatic             - set(key, value) or direct field writes.
//
// Precedence is realized by application order: each layer overwrites the
// ones below, so `Config::from_env()` then `load_text(...)` then `set(...)`
// is the canonical build sequence. Unknown keys and malformed values are
// rejected with a Status (nothing exits or aborts at this layer).
//
// This file (api/) is the ONLY place in src/ that reads DISTBC_*
// environment variables; the engine, epoch, and driver layers take their
// knobs as plain values.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.hpp"
#include "comm/substrate.hpp"
#include "engine/engine.hpp"

namespace distbc::tune {
struct TuningProfile;  // tune/tuner.hpp
}

namespace distbc::api {

/// One entry of the key table: the settable name, the environment variable
/// load_env() reads for it, and one-line help.
struct ConfigKey {
  const char* key;
  const char* env;
  const char* help;
};

struct Config {
  // --- Cluster shape (what a Session binds the graph to) ------------------
  int ranks = 1;            // simulated MPI ranks
  int ranks_per_node = 1;   // processes per node (paper: one per socket)
  int threads = 1;          // sampling threads per rank

  // --- Engine knobs (see engine::EngineOptions for semantics) -------------
  engine::Aggregation aggregation = engine::Aggregation::kIbarrierReduce;
  bool hierarchical = false;
  std::uint64_t epoch_base = 1000;
  double epoch_exponent = 1.33;
  std::uint64_t max_epoch_length = 0;
  std::uint64_t max_epochs = 1u << 20;
  bool deterministic = false;
  std::uint64_t virtual_streams = 0;
  engine::FrameRep frame_rep = engine::FrameRep::kDense;
  int tree_radix = 0;
  /// Leader-level radix of the two-level merge path (hierarchical runs):
  /// 0 = inherit tree_radix, >= 2 overrides it for the inter-node hop
  /// class only. Ignored without `hierarchical`.
  int leader_radix = 0;
  bool local_aggregates = false;
  /// Samples per traversal batch (graph::BatchedBidirectionalBfs lanes):
  /// 1 = the scalar sampler, > 1 = batched, 0 = auto (drivers probe
  /// candidate widths on calibration). Deterministic-mode results are
  /// bitwise identical for every value.
  int sample_batch = 1;

  // --- Communication substrate --------------------------------------------
  /// Which comm::Substrate backend the session's collectives execute on:
  /// kMpisim (the paper's simulated-MPI transport) or kNcclsim (a modeled
  /// NCCL-style backend: NVLink-like intra-node and IB-like inter-node
  /// links, ring all-reduce pricing, kernel-launch latency, device-side
  /// progress). Deterministic-mode scores are bitwise identical across
  /// substrates; only the modeled clock and link economics differ.
  comm::SubstrateKind comm_substrate = comm::SubstrateKind::kMpisim;

  // --- Sampling / statistics knobs ----------------------------------------
  std::uint64_t seed = 0x5eed;
  bool exact_diameter = true;     // iFUB vs 2-approximation in phase 1
  std::uint64_t initial_samples = 0;  // 0 = automatic (scales with omega)
  double balancing = 0.01;        // calibration failure-budget floor
  /// First-stop-check pacing (the deduplicated clamp: the Session passes
  /// these to engine::paced_epoch_cap, engine/streams.hpp).
  std::uint64_t omega_fraction = 2;
  std::uint64_t min_epoch_length = 1;

  // --- Facade behavior ----------------------------------------------------
  /// Betweenness queries on graphs with |V| <= this run exact Brandes
  /// instead of sampling (0 = never fall back).
  std::uint64_t exact_threshold = 0;
  /// Path of a tune::TuningProfile text file to load at Session
  /// construction; empty = none.
  std::string tune_profile;
  /// Capture a tuning profile (tune::capture_profile) for this cluster
  /// shape lazily at the first query, then reuse it for every later query.
  /// Ignored when a profile is already provided via `tune_profile`/
  /// `profile`.
  bool auto_tune = false;

  // --- Service tier (src/service/; ignored by plain Sessions) -------------
  /// Session replicas a service::SessionPool holds per bound graph.
  int service_pool_size = 2;
  /// Bounded admission queue: submissions beyond this many pending
  /// queries are rejected with a typed Status ("service queue full").
  std::uint64_t service_queue_capacity = 256;
  /// Directory of the persistent warm-state store (service::WarmStore);
  /// empty = no persistence (calibrations live only for the pool's life).
  std::string service_warm_store;
  /// Warm-store eviction cap: keep at most this many persisted states per
  /// format version, evicting oldest-by-mtime past it (0 = unbounded).
  std::uint64_t service_warm_store_max_entries = 0;

  // --- Dynamic graphs (src/dynamic/; incremental betweenness) -------------
  /// Per-sample scanned-set sketches at or under this many vertices stay
  /// exact sorted lists; larger ones fall back to a Bloom filter (whose
  /// false positives only cost extra resamples, never wrong scores).
  /// 0 = always Bloom.
  std::uint64_t dynamic_sketch_cap = 256;

  // --- Typed-only fields (programmatic, not in the key table) -------------
  /// Link economics of the modeled cluster. The substrate profile
  /// (network_model_for) is applied on top of this at Session
  /// construction when comm_substrate != kMpisim.
  comm::NetworkModel network{};
  /// A pre-captured tuning profile; takes precedence over `tune_profile`.
  std::shared_ptr<const tune::TuningProfile> profile;

  /// The settable keys, their environment names, and help text.
  [[nodiscard]] static const std::vector<ConfigKey>& keys();

  /// Layer 4: one programmatic assignment. Unknown key or malformed value
  /// -> error Status, config unchanged.
  [[nodiscard]] Status set(std::string_view key, std::string_view value);

  /// Layer 3: `key = value` lines ('#' comments, blank lines ok). Applies
  /// assignments in order; stops at the first bad key/value.
  [[nodiscard]] Status load_text(std::string_view text);

  /// Layer 2: reads DISTBC_<KEY> for every key in the table. A set but
  /// malformed variable is an error (loud beats silently running
  /// defaults); unset variables are skipped.
  [[nodiscard]] Status load_env();

  /// defaults() is layer 1 alone; from_env() is the service default
  /// (defaults + environment). from_env() asserts the environment is
  /// well-formed - use load_env() directly to handle errors.
  [[nodiscard]] static Config defaults() { return {}; }
  [[nodiscard]] static Config from_env();

  /// Cross-field validation (ranks >= 1, tree_radix != 1, virtual streams
  /// require deterministic mode, ...). Session construction runs this.
  [[nodiscard]] Status validate() const;

  /// The engine configuration these knobs resolve to.
  [[nodiscard]] engine::EngineOptions engine_options() const;

  /// Serializes the key-table fields as `key = value` lines (the
  /// load_text format; typed-only fields are not included).
  [[nodiscard]] std::string serialize() const;
};

}  // namespace distbc::api
