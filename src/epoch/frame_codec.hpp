// Wire images for epoch state frames - the pluggable frame-representation
// layer.
//
// A frame's *wire image* is a self-describing flat uint64 sequence:
//   dense : [kDenseTag,  w_0 ... w_{W-1}]                 W = dense words
//   sparse: [kSparseTag, npairs, (index, value) x npairs] indices ascending
// Both describe the same elementwise-summable vector, so decoding is an
// *additive* merge into dense storage: dense images add elementwise, sparse
// images scatter-add their pairs. Every representation-aware data path (the
// engine's variable-length aggregation, mpisim::Comm::reduce_merge, the
// §IV-E shared window) moves these images, so a frame type only has to
// implement the encode()/decode_add() contract to ride any of them.
//
// Representation selection (FrameRep):
//   kDense  - always the dense image: one word per slot, the paper's §III-B
//             layout, aggregation cost proportional to |V|.
//   kSparse - always index/count pairs, even past the size crossover; the
//             honest "fixed sparse" arm of the ablation.
//   kAuto   - per-payload choice: pairs while they undercut the densify
//             threshold (a fraction of the dense image), dense afterwards.
//             Auto therefore never ships more than min(dense, sparse)
//             scaled by the threshold - it cannot lose to the worse fixed
//             representation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "support/assert.hpp"

namespace distbc::epoch {

enum class FrameRep : std::uint8_t { kDense, kSparse, kAuto };

[[nodiscard]] const char* frame_rep_name(FrameRep rep);
[[nodiscard]] std::optional<FrameRep> frame_rep_from_name(
    std::string_view name);

inline constexpr std::uint64_t kDenseTag = 0;
inline constexpr std::uint64_t kSparseTag = 1;

/// Words of a dense image of a `dense_words`-slot frame.
[[nodiscard]] inline std::size_t dense_image_words(std::size_t dense_words) {
  return 1 + dense_words;
}

/// Words of a sparse image holding `npairs` (index, value) pairs.
[[nodiscard]] inline std::size_t sparse_image_words(std::size_t npairs) {
  return 2 + 2 * npairs;
}

/// The representation an encoded image carries.
[[nodiscard]] inline FrameRep image_rep(std::span<const std::uint64_t> image) {
  DISTBC_ASSERT(!image.empty());
  return image.front() == kDenseTag ? FrameRep::kDense : FrameRep::kSparse;
}

/// Appends the dense image of `dense` to `out`.
void append_dense_image(std::span<const std::uint64_t> dense,
                        std::vector<std::uint64_t>& out);

/// Appends the sparse image of `dense` restricted to `sorted_indices`
/// (ascending, all with nonzero values).
void append_sparse_image(std::span<const std::uint64_t> dense,
                         std::span<const std::uint32_t> sorted_indices,
                         std::vector<std::uint64_t>& out);

/// Appends the sparse image of every nonzero slot of `dense` (full scan -
/// the path for frames that do not track touched slots).
void append_sparse_image_scan(std::span<const std::uint64_t> dense,
                              std::vector<std::uint64_t>& out);

/// True iff a sparse image of `npairs` pairs stays under `densify_threshold`
/// times the dense image of a `dense_words`-slot frame - the kAuto rule.
[[nodiscard]] inline bool sparse_pays(std::size_t npairs,
                                      std::size_t dense_words,
                                      double densify_threshold) {
  return static_cast<double>(sparse_image_words(npairs)) <
         densify_threshold *
             static_cast<double>(dense_image_words(dense_words));
}

/// Additively combines wire image `in` into `acc` (both images over the
/// same `dense_words`-slot space), re-encoding the result in place - the
/// interior-hop step of a tree-merge reduction. Sparse inputs merge-join
/// their ascending pair lists in O(nnz_a + nnz_b); the moment the merged
/// pair count stops paying under `densify_threshold` (sparse_pays), the
/// result densifies - mid-tree densification, so merged images never grow
/// past the threshold-scaled dense frame. A dense operand densifies the
/// result outright. Decoding the combined image equals decoding both
/// inputs (exact uint64 sums), so any combine order yields the same
/// aggregate.
void merge_images(std::vector<std::uint64_t>& acc,
                  std::span<const std::uint64_t> in, std::size_t dense_words,
                  double densify_threshold);

/// Additively decodes `image` into `dense`, invoking touch(index) for every
/// slot that receives a nonzero contribution (the hook sparse frames use to
/// maintain their touched set).
template <typename TouchFn>
void decode_add_image(std::span<std::uint64_t> dense,
                      std::span<const std::uint64_t> image, TouchFn&& touch) {
  DISTBC_ASSERT(!image.empty());
  if (image.front() == kDenseTag) {
    DISTBC_ASSERT(image.size() == 1 + dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const std::uint64_t value = image[1 + i];
      if (value == 0) continue;
      dense[i] += value;
      touch(i);
    }
    return;
  }
  DISTBC_ASSERT(image.front() == kSparseTag && image.size() >= 2);
  const std::uint64_t npairs = image[1];
  DISTBC_ASSERT(image.size() == sparse_image_words(npairs));
  for (std::uint64_t p = 0; p < npairs; ++p) {
    const std::uint64_t index = image[2 + 2 * p];
    DISTBC_ASSERT(index < dense.size());
    dense[index] += image[2 + 2 * p + 1];
    touch(static_cast<std::size_t>(index));
  }
}

inline void decode_add_image(std::span<std::uint64_t> dense,
                             std::span<const std::uint64_t> image) {
  decode_add_image(dense, image, [](std::size_t) {});
}

}  // namespace distbc::epoch
