// Sparse betweenness state frames (the delta representation of §III-B's
// S = (tau, c~)).
//
// An epoch on a large graph records only epoch_length x avg_path_length
// distinct vertex hits, so the dense |V|+1 frame that ships over the wire
// is overwhelmingly zeros and aggregation cost scales with |V| instead of
// with work done. SparseFrame keeps the same O(1) record() hot path as
// StateFrame (dense uint64 backing) but additionally tracks the set of
// touched vertices, which makes clear()/merge() O(nonzeros) and lets
// encode() emit sorted (index, count) delta pairs instead of the flat
// vector. Decoding is additive, so overlapping deltas from different
// threads or ranks merge exactly like dense elementwise sums - in the
// engine's deterministic mode the aggregate is bitwise identical across
// representations.
//
// The densify threshold governs the kAuto encoding: pairs are emitted only
// while the sparse image stays under threshold x the dense image; past the
// crossover the frame densifies automatically. kSparse forces pairs
// regardless (the fixed-sparse ablation arm); kDense forces the flat image.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "epoch/frame_codec.hpp"
#include "support/assert.hpp"

namespace distbc::epoch {

class SparseFrame {
 public:
  SparseFrame() = default;
  explicit SparseFrame(std::uint32_t num_vertices,
                       double densify_threshold = 1.0)
      : data_(static_cast<std::size_t>(num_vertices) + 1, 0),
        present_(num_vertices, 0),
        num_vertices_(num_vertices),
        densify_threshold_(densify_threshold) {}

  [[nodiscard]] std::uint32_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] double densify_threshold() const { return densify_threshold_; }

  /// Records one sample: increments tau and the count of every internal
  /// vertex of the sampled path (same contract as StateFrame::record).
  void record(std::span<const std::uint32_t> internal_vertices) {
    for (const std::uint32_t v : internal_vertices) {
      DISTBC_DEBUG_ASSERT(v < num_vertices_);
      touch(v);
      ++data_[v];
    }
    ++data_[num_vertices_];
  }

  /// Records a sample of a disconnected pair: tau advances, no counts.
  void record_empty() { ++data_[num_vertices_]; }

  [[nodiscard]] std::uint64_t tau() const { return data_[num_vertices_]; }
  [[nodiscard]] std::uint64_t count(std::uint32_t v) const {
    DISTBC_DEBUG_ASSERT(v < num_vertices_);
    return data_[v];
  }
  [[nodiscard]] bool empty() const { return tau() == 0; }

  /// Distinct vertices with nonzero counts.
  [[nodiscard]] std::size_t nonzero_count() const { return touched_.size(); }

  /// Dense flat view (counts followed by tau). Read-only: writes that
  /// bypass record()/merge()/decode_add() would desynchronize the touched
  /// set, so dense reducers must go through the wire-image interface.
  [[nodiscard]] std::span<const std::uint64_t> raw() const { return data_; }

  /// O(nonzeros): only touched slots (and tau) are swept.
  void clear() {
    for (const std::uint32_t v : touched_) {
      data_[v] = 0;
      present_[v] = 0;
    }
    touched_.clear();
    data_[num_vertices_] = 0;
  }

  /// O(other.nonzeros); overlapping deltas add exactly.
  void merge(const SparseFrame& other) {
    DISTBC_ASSERT(other.data_.size() == data_.size());
    if (other.empty()) return;
    for (const std::uint32_t v : other.touched_) {
      touch(v);
      data_[v] += other.data_[v];
    }
    data_[num_vertices_] += other.data_[num_vertices_];
  }

  // --- Wire-image interface (frame_codec.hpp) ----------------------------

  [[nodiscard]] std::size_t dense_words() const { return data_.size(); }

  /// Appends this frame's wire image to `out`, honoring `preference`
  /// (kSparse forces pairs, kDense forces the flat image, kAuto applies the
  /// densify threshold). Returns the representation actually emitted.
  /// The tau slot travels as pair (num_vertices, tau) in sparse images.
  FrameRep encode(std::vector<std::uint64_t>& out,
                  FrameRep preference) const {
    const std::size_t npairs = touched_.size() + (tau() != 0 ? 1 : 0);
    const bool sparse =
        preference == FrameRep::kSparse ||
        (preference == FrameRep::kAuto &&
         sparse_pays(npairs, dense_words(), densify_threshold_));
    if (!sparse) {
      append_dense_image(data_, out);
      return FrameRep::kDense;
    }
    // Reused scratch: encode runs once per epoch on the aggregation path,
    // so the sort buffer must not reallocate every time.
    sort_scratch_.assign(touched_.begin(), touched_.end());
    std::sort(sort_scratch_.begin(), sort_scratch_.end());
    if (tau() != 0) sort_scratch_.push_back(num_vertices_);
    append_sparse_image(data_, sort_scratch_, out);
    return FrameRep::kSparse;
  }

  /// Additively merges a wire image (either representation).
  void decode_add(std::span<const std::uint64_t> image) {
    decode_add_image(std::span<std::uint64_t>(data_), image,
                     [this](std::size_t i) {
                       if (i < num_vertices_)
                         touch(static_cast<std::uint32_t>(i));
                     });
  }

  /// Elementwise add of a flat dense frame (window read-back at node
  /// leaders). O(V) - the leader pays one scan per epoch, same as the
  /// window read itself.
  void add_dense(std::span<const std::uint64_t> dense) {
    DISTBC_ASSERT(dense.size() == data_.size());
    for (std::uint32_t v = 0; v < num_vertices_; ++v) {
      if (dense[v] == 0) continue;
      touch(v);
      data_[v] += dense[v];
    }
    data_[num_vertices_] += dense[num_vertices_];
  }

  /// Same consistency invariant as StateFrame (O(nonzeros) here).
  [[nodiscard]] bool counts_consistent() const {
    const std::uint64_t total = count_sum();
    return tau() == 0 ? total == 0
                      : total <= tau() * static_cast<std::uint64_t>(
                                             num_vertices_);
  }

  /// Sum of all per-vertex counts (tau excluded).
  [[nodiscard]] std::uint64_t count_sum() const {
    std::uint64_t total = 0;
    for (const std::uint32_t v : touched_) total += data_[v];
    return total;
  }

 private:
  void touch(std::uint32_t v) {
    if (present_[v] != 0) return;
    present_[v] = 1;
    touched_.push_back(v);
  }

  std::vector<std::uint64_t> data_;   // counts followed by tau
  std::vector<std::uint32_t> touched_;  // distinct touched vertices, unordered
  std::vector<std::uint8_t> present_;
  mutable std::vector<std::uint32_t> sort_scratch_;  // encode() reuse
  std::uint32_t num_vertices_ = 0;
  double densify_threshold_ = 1.0;
};

}  // namespace distbc::epoch
