// Sampling state frames (paper §III-B).
//
// A state frame S = (tau, c~) holds the number of samples taken and the
// per-vertex path counts accumulated by one thread during one epoch. The
// frame is stored as one flat uint64 array with tau in the last slot, so a
// whole frame can be aggregated - locally between threads or across ranks
// via an MPI reduction - as a single elementwise vector sum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "epoch/frame_codec.hpp"
#include "support/assert.hpp"

namespace distbc::epoch {

class StateFrame {
 public:
  StateFrame() = default;
  explicit StateFrame(std::uint32_t num_vertices)
      : data_(static_cast<std::size_t>(num_vertices) + 1, 0),
        num_vertices_(num_vertices) {}

  [[nodiscard]] std::uint32_t num_vertices() const { return num_vertices_; }

  /// Records one sample: increments tau and the count of every internal
  /// vertex of the sampled path (possibly none for adjacent endpoints).
  void record(std::span<const std::uint32_t> internal_vertices) {
    for (const std::uint32_t v : internal_vertices) {
      DISTBC_DEBUG_ASSERT(v < num_vertices_);
      ++data_[v];
    }
    ++data_[num_vertices_];
  }

  /// Records a sample of a disconnected pair: tau advances, no counts.
  void record_empty() { ++data_[num_vertices_]; }

  [[nodiscard]] std::uint64_t tau() const { return data_[num_vertices_]; }
  [[nodiscard]] std::uint64_t count(std::uint32_t v) const {
    DISTBC_DEBUG_ASSERT(v < num_vertices_);
    return data_[v];
  }

  /// Flat view (counts followed by tau) for aggregation and reductions.
  [[nodiscard]] std::span<std::uint64_t> raw() { return data_; }
  [[nodiscard]] std::span<const std::uint64_t> raw() const { return data_; }

  void clear() { std::fill(data_.begin(), data_.end(), 0); }

  [[nodiscard]] bool empty() const { return tau() == 0; }

  void merge(const StateFrame& other) {
    DISTBC_ASSERT(other.data_.size() == data_.size());
    // Idle threads contribute empty epoch frames; tau == 0 implies all
    // counts are zero (counts_consistent), so the O(V) sweep is skippable.
    if (other.empty()) return;
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  // --- Wire-image interface (frame_codec.hpp) ----------------------------

  [[nodiscard]] std::size_t dense_words() const { return data_.size(); }

  /// Appends this frame's wire image to `out`. StateFrame tracks no touched
  /// set, so sparse preferences pay one O(V) scan; workloads that want
  /// cheap sparse encodes use epoch::SparseFrame instead.
  FrameRep encode(std::vector<std::uint64_t>& out,
                  FrameRep preference) const {
    if (preference == FrameRep::kAuto) {
      // Only kAuto needs the nonzero count to pick a side.
      std::size_t npairs = tau() != 0 ? 1 : 0;
      for (std::uint32_t v = 0; v < num_vertices_; ++v)
        npairs += data_[v] != 0;
      preference = sparse_pays(npairs, dense_words(),
                               /*densify_threshold=*/1.0)
                       ? FrameRep::kSparse
                       : FrameRep::kDense;
    }
    if (preference == FrameRep::kDense) {
      append_dense_image(data_, out);
      return FrameRep::kDense;
    }
    append_sparse_image_scan(data_, out);
    return FrameRep::kSparse;
  }

  /// Additively merges a wire image (either representation).
  void decode_add(std::span<const std::uint64_t> image) {
    decode_add_image(std::span<std::uint64_t>(data_), image);
  }

  /// Elementwise add of a flat dense frame (window read-back).
  void add_dense(std::span<const std::uint64_t> dense) {
    DISTBC_ASSERT(dense.size() == data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += dense[i];
  }

  /// Sum of all per-vertex counts (tau excluded).
  [[nodiscard]] std::uint64_t count_sum() const {
    std::uint64_t total = 0;
    for (std::uint32_t v = 0; v < num_vertices_; ++v) total += data_[v];
    return total;
  }

  /// Consistency invariant: every internal vertex lies on some sampled path,
  /// and a path contributes at most (its length - 1) < num_vertices counts;
  /// cheap sanity check used by tests and debug assertions.
  [[nodiscard]] bool counts_consistent() const {
    const std::uint64_t total = count_sum();
    return tau() == 0 ? total == 0
                      : total <= tau() * static_cast<std::uint64_t>(
                                             num_vertices_);
  }

 private:
  std::vector<std::uint64_t> data_;
  std::uint32_t num_vertices_ = 0;
};

}  // namespace distbc::epoch
