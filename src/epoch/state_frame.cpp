#include "epoch/state_frame.hpp"

// StateFrame is header-only; this translation unit exists so the epoch
// library has a concrete object and template instantiations below surface
// errors at library build time.
#include "epoch/epoch_manager.hpp"

namespace distbc::epoch {

template class EpochManager<StateFrame>;

}  // namespace distbc::epoch
