#include "epoch/frame_codec.hpp"

#include <cstdlib>

namespace distbc::epoch {

const char* frame_rep_name(FrameRep rep) {
  switch (rep) {
    case FrameRep::kDense:
      return "dense";
    case FrameRep::kSparse:
      return "sparse";
    case FrameRep::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<FrameRep> frame_rep_from_name(std::string_view name) {
  for (const FrameRep rep :
       {FrameRep::kDense, FrameRep::kSparse, FrameRep::kAuto}) {
    if (name == frame_rep_name(rep)) return rep;
  }
  return std::nullopt;
}

FrameRep default_frame_rep() {
  static const FrameRep rep = [] {
    const char* env = std::getenv("DISTBC_FRAME_REP");
    if (env == nullptr) return FrameRep::kDense;
    return frame_rep_from_name(env).value_or(FrameRep::kDense);
  }();
  return rep;
}

void append_dense_image(std::span<const std::uint64_t> dense,
                        std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + dense_image_words(dense.size()));
  out.push_back(kDenseTag);
  out.insert(out.end(), dense.begin(), dense.end());
}

void append_sparse_image(std::span<const std::uint64_t> dense,
                         std::span<const std::uint32_t> sorted_indices,
                         std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + sparse_image_words(sorted_indices.size()));
  out.push_back(kSparseTag);
  out.push_back(sorted_indices.size());
  for (const std::uint32_t index : sorted_indices) {
    DISTBC_DEBUG_ASSERT(index < dense.size() && dense[index] != 0);
    out.push_back(index);
    out.push_back(dense[index]);
  }
}

void append_sparse_image_scan(std::span<const std::uint64_t> dense,
                              std::vector<std::uint64_t>& out) {
  out.push_back(kSparseTag);
  const std::size_t npairs_slot = out.size();
  out.push_back(0);
  std::uint64_t npairs = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] == 0) continue;
    out.push_back(i);
    out.push_back(dense[i]);
    ++npairs;
  }
  out[npairs_slot] = npairs;
}

}  // namespace distbc::epoch
