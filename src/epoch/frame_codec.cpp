#include "epoch/frame_codec.hpp"

namespace distbc::epoch {

const char* frame_rep_name(FrameRep rep) {
  switch (rep) {
    case FrameRep::kDense:
      return "dense";
    case FrameRep::kSparse:
      return "sparse";
    case FrameRep::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<FrameRep> frame_rep_from_name(std::string_view name) {
  for (const FrameRep rep :
       {FrameRep::kDense, FrameRep::kSparse, FrameRep::kAuto}) {
    if (name == frame_rep_name(rep)) return rep;
  }
  return std::nullopt;
}

void append_dense_image(std::span<const std::uint64_t> dense,
                        std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + dense_image_words(dense.size()));
  out.push_back(kDenseTag);
  out.insert(out.end(), dense.begin(), dense.end());
}

void append_sparse_image(std::span<const std::uint64_t> dense,
                         std::span<const std::uint32_t> sorted_indices,
                         std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + sparse_image_words(sorted_indices.size()));
  out.push_back(kSparseTag);
  out.push_back(sorted_indices.size());
  for (const std::uint32_t index : sorted_indices) {
    DISTBC_DEBUG_ASSERT(index < dense.size() && dense[index] != 0);
    out.push_back(index);
    out.push_back(dense[index]);
  }
}

void append_sparse_image_scan(std::span<const std::uint64_t> dense,
                              std::vector<std::uint64_t>& out) {
  out.push_back(kSparseTag);
  const std::size_t npairs_slot = out.size();
  out.push_back(0);
  std::uint64_t npairs = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] == 0) continue;
    out.push_back(i);
    out.push_back(dense[i]);
    ++npairs;
  }
  out[npairs_slot] = npairs;
}

namespace {

/// Decodes `image` additively into a fresh dense image over `dense_words`
/// slots (used when a merge result must densify).
std::vector<std::uint64_t> densified(std::span<const std::uint64_t> image,
                                     std::size_t dense_words) {
  std::vector<std::uint64_t> dense(dense_image_words(dense_words), 0);
  dense.front() = kDenseTag;
  decode_add_image(std::span<std::uint64_t>(dense).subspan(1), image);
  return dense;
}

}  // namespace

void merge_images(std::vector<std::uint64_t>& acc,
                  std::span<const std::uint64_t> in, std::size_t dense_words,
                  double densify_threshold) {
  DISTBC_ASSERT(!acc.empty() && !in.empty());
  if (image_rep(acc) == FrameRep::kDense) {
    DISTBC_ASSERT(acc.size() == dense_image_words(dense_words));
    decode_add_image(std::span<std::uint64_t>(acc).subspan(1), in);
    return;
  }
  if (image_rep(in) == FrameRep::kDense) {
    std::vector<std::uint64_t> dense(in.begin(), in.end());
    decode_add_image(std::span<std::uint64_t>(dense).subspan(1),
                     std::span<const std::uint64_t>(acc));
    acc = std::move(dense);
    return;
  }
  // Sparse + sparse: merge-join the ascending (index, value) pair lists.
  const std::uint64_t na = acc[1];
  const std::uint64_t nb = in[1];
  DISTBC_ASSERT(acc.size() == sparse_image_words(na) &&
                in.size() == sparse_image_words(nb));
  std::vector<std::uint64_t> merged;
  merged.reserve(sparse_image_words(na + nb));
  merged.push_back(kSparseTag);
  merged.push_back(0);
  std::uint64_t ia = 0;
  std::uint64_t ib = 0;
  std::uint64_t npairs = 0;
  while (ia < na || ib < nb) {
    const std::uint64_t index_a =
        ia < na ? acc[2 + 2 * ia] : ~std::uint64_t{0};
    const std::uint64_t index_b =
        ib < nb ? in[2 + 2 * ib] : ~std::uint64_t{0};
    if (index_a < index_b) {
      merged.push_back(index_a);
      merged.push_back(acc[2 + 2 * ia + 1]);
      ++ia;
    } else if (index_b < index_a) {
      merged.push_back(index_b);
      merged.push_back(in[2 + 2 * ib + 1]);
      ++ib;
    } else {
      merged.push_back(index_a);
      merged.push_back(acc[2 + 2 * ia + 1] + in[2 + 2 * ib + 1]);
      ++ia;
      ++ib;
    }
    DISTBC_DEBUG_ASSERT(npairs == 0 ||
                        merged[merged.size() - 2] > merged[merged.size() - 4]);
    ++npairs;
  }
  merged[1] = npairs;
  acc = sparse_pays(npairs, dense_words, densify_threshold)
            ? std::move(merged)
            : densified(merged, dense_words);
}

}  // namespace distbc::epoch
