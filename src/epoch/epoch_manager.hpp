// The epoch-based framework of van der Grinten, Angriman, Meyerhenke
// (Euro-Par 2019) - the paper's Ref. [24] - reformulated as the asymmetric
// non-blocking barrier of paper §IV-B.
//
// Progress is divided into epochs. Every thread owns two frames and writes
// only to the frame of its current epoch (epoch parity selects the frame:
// the algorithm guarantees frames of epoch e-2 are dead, so two suffice,
// §IV-C). Thread zero initiates an epoch transition with force_transition()
// - one release store - and monitors completion with transition_done() -
// O(T) acquire loads. Sampler threads call check_transition() once per
// sample - one acquire load, plus one release store when they participate
// in a transition. No thread ever blocks and no compare-and-swap is needed:
// the mechanism is wait-free for samplers, and thread zero overlaps the
// whole transition with its own sampling.
//
// Memory-ordering argument: a sampler's release store of its epoch counter
// happens after its last write to the old epoch's frame; thread zero's
// acquire load in transition_done() therefore makes those writes visible
// before collect() reads the frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/aligned.hpp"
#include "support/assert.hpp"

namespace distbc::epoch {

/// Frame must provide clear() and merge(const Frame&).
template <typename Frame>
class EpochManager {
 public:
  /// Constructs per-thread double-buffered frames from a prototype.
  EpochManager(int num_threads, const Frame& prototype)
      : num_threads_(num_threads), thread_epoch_(num_threads) {
    DISTBC_ASSERT(num_threads >= 1);
    frames_.reserve(static_cast<std::size_t>(num_threads) * 2);
    for (int i = 0; i < num_threads * 2; ++i) frames_.push_back(prototype);
  }

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// The frame thread `t` writes to while in `epoch`.
  [[nodiscard]] Frame& frame(int t, std::uint32_t epoch) {
    DISTBC_DEBUG_ASSERT(t >= 0 && t < num_threads_);
    return frames_[static_cast<std::size_t>(t) * 2 + (epoch & 1)];
  }

  // --- Sampler-thread interface (t != 0) ---------------------------------

  /// Paper's CHECKTRANSITION(e): if thread zero has initiated a transition
  /// out of `epoch`, participate (advance this thread's published epoch)
  /// and return true; otherwise no-op and return false. Wait-free: one
  /// acquire load on the fast path.
  [[nodiscard]] bool check_transition(int t, std::uint32_t epoch) {
    if (target_epoch_.load(std::memory_order_acquire) <= epoch) return false;
    // Publish: all writes to the epoch-e frame happen-before this store.
    thread_epoch_[t].value.store(epoch + 1, std::memory_order_release);
    return true;
  }

  /// Cooperative termination flag (the atomic `d` of Algorithm 2).
  [[nodiscard]] bool stopped() const {
    return stop_.load(std::memory_order_acquire);
  }

  // --- Thread-zero interface ---------------------------------------------

  /// Paper's FORCETRANSITION(e): initiates the transition out of `epoch`
  /// and immediately advances thread zero. O(1); never blocks.
  void force_transition(std::uint32_t epoch) {
    DISTBC_ASSERT_MSG(
        target_epoch_.load(std::memory_order_relaxed) == epoch,
        "transitions must be initiated in order and not overlap");
    thread_epoch_[0].value.store(epoch + 1, std::memory_order_release);
    target_epoch_.store(epoch + 1, std::memory_order_release);
  }

  /// Monitoring half of FORCETRANSITION: true once every thread reached
  /// epoch + 1. O(T) acquire loads; thread zero overlaps this with
  /// sampling (Figure 1 of the paper).
  [[nodiscard]] bool transition_done(std::uint32_t epoch) const {
    for (int t = 0; t < num_threads_; ++t) {
      if (thread_epoch_[t].value.load(std::memory_order_acquire) < epoch + 1)
        return false;
    }
    return true;
  }

  /// Aggregates all threads' epoch-e frames into `out` and clears them for
  /// reuse as epoch e+2 frames. Must only be called by thread zero after
  /// transition_done(epoch); `out` is not cleared first.
  void collect(std::uint32_t epoch, Frame& out) {
    DISTBC_ASSERT(transition_done(epoch));
    for (int t = 0; t < num_threads_; ++t) {
      Frame& source = frame(t, epoch);
      // Threads that took no samples this epoch (stragglers on
      // oversubscribed hosts, unowned streams in deterministic mode) leave
      // their frame empty; skip the merge and clear sweeps entirely.
      if constexpr (requires { source.empty(); }) {
        if (source.empty()) continue;
      }
      out.merge(source);
      source.clear();
    }
  }

  void signal_stop() { stop_.store(true, std::memory_order_release); }

  /// Current published epoch of thread `t` (tests/diagnostics).
  [[nodiscard]] std::uint32_t thread_epoch(int t) const {
    return thread_epoch_[t].value.load(std::memory_order_acquire);
  }

 private:
  int num_threads_;
  std::vector<Frame> frames_;  // [thread][epoch parity]
  std::vector<PaddedAtomic<std::uint32_t>> thread_epoch_;
  std::atomic<std::uint32_t> target_epoch_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace distbc::epoch
