#include "epoch/sparse_frame.hpp"

// SparseFrame is header-only; this translation unit instantiates its
// EpochManager so representation-specific template errors surface at
// library build time (mirrors state_frame.cpp).
#include "epoch/epoch_manager.hpp"

namespace distbc::epoch {

template class EpochManager<SparseFrame>;

}  // namespace distbc::epoch
