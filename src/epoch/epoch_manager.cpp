#include "epoch/epoch_manager.hpp"

// EpochManager is a header-only template; the instantiation for the
// betweenness StateFrame lives in state_frame.cpp.
