// Batched multi-source bidirectional BFS: up to kMaxBatch staged (s, t)
// searches executed as one batch over the shared CSR.
//
// Each lane runs exactly the algorithm of BidirectionalBfs — same frontier
// discovery order, same sigma arithmetic, same volume-balanced side
// selection, same meeting-level tiling — so per lane the results and every
// subsequent sample_path() draw are bitwise identical to the scalar kernel.
// The speedup comes from a leaner memory layout, not from sharing work
// between lanes: the scalar kernel touches four scattered per-vertex
// arrays on every discovery (own stamp, own dist, own sigma, and the other
// side's stamp for the intersection scan), while here the stamps and
// distances of BOTH sides fuse into one 16-byte per-vertex record and the
// intersection probe folds into the discovery branch — one cache line
// answers the membership test, the same-level sigma check, and the
// cross-side meet check.
//
// All lanes share ONE scalar-sized workspace (measured: separate per-lane
// slabs rotate the working set out of the near caches and lockstep
// level-interleaving shares nothing, because balanced bidirectional
// expansions barely overlap). Lanes therefore execute lazily, in staging
// order: a lane's search runs when its result is first read, and its
// traversal state stays valid — sample_path() usable — until the next
// lane's result is read. bc::BatchSampler finishes lanes strictly in
// stream order, which is exactly this discipline.
//
// The staging protocol exists so a caller can interleave lanes from
// different RNG streams: stage() up to capacity() pairs, run_staged(),
// then read result()/sample_path() lane by lane, ascending. The first
// stage() after a run opens a fresh batch and invalidates all previous
// lanes.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/bidirectional_bfs.hpp"
#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distbc::graph {

class BatchedBidirectionalBfs {
 public:
  /// Bound on the staging window; keeps per-lane result storage small.
  static constexpr int kMaxBatch = 64;

  using PairResult = BidirectionalBfs::PairResult;

  /// Workspace sizes as num_vertices (shared by all lanes); the graph
  /// reference must outlive the kernel.
  BatchedBidirectionalBfs(const Graph& graph, int capacity);

  [[nodiscard]] int capacity() const { return capacity_; }
  /// Lanes staged into the current batch.
  [[nodiscard]] int staged() const { return staged_; }
  /// True once run_staged() sealed the current batch.
  [[nodiscard]] bool ran() const { return ran_; }

  /// Stages one pair (s != t) into the next batch and returns its lane, or
  /// -1 when the batch is full (nothing is modified). The first stage()
  /// after run_staged() clears the previous batch.
  int stage(Vertex s, Vertex t);

  /// Seals the batch: staged lanes become readable via result() /
  /// sample_path(), in ascending lane order.
  void run_staged();

  /// Convenience: stage + seal a whole batch (pairs.size() <= capacity()).
  void run(std::span<const std::pair<Vertex, Vertex>> pairs);

  /// Lane result; bitwise identical to BidirectionalBfs::run on the same
  /// pair. Reading lane k executes searches up through k, invalidating
  /// sample_path() for lanes before k.
  [[nodiscard]] const PairResult& result(int lane) {
    DISTBC_DEBUG_ASSERT(lane >= 0 && lane < staged_ && ran_);
    ensure_ran(lane);
    return results_[static_cast<std::size_t>(lane)];
  }

  /// Draws a uniformly random shortest path of lane `lane`, appending its
  /// internal vertices to `out`; consumes exactly the RNG draws the scalar
  /// kernel's sample_path() would. Requires result(lane).connected, and
  /// that no later lane's result has been read yet.
  void sample_path(int lane, Rng& rng, std::vector<Vertex>& out);

  /// Appends lane `lane`'s SCANNED vertices — both sides' expanded levels
  /// [0, completed_levels), i.e. every vertex whose adjacency list the
  /// search read — to `out`. Same currency requirement as sample_path():
  /// no later lane's result may have been read yet. Duplicates are
  /// possible across (not within) sides.
  void append_lane_scanned(int lane, std::vector<Vertex>& out);

  /// Vertices touched by lane `lane` (both sides) — equals the scalar
  /// kernel's last_touched() for the same pair.
  [[nodiscard]] std::uint64_t lane_touched(int lane) {
    DISTBC_DEBUG_ASSERT(lane >= 0 && lane < staged_ && ran_);
    ensure_ran(lane);
    return touched_[static_cast<std::size_t>(lane)];
  }

 private:
  /// Fused per-vertex record: generation stamps and BFS distances of both
  /// sides share one 16-byte slot, so membership, same-level, and
  /// cross-side intersection checks all read one cache line. Each side's
  /// stamp and dist are adjacent so a discovery writes them as one
  /// 8-byte store.
  struct VisitRecord {
    struct PerSide {
      std::uint32_t stamp;
      std::uint32_t dist;
    };
    PerSide side[2];
  };

  /// Traversal state of one side of the currently running lane. Discovery
  /// order must be preserved: sigma accumulation and meeting-set iteration
  /// follow it, and double addition is order-sensitive.
  struct SideState {
    std::vector<double> sigma;  // [v]
    std::vector<Vertex> order;
    std::vector<std::uint32_t> level_starts;
    std::uint32_t completed_levels = 0;
    /// Degree sum of the current frontier, cached between rounds: the
    /// scalar kernel rescans both frontiers every round, but a side's
    /// frontier only changes when that side expands. Same uint64 sum,
    /// so side selection stays bitwise identical.
    std::uint64_t frontier_volume = 0;
    bool volume_valid = false;
  };

  static constexpr int kS = 0;
  static constexpr int kT = 1;

  void clear_batch();
  /// Runs staged searches up through `lane` (they are independent; shared
  /// workspace forces ascending execution).
  void ensure_ran(int lane) {
    while (last_run_ < lane) run_lane(++last_run_);
  }
  void run_lane(int lane);
  /// One scalar-loop iteration; true when the search finished (met, or
  /// proved disconnected).
  bool step_lane(int lane);
  bool expand_level(int lane, int side_index);
  void collect_meeting_set(int lane);
  void walk_to_root(int side_index, Vertex v, Rng& rng,
                    std::vector<Vertex>& out) const;

  const Graph* graph_;
  int capacity_;
  int staged_ = 0;
  bool ran_ = false;
  int last_run_ = -1;  // highest lane whose search has executed
  std::uint32_t generation_ = 0;

  // Shared traversal workspace (scalar-sized, reused by every lane).
  std::vector<VisitRecord> visit_;  // [v], both sides
  SideState sides_[2];

  // Per-lane inputs and outputs (small; survive workspace reuse).
  std::vector<Vertex> s_;
  std::vector<Vertex> t_;
  std::vector<PairResult> results_;
  std::vector<std::uint32_t> meet_level_;
  std::vector<std::vector<Vertex>> meeting_vertices_;
  std::vector<std::vector<double>> meeting_weights_;
  std::vector<std::uint64_t> touched_;
};

}  // namespace distbc::graph
