#include "graph/io.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace distbc::graph {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x44425443'52535631ULL;  // "DBTCRSV1"

[[noreturn]] void io_error(const std::string& path, const std::string& what) {
  throw std::runtime_error("graph io: " + path + ": " + what);
}

}  // namespace

Graph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_error(path, "cannot open for reading");

  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges;
  std::map<std::uint64_t, Vertex> compact;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) io_error(path, "malformed line: " + line);
    raw_edges.emplace_back(u, v);
    compact.emplace(u, 0);
    compact.emplace(v, 0);
  }

  Vertex next_id = 0;
  for (auto& [raw, id] : compact) id = next_id++;

  Builder builder(next_id);
  builder.reserve(raw_edges.size());
  for (const auto& [u, v] : raw_edges)
    builder.add_edge(compact.at(u), compact.at(v));
  return builder.finish();
}

void write_edge_list(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) io_error(path, "cannot open for writing");
  out << "# distbc edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    for (const Vertex v : graph.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) io_error(path, "write failed");
}

void write_binary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_error(path, "cannot open for writing");

  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t arcs = graph.num_arcs();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.adjacency().data()),
            static_cast<std::streamsize>(arcs * sizeof(Vertex)));
  if (!out) io_error(path, "write failed");
}

Graph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_error(path, "cannot open for reading");

  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kBinaryMagic) io_error(path, "bad magic (not a distbc graph)");
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&arcs), sizeof arcs);

  std::vector<EdgeId> offsets(n + 1);
  std::vector<Vertex> adjacency(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(arcs * sizeof(Vertex)));
  if (!in) io_error(path, "truncated file");
  return Graph(std::move(offsets), std::move(adjacency));
}

}  // namespace distbc::graph
