// Instance statistics, used by the Table I bench and by generator tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace distbc::graph {

struct DegreeStats {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// Fraction of vertices whose degree exceeds 10x the mean — a crude but
  /// effective detector for heavy-tailed (power-law-like) distributions.
  double heavy_fraction = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& graph);

/// histogram[k] = number of vertices with degree k (capped at max degree).
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Graph& graph);

/// Global clustering coefficient estimated by sampling `samples` wedges.
/// Complex networks have high clustering; ER graphs have ~0.
[[nodiscard]] double sampled_clustering_coefficient(const Graph& graph,
                                                    std::uint64_t samples,
                                                    std::uint64_t seed);

/// Content fingerprint of the CSR arrays (FNV-1a over vertex count,
/// offsets, and adjacency). Two graphs with the same fingerprint are the
/// same graph for cache-keying purposes: cached per-graph state
/// (bc::KadabraWarmState, service::WarmStore entries) is validated against
/// it before reuse. Never 0 - 0 means "unknown" in provenance fields.
[[nodiscard]] std::uint64_t fingerprint(const Graph& graph);

}  // namespace distbc::graph
