#include "graph/bfs.hpp"

namespace distbc::graph {

BfsSummary bfs(const Graph& graph, Vertex source, BfsWorkspace& ws) {
  DISTBC_ASSERT(source < graph.num_vertices());
  ws.reset();
  auto& queue = ws.queue();
  queue.push_back(source);
  ws.mark(source, 0);

  BfsSummary summary;
  summary.reached = 1;
  summary.farthest = source;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    const std::uint32_t du = ws.dist(u);
    for (const Vertex w : graph.neighbors(u)) {
      if (ws.visited(w)) continue;
      ws.mark(w, du + 1);
      queue.push_back(w);
      ++summary.reached;
      if (du + 1 > summary.eccentricity) {
        summary.eccentricity = du + 1;
        summary.farthest = w;
      }
    }
  }
  return summary;
}

std::vector<std::uint32_t> bfs_distances(const Graph& graph, Vertex source) {
  BfsWorkspace ws(graph.num_vertices());
  bfs(graph, source, ws);
  std::vector<std::uint32_t> dist(graph.num_vertices(), kUnreachable);
  for (const Vertex v : ws.queue()) dist[v] = ws.dist(v);
  return dist;
}

}  // namespace distbc::graph
