#include "graph/graph.hpp"

#include <algorithm>

namespace distbc::graph {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<Vertex> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  DISTBC_ASSERT_MSG(!offsets_.empty(), "offsets must have n + 1 entries");
  DISTBC_ASSERT(offsets_.front() == 0);
  DISTBC_ASSERT(offsets_.back() == adjacency_.size());
  DISTBC_ASSERT_MSG(adjacency_.size() % 2 == 0,
                    "undirected graph must have an even number of arcs");
#ifndef NDEBUG
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    DISTBC_ASSERT(offsets_[i] <= offsets_[i + 1]);
    DISTBC_ASSERT(std::is_sorted(adjacency_.begin() + offsets_[i],
                                 adjacency_.begin() + offsets_[i + 1]));
  }
#endif
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  DISTBC_DEBUG_ASSERT(u < num_vertices() && v < num_vertices());
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::uint64_t Graph::max_degree() const {
  std::uint64_t best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v)
    best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_arcs()) / num_vertices();
}

}  // namespace distbc::graph
