#include "graph/stats.hpp"

#include <algorithm>

#include "support/random.hpp"

namespace distbc::graph {

DegreeStats degree_stats(const Graph& graph) {
  DegreeStats stats;
  const Vertex n = graph.num_vertices();
  if (n == 0) return stats;

  std::vector<std::uint64_t> degrees(n);
  for (Vertex v = 0; v < n; ++v) degrees[v] = graph.degree(v);
  std::sort(degrees.begin(), degrees.end());

  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = graph.average_degree();
  stats.median = n % 2 == 1 ? static_cast<double>(degrees[n / 2])
                            : (static_cast<double>(degrees[n / 2 - 1]) +
                               static_cast<double>(degrees[n / 2])) /
                                  2.0;
  const double threshold = 10.0 * stats.mean;
  std::uint64_t heavy = 0;
  for (const auto d : degrees)
    if (static_cast<double>(d) > threshold) ++heavy;
  stats.heavy_fraction = static_cast<double>(heavy) / n;
  return stats;
}

std::vector<std::uint64_t> degree_histogram(const Graph& graph) {
  std::vector<std::uint64_t> histogram(graph.max_degree() + 1, 0);
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    ++histogram[graph.degree(v)];
  return histogram;
}

double sampled_clustering_coefficient(const Graph& graph,
                                      std::uint64_t samples,
                                      std::uint64_t seed) {
  DISTBC_ASSERT(samples > 0);
  Rng rng(seed);
  // Wedge sampling (Schank & Wagner): pick a vertex with deg >= 2 uniformly
  // among wedge centers, then two distinct neighbors; count closed wedges.
  std::vector<Vertex> centers;
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    if (graph.degree(v) >= 2) centers.push_back(v);
  if (centers.empty()) return 0.0;

  std::uint64_t closed = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const Vertex c = centers[rng.next_bounded(centers.size())];
    const auto adj = graph.neighbors(c);
    const auto [i1, i2] = rng.next_distinct_pair(adj.size());
    if (graph.has_edge(adj[i1], adj[i2])) ++closed;
  }
  return static_cast<double>(closed) / static_cast<double>(samples);
}

std::uint64_t fingerprint(const Graph& graph) {
  // FNV-1a 64-bit over the CSR content. The arrays are canonical (sorted
  // adjacency, fixed offset layout), so equal graphs hash equal regardless
  // of construction order.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffu;
      hash *= 0x100000001b3ull;
    }
  };
  mix(graph.num_vertices());
  for (const EdgeId offset : graph.offsets()) mix(offset);
  for (const Vertex v : graph.adjacency()) mix(v);
  return hash == 0 ? 1 : hash;  // reserve 0 for "unknown"
}

}  // namespace distbc::graph
