// Balanced bidirectional BFS with shortest-path counting and uniform
// shortest-path sampling — KADABRA's improvement (ii) over earlier samplers.
//
// For a pair (s, t) the search grows BFS balls from both endpoints,
// expanding the side with the smaller frontier volume, and stops as soon as
// the balls intersect. Shortest-path counts sigma are maintained per side;
// the set M of vertices at a fixed "meeting level" m (dist_s = m,
// dist_t = L - m) tiles all shortest s-t paths, so
//   sigma_st = sum_{v in M} sigma_s(v) * sigma_t(v)
// and a uniformly random shortest path is drawn by picking v in M with
// probability proportional to sigma_s(v) * sigma_t(v), then walking
// backwards to each endpoint weighted by the respective sigma values.
//
// sigma values are doubles: counts can exceed 2^64 on dense low-diameter
// graphs, and only the *ratios* matter for uniform sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace distbc::graph {

class BidirectionalBfs {
 public:
  explicit BidirectionalBfs(Vertex num_vertices);

  struct PairResult {
    bool connected = false;
    std::uint32_t distance = 0;  // L = d(s, t), valid if connected
    double num_paths = 0.0;      // sigma_st, valid if connected
  };

  /// Runs the search for one pair. State persists until the next run() and
  /// backs sample_path(). Requires s != t.
  PairResult run(const Graph& graph, Vertex s, Vertex t);

  /// Draws a uniformly random shortest s-t path from the last run() and
  /// appends its *internal* vertices (endpoints excluded) to `out`.
  /// Must only be called if the last run() returned connected == true.
  void sample_path(const Graph& graph, Rng& rng, std::vector<Vertex>& out);

  /// Vertices touched by the last run (both sides) — proxy for work done.
  [[nodiscard]] std::uint64_t last_touched() const { return touched_; }

 private:
  struct Side {
    explicit Side(Vertex n) : stamp(n, 0), dist(n, 0), sigma(n, 0.0) {
      order.reserve(1024);
      level_starts.reserve(64);
    }

    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> dist;
    std::vector<double> sigma;
    std::vector<Vertex> order;               // visited vertices in BFS order
    std::vector<std::uint32_t> level_starts;  // order index where level begins
    std::uint32_t completed_levels = 0;
  };

  void reset(Vertex s, Vertex t);
  /// Expands one full level of `side`; returns true if the balls now
  /// intersect (updating distance_/meeting bookkeeping).
  bool expand_level(const Graph& graph, Side& side, const Side& other);
  void collect_meeting_set(const Side& from_s_view, const Side& from_t_view);
  /// Walks from `v` (at distance `depth` from the side's root) back to the
  /// root, appending interior vertices. Includes `v` itself if it is not the
  /// root; ordering of appends is root-ward.
  void walk_to_root(const Graph& graph, const Side& side, Vertex v,
                    Rng& rng, std::vector<Vertex>& out) const;

  [[nodiscard]] bool side_visited(const Side& side, Vertex v) const {
    return side.stamp[v] == generation_;
  }

  Side s_side_;
  Side t_side_;
  std::uint32_t generation_ = 0;
  Vertex s_ = kInvalidVertex;
  Vertex t_ = kInvalidVertex;
  bool connected_ = false;
  std::uint32_t distance_ = 0;
  std::uint32_t meet_level_ = 0;           // m, measured from the s side
  std::vector<Vertex> meeting_vertices_;   // M
  std::vector<double> meeting_weights_;    // sigma_s(v) * sigma_t(v)
  double num_paths_ = 0.0;
  std::uint64_t touched_ = 0;
};

}  // namespace distbc::graph
