// Compressed-sparse-row graph, the substrate the whole library runs on.
//
// This mirrors the role of NetworKit's graph in the paper: an immutable,
// undirected, unweighted adjacency structure with 32-bit vertex ids that every
// sampler thread reads concurrently. Adjacency lists are sorted, enabling
// binary-searched edge queries and deterministic iteration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace distbc::graph {

/// 32-bit vertex id, as configured for NetworKit in the paper (§IV-F).
using Vertex = std::uint32_t;
/// Edge index type; 64-bit because |E| can exceed 2^32 at paper scale.
using EdgeId = std::uint64_t;

inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// Immutable undirected graph in CSR form. Each undirected edge {u, v} is
/// stored twice (u→v and v→u); num_edges() reports undirected edges.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. offsets.size() == n + 1,
  /// adjacency.size() == offsets[n] == 2 * undirected edge count.
  Graph(std::vector<EdgeId> offsets, std::vector<Vertex> adjacency);

  [[nodiscard]] Vertex num_vertices() const {
    return static_cast<Vertex>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] EdgeId num_edges() const { return adjacency_.size() / 2; }

  /// Number of directed arcs (= 2 * num_edges()).
  [[nodiscard]] EdgeId num_arcs() const { return adjacency_.size(); }

  [[nodiscard]] std::uint64_t degree(Vertex v) const {
    DISTBC_DEBUG_ASSERT(v < num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    DISTBC_DEBUG_ASSERT(v < num_vertices());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// True iff {u, v} is an edge. O(log deg(u)).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  [[nodiscard]] std::uint64_t max_degree() const;

  /// Average degree 2|E| / |V| (0 for the empty graph).
  [[nodiscard]] double average_degree() const;

  /// Estimated resident memory of the CSR arrays in bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return offsets_.size() * sizeof(EdgeId) +
           adjacency_.size() * sizeof(Vertex);
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const Vertex> adjacency() const {
    return adjacency_;
  }

 private:
  std::vector<EdgeId> offsets_;
  std::vector<Vertex> adjacency_;
};

}  // namespace distbc::graph
