// Connected components; the paper evaluates on the largest connected
// component of each (possibly disconnected) input graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace distbc::graph {

struct Components {
  std::vector<std::uint32_t> label;  // component id per vertex, 0-based
  std::vector<std::uint64_t> sizes;  // vertices per component

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(sizes.size());
  }
  [[nodiscard]] std::uint32_t largest() const;
};

/// BFS-based component labeling.
[[nodiscard]] Components connected_components(const Graph& graph);

/// Extracts the largest connected component as a standalone graph
/// (ids remapped to 0..k-1 preserving relative order).
[[nodiscard]] Graph largest_component(const Graph& graph);

/// True iff the graph is connected (the empty graph counts as connected).
[[nodiscard]] bool is_connected(const Graph& graph);

}  // namespace distbc::graph
