#include "graph/bidirectional_bfs.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace distbc::graph {

BidirectionalBfs::BidirectionalBfs(Vertex num_vertices)
    : s_side_(num_vertices), t_side_(num_vertices) {
  meeting_vertices_.reserve(64);
  meeting_weights_.reserve(64);
}

void BidirectionalBfs::reset(Vertex s, Vertex t) {
  ++generation_;
  if (generation_ == 0) {  // stamp wraparound: rare full clear
    std::fill(s_side_.stamp.begin(), s_side_.stamp.end(), 0);
    std::fill(t_side_.stamp.begin(), t_side_.stamp.end(), 0);
    generation_ = 1;
  }
  for (Side* side : {&s_side_, &t_side_}) {
    side->order.clear();
    side->level_starts.clear();
    side->completed_levels = 0;
  }
  s_ = s;
  t_ = t;
  connected_ = false;
  distance_ = 0;
  meet_level_ = 0;
  meeting_vertices_.clear();
  meeting_weights_.clear();
  num_paths_ = 0.0;
  touched_ = 0;

  auto seed_side = [&](Side& side, Vertex root) {
    side.stamp[root] = generation_;
    side.dist[root] = 0;
    side.sigma[root] = 1.0;
    side.order.push_back(root);
    side.level_starts.push_back(0);
  };
  seed_side(s_side_, s);
  seed_side(t_side_, t);
}

bool BidirectionalBfs::expand_level(const Graph& graph, Side& side,
                                    const Side& other) {
  const std::uint32_t level = side.completed_levels;
  const std::uint32_t begin = side.level_starts[level];
  const std::uint32_t end = static_cast<std::uint32_t>(side.order.size());

  side.level_starts.push_back(end);  // level + 1 starts here
  for (std::uint32_t i = begin; i < end; ++i) {
    const Vertex u = side.order[i];
    const double sigma_u = side.sigma[u];
    for (const Vertex w : graph.neighbors(u)) {
      ++touched_;
      if (side.stamp[w] == generation_) {
        // Already discovered by this side; accumulate counts if w sits on
        // the next level (another shortest path into w).
        if (side.dist[w] == level + 1) side.sigma[w] += sigma_u;
        continue;
      }
      side.stamp[w] = generation_;
      side.dist[w] = level + 1;
      side.sigma[w] = sigma_u;
      side.order.push_back(w);
    }
  }
  side.completed_levels = level + 1;

  // Intersection check: the balls were disjoint before this expansion, so
  // any intersection vertex lies in the freshly completed level.
  std::uint32_t best = kUnreachable;
  for (std::uint32_t i = end; i < side.order.size(); ++i) {
    const Vertex w = side.order[i];
    if (other.stamp[w] == generation_)
      best = std::min(best, level + 1 + other.dist[w]);
  }
  if (best == kUnreachable) return false;
  connected_ = true;
  distance_ = best;
  return true;
}

BidirectionalBfs::PairResult BidirectionalBfs::run(const Graph& graph,
                                                   Vertex s, Vertex t) {
  DISTBC_ASSERT(s < graph.num_vertices() && t < graph.num_vertices());
  DISTBC_ASSERT_MSG(s != t, "betweenness pairs must be distinct");
  reset(s, t);

  auto frontier_volume = [&](const Side& side) {
    std::uint64_t volume = 0;
    const std::uint32_t begin = side.level_starts[side.completed_levels];
    for (std::uint32_t i = begin; i < side.order.size(); ++i)
      volume += graph.degree(side.order[i]);
    return volume;
  };

  while (true) {
    const std::uint32_t s_begin = s_side_.level_starts[s_side_.completed_levels];
    const std::uint32_t t_begin = t_side_.level_starts[t_side_.completed_levels];
    const bool s_alive = s_begin < s_side_.order.size();
    const bool t_alive = t_begin < t_side_.order.size();
    if (!s_alive || !t_alive) {
      // One ball covers its whole component without meeting the other:
      // s and t are disconnected.
      return {};
    }
    Side& grow = frontier_volume(s_side_) <= frontier_volume(t_side_)
                     ? s_side_
                     : t_side_;
    Side& other = (&grow == &s_side_) ? t_side_ : s_side_;
    if (expand_level(graph, grow, other)) break;
  }

  collect_meeting_set(s_side_, t_side_);
  return {connected_, distance_, num_paths_};
}

void BidirectionalBfs::collect_meeting_set(const Side& from_s_view,
                                           const Side& from_t_view) {
  const std::uint32_t level_s = from_s_view.completed_levels;
  const std::uint32_t level_t = from_t_view.completed_levels;
  DISTBC_ASSERT(distance_ <= level_s + level_t);

  // Any m with L - level_t <= m <= level_s (clamped to [0, L]) works; both
  // sides have final sigma values up to their completed level. Prefer the
  // midpoint to keep the meeting set small.
  const std::uint32_t lo =
      distance_ > level_t ? distance_ - level_t : 0;
  const std::uint32_t hi = std::min(level_s, distance_);
  DISTBC_ASSERT(lo <= hi);
  meet_level_ = std::clamp((distance_ + 1) / 2, lo, hi);

  const std::uint32_t begin = from_s_view.level_starts[meet_level_];
  const std::uint32_t end =
      meet_level_ + 1 <= from_s_view.completed_levels
          ? from_s_view.level_starts[meet_level_ + 1]
          : static_cast<std::uint32_t>(from_s_view.order.size());
  for (std::uint32_t i = begin; i < end; ++i) {
    const Vertex v = from_s_view.order[i];
    if (from_t_view.stamp[v] != generation_) continue;
    if (from_t_view.dist[v] != distance_ - meet_level_) continue;
    meeting_vertices_.push_back(v);
    meeting_weights_.push_back(from_s_view.sigma[v] * from_t_view.sigma[v]);
    num_paths_ += meeting_weights_.back();
  }
  DISTBC_ASSERT_MSG(!meeting_vertices_.empty(),
                    "connected pair must have a meeting vertex");
}

void BidirectionalBfs::walk_to_root(const Graph& graph, const Side& side,
                                    Vertex v, Rng& rng,
                                    std::vector<Vertex>& out) const {
  std::uint32_t depth = side.dist[v];
  Vertex current = v;
  // Reservoir-style predecessor pick: a predecessor u (at depth - 1) is the
  // previous hop of a uniform path with probability sigma(u) / sum(sigma).
  while (depth > 0) {
    double total = 0.0;
    Vertex choice = kInvalidVertex;
    for (const Vertex w : graph.neighbors(current)) {
      if (side.stamp[w] != generation_ || side.dist[w] != depth - 1) continue;
      total += side.sigma[w];
      if (rng.next_double() * total < side.sigma[w]) choice = w;
    }
    DISTBC_ASSERT_MSG(choice != kInvalidVertex,
                      "BFS predecessor must exist above the root");
    --depth;
    current = choice;
    if (depth > 0) out.push_back(current);  // exclude the root itself
  }
}

void BidirectionalBfs::sample_path(const Graph& graph, Rng& rng,
                                   std::vector<Vertex>& out) {
  DISTBC_ASSERT_MSG(connected_, "sample_path requires a connected pair");
  const std::size_t pick =
      pick_weighted(rng, meeting_weights_.data(), meeting_weights_.size());
  const Vertex v = meeting_vertices_[pick];

  // Prefix: interior vertices from s to v, in s -> v order.
  const std::size_t prefix_begin = out.size();
  walk_to_root(graph, s_side_, v, rng, out);
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(prefix_begin),
               out.end());
  if (v != s_ && v != t_) out.push_back(v);
  // Suffix: interior vertices from v to t, already in v -> t order.
  walk_to_root(graph, t_side_, v, rng, out);
}

}  // namespace distbc::graph
