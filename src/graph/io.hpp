// Graph serialization: SNAP/KONECT-style text edge lists and a fast binary
// format for caching generated instances between bench runs.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace distbc::graph {

/// Reads a whitespace-separated edge list ("u v" per line). Lines starting
/// with '#' or '%' are comments (SNAP and KONECT conventions respectively).
/// Vertex ids may be arbitrary non-negative integers; they are compacted.
[[nodiscard]] Graph read_edge_list(const std::string& path);

/// Writes "u v" lines, one per undirected edge, with a '#' header.
void write_edge_list(const Graph& graph, const std::string& path);

/// Binary CSR snapshot (magic + counts + raw arrays, little-endian).
void write_binary(const Graph& graph, const std::string& path);
[[nodiscard]] Graph read_binary(const std::string& path);

}  // namespace distbc::graph
