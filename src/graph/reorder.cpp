#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace distbc::graph {

namespace {

ReorderedGraph apply_order(const Graph& graph,
                           std::vector<Vertex> new_to_old) {
  DISTBC_ASSERT(new_to_old.size() == graph.num_vertices());
  ReorderedGraph result;
  result.new_to_old = std::move(new_to_old);
  result.old_to_new.assign(graph.num_vertices(), kInvalidVertex);
  for (Vertex new_id = 0; new_id < graph.num_vertices(); ++new_id)
    result.old_to_new[result.new_to_old[new_id]] = new_id;

  Builder builder(graph.num_vertices());
  builder.reserve(graph.num_edges());
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    for (const Vertex v : graph.neighbors(u)) {
      if (u < v)
        builder.add_edge(result.old_to_new[u], result.old_to_new[v]);
    }
  }
  result.graph = builder.finish();
  return result;
}

}  // namespace

std::vector<double> ReorderedGraph::scores_to_original(
    const std::vector<double>& scores) const {
  DISTBC_ASSERT(scores.size() == new_to_old.size());
  std::vector<double> original(scores.size());
  for (std::size_t new_id = 0; new_id < scores.size(); ++new_id)
    original[new_to_old[new_id]] = scores[new_id];
  return original;
}

ReorderedGraph sort_by_degree(const Graph& graph) {
  std::vector<Vertex> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return graph.degree(a) > graph.degree(b);
  });
  return apply_order(graph, std::move(order));
}

ReorderedGraph sort_by_bfs(const Graph& graph) {
  std::vector<Vertex> order;
  order.reserve(graph.num_vertices());
  if (graph.num_vertices() > 0) {
    Vertex start = 0;
    for (Vertex v = 1; v < graph.num_vertices(); ++v)
      if (graph.degree(v) > graph.degree(start)) start = v;
    BfsWorkspace ws(graph.num_vertices());
    bfs(graph, start, ws);
    order = ws.queue();  // BFS visit order
    // Append vertices of other components in original order.
    std::vector<bool> placed(graph.num_vertices(), false);
    for (const Vertex v : order) placed[v] = true;
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      if (!placed[v]) order.push_back(v);
  }
  return apply_order(graph, std::move(order));
}

}  // namespace distbc::graph
