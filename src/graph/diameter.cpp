#include "graph/diameter.hpp"

#include <algorithm>
#include <vector>

#include "graph/components.hpp"

namespace distbc::graph {

namespace {

Vertex max_degree_vertex(const Graph& graph) {
  Vertex best = 0;
  std::uint64_t best_degree = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (graph.degree(v) > best_degree) {
      best_degree = graph.degree(v);
      best = v;
    }
  }
  return best;
}

}  // namespace

TwoSweepResult two_sweep(const Graph& graph) {
  DISTBC_ASSERT(graph.num_vertices() > 0);
  BfsWorkspace ws(graph.num_vertices());

  const Vertex start = max_degree_vertex(graph);
  const BfsSummary first = bfs(graph, start, ws);
  const Vertex a = first.farthest;
  const BfsSummary second = bfs(graph, a, ws);

  TwoSweepResult result;
  result.lower_bound = second.eccentricity;
  result.periphery = a;

  // Retrace half of the a->farthest path inside the second BFS tree to find
  // the midpoint: a good iFUB root with small eccentricity.
  Vertex current = second.farthest;
  std::uint32_t depth = second.eccentricity;
  const std::uint32_t half = depth / 2;
  while (depth > half) {
    for (const Vertex w : graph.neighbors(current)) {
      if (ws.visited(w) && ws.dist(w) == depth - 1) {
        current = w;
        break;
      }
    }
    --depth;
  }
  result.midpoint = current;
  return result;
}

DiameterResult ifub_diameter(const Graph& graph) {
  DISTBC_ASSERT(graph.num_vertices() > 0);
  DISTBC_ASSERT_MSG(is_connected(graph), "iFUB requires a connected graph");

  DiameterResult result;
  if (graph.num_vertices() == 1) return result;

  const TwoSweepResult sweep = two_sweep(graph);
  result.num_bfs = 2;

  BfsWorkspace ws(graph.num_vertices());
  const BfsSummary root_bfs = bfs(graph, sweep.midpoint, ws);
  ++result.num_bfs;

  // Bucket vertices of the root BFS tree by level.
  std::vector<std::vector<Vertex>> levels(root_bfs.eccentricity + 1);
  for (const Vertex v : ws.queue()) levels[ws.dist(v)].push_back(v);

  std::uint32_t lower = std::max(sweep.lower_bound, root_bfs.eccentricity);
  // Matching upper bound: D <= 2 ecc(v) for every v. The midpoint root and
  // the max-degree hub are the best candidates for ecc = ceil(D/2); when
  // one of them achieves it, lower == upper immediately - this covers the
  // even-diameter case where the classic lb > 2(i-1) test alone would scan
  // an entire fringe level (e.g. D = 4 complex networks).
  std::uint32_t upper = 2 * root_bfs.eccentricity;
  BfsWorkspace ecc_ws(graph.num_vertices());
  {
    const BfsSummary hub_bfs = bfs(graph, max_degree_vertex(graph), ecc_ws);
    ++result.num_bfs;
    lower = std::max(lower, hub_bfs.eccentricity);
    upper = std::min(upper, 2 * hub_bfs.eccentricity);
  }

  for (std::uint32_t i = root_bfs.eccentricity;
       i > 0 && lower < upper; --i) {
    // All remaining vertices sit at depth <= i, so any path through them has
    // length <= 2i; once the lower bound beats 2(i-1) deeper levels cannot
    // improve it. The same bound lets us abandon the current level early.
    if (lower > 2 * (i - 1)) break;
    for (const Vertex v : levels[i]) {
      const BfsSummary summary = bfs(graph, v, ecc_ws);
      ++result.num_bfs;
      lower = std::max(lower, summary.eccentricity);
      upper = std::min(upper, 2 * summary.eccentricity);
      if (lower > 2 * (i - 1) || lower >= upper) break;
    }
  }
  result.diameter = lower;
  return result;
}

std::uint32_t vertex_diameter(const Graph& graph, bool exact) {
  DISTBC_ASSERT(graph.num_vertices() > 0);
  if (graph.num_vertices() == 1) return 1;
  if (exact) return ifub_diameter(graph).diameter + 1;

  // Cheap upper bound: a shortest path cannot be longer than twice the
  // eccentricity of any vertex; use the two-sweep midpoint which has nearly
  // minimal eccentricity.
  const TwoSweepResult sweep = two_sweep(graph);
  BfsWorkspace ws(graph.num_vertices());
  const BfsSummary summary = bfs(graph, sweep.midpoint, ws);
  return 2 * summary.eccentricity + 1;
}

}  // namespace distbc::graph
