#include "graph/batched_bidirectional_bfs.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

#if (defined(__GNUC__) || defined(__clang__)) && !defined(DISTBC_NO_SW_PREFETCH)
#define DISTBC_PREFETCH_R(addr) __builtin_prefetch((addr), 0, 1)
#define DISTBC_PREFETCH_W(addr) __builtin_prefetch((addr), 1, 1)
#else
#define DISTBC_PREFETCH_R(addr) ((void)(addr))
#define DISTBC_PREFETCH_W(addr) ((void)(addr))
#endif

namespace distbc::graph {

namespace {
/// Adjacency lookahead for the software prefetches: far enough to cover
/// one miss latency, near enough to stay inside typical hub lists.
constexpr std::size_t kPrefetchAhead = 8;
}  // namespace

BatchedBidirectionalBfs::BatchedBidirectionalBfs(const Graph& graph,
                                                 int capacity)
    : graph_(&graph), capacity_(capacity) {
  DISTBC_ASSERT_MSG(capacity >= 1 && capacity <= kMaxBatch,
                    "batch capacity must be in [1, 64]");
  const auto n = static_cast<std::size_t>(graph.num_vertices());
  const auto b = static_cast<std::size_t>(capacity);
  visit_.assign(n, {});
  for (SideState& side : sides_) {
    side.sigma.assign(n, 0.0);
    side.order.reserve(1024);
    side.level_starts.reserve(64);
  }
  s_.assign(b, kInvalidVertex);
  t_.assign(b, kInvalidVertex);
  results_.resize(b);
  meet_level_.assign(b, 0);
  meeting_vertices_.resize(b);
  meeting_weights_.resize(b);
  touched_.assign(b, 0);
}

void BatchedBidirectionalBfs::clear_batch() {
  staged_ = 0;
  ran_ = false;
  last_run_ = -1;
}

int BatchedBidirectionalBfs::stage(Vertex s, Vertex t) {
  if (ran_) clear_batch();
  if (staged_ == capacity_) return -1;
  DISTBC_ASSERT(s < graph_->num_vertices() && t < graph_->num_vertices());
  DISTBC_ASSERT_MSG(s != t, "betweenness pairs must be distinct");
  const int lane = staged_++;
  const auto l = static_cast<std::size_t>(lane);
  s_[l] = s;
  t_[l] = t;
  return lane;
}

void BatchedBidirectionalBfs::run_staged() {
  DISTBC_ASSERT_MSG(!ran_, "batch already ran; stage() a new one");
  // Searches execute lazily (see ensure_ran): running lane k right before
  // its result and path draws are consumed keeps the one shared workspace
  // hot through the lane's whole lifecycle.
  ran_ = true;
}

void BatchedBidirectionalBfs::run(
    std::span<const std::pair<Vertex, Vertex>> pairs) {
  DISTBC_ASSERT(pairs.size() <= static_cast<std::size_t>(capacity_));
  if (ran_) clear_batch();
  DISTBC_ASSERT_MSG(staged_ == 0, "run() requires an empty batch");
  for (const auto& [s, t] : pairs) (void)stage(s, t);
  run_staged();
}

void BatchedBidirectionalBfs::run_lane(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  // Scalar-identical per-search reset: one generation bump retires the
  // previous lane's visit records.
  ++generation_;
  if (generation_ == 0) {  // stamp wraparound: rare full clear
    std::fill(visit_.begin(), visit_.end(), VisitRecord{});
    generation_ = 1;
  }
  results_[l] = {};
  meet_level_[l] = 0;
  meeting_vertices_[l].clear();
  meeting_weights_[l].clear();
  touched_[l] = 0;

  const Vertex roots[2] = {s_[l], t_[l]};
  for (int si = 0; si < 2; ++si) {
    SideState& side = sides_[si];
    side.order.clear();
    side.level_starts.clear();
    side.completed_levels = 0;
    side.volume_valid = false;
    VisitRecord& r = visit_[roots[si]];
    r.side[si].stamp = generation_;
    r.side[si].dist = 0;
    side.sigma[roots[si]] = 1.0;
    side.order.push_back(roots[si]);
    side.level_starts.push_back(0);
  }

  while (!step_lane(lane)) {
  }
}

bool BatchedBidirectionalBfs::expand_level(int lane, int side_index) {
  const Graph& graph = *graph_;
  const auto l = static_cast<std::size_t>(lane);
  SideState& side = sides_[side_index];
  const int other_index = side_index ^ 1;

  const std::uint32_t level = side.completed_levels;
  const std::uint32_t begin = side.level_starts[level];
  const std::uint32_t end = static_cast<std::uint32_t>(side.order.size());
  side.level_starts.push_back(end);  // level + 1 starts here

  VisitRecord* visit = visit_.data();
  double* sigma = side.sigma.data();
  const std::uint32_t gen = generation_;

  // Intersection check folded into discovery: the balls were disjoint
  // before this expansion, so any intersection vertex is freshly
  // discovered, and the fused record already in hand answers the
  // other-side probe — no separate scan over the new level. The minimum
  // over the fresh set is order-independent, so `best` matches the scalar
  // kernel's post-expansion scan exactly.
  std::uint32_t best = kUnreachable;
  std::uint64_t scanned = 0;
  for (std::uint32_t i = begin; i < end; ++i) {
    const Vertex u = side.order[i];
    const double sigma_u = sigma[u];
    const std::span<const Vertex> nbrs = graph.neighbors(u);
    scanned += nbrs.size();
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (j + kPrefetchAhead < nbrs.size()) {
        const auto p = static_cast<std::size_t>(nbrs[j + kPrefetchAhead]);
        DISTBC_PREFETCH_W(&visit[p]);
        DISTBC_PREFETCH_W(&sigma[p]);
      }
      const Vertex w = nbrs[j];
      VisitRecord& r = visit[w];
      if (r.side[side_index].stamp == gen) {
        // Already discovered by this side; accumulate counts if w sits on
        // the next level (another shortest path into w).
        if (r.side[side_index].dist == level + 1) sigma[w] += sigma_u;
        continue;
      }
      r.side[side_index].stamp = gen;
      r.side[side_index].dist = level + 1;
      sigma[w] = sigma_u;
      side.order.push_back(w);
      if (r.side[other_index].stamp == gen)
        best = std::min(best, level + 1 + r.side[other_index].dist);
    }
  }
  side.completed_levels = level + 1;
  side.volume_valid = false;  // the frontier just advanced one level
  touched_[l] += scanned;

  if (best == kUnreachable) return false;
  results_[l].connected = true;
  results_[l].distance = best;
  return true;
}

bool BatchedBidirectionalBfs::step_lane(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  SideState& sl = sides_[kS];
  SideState& tl = sides_[kT];
  const bool s_alive = sl.level_starts[sl.completed_levels] < sl.order.size();
  const bool t_alive = tl.level_starts[tl.completed_levels] < tl.order.size();
  if (!s_alive || !t_alive) {
    // One ball covers its whole component without meeting the other.
    results_[l] = {};
    return true;
  }
  // Scalar-identical side selection (same uint64 degree sums, so the
  // comparison sequence matches exactly), with each side's volume cached
  // until that side next expands — the scalar kernel rescans the losing
  // side's unchanged frontier again every round.
  auto frontier_volume = [&](SideState& side) {
    if (!side.volume_valid) {
      std::uint64_t volume = 0;
      const std::uint32_t begin = side.level_starts[side.completed_levels];
      for (std::uint32_t i = begin; i < side.order.size(); ++i)
        volume += graph_->degree(side.order[i]);
      side.frontier_volume = volume;
      side.volume_valid = true;
    }
    return side.frontier_volume;
  };
  const bool grow_s = frontier_volume(sl) <= frontier_volume(tl);
  if (!expand_level(lane, grow_s ? kS : kT)) return false;
  collect_meeting_set(lane);
  return true;
}

void BatchedBidirectionalBfs::collect_meeting_set(int lane) {
  const auto l = static_cast<std::size_t>(lane);
  const SideState& sl = sides_[kS];
  const SideState& tl = sides_[kT];
  const std::uint32_t distance = results_[l].distance;
  const std::uint32_t level_s = sl.completed_levels;
  const std::uint32_t level_t = tl.completed_levels;
  DISTBC_ASSERT(distance <= level_s + level_t);

  const std::uint32_t lo = distance > level_t ? distance - level_t : 0;
  const std::uint32_t hi = std::min(level_s, distance);
  DISTBC_ASSERT(lo <= hi);
  const std::uint32_t meet = std::clamp((distance + 1) / 2, lo, hi);
  meet_level_[l] = meet;

  const std::uint32_t begin = sl.level_starts[meet];
  const std::uint32_t end = meet + 1 <= sl.completed_levels
                                ? sl.level_starts[meet + 1]
                                : static_cast<std::uint32_t>(sl.order.size());
  double num_paths = 0.0;
  for (std::uint32_t i = begin; i < end; ++i) {
    const Vertex v = sl.order[i];
    const VisitRecord& r = visit_[v];
    if (r.side[kT].stamp != generation_) continue;
    if (r.side[kT].dist != distance - meet) continue;
    meeting_vertices_[l].push_back(v);
    meeting_weights_[l].push_back(sl.sigma[v] * tl.sigma[v]);
    num_paths += meeting_weights_[l].back();
  }
  DISTBC_ASSERT_MSG(!meeting_vertices_[l].empty(),
                    "connected pair must have a meeting vertex");
  results_[l].num_paths = num_paths;
}

void BatchedBidirectionalBfs::walk_to_root(int side_index, Vertex v, Rng& rng,
                                           std::vector<Vertex>& out) const {
  const SideState& side = sides_[side_index];
  std::uint32_t depth = visit_[v].side[side_index].dist;
  Vertex current = v;
  // Reservoir-style predecessor pick, one RNG draw per candidate — the
  // scalar kernel's exact draw sequence.
  while (depth > 0) {
    double total = 0.0;
    Vertex choice = kInvalidVertex;
    for (const Vertex w : graph_->neighbors(current)) {
      const VisitRecord& r = visit_[w];
      if (r.side[side_index].stamp != generation_ || r.side[side_index].dist != depth - 1)
        continue;
      total += side.sigma[w];
      if (rng.next_double() * total < side.sigma[w]) choice = w;
    }
    DISTBC_ASSERT_MSG(choice != kInvalidVertex,
                      "BFS predecessor must exist above the root");
    --depth;
    current = choice;
    if (depth > 0) out.push_back(current);  // exclude the root itself
  }
}

void BatchedBidirectionalBfs::append_lane_scanned(int lane,
                                                  std::vector<Vertex>& out) {
  DISTBC_DEBUG_ASSERT(lane >= 0 && lane < staged_ && ran_);
  ensure_ran(lane);
  DISTBC_ASSERT_MSG(lane == last_run_,
                    "append_lane_scanned(lane) requires lane state to be "
                    "current: finish lanes in ascending order");
  for (const SideState& side : sides_) {
    const std::uint32_t end = side.level_starts[side.completed_levels];
    out.insert(out.end(), side.order.begin(), side.order.begin() + end);
  }
}

void BatchedBidirectionalBfs::sample_path(int lane, Rng& rng,
                                          std::vector<Vertex>& out) {
  const auto l = static_cast<std::size_t>(lane);
  DISTBC_DEBUG_ASSERT(lane >= 0 && lane < staged_ && ran_);
  ensure_ran(lane);
  DISTBC_ASSERT_MSG(lane == last_run_,
                    "sample_path(lane) requires lane state to be current: "
                    "finish lanes in ascending order");
  DISTBC_ASSERT_MSG(results_[l].connected,
                    "sample_path requires a connected pair");
  const std::size_t pick = pick_weighted(rng, meeting_weights_[l].data(),
                                         meeting_weights_[l].size());
  const Vertex v = meeting_vertices_[l][pick];

  // Prefix: interior vertices from s to v, in s -> v order.
  const std::size_t prefix_begin = out.size();
  walk_to_root(kS, v, rng, out);
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(prefix_begin),
               out.end());
  if (v != s_[l] && v != t_[l]) out.push_back(v);
  // Suffix: interior vertices from v to t, already in v -> t order.
  walk_to_root(kT, v, rng, out);
}

}  // namespace distbc::graph
