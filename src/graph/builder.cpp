#include "graph/builder.hpp"

#include <algorithm>

namespace distbc::graph {

Graph Builder::finish() {
  // Symmetrize: materialize both arcs, dropping self loops.
  std::vector<std::pair<Vertex, Vertex>> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    arcs.emplace_back(u, v);
    arcs.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const auto& [u, v] : arcs) ++offsets[u + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> adjacency(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) adjacency[i] = arcs[i].second;

  return Graph(std::move(offsets), std::move(adjacency));
}

Graph from_edges(Vertex num_vertices,
                 const std::vector<std::pair<Vertex, Vertex>>& edges) {
  Builder builder(num_vertices);
  builder.reserve(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.finish();
}

Graph induced_subgraph(const Graph& graph, const std::vector<Vertex>& keep) {
  std::vector<Vertex> remap(graph.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    DISTBC_ASSERT(keep[i] < graph.num_vertices());
    DISTBC_ASSERT_MSG(remap[keep[i]] == kInvalidVertex,
                      "duplicate vertex in keep list");
    remap[keep[i]] = static_cast<Vertex>(i);
  }

  Builder builder(static_cast<Vertex>(keep.size()));
  for (const Vertex u : keep) {
    for (const Vertex v : graph.neighbors(u)) {
      if (remap[v] == kInvalidVertex) continue;
      if (remap[u] < remap[v]) builder.add_edge(remap[u], remap[v]);
    }
  }
  return builder.finish();
}

}  // namespace distbc::graph
