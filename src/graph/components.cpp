#include "graph/components.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace distbc::graph {

std::uint32_t Components::largest() const {
  DISTBC_ASSERT(!sizes.empty());
  return static_cast<std::uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const Graph& graph) {
  const Vertex n = graph.num_vertices();
  Components result;
  result.label.assign(n, kInvalidVertex);

  std::vector<Vertex> queue;
  for (Vertex root = 0; root < n; ++root) {
    if (result.label[root] != kInvalidVertex) continue;
    const auto id = static_cast<std::uint32_t>(result.sizes.size());
    result.sizes.push_back(0);
    queue.clear();
    queue.push_back(root);
    result.label[root] = id;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      ++result.sizes[id];
      for (const Vertex w : graph.neighbors(u)) {
        if (result.label[w] != kInvalidVertex) continue;
        result.label[w] = id;
        queue.push_back(w);
      }
    }
  }
  return result;
}

Graph largest_component(const Graph& graph) {
  if (graph.num_vertices() == 0) return {};
  const Components comps = connected_components(graph);
  const std::uint32_t target = comps.largest();
  std::vector<Vertex> keep;
  keep.reserve(comps.sizes[target]);
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    if (comps.label[v] == target) keep.push_back(v);
  return induced_subgraph(graph, keep);
}

bool is_connected(const Graph& graph) {
  if (graph.num_vertices() == 0) return true;
  return connected_components(graph).count() == 1;
}

}  // namespace distbc::graph
