// Breadth-first search kernels with O(1)-reset workspaces.
//
// Sampling-based betweenness takes millions of BFS-like probes; clearing a
// |V|-sized array per probe would dominate the runtime (the paper relies on
// samples costing < 10 ms on billion-edge graphs). Workspaces therefore use
// generation stamps: an entry is valid only if its stamp equals the current
// generation, and reset is a single counter increment.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace distbc::graph {

/// Reusable BFS scratch space for one thread.
class BfsWorkspace {
 public:
  explicit BfsWorkspace(Vertex num_vertices)
      : stamp_(num_vertices, 0), dist_(num_vertices, 0) {
    queue_.reserve(num_vertices);
  }

  /// Invalidate all previous marks in O(1).
  void reset() {
    ++generation_;
    queue_.clear();
    if (generation_ == 0) {  // stamp wraparound: do the rare full clear
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
  }

  [[nodiscard]] bool visited(Vertex v) const {
    return stamp_[v] == generation_;
  }
  void mark(Vertex v, std::uint32_t dist) {
    stamp_[v] = generation_;
    dist_[v] = dist;
  }
  [[nodiscard]] std::uint32_t dist(Vertex v) const { return dist_[v]; }

  std::vector<Vertex>& queue() { return queue_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
  std::vector<std::uint32_t> dist_;
  std::vector<Vertex> queue_;
};

struct BfsSummary {
  std::uint32_t eccentricity = 0;  // max distance reached from the source
  std::uint64_t reached = 0;       // vertices reached (including the source)
  Vertex farthest = kInvalidVertex;  // one vertex at maximum distance
};

/// Full BFS from `source`; distances stay in `ws` until its next reset.
BfsSummary bfs(const Graph& graph, Vertex source, BfsWorkspace& ws);

/// Convenience wrapper producing a dense distance vector
/// (kUnreachable for vertices in other components).
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const Graph& graph, Vertex source);

}  // namespace distbc::graph
