// Diameter computation for connected undirected graphs.
//
// KADABRA's sample-budget bound omega depends on (an upper bound of) the
// vertex diameter VD (= hop diameter + 1 on connected unweighted graphs).
// The paper computes the diameter with the sequential BFS-based method of
// Borassi et al. (its Ref. [6]); we implement the same family:
//   - two_sweep: classic double-BFS lower bound,
//   - ifub_diameter: iFUB, exact, usually a handful of BFS on real graphs.
#pragma once

#include <cstdint>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace distbc::graph {

struct TwoSweepResult {
  std::uint32_t lower_bound = 0;  // eccentricity found by the second sweep
  Vertex periphery = kInvalidVertex;  // endpoint realizing the bound
  Vertex midpoint = kInvalidVertex;   // middle vertex of the found path
};

/// Double sweep from the max-degree vertex: BFS to the farthest vertex u,
/// BFS again from u. Returns a diameter lower bound and the sweep midpoint
/// (a good iFUB root).
[[nodiscard]] TwoSweepResult two_sweep(const Graph& graph);

struct DiameterResult {
  std::uint32_t diameter = 0;
  std::uint64_t num_bfs = 0;  // BFS invocations spent (measure of work)
};

/// iFUB: exact diameter. Requires a connected graph.
[[nodiscard]] DiameterResult ifub_diameter(const Graph& graph);

/// Upper bound on the vertex diameter (number of vertices on the longest
/// shortest path). `exact` selects iFUB; otherwise a cheap 2-approximation
/// (2 * eccentricity of the two-sweep root + 1) is returned.
[[nodiscard]] std::uint32_t vertex_diameter(const Graph& graph, bool exact);

}  // namespace distbc::graph
