// Edge-list accumulator that normalizes raw input into a CSR Graph.
//
// Generators and file readers emit arbitrary (u, v) pairs: duplicates, self
// loops, and both orientations may appear. Builder::finish() removes self
// loops, deduplicates, symmetrizes, and sorts adjacency lists, producing a
// canonical simple undirected graph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace distbc::graph {

class Builder {
 public:
  explicit Builder(Vertex num_vertices) : num_vertices_(num_vertices) {}

  /// Adds an undirected edge {u, v}. Self loops are dropped at finish().
  void add_edge(Vertex u, Vertex v) {
    DISTBC_ASSERT(u < num_vertices_ && v < num_vertices_);
    edges_.emplace_back(u, v);
  }

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  [[nodiscard]] std::size_t pending_edges() const { return edges_.size(); }

  /// Builds the canonical graph and releases the edge buffer.
  [[nodiscard]] Graph finish();

 private:
  Vertex num_vertices_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

/// Convenience: build a graph directly from an initializer-style edge list.
[[nodiscard]] Graph from_edges(
    Vertex num_vertices, const std::vector<std::pair<Vertex, Vertex>>& edges);

/// Returns the induced subgraph on `keep` (ids are remapped to 0..k-1 in the
/// order they appear in `keep`). Used to extract connected components.
[[nodiscard]] Graph induced_subgraph(const Graph& graph,
                                     const std::vector<Vertex>& keep);

}  // namespace distbc::graph
