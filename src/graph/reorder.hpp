// Vertex relabeling for cache locality.
//
// Sampling-based centrality spends nearly all of its time in BFS adjacency
// scans; relabeling vertices so that high-degree hubs (touched by almost
// every sample on power-law graphs) occupy a dense id prefix improves cache
// behaviour - the single-address-space analogue of the paper's NUMA
// placement concern (§IV-E). The mapping is returned so scores can be
// translated back to original ids.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace distbc::graph {

struct ReorderedGraph {
  Graph graph;
  /// new_to_old[new_id] = original id.
  std::vector<Vertex> new_to_old;
  /// old_to_new[original id] = new_id.
  std::vector<Vertex> old_to_new;

  /// Translates a score vector indexed by new ids back to original ids.
  [[nodiscard]] std::vector<double> scores_to_original(
      const std::vector<double>& scores) const;
};

/// Relabels vertices by descending degree (stable: ties keep original
/// order). The resulting graph is isomorphic to the input.
[[nodiscard]] ReorderedGraph sort_by_degree(const Graph& graph);

/// Relabels vertices in BFS visit order from the highest-degree vertex,
/// packing neighborhoods contiguously (useful for road networks, where
/// degree ordering does nothing). Unreached vertices (other components)
/// are appended in original order.
[[nodiscard]] ReorderedGraph sort_by_bfs(const Graph& graph);

}  // namespace distbc::graph
