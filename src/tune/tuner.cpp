#include "tune/tuner.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace distbc::tune {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

void append_kv(std::string& out, const std::string& key, double value) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s = %.12e\n", key.c_str(), value);
  out += buffer;
}

void append_kv(std::string& out, const std::string& key, int value) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s = %d\n", key.c_str(), value);
  out += buffer;
}

void append_kv(std::string& out, const std::string& key,
               std::string_view value) {
  out += key;
  out += " = ";
  out += value;
  out += '\n';
}

}  // namespace

std::string TuningProfile::serialize() const {
  std::string out = "# distbc tuning profile (tune/tuner.hpp)\n";
  append_kv(out, "tune.version", 1);
  append_kv(out, "shape.num_ranks", shape.num_ranks);
  append_kv(out, "shape.ranks_per_node", shape.ranks_per_node);
  append_kv(out, "shape.threads_per_rank", shape.threads_per_rank);
  append_kv(out, "oversubscription", oversubscription);
  append_kv(out, "work_unit_s", work_unit_s);
  append_kv(out, "tree_radix", tree_radix);
  append_kv(out, "leader_radix", leader_radix);
  append_kv(out, "comm.substrate",
            std::string_view(comm::substrate_name(substrate)));
  for (std::size_t p = 0; p < kNumPatterns; ++p) {
    const auto pattern = static_cast<Pattern>(p);
    if (!model.has(pattern)) continue;
    const std::string prefix = std::string("pattern.") + pattern_name(pattern);
    append_kv(out, prefix + ".alpha_s", model.line(pattern).alpha_s);
    append_kv(out, prefix + ".beta_s_per_byte",
              model.line(pattern).beta_s_per_byte);
  }
  for (const auto& [key, value] : extras)
    append_kv(out, key, std::string_view(value));
  return out;
}

std::optional<TuningProfile> TuningProfile::parse(std::string_view text) {
  // Values stay raw strings until a known key asks for them: unknown keys
  // (a newer library's fields, deployment annotations) must survive the
  // round-trip verbatim instead of being coerced through strtod - the old
  // behavior silently dropped unknown numeric keys and rejected the whole
  // file on any non-numeric value.
  struct RawEntry {
    std::string key;
    std::string value;
    bool consumed = false;
  };
  std::vector<RawEntry> raw;
  while (!text.empty()) {
    const std::size_t newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size()
                                                         : newline + 1);
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) return std::nullopt;
    raw.push_back({std::string(key), std::string(value), false});
  }

  // Duplicate keys keep the old map semantics: the last assignment wins,
  // and every occurrence of a known key is consumed.
  const auto consume_str = [&](std::string_view key)
      -> std::optional<std::string_view> {
    std::optional<std::string_view> found;
    for (RawEntry& entry : raw) {
      if (entry.key != key) continue;
      entry.consumed = true;
      found = std::string_view(entry.value);
    }
    return found;
  };
  bool malformed = false;
  const auto get = [&](std::string_view key) -> std::optional<double> {
    const auto value = consume_str(key);
    if (!value) return std::nullopt;
    char* end = nullptr;
    const std::string owned(*value);
    const double parsed = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) {
      malformed = true;  // known numeric key, non-numeric value
      return std::nullopt;
    }
    return parsed;
  };
  const auto version = get("tune.version");
  if (!version || *version != 1.0) return std::nullopt;

  TuningProfile profile;
  const auto ranks = get("shape.num_ranks");
  const auto per_node = get("shape.ranks_per_node");
  const auto threads = get("shape.threads_per_rank");
  if (!ranks || !per_node || !threads) return std::nullopt;
  profile.shape.num_ranks = static_cast<int>(*ranks);
  profile.shape.ranks_per_node = static_cast<int>(*per_node);
  profile.shape.threads_per_rank = static_cast<int>(*threads);
  if (profile.shape.num_ranks < 1 || profile.shape.ranks_per_node < 1 ||
      profile.shape.threads_per_rank < 1)
    return std::nullopt;
  profile.oversubscription = get("oversubscription").value_or(1.0);
  profile.work_unit_s = get("work_unit_s").value_or(profile.work_unit_s);
  // Absent in pre-tree profiles; 0 keeps the structured paths ineligible.
  profile.tree_radix = static_cast<int>(get("tree_radix").value_or(0.0));
  profile.leader_radix = static_cast<int>(get("leader_radix").value_or(0.0));
  // String-valued known key (absent in pre-substrate profiles = mpisim).
  if (const auto name = consume_str("comm.substrate")) {
    const auto kind = comm::substrate_from_name(*name);
    if (!kind.has_value()) return std::nullopt;
    profile.substrate = *kind;
  }

  for (std::size_t p = 0; p < kNumPatterns; ++p) {
    const auto pattern = static_cast<Pattern>(p);
    const std::string prefix = std::string("pattern.") + pattern_name(pattern);
    const auto alpha = get(prefix + ".alpha_s");
    const auto beta = get(prefix + ".beta_s_per_byte");
    if (!alpha && !beta) continue;
    if (!alpha || !beta) return std::nullopt;
    AlphaBeta& line = profile.model.line(pattern);
    line.alpha_s = *alpha;
    line.beta_s_per_byte = *beta;
    line.valid = true;
  }
  if (malformed) return std::nullopt;
  for (RawEntry& entry : raw)
    if (!entry.consumed)
      profile.extras.emplace_back(std::move(entry.key),
                                  std::move(entry.value));
  return profile;
}

bool TuningProfile::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::optional<TuningProfile> TuningProfile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

TuningProfile capture_profile(const MicrobenchConfig& config) {
  const MicrobenchResult result = run_microbench(config);
  TuningProfile profile;
  profile.shape.num_ranks = config.num_ranks;
  profile.shape.ranks_per_node = config.ranks_per_node;
  profile.shape.threads_per_rank = std::max(1, config.threads_per_rank);
  profile.oversubscription = result.oversubscription;
  profile.work_unit_s = config.work_unit_s;
  profile.tree_radix = result.tree_radix;
  profile.leader_radix = result.leader_radix;
  profile.substrate = config.substrate;
  profile.model = CostModel::fit(result);
  return profile;
}

std::vector<TuningProfile> capture_profiles(
    const MicrobenchConfig& config,
    std::span<const comm::SubstrateKind> substrates) {
  std::vector<TuningProfile> profiles;
  profiles.reserve(substrates.size());
  for (const comm::SubstrateKind kind : substrates) {
    MicrobenchConfig per_substrate = config;
    per_substrate.substrate = kind;
    profiles.push_back(capture_profile(per_substrate));
  }
  return profiles;
}

engine::Aggregation pattern_aggregation(Pattern pattern) {
  switch (pattern) {
    case Pattern::kReduce:
      return engine::Aggregation::kBlocking;
    case Pattern::kIreduce:
      return engine::Aggregation::kIreduce;
    case Pattern::kIbarrierReduce:
    case Pattern::kWindowPreReduce:  // leaders aggregate via Ibarrier+Reduce
    case Pattern::kSparseMerge:      // image merges ride Ibarrier+Reduce too
    case Pattern::kTreeMerge:        // tree interiors overlap the same way
    case Pattern::kTwoLevel:
      return engine::Aggregation::kIbarrierReduce;
    case Pattern::kIbcast:
    case Pattern::kCount:
      break;
  }
  DISTBC_ASSERT_MSG(false, "not an aggregation pattern");
  return engine::Aggregation::kIbarrierReduce;
}

TuneDecision tune_decision(const TuningProfile& profile,
                           const TuneRequest& request) {
  DISTBC_ASSERT(request.frame_words > 0);
  DISTBC_ASSERT(request.target_overhead > 0.0);
  const CostModel& model = profile.model;
  const double margin = std::clamp(1.0 - request.decision_margin, 0.0, 1.0);
  const bool oversubscribed = profile.oversubscription > 1.0;

  // §IV-F + §IV-E selection at a given wire payload. Ibarrier+Reduce is
  // the paper-backed prior and is examined first; a competitor must beat
  // the incumbent by the decision margin to take over. On an
  // oversubscribed substrate the fully blocking variant is ineligible
  // outright: the paper measures it as "again detrimental" once waits
  // cannot hide, and a short microbench race systematically underprices
  // its straggler tail (synthetic samplers are milder than real BFS cost
  // distributions). The payload is a parameter because sparse delta images
  // shrink with the epoch: the same profile prices every representation
  // through its per-byte beta term.
  struct Path {
    Pattern pattern = Pattern::kIbarrierReduce;
    bool hierarchical = false;
    double overhead_s = 0.0;  // aggregation + termination bcast, exposed
  };
  const auto choose_path = [&](std::uint64_t wire_bytes) {
    static constexpr Pattern kFlatOrder[] = {
        Pattern::kIbarrierReduce, Pattern::kIreduce, Pattern::kReduce};
    std::optional<Pattern> best_flat;
    double best_flat_cost = 0.0;
    for (const bool allow_blocking : {!oversubscribed, true}) {
      for (const Pattern pattern : kFlatOrder) {
        if (!model.has(pattern)) continue;
        if (pattern == Pattern::kReduce && !allow_blocking) continue;
        const double cost = model.predict_seconds_bytes(pattern, wire_bytes);
        if (!best_flat || cost < best_flat_cost * margin) {
          best_flat = pattern;
          best_flat_cost = cost;
        }
      }
      if (best_flat) break;  // second pass iff the profile held nothing else
    }
    DISTBC_ASSERT_MSG(best_flat.has_value(),
                      "profile holds no aggregation pattern");
    Path path;
    path.pattern = *best_flat;
    // §IV-E: hierarchical pre-reduction iff nodes hold several ranks and
    // the measured window path clearly beats the best flat reduction.
    if (profile.shape.ranks_per_node > 1 && profile.shape.num_ranks > 1 &&
        model.has(Pattern::kWindowPreReduce) &&
        model.predict_seconds_bytes(Pattern::kWindowPreReduce, wire_bytes) <
            best_flat_cost * margin) {
      path.hierarchical = true;
      path.pattern = Pattern::kWindowPreReduce;
    }
    path.overhead_s =
        model.predict_epoch_overhead_bytes(path.pattern, wire_bytes);
    return path;
  };

  // §IV-D: the smallest epoch whose aggregation overhead stays below the
  // target fraction of its sampling time. Floor at one sample per physical
  // thread so cheap interconnects do not degenerate into single-sample
  // epochs.
  const double sample_s =
      request.sample_seconds > 0.0 ? request.sample_seconds
                                   : profile.work_unit_s;
  const auto total_threads =
      static_cast<double>(profile.shape.num_ranks) *
      static_cast<double>(profile.shape.threads_per_rank);
  const auto n0_for = [&](const Path& path) {
    return std::max(total_threads, path.overhead_s * total_threads /
                                       (request.target_overhead * sample_s));
  };

  const std::uint64_t dense_bytes =
      static_cast<std::uint64_t>(request.frame_words) * sizeof(std::uint64_t);
  Path path = choose_path(dense_bytes);
  double n0_min = n0_for(path);
  std::uint64_t wire_bytes = dense_bytes;
  engine::FrameRep frame_rep = request.base.frame_rep;

  // Frame representation: predict the sparse delta image of one epoch's
  // per-rank contribution (epoch samples x touched words, capped at the
  // dense frame) and re-decide at that payload when it undercuts dense.
  // Smaller payloads shrink the beta term, which shrinks the epoch, which
  // shrinks the payload again - iterate the monotone fixed point. Auto is
  // emitted rather than forced-sparse: per-payload densification means the
  // decision cannot lose when the estimate is off.
  if (request.touched_words_per_sample > 0.0) {
    const double per_rank =
        1.0 / static_cast<double>(std::max(1, profile.shape.num_ranks));
    const auto sparse_bytes_at = [&](double n0) {
      const double pairs =
          std::min(static_cast<double>(request.frame_words),
                   n0 * per_rank * request.touched_words_per_sample);
      const std::size_t words =
          std::min(epoch::dense_image_words(request.frame_words),
                   epoch::sparse_image_words(
                       static_cast<std::size_t>(std::ceil(pairs))));
      return static_cast<std::uint64_t>(words) * sizeof(std::uint64_t);
    };
    // When the microbench fitted a sparse-merge line, the sparse payload
    // is priced on it: the root of a merge reduction pays an image merge,
    // not the dense elementwise combine the flat lines measured. Without
    // one, fall back to pricing the flat lines at the smaller payload.
    // The structured merge paths compete here too: the flat sparse merge
    // is the incumbent, and the radix-tree or two-level line must beat
    // the running best by the decision margin to take over - each was
    // fitted at the radix the profile records, which is what the winner
    // emits.
    const bool merge_line = model.has(Pattern::kSparseMerge);
    const auto sparse_path_at = [&](std::uint64_t bytes) {
      if (!merge_line) return choose_path(bytes);
      Path sparse_path;
      sparse_path.pattern = Pattern::kSparseMerge;
      sparse_path.overhead_s =
          model.predict_epoch_overhead_bytes(Pattern::kSparseMerge, bytes);
      if (model.has(Pattern::kTreeMerge) && profile.tree_radix >= 2 &&
          model.predict_epoch_overhead_bytes(Pattern::kTreeMerge, bytes) <
              sparse_path.overhead_s * margin) {
        sparse_path.pattern = Pattern::kTreeMerge;
        sparse_path.overhead_s =
            model.predict_epoch_overhead_bytes(Pattern::kTreeMerge, bytes);
      }
      if (profile.shape.ranks_per_node > 1 &&
          model.has(Pattern::kTwoLevel) && profile.leader_radix >= 2 &&
          model.predict_epoch_overhead_bytes(Pattern::kTwoLevel, bytes) <
              sparse_path.overhead_s * margin) {
        sparse_path.pattern = Pattern::kTwoLevel;
        sparse_path.hierarchical = true;
        sparse_path.overhead_s =
            model.predict_epoch_overhead_bytes(Pattern::kTwoLevel, bytes);
      }
      return sparse_path;
    };
    std::uint64_t candidate = sparse_bytes_at(n0_min);
    if (candidate < dense_bytes) {
      // Chase the fixed point payload -> strategy/overhead -> epoch ->
      // payload until the predicted image size stabilizes (capped; the
      // map is monotone, so it settles in a few rounds).
      for (int iteration = 0; iteration < 8; ++iteration) {
        const std::uint64_t next =
            sparse_bytes_at(n0_for(sparse_path_at(candidate)));
        if (next == candidate) break;
        candidate = next;
      }
      // With a merge line the final call is time-based - a byte win is
      // not a win if the root-side merge alpha eats it; otherwise the
      // smaller payload decides.
      const bool sparse_wins =
          candidate < dense_bytes &&
          (!merge_line ||
           sparse_path_at(candidate).overhead_s <= path.overhead_s);
      if (sparse_wins) {
        // Final pricing at the accepted payload, so the emitted strategy,
        // epoch sizing, and telemetry all refer to the same wire bytes.
        frame_rep = engine::FrameRep::kAuto;
        wire_bytes = candidate;
        path = sparse_path_at(wire_bytes);
        n0_min = n0_for(path);
      } else {
        frame_rep = engine::FrameRep::kDense;
      }
    } else {
      frame_rep = engine::FrameRep::kDense;
    }
  }

  engine::EngineOptions options = request.base;
  options.threads_per_rank = profile.shape.threads_per_rank;
  options.aggregation = pattern_aggregation(path.pattern);
  options.hierarchical = path.hierarchical;
  options.frame_rep = frame_rep;
  // When the microbench priced a structured merge line, the tuner owns
  // that radix knob: the winning pattern gets the radix its line was
  // fitted at, a losing one is switched off rather than left to whatever
  // the base options carried.
  if (model.has(Pattern::kTreeMerge))
    options.tree_radix =
        path.pattern == Pattern::kTreeMerge ? profile.tree_radix : 0;
  if (model.has(Pattern::kTwoLevel))
    options.leader_radix =
        path.pattern == Pattern::kTwoLevel ? profile.leader_radix : 0;
  const double streams =
      options.deterministic && options.virtual_streams != 0
          ? static_cast<double>(options.virtual_streams)
          : total_threads;
  options.epoch_base = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(n0_min / std::pow(streams, options.epoch_exponent))));
  // Cap runaway epochs at a small multiple of the sized epoch; adaptive
  // drivers still clamp tighter against their own sample budgets.
  const auto n0_cap = static_cast<std::uint64_t>(
      std::ceil(std::max(1.0, 4.0 * n0_min)));
  options.max_epoch_length = options.max_epoch_length == 0
                                 ? n0_cap
                                 : std::min(options.max_epoch_length, n0_cap);

  TuneDecision decision;
  decision.pattern = path.pattern;
  decision.frame_rep = frame_rep;
  decision.predicted_overhead_s = path.overhead_s;
  decision.predicted_wire_bytes = wire_bytes;
  decision.options = options;
  decision.predicted_epoch_s =
      n0_min * sample_s / total_threads + path.overhead_s;
  return decision;
}

engine::EngineOptions tuned_options(const TuningProfile& profile,
                                    const TuneRequest& request) {
  return tune_decision(profile, request).options;
}

}  // namespace distbc::tune
