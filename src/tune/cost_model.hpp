// Alpha-beta communication cost model fitted from microbench samples
// (tune/ layer 2).
//
// Classic LogP-style reduction: the exposed cost of a collective pattern at
// message size b is modeled as alpha + b * beta, with alpha the per-call
// latency term (hops, synchronization, progression tax) and beta the
// per-byte term (inverse effective bandwidth). One line is fitted per
// pattern by least squares over the microbench's message-size sweep; the
// tuner then compares predicted per-epoch aggregation costs at the actual
// frame size of a workload - including sizes the microbench never ran.
#pragma once

#include <array>
#include <cstdint>

#include "tune/microbench.hpp"

namespace distbc::tune {

/// One fitted pattern: exposed_seconds(bytes) ~= alpha_s + bytes * beta.
struct AlphaBeta {
  double alpha_s = 0.0;
  double beta_s_per_byte = 0.0;
  bool valid = false;

  [[nodiscard]] double predict(std::uint64_t bytes) const {
    return alpha_s + static_cast<double>(bytes) * beta_s_per_byte;
  }
};

/// Least-squares fit of (bytes, seconds) points; both coefficients are
/// clamped non-negative (a measured cost cannot be). Exposed for tests.
[[nodiscard]] AlphaBeta fit_alpha_beta(const double* bytes,
                                       const double* seconds,
                                       std::size_t count);

class CostModel {
 public:
  CostModel() = default;

  /// Fits one alpha-beta line per pattern from the microbench's exposed
  /// times. Patterns without samples stay invalid.
  [[nodiscard]] static CostModel fit(const MicrobenchResult& result);

  [[nodiscard]] bool has(Pattern pattern) const {
    return line(pattern).valid;
  }
  [[nodiscard]] const AlphaBeta& line(Pattern pattern) const {
    return patterns_[static_cast<std::size_t>(pattern)];
  }
  AlphaBeta& line(Pattern pattern) {
    return patterns_[static_cast<std::size_t>(pattern)];
  }

  /// Predicted exposed seconds of one aggregation via `pattern` moving
  /// `wire_bytes` of payload. The beta term is per-byte, so the same
  /// fitted line prices any frame representation - dense flat frames and
  /// sparse delta images alike - which is what gives the tuner a real
  /// message-size axis for the frame_rep decision.
  [[nodiscard]] double predict_seconds_bytes(Pattern pattern,
                                             std::uint64_t wire_bytes) const;

  /// Predicted exposed seconds of one full epoch's communication at
  /// `wire_bytes` of aggregation payload. With decentralized termination
  /// this is the aggregation itself - the pattern's fitted line already
  /// includes its own downward distribution; there is no separate verdict
  /// broadcast.
  [[nodiscard]] double predict_epoch_overhead_bytes(
      Pattern pattern, std::uint64_t wire_bytes) const;

  /// Convenience overloads at the dense frame size (frame_words uint64s).
  [[nodiscard]] double predict_seconds(Pattern pattern,
                                       std::size_t frame_words) const;
  [[nodiscard]] double predict_epoch_overhead(Pattern pattern,
                                              std::size_t frame_words) const;

 private:
  std::array<AlphaBeta, kNumPatterns> patterns_{};
};

}  // namespace distbc::tune
