// CommBench-style collective microbenchmark over mpisim (tune/ layer 1).
//
// The engine's per-epoch aggregation uses a handful of communication
// patterns (paper §IV-E/F): a blocking Reduce, a poorly-progressing
// Ireduce, the Ibarrier + blocking Reduce combination, the termination
// Ibcast (the distribution primitive of the rooted paths), the
// hierarchical RMA-window pre-reduction, and the structured
// merge paths (radix-tree merge, and the two-level composition of node
// pre-reduction with a leader-level radix tree). Which of them is
// fastest depends on the cluster shape - rank count, ranks per node,
// sampling threads per rank, and how oversubscribed the substrate is -
// which the paper establishes by hand ablation. This microbenchmark
// measures each pattern on the actual substrate instead, CommBench-style:
// warmup rounds, measurement rounds, medians per message size.
//
// Measurement emulates the engine's epoch loop rather than timing bare
// collectives, because on a timeshared substrate the §IV-F effect is not
// visible in the wall time of one call: it lives in what the CPUs *produce*
// while communication is pending. Each round is a mini-epoch: every rank
// retires a quota of CPU-time work units (one rotating straggler per epoch
// models sampling imbalance), then aggregates via the pattern, polling
// non-blocking operations with further work units exactly as the engine's
// overlap sampling does. Overlap units are credited against the next
// epoch's quota - they are real samples that advance termination. The
// metric is the per-epoch wall time in excess of a communication-free
// baseline epoch: a blocking Reduce burns the stragglers' wait, an
// Ireduce's polls pay the progression tax, Ibarrier + Reduce converts the
// wait into credited work.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "comm/substrate.hpp"

namespace distbc::tune {

/// The aggregation-path patterns the engine can be configured to use.
enum class Pattern : std::uint8_t {
  kReduce,           // §IV-F fully blocking reduction
  kIreduce,          // §IV-F plain non-blocking reduction (polled)
  kIbarrierReduce,   // §IV-F Ibarrier (polled) + blocking Reduce
  kIbcast,           // polled Ibcast latency probe (distribution primitive)
  kWindowPreReduce,  // §IV-E RMA-window pre-reduction + leader Ibarrier+Reduce
  kSparseMerge,      // sparse-image merge reduction (SparseFrame delta wire)
  kTreeMerge,        // radix-tree merge reduction over sparse images
  kTwoLevel,         // two-level: window pre-reduce + leader radix tree
  kCount
};

inline constexpr std::size_t kNumPatterns =
    static_cast<std::size_t>(Pattern::kCount);

[[nodiscard]] const char* pattern_name(Pattern pattern);
[[nodiscard]] std::optional<Pattern> pattern_from_name(std::string_view name);

/// One (pattern, message size) measurement on one cluster shape.
struct PatternSample {
  Pattern pattern = Pattern::kReduce;
  std::size_t message_words = 0;  // uint64 words per contribution
  double overhead_s = 0.0;  // per-epoch wall time above the baseline epoch
  double epoch_s = 0.0;     // per-epoch wall time with this pattern
  double modeled_s = 0.0;   // the interconnect model's analytic charge
  /// The tree / leader radix the sample ran at (kTreeMerge and kTwoLevel
  /// arms only; 0 for the flat patterns).
  int radix = 0;
};

struct MicrobenchConfig {
  int num_ranks = 4;
  int ranks_per_node = 1;
  /// Sampling threads the engine would co-schedule per rank. The microbench
  /// does not spawn them; they enter the oversubscription factor, which
  /// scales the per-epoch work quota the same way §IV-D epochs grow with
  /// the machine.
  int threads_per_rank = 1;
  /// Physical cores assumed for the oversubscription factor
  /// (0 = std::thread::hardware_concurrency()).
  int assumed_cores = 0;
  /// Payload sizes to sweep per pattern, in uint64 words. The small end
  /// anchors the alpha-beta line in the sparse-delta-image regime (a short
  /// epoch's image is tens of pairs), the large end in the dense-frame
  /// regime; the fitted per-byte beta then prices both representations.
  /// The sparse-merge arm targets the same sizes with real delta images
  /// (epoch::SparseFrame on the reduce_merge path), so its fitted alpha
  /// separately prices the root-side image merge instead of assuming a
  /// dense elementwise combine.
  std::vector<std::size_t> message_words = {64, 256, 4096, 32768};
  /// Epochs the engine race runs per (pattern, size); the per-epoch cost
  /// is the run's average, so the first-epoch transient is amortized over
  /// this count rather than excluded.
  int measure_rounds = 9;
  /// Cold-start rounds excluded from the directly-timed Ibcast loop (the
  /// engine race above has no separate warmup phase).
  int warmup_rounds = 2;
  /// Independent repetitions of each measurement; the median is kept
  /// (scheduler noise on a timeshared simulation host is substantial).
  int repeats = 3;
  /// CPU time of one work unit, the microbench's stand-in for one sample.
  double work_unit_s = 20e-6;
  /// Per-epoch work quota in units per rank, per unit of oversubscription
  /// (epochs grow as the shape outgrows the substrate, §IV-D).
  int epoch_units = 4;
  /// Rotating straggler: one rank per epoch retires (1 + imbalance) times
  /// the quota, modeling per-epoch sampling imbalance.
  double imbalance = 1.0;
  /// Radixes the kTreeMerge / kTwoLevel arms sweep; the radix with the
  /// lowest total overhead across the message-size sweep is kept (its
  /// samples feed the fitted line) and recorded in the result. Values
  /// below 2 are ignored.
  std::vector<int> tree_radixes = {2, 4};
  /// Base link economics; the substrate profile layers on top (the same
  /// composition api::Session applies), so the arms race under the
  /// backend's actual latency/bandwidth/launch charges.
  comm::NetworkModel network{};
  /// The comm backend the arms run on. Pattern rankings shift with the
  /// substrate (ncclsim's device-side progress erases the §IV-F Ireduce
  /// penalty; its launch latency taxes chatty patterns), so profiles are
  /// captured per substrate.
  comm::SubstrateKind substrate = comm::SubstrateKind::kMpisim;
};

struct MicrobenchResult {
  MicrobenchConfig config;
  /// ranks * threads / cores, floored at 1: how heavily the shape
  /// timeshares its substrate.
  double oversubscription = 1.0;
  /// Per-epoch wall time of the communication-free baseline epoch.
  double baseline_epoch_s = 0.0;
  /// The winning radix of the kTreeMerge sweep (0 when the arm did not
  /// run: fewer than three ranks leaves a radix tree with no interior).
  int tree_radix = 0;
  /// The winning radix of the kTwoLevel leader-tree sweep (0 when the arm
  /// did not run: single-rank nodes have nothing to pre-reduce).
  int leader_radix = 0;
  std::vector<PatternSample> samples;

  /// Samples of one pattern, ordered by message size.
  [[nodiscard]] std::vector<PatternSample> of(Pattern pattern) const;
};

/// Runs the full pattern x message-size sweep on a fresh simulated cluster
/// of the configured shape.
[[nodiscard]] MicrobenchResult run_microbench(const MicrobenchConfig& config);

/// The oversubscription factor run_microbench would record for `config`.
[[nodiscard]] double oversubscription_factor(const MicrobenchConfig& config);

}  // namespace distbc::tune
