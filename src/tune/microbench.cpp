#include "tune/microbench.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <thread>
#include <vector>

#include "comm/substrate.hpp"
#include "engine/engine.hpp"
#include "epoch/sparse_frame.hpp"
#include "mpisim/runtime.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace distbc::tune {

const char* pattern_name(Pattern pattern) {
  switch (pattern) {
    case Pattern::kReduce:
      return "reduce";
    case Pattern::kIreduce:
      return "ireduce";
    case Pattern::kIbarrierReduce:
      return "ibarrier_reduce";
    case Pattern::kIbcast:
      return "ibcast";
    case Pattern::kWindowPreReduce:
      return "window_pre_reduce";
    case Pattern::kSparseMerge:
      return "sparse_merge";
    case Pattern::kTreeMerge:
      return "tree_merge";
    case Pattern::kTwoLevel:
      return "two_level";
    case Pattern::kCount:
      break;
  }
  return "?";
}

std::optional<Pattern> pattern_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumPatterns; ++i) {
    const auto pattern = static_cast<Pattern>(i);
    if (name == pattern_name(pattern)) return pattern;
  }
  return std::nullopt;
}

std::vector<PatternSample> MicrobenchResult::of(Pattern pattern) const {
  std::vector<PatternSample> matching;
  for (const PatternSample& sample : samples)
    if (sample.pattern == pattern) matching.push_back(sample);
  std::sort(matching.begin(), matching.end(),
            [](const PatternSample& a, const PatternSample& b) {
              return a.message_words < b.message_words;
            });
  return matching;
}

double oversubscription_factor(const MicrobenchConfig& config) {
  int cores = config.assumed_cores;
  if (cores <= 0)
    cores = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const double demand =
      static_cast<double>(config.num_ranks) *
      static_cast<double>(std::max(1, config.threads_per_rank));
  return std::max(1.0, demand / static_cast<double>(cores));
}

namespace {

/// CPU time of the calling thread. Work units are defined in CPU time, not
/// wall time: on a timeshared substrate a wall-clock spin would count
/// descheduled time as work and hide exactly the §IV-F effects the
/// microbench exists to measure.
double thread_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Burns `seconds` of CPU, then yields so timeshared peers progress.
void spin_for(double seconds) {
  const double until = thread_cpu_s() + seconds;
  while (thread_cpu_s() < until) {
  }
  std::this_thread::yield();
}

/// The synthetic epoch frame: `words` uint64 slots so the aggregation
/// payload has exactly the size under test; slot 0 carries the number of
/// samples taken. Merging is a full elementwise sum, like real frames.
class UnitFrame {
 public:
  explicit UnitFrame(std::size_t words) : data_(std::max<std::size_t>(1, words), 0) {}

  void clear() { std::fill(data_.begin(), data_.end(), 0); }
  void merge(const UnitFrame& other) {
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }
  [[nodiscard]] std::span<std::uint64_t> raw() { return data_; }
  [[nodiscard]] std::uint64_t units() const { return data_[0]; }
  void add_unit() { ++data_[0]; }

 private:
  std::vector<std::uint64_t> data_;
};

/// Deterministic per-sample CPU cost with the imbalance spread - shared by
/// both samplers so epochs end with the straggler skew that real
/// variable-cost samplers (BFS on a power-law graph) produce - the skew
/// §IV-F overlap exists to hide.
class SpinCost {
 public:
  SpinCost(std::uint64_t stream, double unit_s, double imbalance)
      : state_(static_cast<std::uint32_t>(stream * 2654435761u + 1u)),
        unit_s_(unit_s),
        spread_(std::clamp(imbalance, 0.0, 1.0)) {}

  /// Burns around unit_s of CPU (deterministic per-call factor).
  void burn() {
    state_ = state_ * 1664525u + 1013904223u;
    const double uniform =
        static_cast<double>(state_ >> 8) / static_cast<double>(1u << 24);
    const double factor = 1.0 - spread_ + 2.0 * spread_ * uniform;
    spin_for(unit_s_ * std::max(0.05, factor));
  }

 private:
  std::uint32_t state_;
  double unit_s_;
  double spread_;
};

/// The synthetic sampler of the dense arms: one work unit per sample.
class UnitSampler {
 public:
  UnitSampler(std::uint64_t stream, double unit_s, double imbalance)
      : cost_(stream, unit_s, imbalance) {}

  void sample(UnitFrame& frame) {
    cost_.burn();
    frame.add_unit();
  }

 private:
  SpinCost cost_;
};

/// The sparse-arm sampler: one work unit, then a record touching `spread`
/// rotating vertices, so one epoch's per-rank delta image grows to roughly
/// the message size under test - the merge-reduction analogue of
/// UnitFrame's dense payload, with the root paying a real image merge.
class SparseUnitSampler {
 public:
  SparseUnitSampler(std::uint64_t stream, double unit_s, double imbalance,
                    std::uint64_t spread, std::uint64_t vertices)
      : cost_(stream, unit_s, imbalance),
        cursor_(stream * 2654435761u),
        spread_(spread),
        vertices_(vertices) {}

  void sample(epoch::SparseFrame& frame) {
    cost_.burn();
    touched_.clear();
    for (std::uint64_t i = 0; i < spread_; ++i)
      touched_.push_back(static_cast<std::uint32_t>(cursor_++ % vertices_));
    frame.record(touched_);
  }

 private:
  SpinCost cost_;
  std::uint64_t cursor_;
  std::uint64_t spread_;
  std::uint64_t vertices_;
  std::vector<std::uint32_t> touched_;
};

engine::Aggregation pattern_strategy(Pattern pattern) {
  switch (pattern) {
    case Pattern::kReduce:
      return engine::Aggregation::kBlocking;
    case Pattern::kIreduce:
      return engine::Aggregation::kIreduce;
    default:
      return engine::Aggregation::kIbarrierReduce;
  }
}

}  // namespace

MicrobenchResult run_microbench(const MicrobenchConfig& config) {
  DISTBC_ASSERT(config.num_ranks >= 1);
  DISTBC_ASSERT(config.measure_rounds >= 1);
  DISTBC_ASSERT(config.epoch_units >= 1);
  DISTBC_ASSERT(!config.message_words.empty());
  MicrobenchResult result;
  result.config = config;
  result.oversubscription = oversubscription_factor(config);
  // The arms race under the backend's effective link economics (identity
  // for mpisim); the baseline control stays on the disabled model.
  const comm::NetworkModel arm_network =
      comm::network_model_for(config.substrate, config.network);

  const int threads = std::max(1, config.threads_per_rank);
  const auto total_threads =
      static_cast<std::uint64_t>(config.num_ranks) * threads;
  // Per-epoch sample count, grown with oversubscription the way §IV-D
  // epochs grow with the machine.
  const auto n0_total = static_cast<std::uint64_t>(
      std::max(1.0, static_cast<double>(config.epoch_units) *
                        result.oversubscription) *
      static_cast<double>(total_threads));
  const std::uint64_t target_units =
      n0_total * static_cast<std::uint64_t>(config.measure_rounds);

  // One measurement = the real engine loop (engine::run_epochs) racing the
  // synthetic workload to `target_units` useful samples under the given
  // aggregation path. Everything the strategies trade on is in play:
  // overlap samples advance the target, non-blocking polls pay the
  // progression tax, blocking waits produce nothing.
  struct Measurement {
    double wall_s = 0.0;
    std::uint64_t epochs = 0;
    std::uint64_t attempted = 0;
    double modeled_s = 0.0;  // the interconnect model's analytic charge
  };
  const auto measure = [&](std::optional<Pattern> pattern, std::size_t words,
                           const mpisim::NetworkModel& network, int radix = 0) {
    engine::EngineOptions engine_options;
    engine_options.threads_per_rank = threads;
    engine_options.epoch_base = n0_total;
    engine_options.epoch_exponent = 0.0;  // n0 fixed at epoch_base
    const bool sparse =
        pattern && (*pattern == Pattern::kSparseMerge ||
                    *pattern == Pattern::kTreeMerge ||
                    *pattern == Pattern::kTwoLevel);
    if (pattern) {
      engine_options.aggregation = pattern_strategy(*pattern);
      engine_options.hierarchical = *pattern == Pattern::kWindowPreReduce ||
                                    *pattern == Pattern::kTwoLevel;
      if (*pattern == Pattern::kTreeMerge) engine_options.tree_radix = radix;
      if (*pattern == Pattern::kTwoLevel) engine_options.leader_radix = radix;
    }
    if (sparse) engine_options.frame_rep = engine::FrameRep::kSparse;

    mpisim::RuntimeConfig runtime_config;
    runtime_config.num_ranks = config.num_ranks;
    runtime_config.ranks_per_node = config.ranks_per_node;
    runtime_config.network = network;
    mpisim::Runtime runtime(runtime_config);

    Measurement measurement;
    runtime.run([&](auto& rank_comm) {
      const auto world = comm::make_substrate(config.substrate, rank_comm);
      const auto record = [&](const auto& engine_result) {
        if (world->rank() != 0) return;
        measurement.wall_s = engine_result.total_seconds;
        measurement.epochs = engine_result.epochs;
        measurement.attempted = engine_result.samples_attempted;
        measurement.modeled_s = world->modeled_collective_seconds(
            words * sizeof(std::uint64_t));
      };
      if (sparse) {
        // One epoch's per-rank delta image should fill roughly the
        // message size under test (2 words per touched vertex).
        const auto per_rank = std::max<std::uint64_t>(
            1, n0_total / static_cast<std::uint64_t>(config.num_ranks));
        const auto spread = std::max<std::uint64_t>(1, words / (2 * per_rank));
        record(engine::run_epochs(
            world.get(), epoch::SparseFrame(static_cast<std::uint32_t>(words)),
            [&](std::uint64_t stream) {
              return SparseUnitSampler(stream, config.work_unit_s,
                                       config.imbalance, spread, words);
            },
            [&](const epoch::SparseFrame& aggregate) {
              return aggregate.tau() >= target_units;
            },
            engine_options));
      } else {
        record(engine::run_epochs(
            world.get(), UnitFrame(words),
            [&](std::uint64_t stream) {
              return UnitSampler(stream, config.work_unit_s,
                                 config.imbalance);
            },
            [&](const UnitFrame& aggregate) {
              return aggregate.units() >= target_units;
            },
            engine_options));
      }
    });
    return measurement;
  };

  const int repeats = std::max(1, config.repeats);
  const auto median = [](std::vector<double> values) {
    DISTBC_ASSERT(!values.empty());
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };

  // Baseline control: the same engine run over a zero-cost interconnect.
  // Its useful-sample throughput prices the substrate (scheduler, epoch
  // manager, frame merges included); a pattern's overhead is then the wall
  // time its run cost beyond what the substrate needs for the same number
  // of samples, normalized per epoch.
  std::vector<double> baseline_epoch;
  std::vector<double> baseline_rate;
  for (int r = 0; r < repeats; ++r) {
    const Measurement baseline =
        measure(std::nullopt, config.message_words[0],
                mpisim::NetworkModel::disabled());
    if (baseline.epochs == 0 || baseline.wall_s <= 0.0) continue;
    baseline_epoch.push_back(baseline.wall_s /
                             static_cast<double>(baseline.epochs));
    baseline_rate.push_back(static_cast<double>(baseline.attempted) /
                            baseline.wall_s);
  }
  DISTBC_ASSERT_MSG(!baseline_rate.empty(), "baseline measurement failed");
  result.baseline_epoch_s = median(baseline_epoch);
  const double unit_throughput = median(baseline_rate);

  // One (pattern, radix) arm across the message-size sweep; returns the
  // per-size median samples (empty when every repeat failed to measure).
  const auto sweep_arm = [&](Pattern pattern, int radix) {
    std::vector<PatternSample> arm;
    for (const std::size_t words : config.message_words) {
      PatternSample sample;
      sample.pattern = pattern;
      sample.message_words = words;
      sample.radix = radix;
      std::vector<double> epoch_estimates;
      std::vector<double> overhead_estimates;
      for (int r = 0; r < repeats; ++r) {
        const Measurement measured =
            measure(pattern, words, arm_network, radix);
        if (measured.epochs == 0 || unit_throughput <= 0.0) continue;
        epoch_estimates.push_back(measured.wall_s /
                                  static_cast<double>(measured.epochs));
        const double paid_s =
            static_cast<double>(measured.attempted) / unit_throughput;
        overhead_estimates.push_back(
            std::max(0.0, (measured.wall_s - paid_s) /
                              static_cast<double>(measured.epochs)));
        sample.modeled_s = measured.modeled_s;
      }
      if (overhead_estimates.empty()) continue;
      sample.epoch_s = median(epoch_estimates);
      sample.overhead_s = median(overhead_estimates);
      arm.push_back(sample);
    }
    return arm;
  };

  for (std::size_t p = 0; p < kNumPatterns; ++p) {
    const auto pattern = static_cast<Pattern>(p);
    if (pattern == Pattern::kIbcast)
      continue;  // measured separately below: it is not an aggregation path
    // A radix tree over two ranks has no interior to overlap; single-rank
    // nodes have nothing to pre-reduce. Skip the arms a shape cannot use.
    if (pattern == Pattern::kTreeMerge && config.num_ranks < 3) continue;
    if (pattern == Pattern::kTwoLevel && config.ranks_per_node < 2) continue;

    if (pattern == Pattern::kTreeMerge || pattern == Pattern::kTwoLevel) {
      // Radix sweep: the radix with the lowest total overhead over the
      // size sweep wins; only its samples feed the fitted line, so the
      // profile's alpha-beta prices the tree shape it also records.
      std::vector<PatternSample> best;
      double best_total = 0.0;
      for (const int radix : config.tree_radixes) {
        if (radix < 2) continue;
        std::vector<PatternSample> arm = sweep_arm(pattern, radix);
        if (arm.empty()) continue;
        double total = 0.0;
        for (const PatternSample& sample : arm) total += sample.overhead_s;
        if (best.empty() || total < best_total) {
          best = std::move(arm);
          best_total = total;
        }
      }
      if (best.empty()) continue;
      (pattern == Pattern::kTreeMerge ? result.tree_radix
                                      : result.leader_radix) =
          best.front().radix;
      result.samples.insert(result.samples.end(), best.begin(), best.end());
    } else {
      const std::vector<PatternSample> arm = sweep_arm(pattern, 0);
      result.samples.insert(result.samples.end(), arm.begin(), arm.end());
    }
  }

  // The termination Ibcast: a plain polled-collective loop (one byte; the
  // cost is all latency and identical under every aggregation strategy).
  {
    mpisim::RuntimeConfig runtime_config;
    runtime_config.num_ranks = config.num_ranks;
    runtime_config.ranks_per_node = config.ranks_per_node;
    runtime_config.network = arm_network;
    mpisim::Runtime runtime(runtime_config);
    PatternSample sample;
    sample.pattern = Pattern::kIbcast;
    sample.message_words = 1;
    const int rounds = config.warmup_rounds + config.measure_rounds;
    double overhead = 0.0;
    runtime.run([&](auto& rank_comm) {
      const auto world = comm::make_substrate(config.substrate, rank_comm);
      std::uint64_t units = 0;
      world->barrier();
      WallTimer timer;
      for (int round = 0; round < rounds; ++round) {
        if (round == config.warmup_rounds) {
          world->barrier();  // cold-start rounds are excluded from the timing
          timer.restart();
          units = 0;
        }
        std::uint8_t flag = 0;
        comm::Request bcast = world->ibcast(std::span{&flag, 1}, 0);
        while (!bcast.test()) {
          spin_for(config.work_unit_s);
          ++units;
        }
      }
      world->barrier();
      const double wall = timer.elapsed_s();
      std::uint64_t total_units = 0;
      world->reduce(std::span<const std::uint64_t>(&units, 1),
                    std::span{&total_units, 1}, 0);
      if (world->rank() == 0 && unit_throughput > 0.0) {
        const double paid_s =
            static_cast<double>(total_units) / unit_throughput;
        overhead = std::max(0.0, (wall - paid_s) / config.measure_rounds);
        sample.modeled_s = world->modeled_collective_seconds(1);
      }
    });
    sample.overhead_s = overhead;
    sample.epoch_s = overhead;
    result.samples.push_back(sample);
  }
  return result;
}

}  // namespace distbc::tune
