// The decision layer of the autotuner (tune/ layer 3).
//
// A TuningProfile bundles what one microbench run learned about a cluster
// shape: the fitted alpha-beta cost line per aggregation pattern, the
// oversubscription factor, and the work-unit calibration. Profiles
// round-trip through a plain "key = value" text format so a tuning run can
// be captured once (examples/autotune.cpp) and reloaded by every workload
// on that cluster.
//
// tune_decision() turns a profile plus a workload's frame size and
// per-sample cost into the knobs the paper hand-ablates, plus one it
// could not: the frame representation.
//   * aggregation strategy (§IV-F): the pattern with the cheapest predicted
//     exposed cost at the actual wire payload - flat merge, radix-tree
//     merge, and the two-level (node pre-reduce + leader tree) path all
//     compete on their own fitted lines at sparse payloads;
//   * hierarchical pre-reduction (§IV-E): on iff the measured window path
//     beats the best flat reduction (and nodes hold more than one rank);
//   * epoch length (§IV-D): the smallest epoch whose predicted aggregation
//     overhead stays below a target fraction of the epoch's sampling time;
//   * frame representation: with a per-sample touch estimate, the tuner
//     predicts the sparse delta image of an epoch and, when it undercuts
//     the dense frame, re-decides strategy and epoch length at the sparse
//     payload (the per-byte beta makes both meaningful at any size) and
//     emits frame_rep = auto. Shorter epochs shrink the payload further,
//     so the sizing iterates to a fixed point - this is what lets short
//     epochs, huge V, and fine-grained stop checks coexist.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "comm/substrate.hpp"
#include "engine/engine.hpp"
#include "support/timer.hpp"
#include "tune/cost_model.hpp"

namespace distbc::tune {

struct ClusterShape {
  int num_ranks = 1;
  int ranks_per_node = 1;
  int threads_per_rank = 1;

  [[nodiscard]] bool operator==(const ClusterShape&) const = default;
};

struct TuningProfile {
  ClusterShape shape;
  double oversubscription = 1.0;
  /// Duration of the microbench's stand-in sample; the fallback per-sample
  /// cost when a workload does not supply its own measurement.
  double work_unit_s = 20e-6;
  /// Winning radix of the microbench's kTreeMerge sweep - the radix the
  /// fitted tree_merge line was measured at, and the one tune_decision
  /// emits when that line wins. 0 when the arm did not run on this shape.
  int tree_radix = 0;
  /// Winning radix of the kTwoLevel leader-tree sweep (same contract).
  int leader_radix = 0;
  /// The comm substrate the microbench arms ran on: a profile prices one
  /// backend's link economics and is only valid for sessions on it.
  comm::SubstrateKind substrate = comm::SubstrateKind::kMpisim;
  CostModel model;
  /// Keys this parser did not recognize, preserved verbatim (in input
  /// order) and re-emitted by serialize() - a profile written by a newer
  /// library round-trips through an older one without losing fields.
  std::vector<std::pair<std::string, std::string>> extras;

  /// Serializes to the "key = value" profile text format (one line per
  /// field, '#' comments allowed on parse).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<TuningProfile> parse(
      std::string_view text);

  /// File round-trip; save returns false (load nullopt) on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<TuningProfile> load(
      const std::string& path);
};

/// Runs the microbench for the configured shape and fits the profile -
/// the one-call capture path. The profile records config.substrate.
[[nodiscard]] TuningProfile capture_profile(const MicrobenchConfig& config);

/// Captures one profile per substrate on the same cluster shape: the full
/// CommBench arm sweep re-runs under each backend's link economics
/// (config.substrate is overridden per capture). Pattern rankings shift
/// across backends, so a multi-substrate deployment needs one profile
/// each.
[[nodiscard]] std::vector<TuningProfile> capture_profiles(
    const MicrobenchConfig& config,
    std::span<const comm::SubstrateKind> substrates);

struct TuneRequest {
  /// Flat uint64 words of the workload's epoch frame (the aggregation
  /// payload).
  std::size_t frame_words = 1;
  /// Measured seconds per sample of this workload; 0 falls back to the
  /// profile's work-unit calibration.
  double sample_seconds = 0.0;
  /// Average dense frame words one sample writes (e.g. internal path
  /// vertices + tau for betweenness, measured on calibration). Feeds the
  /// frame_rep decision: predicted sparse payload = epoch samples x this,
  /// capped at the dense frame. 0 = unknown; frame_rep keeps base's value.
  double touched_words_per_sample = 0.0;
  /// Epoch sizing target: predicted aggregation overhead per epoch stays
  /// below this fraction of the epoch's sampling time.
  double target_overhead = 0.1;
  /// Decision margin: Ibarrier+Reduce is the paper-backed prior, so a
  /// competing flat strategy (or the hierarchical path over the best flat
  /// one) must be predicted cheaper by this fraction to override it.
  /// Microbench medians on near-parity shapes carry ~20% spread; §IV-F
  /// carries evidence, so only a decisive measurement overrides it.
  double decision_margin = 0.3;
  /// Starting options; tuning preserves fields it does not decide
  /// (determinism, epoch exponent, max_epochs, ...).
  engine::EngineOptions base{};
};

struct TuneDecision {
  engine::EngineOptions options{};
  /// The pattern the decision is based on (kWindowPreReduce when the
  /// hierarchical path won).
  Pattern pattern = Pattern::kIbarrierReduce;
  /// The representation the decision priced (mirrors options.frame_rep).
  engine::FrameRep frame_rep = engine::FrameRep::kDense;
  double predicted_overhead_s = 0.0;  // exposed comm seconds per epoch
  double predicted_epoch_s = 0.0;     // sampling + exposed comm per epoch
  /// Predicted per-epoch aggregation payload at the chosen representation.
  std::uint64_t predicted_wire_bytes = 0;
};

/// The full decision, with the predictions that justify it.
[[nodiscard]] TuneDecision tune_decision(const TuningProfile& profile,
                                         const TuneRequest& request);

/// Convenience: just the tuned engine options.
[[nodiscard]] engine::EngineOptions tuned_options(const TuningProfile& profile,
                                                  const TuneRequest& request);

/// The engine Aggregation a flat pattern maps to.
[[nodiscard]] engine::Aggregation pattern_aggregation(Pattern pattern);

/// Quick per-sample cost probe for workloads without a calibration phase:
/// times `probes` samples of a throwaway stream-0 sampler into a scratch
/// frame. The probe sampler is independent of the run's samplers, so the
/// run's RNG streams are untouched.
template <typename Frame, typename MakeSampler>
[[nodiscard]] double measure_sample_seconds(const Frame& prototype,
                                            MakeSampler&& make_sampler,
                                            int probes = 16) {
  Frame scratch(prototype);
  scratch.clear();
  auto sampler = make_sampler(std::uint64_t{0});
  WallTimer timer;
  for (int i = 0; i < probes; ++i) sampler.sample(scratch);
  return timer.elapsed_s() / static_cast<double>(probes);
}

/// Candidate traversal-batch widths for the sample_batch = 0 (auto) arm.
inline constexpr int kDefaultBatchCandidates[] = {1, 2, 4, 8, 16, 32};

/// The sample_batch auto arm: measures batched samples/sec per candidate
/// width on throwaway probe samplers (the run's RNG streams are untouched)
/// and returns the winning width for this graph shape. Every candidate
/// samples the same count with the same probe seed, so the comparison is
/// work-for-work. A wider batch must beat the best smaller one by
/// `margin` to win - the widths are throughput-equivalent within noise on
/// many shapes, and smaller batches bound staging latency.
template <typename Frame, typename MakeBatchSampler>
[[nodiscard]] int pick_sample_batch(const Frame& prototype,
                                    MakeBatchSampler&& make_batch_sampler,
                                    std::span<const int> candidates =
                                        std::span<const int>(
                                            kDefaultBatchCandidates),
                                    int probes = 256, double margin = 0.05) {
  DISTBC_ASSERT(!candidates.empty());
  Frame scratch(prototype);
  int best_batch = candidates.front();
  double best_rate = 0.0;
  for (const int batch : candidates) {
    scratch.clear();
    auto sampler = make_batch_sampler(batch);
    // One warm-up chunk outside the timer: first touches page in the
    // kernel's workspace.
    sampler.sample_batch(scratch, static_cast<std::uint64_t>(batch));
    WallTimer timer;
    sampler.sample_batch(scratch, static_cast<std::uint64_t>(probes));
    const double elapsed = std::max(timer.elapsed_s(), 1e-9);
    const double rate = static_cast<double>(probes) / elapsed;
    if (rate > best_rate * (1.0 + margin)) {
      best_rate = rate;
      best_batch = batch;
    }
  }
  return best_batch;
}

}  // namespace distbc::tune
