#include "tune/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace distbc::tune {

AlphaBeta fit_alpha_beta(const double* bytes, const double* seconds,
                         std::size_t count) {
  AlphaBeta fit;
  if (count == 0) return fit;
  fit.valid = true;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    mean_x += bytes[i];
    mean_y += seconds[i];
  }
  mean_x /= static_cast<double>(count);
  mean_y /= static_cast<double>(count);
  double var_x = 0.0;
  double cov_xy = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    var_x += (bytes[i] - mean_x) * (bytes[i] - mean_x);
    cov_xy += (bytes[i] - mean_x) * (seconds[i] - mean_y);
  }
  if (var_x > 0.0) fit.beta_s_per_byte = std::max(0.0, cov_xy / var_x);
  fit.alpha_s = std::max(0.0, mean_y - fit.beta_s_per_byte * mean_x);
  return fit;
}

CostModel CostModel::fit(const MicrobenchResult& result) {
  CostModel model;
  for (std::size_t p = 0; p < kNumPatterns; ++p) {
    const auto pattern = static_cast<Pattern>(p);
    const std::vector<PatternSample> samples = result.of(pattern);
    if (samples.empty()) continue;
    std::vector<double> bytes;
    std::vector<double> seconds;
    bytes.reserve(samples.size());
    seconds.reserve(samples.size());
    for (const PatternSample& sample : samples) {
      bytes.push_back(
          static_cast<double>(sample.message_words * sizeof(std::uint64_t)));
      seconds.push_back(sample.overhead_s);
    }
    model.line(pattern) =
        fit_alpha_beta(bytes.data(), seconds.data(), bytes.size());
  }
  return model;
}

double CostModel::predict_seconds_bytes(Pattern pattern,
                                        std::uint64_t wire_bytes) const {
  const AlphaBeta& fit = line(pattern);
  DISTBC_ASSERT_MSG(fit.valid, "predicting an unfitted pattern");
  return fit.predict(wire_bytes);
}

double CostModel::predict_epoch_overhead_bytes(Pattern pattern,
                                               std::uint64_t wire_bytes) const {
  // Termination is decentralized: every rank evaluates the stopping rule
  // on the merged aggregate it already holds, and whatever downward
  // distribution a pattern needs for that (tree broadcast, intra-node
  // redistribution) happened inside the measured engine race the line was
  // fitted from. There is no separate verdict broadcast left to add.
  return predict_seconds_bytes(pattern, wire_bytes);
}

double CostModel::predict_seconds(Pattern pattern,
                                  std::size_t frame_words) const {
  return predict_seconds_bytes(pattern, frame_words * sizeof(std::uint64_t));
}

double CostModel::predict_epoch_overhead(Pattern pattern,
                                         std::size_t frame_words) const {
  return predict_epoch_overhead_bytes(pattern,
                                      frame_words * sizeof(std::uint64_t));
}

}  // namespace distbc::tune
