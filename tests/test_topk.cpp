// The distributed top-k extraction (bc/topk.hpp): the TPUT-style protocol
// over gatherv must reproduce the root-side selection over the global
// aggregate exactly, and the kadabra driver must deliver the same top-k
// pairs on every rank without moving any full frame.
#include <gtest/gtest.h>

#include <vector>

#include "bc/kadabra.hpp"
#include "bc/topk.hpp"
#include "comm/substrate.hpp"
#include "epoch/sparse_frame.hpp"
#include "gen/barabasi_albert.hpp"
#include "graph/components.hpp"
#include "mpisim/runtime.hpp"

namespace distbc {
namespace {

mpisim::RuntimeConfig quiet(int ranks, int per_node = 1) {
  mpisim::RuntimeConfig config;
  config.num_ranks = ranks;
  config.ranks_per_node = per_node;
  config.network = mpisim::NetworkModel::disabled();
  return config;
}

/// Per-rank frames with overlapping counts; the global truth is their sum.
epoch::SparseFrame make_local(std::uint32_t vertices, int rank) {
  epoch::SparseFrame frame(vertices);
  std::vector<std::uint32_t> path;
  // Rank r touches vertices r, r+1, ..., r+9 (overlap across ranks) plus
  // a rank-specific heavy hitter.
  for (std::uint32_t i = 0; i < 10; ++i)
    path.push_back((static_cast<std::uint32_t>(rank) + i) % vertices);
  frame.record(path);
  std::vector<std::uint32_t> heavy(
      static_cast<std::size_t>(rank) + 1,
      static_cast<std::uint32_t>(vertices - 1 - rank));
  for (const std::uint32_t v : heavy) frame.record({&v, 1});
  return frame;
}

TEST(DistributedTopK, MatchesDirectSelectionOverTheSum) {
  constexpr std::uint32_t kVertices = 64;
  constexpr int kRanks = 4;
  // The truth: direct top-k over the elementwise sum of all locals.
  epoch::SparseFrame global(kVertices);
  for (int r = 0; r < kRanks; ++r) global.merge(make_local(kVertices, r));

  for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                              std::size_t{200}}) {
    const std::vector<bc::TopKEntry> expected = bc::local_top_k(global, k);
    mpisim::Runtime runtime(quiet(kRanks));
    runtime.run([&](auto& rank_comm) {
      const auto world =
          comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
      const epoch::SparseFrame local = make_local(kVertices, world->rank());
      const std::vector<bc::TopKEntry> got =
          bc::distributed_top_k(*world, local, k);
      if (world->rank() == 0) {
        EXPECT_EQ(got, expected);
      } else {
        EXPECT_TRUE(got.empty());
      }
    });
    // The protocol moves candidate pairs through gatherv, never a frame.
    EXPECT_GE(runtime.last_world_stats().gatherv_calls.load(),
              2u * kRanks);
    EXPECT_LT(runtime.last_world_stats().gatherv_bytes.load(),
              static_cast<std::uint64_t>(kRanks) * (kVertices + 1) *
                  sizeof(std::uint64_t));
  }
}

TEST(DistributedTopK, SingleRankAndEmptyFrames) {
  epoch::SparseFrame frame(8);
  const std::uint32_t v = 3;
  frame.record({&v, 1});
  const auto top = bc::local_top_k(frame, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].vertex, 3u);
  EXPECT_EQ(top[0].count, 1u);

  mpisim::Runtime runtime(quiet(3));
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    const epoch::SparseFrame empty(8);  // nothing sampled anywhere
    const auto got = bc::distributed_top_k(*world, empty, 4);
    EXPECT_TRUE(got.empty());
  });
}

TEST(KadabraTopK, EveryRankGetsTheRootsAnswer) {
  const graph::Graph graph =
      graph::largest_component(gen::barabasi_albert(300, 3, 7));
  bc::KadabraOptions options;
  options.params.epsilon = 0.15;
  options.params.seed = 7;
  options.params.exact_diameter = false;
  options.engine.deterministic = true;
  options.engine.virtual_streams = 4;
  options.engine.frame_rep = bc::FrameRep::kSparse;
  options.top_k = 5;

  constexpr int kRanks = 4;
  mpisim::Runtime runtime(quiet(kRanks));
  std::vector<bc::BcResult> results(kRanks);
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    results[static_cast<std::size_t>(world->rank())] =
        bc::kadabra_mpi_rank(graph, options, *world);
  });

  const bc::BcResult& root = results[0];
  ASSERT_EQ(root.top_k_pairs.size(), 5u);
  // The delivered pairs equal the root's own score-based selection.
  const std::vector<graph::Vertex> direct = root.top_k(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(root.top_k_pairs[i].first, direct[i]);
    EXPECT_DOUBLE_EQ(root.top_k_pairs[i].second,
                     root.scores[direct[i]]);
  }
  // Every rank serves the identical answer.
  for (int r = 1; r < kRanks; ++r)
    EXPECT_EQ(results[static_cast<std::size_t>(r)].top_k_pairs,
              root.top_k_pairs);
  // gatherv carried the protocol; no full dense frame crossed it.
  EXPECT_GT(runtime.last_world_stats().gatherv_calls.load(), 0u);
  EXPECT_LT(runtime.last_world_stats().gatherv_bytes.load(),
            static_cast<std::uint64_t>(graph.num_vertices()) *
                sizeof(std::uint64_t) * kRanks);
}

TEST(KadabraTopK, SingleRankFillsPairs) {
  const graph::Graph graph =
      graph::largest_component(gen::barabasi_albert(200, 3, 11));
  bc::KadabraOptions options;
  options.params.epsilon = 0.2;
  options.params.seed = 11;
  options.params.exact_diameter = false;
  options.top_k = 3;
  const bc::BcResult result = bc::kadabra_shm(graph, options);
  ASSERT_EQ(result.top_k_pairs.size(), 3u);
  const std::vector<graph::Vertex> direct = result.top_k(3);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(result.top_k_pairs[i].first, direct[i]);
}

}  // namespace
}  // namespace distbc
