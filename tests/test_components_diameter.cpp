// Tests for connected components, largest-component extraction, two-sweep,
// iFUB, and vertex-diameter bounds.
#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/road.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"

namespace distbc::graph {
namespace {

Graph path_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return from_edges(n, edges);
}

/// O(V^2)-ish exact diameter by all-sources BFS (small graphs only).
std::uint32_t brute_force_diameter(const Graph& graph) {
  BfsWorkspace ws(graph.num_vertices());
  std::uint32_t best = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    best = std::max(best, bfs(graph, v, ws).eccentricity);
  return best;
}

TEST(Components, SingleComponent) {
  const Graph graph = path_graph(5);
  const Components comps = connected_components(graph);
  EXPECT_EQ(comps.count(), 1u);
  EXPECT_EQ(comps.sizes[0], 5u);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Components, MultipleComponentsLabeledConsistently) {
  const Graph graph = from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  const Components comps = connected_components(graph);
  EXPECT_EQ(comps.count(), 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[0], comps.label[3]);
  EXPECT_NE(comps.label[3], comps.label[5]);
  EXPECT_FALSE(is_connected(graph));
}

TEST(Components, IsolatedVerticesAreComponents) {
  const Graph graph = from_edges(4, {{0, 1}});
  const Components comps = connected_components(graph);
  EXPECT_EQ(comps.count(), 3u);
}

TEST(Components, LargestComponentExtraction) {
  // Components of sizes 3, 2, 2.
  const Graph graph = from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  const Graph largest = largest_component(graph);
  EXPECT_EQ(largest.num_vertices(), 3u);
  EXPECT_EQ(largest.num_edges(), 2u);
  EXPECT_TRUE(is_connected(largest));
}

TEST(Components, LargestComponentOfEmptyGraph) {
  const Graph largest = largest_component(Graph{});
  EXPECT_EQ(largest.num_vertices(), 0u);
}

TEST(Components, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(TwoSweep, ExactOnPath) {
  const Graph graph = path_graph(10);
  const TwoSweepResult sweep = two_sweep(graph);
  EXPECT_EQ(sweep.lower_bound, 9u);  // two-sweep is exact on trees
  // Midpoint of a 10-path is vertex 4 or 5.
  EXPECT_TRUE(sweep.midpoint == 4u || sweep.midpoint == 5u);
}

TEST(TwoSweep, LowerBoundsOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Graph graph = largest_component(gen::erdos_renyi(120, 260, seed));
    const TwoSweepResult sweep = two_sweep(graph);
    EXPECT_LE(sweep.lower_bound, brute_force_diameter(graph));
    EXPECT_GE(sweep.lower_bound, 1u);
  }
}

TEST(Ifub, ExactOnKnownShapes) {
  EXPECT_EQ(ifub_diameter(path_graph(17)).diameter, 16u);
  // Cycle of 8: diameter 4.
  std::vector<std::pair<Vertex, Vertex>> cycle;
  for (Vertex v = 0; v < 8; ++v) cycle.emplace_back(v, (v + 1) % 8);
  EXPECT_EQ(ifub_diameter(from_edges(8, cycle)).diameter, 4u);
  // Star: diameter 2.
  const Graph star = from_edges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  EXPECT_EQ(ifub_diameter(star).diameter, 2u);
  // Complete graph: diameter 1.
  const Graph k4 =
      from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(ifub_diameter(k4).diameter, 1u);
}

TEST(Ifub, SingleVertex) {
  EXPECT_EQ(ifub_diameter(from_edges(1, {})).diameter, 0u);
}

TEST(Ifub, MatchesBruteForceOnRandomGraphs) {
  for (const std::uint64_t seed : {5ull, 6ull, 7ull, 8ull, 9ull}) {
    const Graph graph = largest_component(gen::erdos_renyi(150, 280, seed));
    EXPECT_EQ(ifub_diameter(graph).diameter, brute_force_diameter(graph))
        << "seed " << seed;
  }
}

TEST(Ifub, MatchesBruteForceOnRoadLikeGraphs) {
  gen::RoadParams params;
  params.width = 24;
  params.height = 12;
  const Graph graph = gen::road(params, 3);
  EXPECT_EQ(ifub_diameter(graph).diameter, brute_force_diameter(graph));
}

TEST(Ifub, UsesFewBfsOnHighDiameterGraphs) {
  // On high-diameter graphs the two-sweep lower bound is (near-)tight and
  // the midpoint root has eccentricity ~ D/2, so iFUB terminates almost
  // immediately - its selling point.
  gen::RoadParams params;
  params.width = 80;
  params.height = 20;
  const Graph graph = gen::road(params, 13);
  const DiameterResult result = ifub_diameter(graph);
  EXPECT_LT(result.num_bfs, 30u);
}

TEST(Ifub, BoundedWorkOnLowDiameterGraphs) {
  // Erdos-Renyi is iFUB's weak case (no tight lower bound from sweeps);
  // it must still finish well below the trivial n-BFS brute force.
  const Graph graph = largest_component(gen::erdos_renyi(400, 1600, 13));
  const DiameterResult result = ifub_diameter(graph);
  EXPECT_LT(result.num_bfs, graph.num_vertices() / 2);
}

TEST(VertexDiameter, ExactIsDiameterPlusOne) {
  const Graph graph = path_graph(9);
  EXPECT_EQ(vertex_diameter(graph, /*exact=*/true), 9u);
}

TEST(VertexDiameter, ApproximationUpperBoundsExact) {
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    const Graph graph = largest_component(gen::erdos_renyi(150, 300, seed));
    const std::uint32_t exact = vertex_diameter(graph, true);
    const std::uint32_t approx = vertex_diameter(graph, false);
    EXPECT_GE(approx, exact);
    EXPECT_LE(approx, 2 * exact);  // 2-approximation
  }
}

TEST(VertexDiameter, SingleVertex) {
  EXPECT_EQ(vertex_diameter(from_edges(1, {}), true), 1u);
  EXPECT_EQ(vertex_diameter(from_edges(1, {}), false), 1u);
}

}  // namespace
}  // namespace distbc::graph
