// Edge-case tests for engine/hierarchy.hpp (§IV-E node-local RMA
// pre-reduction): rank counts not divisible by the node size, single-node
// clusters, and the hierarchy combined with every §IV-F aggregation
// strategy - checked both directly on the window substrate and end-to-end
// through deterministic KADABRA runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <vector>

#include "bc/kadabra.hpp"
#include "comm/substrate.hpp"
#include "engine/hierarchy.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"
#include "mpisim/runtime.hpp"

namespace distbc {
namespace {

/// Runs the §IV-E substrate directly: every rank pre-reduces a frame of
/// (rank + 1) values; node leaders then reduce over the leader
/// communicator. Returns the world total seen at world rank 0.
std::vector<std::uint64_t> hierarchical_total(int num_ranks,
                                              int ranks_per_node,
                                              std::size_t frame_words) {
  mpisim::RuntimeConfig config;
  config.num_ranks = num_ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);

  std::vector<std::uint64_t> root_total;
  std::mutex mu;
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    engine::Hierarchy hierarchy;
    hierarchy.init(*world, frame_words);
    ASSERT_TRUE(hierarchy.active());

    std::vector<std::uint64_t> frame(
        frame_words, static_cast<std::uint64_t>(world->rank()) + 1);
    const bool leader = hierarchy.pre_reduce(frame);
    // Exactly the leaders join the global reduction; its rank zero is
    // world rank zero.
    if (leader) {
      std::vector<std::uint64_t> total(frame_words, 0);
      hierarchy.global().reduce(std::span<const std::uint64_t>(frame),
                                std::span<std::uint64_t>(total), 0);
      if (world->rank() == 0) {
        std::lock_guard lock(mu);
        root_total = std::move(total);
      }
    } else {
      EXPECT_FALSE(world->rank() == 0) << "world rank 0 must be a leader";
    }
  });
  return root_total;
}

TEST(Hierarchy, RankCountNotDivisibleByNodeSize) {
  // 5 ranks, 2 per node -> nodes {0,1}, {2,3}, {4}: the last node is
  // half-filled.
  const auto total = hierarchical_total(5, 2, 3);
  ASSERT_EQ(total.size(), 3u);
  // Sum of rank+1 over 5 ranks = 1+2+3+4+5.
  for (const std::uint64_t value : total) EXPECT_EQ(value, 15u);
}

TEST(Hierarchy, SingleNodeCluster) {
  // All ranks on one node: the global communicator degenerates to the
  // leader alone and pre_reduce already holds the full aggregate.
  const auto total = hierarchical_total(4, 4, 2);
  ASSERT_EQ(total.size(), 2u);
  for (const std::uint64_t value : total) EXPECT_EQ(value, 10u);
}

TEST(Hierarchy, SingleRankPerNodeDegeneratesToFlat) {
  // One rank per node: every rank is its own leader; the window
  // pre-reduction is a self-copy and the leader comm is the whole world.
  const auto total = hierarchical_total(3, 1, 2);
  ASSERT_EQ(total.size(), 2u);
  for (const std::uint64_t value : total) EXPECT_EQ(value, 6u);
}

// --- End-to-end: hierarchy x aggregation strategies ------------------------

graph::Graph hierarchy_graph() {
  return graph::largest_component(gen::erdos_renyi(100, 300, 77));
}

bc::KadabraOptions deterministic_options(int threads) {
  bc::KadabraOptions options;
  options.params.epsilon = 0.15;
  options.params.seed = 4321;
  options.engine.threads_per_rank = threads;
  options.engine.deterministic = true;
  options.engine.virtual_streams = 4;
  options.engine.epoch_base = 64;
  options.engine.epoch_exponent = 0.0;
  return options;
}

void expect_same_scores(const bc::BcResult& a, const bc::BcResult& b,
                        const char* label) {
  EXPECT_EQ(a.samples, b.samples) << label;
  EXPECT_EQ(a.epochs, b.epochs) << label;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    EXPECT_EQ(a.scores[v], b.scores[v]) << label << " vertex " << v;
}

TEST(Hierarchy, DeterministicEquivalenceWithEveryAggregationStrategy) {
  const graph::Graph graph = hierarchy_graph();
  const bc::BcResult reference =
      bc::kadabra_shm(graph, deterministic_options(1));
  ASSERT_GT(reference.samples, 0u);

  for (const auto aggregation :
       {bc::Aggregation::kIbarrierReduce, bc::Aggregation::kIreduce,
        bc::Aggregation::kBlocking}) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.aggregation = aggregation;
    options.engine.hierarchical = true;
    const bc::BcResult result =
        bc::kadabra_mpi(graph, options, /*num_ranks=*/4, /*ranks_per_node=*/2,
                        mpisim::NetworkModel::disabled());
    expect_same_scores(reference, result,
                       engine::aggregation_name(aggregation));
  }
}

TEST(Hierarchy, DeterministicEquivalenceOnUnevenNodes) {
  const graph::Graph graph = hierarchy_graph();
  const bc::BcResult reference =
      bc::kadabra_shm(graph, deterministic_options(1));

  // 5 ranks, 2 per node: nodes of size 2, 2, 1.
  bc::KadabraOptions options = deterministic_options(1);
  options.engine.hierarchical = true;
  const bc::BcResult uneven =
      bc::kadabra_mpi(graph, options, /*num_ranks=*/5, /*ranks_per_node=*/2,
                      mpisim::NetworkModel::disabled());
  expect_same_scores(reference, uneven, "5 ranks / 2 per node");
}

TEST(Hierarchy, DeterministicEquivalenceOnSingleNode) {
  const graph::Graph graph = hierarchy_graph();
  const bc::BcResult reference =
      bc::kadabra_shm(graph, deterministic_options(1));

  // All ranks on one node: the global reduction degenerates to the leader.
  bc::KadabraOptions options = deterministic_options(1);
  options.engine.hierarchical = true;
  const bc::BcResult single_node =
      bc::kadabra_mpi(graph, options, /*num_ranks=*/3, /*ranks_per_node=*/3,
                      mpisim::NetworkModel::disabled());
  expect_same_scores(reference, single_node, "3 ranks / 1 node");
}

}  // namespace
}  // namespace distbc
