// Unit tests for the BFS kernels and workspace reuse semantics.
#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"

namespace distbc::graph {
namespace {

Graph path_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return from_edges(n, edges);
}

TEST(Bfs, DistancesOnPath) {
  const Graph graph = path_graph(6);
  const auto dist = bfs_distances(graph, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, SummaryOnPath) {
  const Graph graph = path_graph(6);
  BfsWorkspace ws(graph.num_vertices());
  const BfsSummary summary = bfs(graph, 0, ws);
  EXPECT_EQ(summary.eccentricity, 5u);
  EXPECT_EQ(summary.reached, 6u);
  EXPECT_EQ(summary.farthest, 5u);
}

TEST(Bfs, MidpointSource) {
  const Graph graph = path_graph(7);
  BfsWorkspace ws(graph.num_vertices());
  const BfsSummary summary = bfs(graph, 3, ws);
  EXPECT_EQ(summary.eccentricity, 3u);
  EXPECT_TRUE(summary.farthest == 0u || summary.farthest == 6u);
}

TEST(Bfs, UnreachableVerticesStayMarked) {
  // Two components: 0-1 and 2-3.
  const Graph graph = from_edges(4, {{0, 1}, {2, 3}});
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, WorkspaceReuseResetsMarks) {
  const Graph graph = from_edges(4, {{0, 1}, {2, 3}});
  BfsWorkspace ws(graph.num_vertices());
  bfs(graph, 0, ws);
  EXPECT_TRUE(ws.visited(1));
  EXPECT_FALSE(ws.visited(2));
  bfs(graph, 2, ws);
  EXPECT_TRUE(ws.visited(3));
  EXPECT_FALSE(ws.visited(0));  // previous run's marks invalidated
}

TEST(Bfs, QueueHoldsExactlyReachedVertices) {
  const Graph graph = from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  BfsWorkspace ws(graph.num_vertices());
  const BfsSummary summary = bfs(graph, 1, ws);
  EXPECT_EQ(summary.reached, 3u);
  EXPECT_EQ(ws.queue().size(), 3u);
}

TEST(Bfs, SingleVertexGraph) {
  const Graph graph = from_edges(1, {});
  BfsWorkspace ws(1);
  const BfsSummary summary = bfs(graph, 0, ws);
  EXPECT_EQ(summary.eccentricity, 0u);
  EXPECT_EQ(summary.reached, 1u);
  EXPECT_EQ(summary.farthest, 0u);
}

TEST(Bfs, MatchesNaiveReferenceOnRandomGraph) {
  const Graph graph = gen::erdos_renyi(200, 400, /*seed=*/7);
  // Naive O(V^2) reference: repeated relaxation.
  const Vertex n = graph.num_vertices();
  std::vector<std::uint32_t> reference(n, kUnreachable);
  reference[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Vertex u = 0; u < n; ++u) {
      if (reference[u] == kUnreachable) continue;
      for (const Vertex w : graph.neighbors(u)) {
        if (reference[u] + 1 < reference[w]) {
          reference[w] = reference[u] + 1;
          changed = true;
        }
      }
    }
  }
  const auto dist = bfs_distances(graph, 0);
  for (Vertex v = 0; v < n; ++v) EXPECT_EQ(dist[v], reference[v]) << v;
}

TEST(Bfs, ManyReusesDoNotLeakState) {
  const Graph graph = gen::erdos_renyi(64, 128, 3);
  BfsWorkspace ws(graph.num_vertices());
  const auto expected = bfs(graph, 5, ws).reached;
  for (int i = 0; i < 1000; ++i) {
    const BfsSummary summary = bfs(graph, 5, ws);
    ASSERT_EQ(summary.reached, expected);
  }
}

}  // namespace
}  // namespace distbc::graph
