// Tests for the bidirectional BFS: distances and path counts against a
// unidirectional reference, path validity, and uniform path sampling.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/bfs.hpp"
#include "graph/bidirectional_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace distbc::graph {
namespace {

/// Reference: BFS from s computing distance and #shortest-paths to all.
std::pair<std::vector<std::uint32_t>, std::vector<double>> reference_sssp(
    const Graph& graph, Vertex s) {
  const Vertex n = graph.num_vertices();
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<double> sigma(n, 0.0);
  std::vector<Vertex> queue{s};
  dist[s] = 0;
  sigma[s] = 1.0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (const Vertex w : graph.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
      if (dist[w] == dist[u] + 1) sigma[w] += sigma[u];
    }
  }
  return {std::move(dist), std::move(sigma)};
}

TEST(BidirectionalBfs, AdjacentPair) {
  const Graph graph = from_edges(3, {{0, 1}, {1, 2}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 1);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.distance, 1u);
  EXPECT_DOUBLE_EQ(result.num_paths, 1.0);

  Rng rng(1);
  std::vector<Vertex> path;
  bfs.sample_path(graph, rng, path);
  EXPECT_TRUE(path.empty());  // no internal vertices on a direct edge
}

TEST(BidirectionalBfs, TwoHopPath) {
  const Graph graph = from_edges(3, {{0, 1}, {1, 2}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 2);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.distance, 2u);
  EXPECT_DOUBLE_EQ(result.num_paths, 1.0);

  Rng rng(1);
  std::vector<Vertex> path;
  bfs.sample_path(graph, rng, path);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(BidirectionalBfs, CountsParallelRoutes) {
  // Diamond: 0-1-3 and 0-2-3: two shortest paths.
  const Graph graph = from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 3);
  EXPECT_EQ(result.distance, 2u);
  EXPECT_DOUBLE_EQ(result.num_paths, 2.0);
}

TEST(BidirectionalBfs, DisconnectedPair) {
  const Graph graph = from_edges(4, {{0, 1}, {2, 3}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 3);
  EXPECT_FALSE(result.connected);
}

TEST(BidirectionalBfs, MatchesReferenceOnRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph graph = largest_component(gen::erdos_renyi(150, 300, seed));
    const Vertex n = graph.num_vertices();
    ASSERT_GE(n, 2u);
    BidirectionalBfs bfs(n);
    Rng rng(seed);
    for (int trial = 0; trial < 50; ++trial) {
      const auto [s64, t64] = rng.next_distinct_pair(n);
      const auto s = static_cast<Vertex>(s64);
      const auto t = static_cast<Vertex>(t64);
      const auto [dist, sigma] = reference_sssp(graph, s);
      const auto result = bfs.run(graph, s, t);
      ASSERT_TRUE(result.connected);
      EXPECT_EQ(result.distance, dist[t]);
      EXPECT_DOUBLE_EQ(result.num_paths, sigma[t]);
    }
  }
}

TEST(BidirectionalBfs, MatchesReferenceOnPowerLawGraph) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 4.0;
  const Graph graph = largest_component(gen::rmat(params, 5));
  const Vertex n = graph.num_vertices();
  BidirectionalBfs bfs(n);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto [s64, t64] = rng.next_distinct_pair(n);
    const auto s = static_cast<Vertex>(s64);
    const auto t = static_cast<Vertex>(t64);
    const auto [dist, sigma] = reference_sssp(graph, s);
    const auto result = bfs.run(graph, s, t);
    ASSERT_TRUE(result.connected);
    EXPECT_EQ(result.distance, dist[t]);
    EXPECT_DOUBLE_EQ(result.num_paths, sigma[t]);
  }
}

TEST(BidirectionalBfs, SampledPathsAreValidShortestPaths) {
  const Graph graph = largest_component(gen::erdos_renyi(100, 250, 17));
  const Vertex n = graph.num_vertices();
  BidirectionalBfs bfs(n);
  Rng rng(3);
  std::vector<Vertex> path;
  for (int trial = 0; trial < 200; ++trial) {
    const auto [s64, t64] = rng.next_distinct_pair(n);
    const auto s = static_cast<Vertex>(s64);
    const auto t = static_cast<Vertex>(t64);
    const auto result = bfs.run(graph, s, t);
    ASSERT_TRUE(result.connected);
    path.clear();
    bfs.sample_path(graph, rng, path);
    // Internal count matches the distance.
    ASSERT_EQ(path.size(), result.distance - 1);
    // Consecutive hops are edges; endpoints connect to path ends.
    Vertex prev = s;
    for (const Vertex v : path) {
      EXPECT_TRUE(graph.has_edge(prev, v));
      EXPECT_NE(v, s);
      EXPECT_NE(v, t);
      prev = v;
    }
    EXPECT_TRUE(graph.has_edge(prev, t));
  }
}

TEST(BidirectionalBfs, PathSamplingIsUniform) {
  // Ladder with two independent 2-choice stages: 4 equally likely paths
  // 0 -> {1|2} -> 3 -> {4|5} -> 6.
  const Graph graph = from_edges(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 6);
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.distance, 4u);
  EXPECT_DOUBLE_EQ(result.num_paths, 4.0);

  Rng rng(123);
  std::map<std::vector<Vertex>, int> histogram;
  constexpr int kDraws = 40000;
  std::vector<Vertex> path;
  for (int i = 0; i < kDraws; ++i) {
    // Re-run so meeting-set state is fresh (sample_path may be called
    // repeatedly; re-running also exercises workspace reuse).
    bfs.run(graph, 0, 6);
    path.clear();
    bfs.sample_path(graph, rng, path);
    ++histogram[path];
  }
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [p, count] : histogram)
    EXPECT_NEAR(count, kDraws / 4, kDraws / 4 * 0.1);
}

TEST(BidirectionalBfs, UniformAcrossUnevenBranching) {
  // 0 connects to t=4 via: one 2-hop path through 1; and paths through
  // 2->3. Distances: 0-1-4 (len 2), 0-2-3-4 (len 3). Only the length-2 path
  // is shortest, so sampling must always return it.
  const Graph graph =
      from_edges(5, {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 0, 4);
  EXPECT_EQ(result.distance, 2u);
  EXPECT_DOUBLE_EQ(result.num_paths, 1.0);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    bfs.run(graph, 0, 4);
    std::vector<Vertex> path;
    bfs.sample_path(graph, rng, path);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 1u);
  }
}

TEST(BidirectionalBfs, TouchedWorkIsBounded) {
  const Graph graph = largest_component(gen::erdos_renyi(200, 600, 23));
  BidirectionalBfs bfs(graph.num_vertices());
  bfs.run(graph, 0, graph.num_vertices() - 1);
  EXPECT_GT(bfs.last_touched(), 0u);
  EXPECT_LE(bfs.last_touched(), graph.num_arcs() + graph.num_vertices());
}

TEST(BidirectionalBfs, SideSelectionBalancesVolumeNotCount) {
  // Hub-vs-chain: the s-frontier is ONE huge-degree hub, the t-frontier a
  // chain of degree-2 vertices. Counting frontier vertices would call the
  // hub side "smaller" (1 vertex vs 1 vertex, ties prefer s) and scan all
  // D hub edges; volume balancing (degree sums) must walk the cheap chain
  // instead, keeping touched work near the chain length and far below D.
  constexpr Vertex kLeaves = 2000;
  constexpr Vertex kChain = 20;
  const Vertex hub = 0;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex leaf = 1; leaf <= kLeaves; ++leaf) edges.push_back({hub, leaf});
  const Vertex chain_base = kLeaves + 1;
  edges.push_back({hub, chain_base});
  for (Vertex i = 1; i < kChain; ++i)
    edges.push_back({chain_base + i - 1, chain_base + i});
  const Graph graph = from_edges(chain_base + kChain, edges);
  const Vertex tail = chain_base + kChain - 1;

  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, hub, tail);
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.distance, kChain);
  EXPECT_DOUBLE_EQ(result.num_paths, 1.0);
  // Chain-side work only: ~2 arcs per chain vertex. A count-based pick
  // would touch all kLeaves hub arcs.
  EXPECT_LE(bfs.last_touched(), static_cast<std::uint64_t>(4 * kChain + 4));
}

TEST(BidirectionalBfs, StarGraphHubPair) {
  // Star: leaves at distance 2 via the hub; hub must be the internal vertex.
  const Graph graph = from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  BidirectionalBfs bfs(graph.num_vertices());
  const auto result = bfs.run(graph, 1, 4);
  EXPECT_EQ(result.distance, 2u);
  EXPECT_DOUBLE_EQ(result.num_paths, 1.0);
  Rng rng(4);
  std::vector<Vertex> path;
  bfs.sample_path(graph, rng, path);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 0u);
}

}  // namespace
}  // namespace distbc::graph
