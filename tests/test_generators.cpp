// Tests for the graph generators and the proxy instance suite: sizes,
// degree signatures (heavy tail vs. not), diameter regimes, determinism.
#include <gtest/gtest.h>

#include "gen/barabasi_albert.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/hyperbolic.hpp"
#include "gen/instances.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "graph/stats.hpp"

namespace distbc::gen {
namespace {

using graph::degree_stats;
using graph::DegreeStats;
using graph::largest_component;

TEST(Rmat, SizeAndEdgeBudget) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8.0;
  const auto graph = rmat(params, 1);
  EXPECT_EQ(graph.num_vertices(), 1u << 12);
  // Dedup and self-loop removal shrink the edge count, but not by much.
  EXPECT_GT(graph.num_edges(), (1u << 12) * 8.0 * 0.5);
  EXPECT_LE(graph.num_edges(), (1u << 12) * 8.0);
}

TEST(Rmat, Deterministic) {
  RmatParams params;
  params.scale = 10;
  const auto a = rmat(params, 99);
  const auto b = rmat(params, 99);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (graph::Vertex v = 0; v < a.num_vertices(); ++v)
    ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(Rmat, SeedsProduceDifferentGraphs) {
  RmatParams params;
  params.scale = 10;
  const auto a = rmat(params, 1);
  const auto b = rmat(params, 2);
  std::uint64_t differing = 0;
  for (graph::Vertex v = 0; v < a.num_vertices(); ++v)
    differing += a.degree(v) != b.degree(v);
  EXPECT_GT(differing, a.num_vertices() / 4);
}

TEST(Rmat, HasHeavyTail) {
  RmatParams params;
  params.scale = 13;
  params.edge_factor = 16.0;
  const auto graph = rmat(params, 3);
  const DegreeStats stats = degree_stats(graph);
  EXPECT_GT(stats.heavy_fraction, 0.0);  // hubs exist
  EXPECT_GT(stats.max, static_cast<std::uint64_t>(30 * stats.mean));
}

TEST(Rmat, LowDiameterCore) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 16.0;
  const auto graph = largest_component(rmat(params, 4));
  EXPECT_LT(graph::ifub_diameter(graph).diameter, 15u);
}

TEST(ErdosRenyi, NoHeavyTail) {
  const auto graph = erdos_renyi(1 << 13, 1 << 17, 5);
  const DegreeStats stats = degree_stats(graph);
  EXPECT_DOUBLE_EQ(stats.heavy_fraction, 0.0);  // Poisson tail is thin
}

TEST(ErdosRenyi, EdgeCountWithinDedupSlack) {
  const auto graph = erdos_renyi(4096, 30000, 6);
  EXPECT_GT(graph.num_edges(), 29000u);  // few collisions at this density
  EXPECT_LE(graph.num_edges(), 30000u);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  const auto graph = barabasi_albert(4000, 4, 7);
  EXPECT_EQ(graph.num_vertices(), 4000u);
  // Every non-seed vertex attaches with up to 4 edges (dedup may merge).
  for (graph::Vertex v = 5; v < graph.num_vertices(); ++v)
    EXPECT_GE(graph.degree(v), 1u);
  EXPECT_TRUE(graph::is_connected(graph));
}

TEST(BarabasiAlbert, HasHeavyTail) {
  const auto graph = barabasi_albert(8000, 3, 8);
  const DegreeStats stats = degree_stats(graph);
  EXPECT_GT(stats.max, static_cast<std::uint64_t>(10 * stats.mean));
}

TEST(Hyperbolic, AverageDegreeCalibrated) {
  HyperbolicParams params;
  params.num_vertices = 1 << 13;
  params.average_degree = 20.0;
  const auto graph = hyperbolic(params, 9);
  const DegreeStats stats = degree_stats(graph);
  // The asymptotic calibration is loose at small n; accept a factor ~2.
  EXPECT_GT(stats.mean, params.average_degree * 0.4);
  EXPECT_LT(stats.mean, params.average_degree * 2.5);
}

TEST(Hyperbolic, PowerLawTail) {
  HyperbolicParams params;
  params.num_vertices = 1 << 13;
  params.average_degree = 16.0;
  const auto graph = hyperbolic(params, 10);
  const DegreeStats stats = degree_stats(graph);
  EXPECT_GT(stats.heavy_fraction, 0.0);
  EXPECT_GT(stats.max, static_cast<std::uint64_t>(10 * stats.mean));
}

TEST(Hyperbolic, Deterministic) {
  HyperbolicParams params;
  params.num_vertices = 2048;
  const auto a = hyperbolic(params, 11);
  const auto b = hyperbolic(params, 11);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(Hyperbolic, MatchesBruteForceNeighborhoods) {
  // Band scanning must find exactly the pairs within distance R: cross-check
  // by brute force on a small instance via the symmetric distance function.
  HyperbolicParams params;
  params.num_vertices = 256;
  params.average_degree = 12.0;
  const auto graph = hyperbolic(params, 12);
  // Distance symmetry and triangle-ish sanity of the helper:
  EXPECT_DOUBLE_EQ(hyperbolic_distance(1.0, 0.5, 2.0, 1.5),
                   hyperbolic_distance(2.0, 1.5, 1.0, 0.5));
  EXPECT_DOUBLE_EQ(hyperbolic_distance(1.3, 0.7, 1.3, 0.7), 0.0);
  // The generator produced a plausible graph (brute-force equality is
  // checked statistically: every reported edge must satisfy the threshold
  // by construction - here we check the graph is non-trivial and simple).
  EXPECT_GT(graph.num_edges(), 100u);
  for (graph::Vertex v = 0; v < graph.num_vertices(); ++v)
    EXPECT_FALSE(graph.has_edge(v, v));
}

TEST(Road, HighDiameterLowDegree) {
  RoadParams params;
  params.width = 120;
  params.height = 40;
  const auto graph = road(params, 13);
  EXPECT_TRUE(graph::is_connected(graph));  // largest CC by construction
  const DegreeStats stats = degree_stats(graph);
  EXPECT_LT(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.heavy_fraction, 0.0);
  // Diameter of the same order as the grid perimeter.
  const auto diameter = graph::ifub_diameter(graph).diameter;
  EXPECT_GT(diameter, 100u);
}

TEST(Road, AspectRatioDrivesDiameter) {
  RoadParams wide;
  wide.width = 200;
  wide.height = 10;
  RoadParams square;
  square.width = 45;
  square.height = 45;
  const auto wide_diam = graph::ifub_diameter(road(wide, 14)).diameter;
  const auto square_diam = graph::ifub_diameter(road(square, 14)).diameter;
  EXPECT_GT(wide_diam, square_diam);
}

TEST(Instances, SuiteHasTenPaperRows) {
  const auto& suite = instance_suite();
  ASSERT_EQ(suite.size(), 10u);
  for (const auto& spec : suite) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.paper_vertices, 1'000'000u);
    EXPECT_GT(spec.paper_edges, spec.paper_vertices);
    EXPECT_GT(spec.paper_diameter, 0u);
  }
}

TEST(Instances, QuickSuiteBuildsConnectedGraphs) {
  for (const auto& spec : quick_suite()) {
    const auto graph = spec.build(1.0, 42);
    EXPECT_GE(graph.num_vertices(), 64u) << spec.name;
    EXPECT_TRUE(graph::is_connected(graph)) << spec.name;
  }
}

TEST(Instances, FamiliesHaveTheRightSignature) {
  for (const auto& spec : quick_suite()) {
    const auto graph = spec.build(1.0, 43);
    const DegreeStats stats = degree_stats(graph);
    if (spec.family == InstanceFamily::kRoad) {
      EXPECT_LT(stats.mean, 4.5) << spec.name;
    } else {
      EXPECT_GT(stats.max, static_cast<std::uint64_t>(8 * stats.mean))
          << spec.name;
    }
  }
}

TEST(Instances, ScaleParameterShrinksInstances) {
  const auto& spec = quick_suite()[1];  // social R-MAT
  const auto full = spec.build(1.0, 44);
  const auto quarter = spec.build(0.25, 44);
  EXPECT_LT(quarter.num_vertices(), full.num_vertices());
}

TEST(Instances, LookupByNameWorks) {
  const auto& spec = instance_by_name("road-pa-proxy");
  EXPECT_EQ(spec.paper_name, "roadNet-PA");
}

}  // namespace
}  // namespace distbc::gen
