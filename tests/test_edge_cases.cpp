// Edge cases and contract violations across the library: tiny graphs
// through every algorithm, assertion guards (death tests), and boundary
// parameter values.
#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/kadabra.hpp"
#include "bc/rk.hpp"
#include "epoch/epoch_manager.hpp"
#include "epoch/state_frame.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/bidirectional_bfs.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"

namespace distbc {
namespace {

using graph::from_edges;
using graph::Graph;

// --- Tiny graphs through every algorithm --------------------------------

TEST(EdgeCases, SingleEdgeGraphAllAlgorithms) {
  const Graph graph = from_edges(2, {{0, 1}});
  const bc::BcResult exact = bc::brandes(graph);
  EXPECT_DOUBLE_EQ(exact.scores[0], 0.0);

  bc::KadabraParams params;
  params.epsilon = 0.3;
  const bc::BcResult seq = bc::kadabra_sequential(graph, params);
  EXPECT_DOUBLE_EQ(seq.scores[0], 0.0);
  EXPECT_DOUBLE_EQ(seq.scores[1], 0.0);

  bc::KadabraOptions shm;
  shm.params = params;
  shm.engine.threads_per_rank = 2;
  const bc::BcResult shm_result = bc::kadabra_shm(graph, shm);
  EXPECT_DOUBLE_EQ(shm_result.scores[0], 0.0);

  bc::KadabraOptions mpi;
  mpi.params = params;
  const bc::BcResult mpi_result = bc::kadabra_mpi(graph, mpi, 2);
  EXPECT_DOUBLE_EQ(mpi_result.scores[0], 0.0);

  bc::RkParams rk_params;
  rk_params.epsilon = 0.3;
  const bc::BcResult rk_result = bc::rk(graph, rk_params, 2);
  EXPECT_DOUBLE_EQ(rk_result.scores[0], 0.0);
}

TEST(EdgeCases, TriangleHasZeroBetweennessEverywhere) {
  const Graph graph = from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  bc::KadabraParams params;
  params.epsilon = 0.2;
  const bc::BcResult result = bc::kadabra_sequential(graph, params);
  for (const double score : result.scores) EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(EdgeCases, PathOfThreeConvergesToExactMiddle) {
  // b(middle) = 2/(3*2) = 1/3: large enough that the estimate must be
  // close even at a loose epsilon.
  const Graph graph = from_edges(3, {{0, 1}, {1, 2}});
  bc::KadabraParams params;
  params.epsilon = 0.1;
  params.seed = 5;
  const bc::BcResult result = bc::kadabra_sequential(graph, params);
  EXPECT_NEAR(result.scores[1], 1.0 / 3.0, 0.1);
  EXPECT_DOUBLE_EQ(result.scores[0], 0.0);
}

TEST(EdgeCases, EmptyAndSingletonGraphs) {
  bc::KadabraParams params;
  EXPECT_TRUE(bc::kadabra_sequential(Graph{}, params).scores.empty());
  const bc::BcResult single =
      bc::kadabra_sequential(from_edges(1, {}), params);
  ASSERT_EQ(single.scores.size(), 1u);
  EXPECT_DOUBLE_EQ(single.scores[0], 0.0);
}

TEST(EdgeCases, MpiMoreRanksThanWork) {
  // 16 ranks on a 4-vertex graph: every rank still participates in every
  // collective and the result stays exact-ish.
  const Graph graph = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  bc::KadabraOptions options;
  options.params.epsilon = 0.2;
  const bc::BcResult result = bc::kadabra_mpi(graph, options, 16);
  const bc::BcResult exact = bc::brandes(graph);
  EXPECT_LE(result.max_abs_difference(exact), 0.2);
}

// --- Boundary parameters --------------------------------------------------

TEST(EdgeCases, VeryLooseEpsilonTerminatesFast) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(200, 500, 9));
  bc::KadabraParams params;
  params.epsilon = 0.45;
  const bc::BcResult result = bc::kadabra_sequential(graph, params);
  EXPECT_LE(result.samples, 2000u);
}

TEST(EdgeCases, TinyDeltaStillRespectsBudget) {
  std::vector<std::uint64_t> counts{10, 5, 0, 0};
  const bc::Calibration cal = bc::calibrate(counts, 20, 0.1, 1e-6, 0.01);
  EXPECT_LT(cal.budget_used(), 1e-6);
}

TEST(EdgeCases, ExplicitInitialSampleCountHonored) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(100, 300, 10));
  bc::KadabraParams params;
  params.epsilon = 0.2;
  params.initial_samples = 64;
  // Just exercises the path; the guarantee does not depend on tau_0.
  const bc::BcResult result = bc::kadabra_sequential(graph, params);
  EXPECT_GT(result.samples, 0u);
}

// --- Assertion guards (death tests) ---------------------------------------

using EdgeCaseDeath = ::testing::Test;

TEST(EdgeCaseDeath, BidirectionalBfsRejectsEqualEndpoints) {
  const Graph graph = from_edges(3, {{0, 1}, {1, 2}});
  graph::BidirectionalBfs bfs(graph.num_vertices());
  EXPECT_DEATH((void)bfs.run(graph, 1, 1), "distinct");
}

TEST(EdgeCaseDeath, IfubRequiresConnectedGraph) {
  const Graph graph = from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_DEATH((void)graph::ifub_diameter(graph), "connected");
}

TEST(EdgeCaseDeath, KadabraRejectsDisconnectedInput) {
  const Graph graph = from_edges(4, {{0, 1}, {2, 3}});
  bc::KadabraParams params;
  EXPECT_DEATH((void)bc::kadabra_sequential(graph, params),
               "largest connected component");
}

TEST(EdgeCaseDeath, CollectRequiresCompletedTransition) {
  epoch::EpochManager<epoch::StateFrame> manager(2, epoch::StateFrame(4));
  manager.force_transition(0);  // thread 1 never participates
  epoch::StateFrame aggregate(4);
  EXPECT_DEATH(manager.collect(0, aggregate), "transition_done");
}

TEST(EdgeCaseDeath, BuilderRejectsOutOfRangeVertices) {
  graph::Builder builder(3);
  EXPECT_DEATH(builder.add_edge(0, 3), "num_vertices");
}

TEST(EdgeCaseDeath, FrameMergeRejectsSizeMismatch) {
  epoch::StateFrame a(4);
  epoch::StateFrame b(5);
  EXPECT_DEATH(a.merge(b), "size");
}

}  // namespace
}  // namespace distbc
