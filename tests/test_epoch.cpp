// Tests for the epoch-based framework: state frames, transition semantics,
// double-buffer reuse, and a multi-threaded no-lost-samples stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "epoch/epoch_manager.hpp"
#include "epoch/state_frame.hpp"

namespace distbc::epoch {
namespace {

TEST(StateFrame, RecordsTauAndCounts) {
  StateFrame frame(5);
  const std::vector<std::uint32_t> path{1, 3};
  frame.record(path);
  frame.record_empty();
  EXPECT_EQ(frame.tau(), 2u);
  EXPECT_EQ(frame.count(1), 1u);
  EXPECT_EQ(frame.count(3), 1u);
  EXPECT_EQ(frame.count(0), 0u);
  EXPECT_TRUE(frame.counts_consistent());
}

TEST(StateFrame, RawLayoutIsCountsThenTau) {
  StateFrame frame(3);
  frame.record(std::vector<std::uint32_t>{2});
  const auto raw = frame.raw();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw[2], 1u);
  EXPECT_EQ(raw[3], 1u);  // tau in the last slot
}

TEST(StateFrame, MergeIsElementwiseSum) {
  StateFrame a(4);
  StateFrame b(4);
  a.record(std::vector<std::uint32_t>{0, 1});
  b.record(std::vector<std::uint32_t>{1, 2});
  b.record_empty();
  a.merge(b);
  EXPECT_EQ(a.tau(), 3u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 1u);
}

TEST(StateFrame, ClearZeroesEverything) {
  StateFrame frame(4);
  frame.record(std::vector<std::uint32_t>{0, 1, 2});
  frame.clear();
  EXPECT_EQ(frame.tau(), 0u);
  EXPECT_TRUE(frame.empty());
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_EQ(frame.count(v), 0u);
}

TEST(EpochManager, SingleThreadTransitionIsImmediate) {
  EpochManager<StateFrame> manager(1, StateFrame(4));
  EXPECT_FALSE(manager.transition_done(0));  // not yet forced
  manager.force_transition(0);
  EXPECT_TRUE(manager.transition_done(0));
  manager.force_transition(1);
  EXPECT_TRUE(manager.transition_done(1));
}

TEST(EpochManager, CheckTransitionIsNoOpWithoutForce) {
  EpochManager<StateFrame> manager(2, StateFrame(4));
  EXPECT_FALSE(manager.check_transition(1, 0));
  EXPECT_EQ(manager.thread_epoch(1), 0u);
}

TEST(EpochManager, CheckTransitionParticipates) {
  EpochManager<StateFrame> manager(2, StateFrame(4));
  manager.force_transition(0);
  EXPECT_FALSE(manager.transition_done(0));  // thread 1 lagging
  EXPECT_TRUE(manager.check_transition(1, 0));
  EXPECT_TRUE(manager.transition_done(0));
  EXPECT_EQ(manager.thread_epoch(1), 1u);
}

TEST(EpochManager, FrameSelectionAlternatesByParity) {
  EpochManager<StateFrame> manager(1, StateFrame(4));
  StateFrame& even = manager.frame(0, 0);
  StateFrame& odd = manager.frame(0, 1);
  EXPECT_NE(&even, &odd);
  EXPECT_EQ(&even, &manager.frame(0, 2));  // reuse two epochs later
}

TEST(EpochManager, CollectMergesAndClears) {
  EpochManager<StateFrame> manager(2, StateFrame(4));
  manager.frame(0, 0).record(std::vector<std::uint32_t>{1});
  manager.frame(1, 0).record(std::vector<std::uint32_t>{1, 2});
  manager.force_transition(0);
  ASSERT_TRUE(manager.check_transition(1, 0));

  StateFrame aggregate(4);
  manager.collect(0, aggregate);
  EXPECT_EQ(aggregate.tau(), 2u);
  EXPECT_EQ(aggregate.count(1), 2u);
  EXPECT_TRUE(manager.frame(0, 0).empty());
  EXPECT_TRUE(manager.frame(1, 0).empty());
}

TEST(EpochManager, StopFlagPropagates) {
  EpochManager<StateFrame> manager(3, StateFrame(2));
  EXPECT_FALSE(manager.stopped());
  manager.signal_stop();
  EXPECT_TRUE(manager.stopped());
}

// Stress: T sampler threads record continuously while thread zero cycles
// through many epochs; every recorded sample must be collected exactly once
// (nothing lost, nothing duplicated).
TEST(EpochManager, StressNoLostSamples) {
  constexpr int kThreads = 8;     // sampler threads 1..7 plus thread 0
  constexpr int kEpochs = 60;
  constexpr std::uint32_t kVertices = 16;
  EpochManager<StateFrame> manager(kThreads, StateFrame(kVertices));

  std::vector<std::uint64_t> produced(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 1; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint32_t epoch = 0;
      std::uint64_t count = 0;
      std::vector<std::uint32_t> path{static_cast<std::uint32_t>(t)};
      while (!manager.stopped()) {
        manager.frame(t, epoch).record(path);
        ++count;
        if (manager.check_transition(t, epoch)) ++epoch;
      }
      // Samples recorded into the current (never-collected) epoch after the
      // final collection are legitimately discarded; subtract them.
      produced[t] = count - manager.frame(t, epoch).tau();
    });
  }

  StateFrame aggregate(kVertices);
  std::vector<std::uint32_t> zero_path{0};
  std::uint64_t thread0_produced = 0;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (int i = 0; i < 50; ++i) {
      manager.frame(0, epoch).record(zero_path);
      ++thread0_produced;
    }
    manager.force_transition(epoch);
    while (!manager.transition_done(epoch)) {
      manager.frame(0, epoch + 1).record(zero_path);
      ++thread0_produced;
    }
    manager.collect(epoch, aggregate);
  }
  manager.signal_stop();
  for (auto& worker : workers) worker.join();
  // Thread zero's uncollected tail lives in the frame after the last epoch.
  thread0_produced -= manager.frame(0, kEpochs).tau();
  produced[0] = thread0_produced;

  std::uint64_t total_produced = 0;
  for (const auto value : produced) total_produced += value;
  EXPECT_EQ(aggregate.tau(), total_produced);
  // Per-thread counts arrive intact (each thread records its own id).
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(aggregate.count(static_cast<std::uint32_t>(t)), produced[t])
        << "thread " << t;
  EXPECT_TRUE(aggregate.counts_consistent());
}

// Samplers never block: even if thread zero never forces a transition,
// sampler threads keep making progress.
TEST(EpochManager, SamplersProgressWithoutTransitions) {
  EpochManager<StateFrame> manager(2, StateFrame(2));
  std::atomic<std::uint64_t> recorded{0};
  std::thread sampler([&] {
    std::vector<std::uint32_t> path{1};
    for (int i = 0; i < 100000; ++i) {
      manager.frame(1, 0).record(path);
      ++recorded;
      (void)manager.check_transition(1, 0);
    }
  });
  sampler.join();
  EXPECT_EQ(recorded.load(), 100000u);
  EXPECT_EQ(manager.frame(1, 0).tau(), 100000u);
}

}  // namespace
}  // namespace distbc::epoch
