// Tests for exact Brandes betweenness (sequential and parallel) against
// closed-form values on canonical graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "bc/brandes.hpp"
#include "bc/brandes_parallel.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

using graph::from_edges;
using graph::Graph;
using graph::Vertex;

Graph path_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return from_edges(n, edges);
}

TEST(Brandes, PathGraphClosedForm) {
  // On a path, vertex i separates i * (n-1-i) unordered pairs; normalized
  // over ordered pairs: b(i) = 2 i (n-1-i) / (n (n-1)).
  const Vertex n = 7;
  const BcResult result = brandes(path_graph(n));
  for (Vertex i = 0; i < n; ++i) {
    const double expected = 2.0 * i * (n - 1.0 - i) / (n * (n - 1.0));
    EXPECT_NEAR(result.scores[i], expected, 1e-12) << "vertex " << i;
  }
}

TEST(Brandes, StarGraphClosedForm) {
  // Center of a k-leaf star carries all leaf pairs: b = k(k-1) / (n(n-1)).
  const Vertex k = 6;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex leaf = 1; leaf <= k; ++leaf) edges.emplace_back(0, leaf);
  const BcResult result = brandes(from_edges(k + 1, edges));
  const double n = k + 1.0;
  EXPECT_NEAR(result.scores[0], k * (k - 1.0) / (n * (n - 1.0)), 1e-12);
  for (Vertex leaf = 1; leaf <= k; ++leaf)
    EXPECT_NEAR(result.scores[leaf], 0.0, 1e-12);
}

TEST(Brandes, CompleteGraphAllZero) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v) edges.emplace_back(u, v);
  const BcResult result = brandes(from_edges(6, edges));
  for (const double score : result.scores) EXPECT_NEAR(score, 0.0, 1e-12);
}

TEST(Brandes, CycleGraphUniform) {
  // By symmetry every cycle vertex has equal betweenness; for C_n with n
  // odd, each ordered pair at distance d has a unique shortest path with
  // d - 1 interior vertices. Total interior incidences: n * 2 * sum_{d=2}^{(n-1)/2} (d-1).
  const Vertex n = 9;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  const BcResult result = brandes(from_edges(n, edges));
  double interior_per_vertex = 0.0;
  for (Vertex d = 2; d <= (n - 1) / 2; ++d) interior_per_vertex += 2.0 * (d - 1);
  const double expected = interior_per_vertex / (n * (n - 1.0));
  for (const double score : result.scores)
    EXPECT_NEAR(score, expected, 1e-12);
}

TEST(Brandes, DiamondSplitsCredit) {
  // 4-cycle 0-1-3-2-0: every vertex carries half of the two shortest paths
  // of its antipodal pair, i.e. 2 ordered pairs x 1/2 = 1 -> b = 1/12.
  const Graph graph = from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const BcResult result = brandes(graph);
  for (Vertex v = 0; v < 4; ++v)
    EXPECT_NEAR(result.scores[v], 1.0 / 12.0, 1e-12) << "vertex " << v;
}

TEST(Brandes, DisconnectedGraphContributesPerComponent) {
  // Two 3-paths: middle vertices get betweenness from their own component
  // only; normalization is still global (n = 6).
  const Graph graph = from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const BcResult result = brandes(graph);
  EXPECT_NEAR(result.scores[1], 2.0 / (6.0 * 5.0), 1e-12);
  EXPECT_NEAR(result.scores[4], 2.0 / (6.0 * 5.0), 1e-12);
  EXPECT_NEAR(result.scores[0], 0.0, 1e-12);
}

TEST(Brandes, TinyGraphs) {
  EXPECT_TRUE(brandes(Graph{}).scores.empty());
  EXPECT_EQ(brandes(from_edges(1, {})).scores.size(), 1u);
  const BcResult pair = brandes(from_edges(2, {{0, 1}}));
  EXPECT_NEAR(pair.scores[0], 0.0, 1e-12);
  EXPECT_NEAR(pair.scores[1], 0.0, 1e-12);
}

TEST(Brandes, ScoresAreWithinTheoreticalRange) {
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(150, 400, 31));
  const BcResult result = brandes(graph);
  for (const double score : result.scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(BrandesParallel, MatchesSequentialOnRandomGraphs) {
  for (const std::uint64_t seed : {41ull, 42ull}) {
    const Graph graph =
        graph::largest_component(gen::erdos_renyi(200, 500, seed));
    const BcResult sequential = brandes(graph);
    for (const int threads : {2, 4, 8}) {
      const BcResult parallel = brandes_parallel(graph, threads);
      ASSERT_EQ(parallel.scores.size(), sequential.scores.size());
      for (std::size_t v = 0; v < sequential.scores.size(); ++v)
        EXPECT_NEAR(parallel.scores[v], sequential.scores[v], 1e-9);
    }
  }
}

TEST(BrandesParallel, MatchesSequentialOnPowerLaw) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 6.0;
  const Graph graph = graph::largest_component(gen::rmat(params, 17));
  const BcResult sequential = brandes(graph);
  const BcResult parallel = brandes_parallel(graph, 6);
  EXPECT_LT(parallel.max_abs_difference(sequential), 1e-9);
}

TEST(BrandesParallel, SingleThreadDegeneratesToSequential) {
  const graph::Graph graph = path_graph(20);
  EXPECT_LT(brandes_parallel(graph, 1).max_abs_difference(brandes(graph)),
            1e-12);
}

TEST(BcResult, TopKOrdersByScore) {
  const BcResult result = brandes(path_graph(9));
  const auto top = result.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 4u);  // path midpoint has the highest betweenness
  EXPECT_GE(result.scores[top[0]], result.scores[top[1]]);
  EXPECT_GE(result.scores[top[1]], result.scores[top[2]]);
}

TEST(BcResult, TopKClampsToSize) {
  const BcResult result = brandes(path_graph(4));
  EXPECT_EQ(result.top_k(100).size(), 4u);
}

}  // namespace
}  // namespace distbc::bc
