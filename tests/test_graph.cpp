// Unit tests for the CSR graph, builder, induced subgraphs, and IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace distbc::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail.
  return from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, EmptyGraph) {
  Graph graph;
  EXPECT_EQ(graph.num_vertices(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.average_degree(), 0.0);
  EXPECT_EQ(graph.max_degree(), 0u);
}

TEST(Graph, BasicProperties) {
  const Graph graph = triangle_plus_tail();
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_EQ(graph.num_arcs(), 8u);
  EXPECT_EQ(graph.degree(0), 2u);
  EXPECT_EQ(graph.degree(2), 3u);
  EXPECT_EQ(graph.degree(3), 1u);
  EXPECT_EQ(graph.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(graph.average_degree(), 2.0);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph graph = triangle_plus_tail();
  const auto adj = graph.neighbors(2);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0], 0u);
  EXPECT_EQ(adj[1], 1u);
  EXPECT_EQ(adj[2], 3u);
}

TEST(Graph, HasEdgeBothDirections) {
  const Graph graph = triangle_plus_tail();
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_FALSE(graph.has_edge(0, 3));
  EXPECT_FALSE(graph.has_edge(3, 0));
}

TEST(Builder, RemovesSelfLoops) {
  const Graph graph = from_edges(3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_FALSE(graph.has_edge(0, 0));
}

TEST(Builder, DeduplicatesParallelEdges) {
  const Graph graph =
      from_edges(2, {{0, 1}, {1, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(1), 1u);
}

TEST(Builder, IsolatedVerticesAllowed) {
  const Graph graph = from_edges(5, {{0, 1}});
  EXPECT_EQ(graph.num_vertices(), 5u);
  EXPECT_EQ(graph.degree(4), 0u);
  EXPECT_TRUE(graph.neighbors(4).empty());
}

TEST(Builder, PendingEdgesTracksAdds) {
  Builder builder(3);
  EXPECT_EQ(builder.pending_edges(), 0u);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  EXPECT_EQ(builder.pending_edges(), 2u);
}

TEST(InducedSubgraph, ExtractsAndRemaps) {
  const Graph graph = triangle_plus_tail();
  // Keep {1, 2, 3}: edges 1-2, 2-3 survive; ids remap to 0, 1, 2.
  const Graph sub = induced_subgraph(graph, {1, 2, 3});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(InducedSubgraph, EmptyKeepList) {
  const Graph graph = triangle_plus_tail();
  const Graph sub = induced_subgraph(graph, {});
  EXPECT_EQ(sub.num_vertices(), 0u);
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("distbc_io_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  const Graph graph = triangle_plus_tail();
  write_edge_list(graph, path_.string());
  const Graph loaded = read_edge_list(path_.string());
  EXPECT_EQ(loaded.num_vertices(), graph.num_vertices());
  EXPECT_EQ(loaded.num_edges(), graph.num_edges());
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    EXPECT_EQ(loaded.degree(v), graph.degree(v));
}

TEST_F(IoTest, EdgeListSkipsCommentsAndCompactsIds) {
  {
    std::ofstream out(path_);
    out << "# snap comment\n% konect comment\n10 20\n20 30\n";
  }
  const Graph graph = read_edge_list(path_.string());
  EXPECT_EQ(graph.num_vertices(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph graph = triangle_plus_tail();
  write_binary(graph, path_.string());
  const Graph loaded = read_binary(path_.string());
  EXPECT_EQ(loaded.num_vertices(), graph.num_vertices());
  EXPECT_EQ(loaded.num_arcs(), graph.num_arcs());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const auto a = graph.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_edge_list("/nonexistent/path/graph.txt"),
               std::runtime_error);
  EXPECT_THROW(read_binary("/nonexistent/path/graph.bin"),
               std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a distbc graph file at all";
  }
  EXPECT_THROW(read_binary(path_.string()), std::runtime_error);
}

TEST(GraphStats, DegreeStatsOnKnownGraph) {
  const Graph graph = triangle_plus_tail();
  const DegreeStats stats = degree_stats(graph);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.median, 2.0);
}

TEST(GraphStats, HistogramSumsToVertexCount) {
  const Graph graph = triangle_plus_tail();
  const auto histogram = degree_histogram(graph);
  std::uint64_t total = 0;
  for (const auto count : histogram) total += count;
  EXPECT_EQ(total, graph.num_vertices());
  EXPECT_EQ(histogram[3], 1u);  // exactly one degree-3 vertex
}

TEST(GraphStats, ClusteringCoefficientOnTriangleAndStar) {
  // Triangle: every wedge closes.
  const Graph triangle = from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(sampled_clustering_coefficient(triangle, 500, 1), 1.0);
  // Star: no wedge closes.
  const Graph star = from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(sampled_clustering_coefficient(star, 500, 1), 0.0);
}

TEST(Graph, MemoryBytesIsPlausible) {
  const Graph graph = triangle_plus_tail();
  // 5 offsets x 8B + 8 arcs x 4B.
  EXPECT_EQ(graph.memory_bytes(), 5 * 8 + 8 * 4u);
}

}  // namespace
}  // namespace distbc::graph
