// Tests for the service tier (src/service/): a concurrent SessionPool must
// be bitwise identical to a serial Session on the same query list (the
// pool changes throughput, never answers), admission control must reject
// with typed Statuses, the fair scheduler's dispatch order must be an
// exact function of weights and submission history, and warm-state
// persistence must survive a simulated restart with zero recalibration.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/session.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "mpisim/network.hpp"
#include "service/dispatcher.hpp"
#include "service/scheduler.hpp"
#include "service/session_pool.hpp"
#include "service/ticket.hpp"
#include "service/warm_store.hpp"

namespace distbc {
namespace {

graph::Graph service_graph(std::uint64_t seed = 777) {
  return graph::largest_component(gen::erdos_renyi(140, 420, seed));
}

/// The deterministic shape every identity test runs on: results must be
/// bitwise independent of which replica (thread) serves a query.
api::Config service_config(epoch::FrameRep rep = epoch::FrameRep::kDense) {
  api::Config config;
  config.ranks = 2;
  config.threads = 1;
  config.deterministic = true;
  config.virtual_streams = 4;
  config.epoch_base = 64;
  config.epoch_exponent = 0.0;
  config.frame_rep = rep;
  config.seed = 4321;
  config.network = mpisim::NetworkModel::disabled();
  config.service_pool_size = 2;
  return config;
}

/// A mixed trace: two betweenness queries (distinct statistical keys), one
/// closeness, one mean distance.
std::vector<api::Query> mixed_queries() {
  std::vector<api::Query> queries;
  api::BetweennessQuery bc1;
  bc1.epsilon = 0.05;
  queries.emplace_back(bc1);
  api::BetweennessQuery bc2;
  bc2.epsilon = 0.08;
  bc2.top_k = 5;
  queries.emplace_back(bc2);
  api::ClosenessRankQuery closeness;
  closeness.epsilon = 0.1;
  queries.emplace_back(closeness);
  api::MeanDistanceQuery mean;
  mean.epsilon = 0.2;
  queries.emplace_back(mean);
  return queries;
}

/// RAII scratch directory for warm-store tests.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("distbc_test_service_" + name))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// --- Pool vs serial session: bitwise identity --------------------------------

TEST(SessionPool, ConcurrentPoolMatchesSerialSessionBitwise) {
  const auto graph =
      std::make_shared<const graph::Graph>(service_graph());
  const std::vector<api::Query> queries = mixed_queries();

  for (const epoch::FrameRep rep :
       {epoch::FrameRep::kDense, epoch::FrameRep::kSparse,
        epoch::FrameRep::kAuto}) {
    const api::Config config = service_config(rep);

    // Serial reference: one session, in submission order.
    api::Session session(graph, config);
    std::vector<api::Result> serial;
    for (const api::Query& query : queries)
      serial.push_back(session.run(query));

    // Pool: all queries in flight at once over 2 replicas.
    service::SessionPool pool(graph, config);
    ASSERT_TRUE(pool.status().ok);
    std::vector<service::Ticket> tickets;
    for (const api::Query& query : queries)
      tickets.push_back(pool.submit(query, "tenant", "g"));
    pool.drain();

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const service::Response& response = tickets[i].wait();
      ASSERT_TRUE(response.status.ok) << response.status.message;
      ASSERT_TRUE(serial[i].status.ok);
      EXPECT_EQ(response.result.algorithm, serial[i].algorithm);
      ASSERT_EQ(response.result.scores.size(), serial[i].scores.size());
      for (std::size_t v = 0; v < serial[i].scores.size(); ++v)
        EXPECT_EQ(response.result.scores[v], serial[i].scores[v])
            << "rep=" << static_cast<int>(rep) << " query=" << i
            << " vertex=" << v;
      EXPECT_EQ(response.result.top_k, serial[i].top_k);
      EXPECT_EQ(response.result.mean, serial[i].mean);
      EXPECT_EQ(response.result.samples, serial[i].samples);
    }
    const service::PoolStats stats = pool.stats();
    EXPECT_EQ(stats.submitted, queries.size());
    EXPECT_EQ(stats.completed, queries.size());
    EXPECT_EQ(stats.rejected, 0u);
  }
}

TEST(SessionPool, SharesCalibrationsAcrossReplicas) {
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  service::SessionPool pool(graph, service_config());
  ASSERT_TRUE(pool.status().ok);

  // Same statistical key submitted more times than there are replicas:
  // once any replica has calibrated, the others must reuse, not recompute.
  api::BetweennessQuery query;
  query.epsilon = 0.05;
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 6; ++i)
    tickets.push_back(pool.submit(api::Query(query), "t", "g"));
  pool.drain();

  std::uint64_t reused = 0;
  for (const service::Ticket& ticket : tickets) {
    const service::Response& response = ticket.wait();
    ASSERT_TRUE(response.status.ok);
    if (response.result.calibration_reused) ++reused;
  }
  // At most one cold calibration per replica (2), and reuse accounting
  // must agree with the pool's counters.
  EXPECT_GE(reused, 4u);
  EXPECT_EQ(pool.stats().calibration_reuses, reused);
}

// --- Typed admission control -------------------------------------------------

TEST(Dispatcher, RejectsUnknownGraphAndOverflowWithTypedStatus) {
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  api::Config config = service_config();
  config.service_pool_size = 1;
  config.service_queue_capacity = 2;

  service::Dispatcher dispatcher;
  ASSERT_TRUE(dispatcher.bind("g", graph, config).ok);

  // Unknown graph: immediate typed rejection.
  api::BetweennessQuery query;
  query.epsilon = 0.05;
  const service::Ticket unknown =
      dispatcher.submit({"tenant", "nope", api::Query(query)});
  ASSERT_TRUE(unknown.done());
  EXPECT_FALSE(unknown.wait().status.ok);
  EXPECT_NE(unknown.wait().status.message.find("unknown graph id"),
            std::string::npos);

  // Paused, the scheduler accumulates; capacity 2 admits exactly 2.
  dispatcher.pause();
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 4; ++i)
    tickets.push_back(dispatcher.submit({"tenant", "g", api::Query(query)}));
  int rejected = 0;
  for (const service::Ticket& ticket : tickets) {
    if (ticket.done() && !ticket.wait().status.ok) {
      EXPECT_NE(ticket.wait().status.message.find("service queue full"),
                std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 2);

  dispatcher.resume();
  dispatcher.drain();
  for (const service::Ticket& ticket : tickets) {
    const service::Response& response = ticket.wait();
    if (response.status.ok) {
      EXPECT_TRUE(response.result.status.ok);
    }
  }
  const service::DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected_queue_full, 2u);
  EXPECT_EQ(stats.rejected_unknown_graph, 1u);
}

// --- Fair scheduling ---------------------------------------------------------

TEST(FairScheduler, EqualWeightsInterleaveDeterministically) {
  service::FairScheduler scheduler;
  for (std::uint64_t h : {1, 2, 3}) scheduler.push("alice", "g", h);
  for (std::uint64_t h : {4, 5, 6}) scheduler.push("bob", "g", h);
  EXPECT_EQ(scheduler.pending(), 6u);

  std::vector<std::uint64_t> order;
  while (auto handle = scheduler.pop("g")) order.push_back(*handle);
  // Ties on pass break by name: alice first, then strict alternation.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 4, 2, 5, 3, 6}));
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_FALSE(scheduler.pop("g").has_value());
  EXPECT_FALSE(scheduler.pop("other").has_value());
}

TEST(FairScheduler, WeightsControlTheDispatchShare) {
  service::FairScheduler scheduler;
  scheduler.set_weight("alice", 3.0);
  for (std::uint64_t h : {10, 11, 12, 13}) scheduler.push("alice", "g", h);
  for (std::uint64_t h : {20, 21, 22, 23}) scheduler.push("bob", "g", h);

  std::vector<std::uint64_t> order;
  while (auto handle = scheduler.pop("g")) order.push_back(*handle);
  // Stride scheduling at weights 3:1 - alice takes 3 of the first 4 slots.
  EXPECT_EQ(order,
            (std::vector<std::uint64_t>{10, 20, 11, 12, 13, 21, 22, 23}));
}

TEST(FairScheduler, IdleTenantsRebaseInsteadOfBankingCredit) {
  service::FairScheduler scheduler;
  scheduler.push("alice", "g", 1);
  scheduler.push("alice", "g", 2);
  EXPECT_EQ(scheduler.pop("g"), 1u);
  EXPECT_EQ(scheduler.pop("g"), 2u);

  // bob was idle while alice dispatched twice; joining now must not grant
  // bob the whole backlog - he re-bases onto the global pass.
  for (std::uint64_t h : {20, 21, 22}) scheduler.push("bob", "g", h);
  scheduler.push("alice", "g", 3);
  std::vector<std::uint64_t> order;
  while (auto handle = scheduler.pop("g")) order.push_back(*handle);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{20, 3, 21, 22}));
}

TEST(FairScheduler, QueuesAreIndependentPerGraph) {
  service::FairScheduler scheduler;
  scheduler.push("alice", "g1", 1);
  scheduler.push("alice", "g2", 2);
  EXPECT_EQ(scheduler.pending("g1"), 1u);
  EXPECT_EQ(scheduler.pending("g2"), 1u);
  EXPECT_EQ(scheduler.pop("g2"), 2u);
  EXPECT_EQ(scheduler.pop("g2"), std::nullopt);
  EXPECT_EQ(scheduler.pop("g1"), 1u);
}

TEST(Dispatcher, BacklogDispatchOrderFollowsTheScheduler) {
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  api::Config config = service_config();
  config.service_pool_size = 1;  // one slot: dispatch order == run order

  service::Dispatcher dispatcher(/*queue_capacity=*/16);
  ASSERT_TRUE(dispatcher.bind("g", graph, config).ok);
  dispatcher.set_tenant_weight("hot", 2.0);

  api::BetweennessQuery query;
  query.epsilon = 0.05;
  dispatcher.pause();
  std::vector<service::Ticket> hot;
  std::vector<service::Ticket> cold;
  for (int i = 0; i < 4; ++i)
    hot.push_back(dispatcher.submit({"hot", "g", api::Query(query)}));
  for (int i = 0; i < 2; ++i)
    cold.push_back(dispatcher.submit({"cold", "g", api::Query(query)}));
  dispatcher.resume();
  dispatcher.drain();

  // Weight 2 vs 1: passes hot {0,.5,1,1.5} / cold {0,1}; smallest
  // (pass, name) each slot gives cold, hot, hot, cold, hot, hot.
  std::vector<std::uint64_t> hot_sequences;
  std::vector<std::uint64_t> cold_sequences;
  for (const service::Ticket& ticket : hot) {
    ASSERT_TRUE(ticket.wait().status.ok);
    hot_sequences.push_back(ticket.wait().dispatch_sequence);
  }
  for (const service::Ticket& ticket : cold) {
    ASSERT_TRUE(ticket.wait().status.ok);
    cold_sequences.push_back(ticket.wait().dispatch_sequence);
  }
  std::sort(hot_sequences.begin(), hot_sequences.end());
  std::sort(cold_sequences.begin(), cold_sequences.end());
  EXPECT_EQ(hot_sequences, (std::vector<std::uint64_t>{2, 3, 5, 6}));
  EXPECT_EQ(cold_sequences, (std::vector<std::uint64_t>{1, 4}));
}

// --- Warm-state persistence --------------------------------------------------

/// A fresh calibration exported from a direct session (with provenance).
std::shared_ptr<const bc::KadabraWarmState> make_warm_state(
    const std::shared_ptr<const graph::Graph>& graph,
    const api::Config& config) {
  api::Session session(graph, config);
  api::BetweennessQuery query;
  query.epsilon = 0.05;
  const api::Result result = session.run(query);
  EXPECT_TRUE(result.status.ok);
  const auto states = session.calibrations();
  EXPECT_EQ(states.size(), 1u);
  return states.empty() ? nullptr : states.front();
}

TEST(WarmStore, RoundTripsBitExactAndKeysByFingerprint) {
  const ScratchDir dir("roundtrip");
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  const api::Config config = service_config();
  const auto state = make_warm_state(graph, config);
  ASSERT_NE(state, nullptr);
  ASSERT_NE(state->graph_fingerprint, 0u);  // provenance was recorded
  EXPECT_EQ(state->graph_fingerprint, graph::fingerprint(*graph));
  EXPECT_EQ(state->ranks, 2);
  EXPECT_TRUE(state->deterministic);
  EXPECT_EQ(state->virtual_streams, 4u);

  const service::WarmStore store(dir.path);
  ASSERT_TRUE(store.save(*state));

  const auto loaded = store.load_all(state->graph_fingerprint);
  ASSERT_EQ(loaded.size(), 1u);
  const bc::KadabraWarmState& restored = *loaded.front();

  // Bit-exact round trip: the restored calibration IS the saved one.
  EXPECT_EQ(restored.graph_fingerprint, state->graph_fingerprint);
  EXPECT_EQ(restored.ranks, state->ranks);
  EXPECT_EQ(restored.threads_per_rank, state->threads_per_rank);
  EXPECT_EQ(restored.deterministic, state->deterministic);
  EXPECT_EQ(restored.virtual_streams, state->virtual_streams);
  EXPECT_EQ(restored.vertex_diameter, state->vertex_diameter);
  EXPECT_EQ(restored.context.omega, state->context.omega);
  EXPECT_EQ(restored.context.initial_samples, state->context.initial_samples);
  EXPECT_EQ(restored.context.params.epsilon, state->context.params.epsilon);
  EXPECT_EQ(restored.context.params.seed, state->context.params.seed);
  EXPECT_EQ(restored.context.params.balancing,
            state->context.params.balancing);
  EXPECT_EQ(restored.sample_seconds, state->sample_seconds);
  EXPECT_EQ(restored.touched_words_per_sample,
            state->touched_words_per_sample);
  EXPECT_EQ(restored.context.calibration.predicted_tau,
            state->context.calibration.predicted_tau);
  ASSERT_EQ(restored.context.calibration.delta_l.size(),
            state->context.calibration.delta_l.size());
  for (std::size_t v = 0; v < state->context.calibration.delta_l.size();
       ++v) {
    EXPECT_EQ(restored.context.calibration.delta_l[v],
              state->context.calibration.delta_l[v]);
    EXPECT_EQ(restored.context.calibration.delta_u[v],
              state->context.calibration.delta_u[v]);
  }

  // Fingerprint keying: a different graph's fingerprint finds nothing.
  EXPECT_TRUE(store.load_all(state->graph_fingerprint ^ 1).empty());

  // No provenance, no persistence.
  const bc::KadabraWarmState unprovenanced;
  EXPECT_FALSE(store.save(unprovenanced));

  // Disabled store: everything is a no-op.
  const service::WarmStore disabled("");
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.save(*state));
  EXPECT_TRUE(disabled.load_all(state->graph_fingerprint).empty());
}

// Eviction caps: saves past max_entries / max_bytes remove the
// oldest-by-mtime .warm files, so the most recent calibrations (the new
// save included) always survive.
TEST(WarmStore, EvictsOldestByMtimePastTheCaps) {
  const ScratchDir dir("evict");
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  const auto state = make_warm_state(graph, service_config());
  ASSERT_NE(state, nullptr);

  // Seed five distinct states through an unbounded store (the key hash
  // covers the seed, so each lands in its own file), then backdate their
  // mtimes into a known oldest-to-newest order, all older than any
  // upcoming save.
  const service::WarmStore unbounded(dir.path);
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    bc::KadabraWarmState copy = *state;
    copy.context.params.seed = 1000 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(unbounded.save(copy));
    paths.push_back(unbounded.state_path(copy));
  }
  const auto now = std::filesystem::last_write_time(paths.back());
  for (int i = 0; i < 5; ++i)
    std::filesystem::last_write_time(
        paths[i], now - std::chrono::minutes(10 - i));

  // A save through a store capped at three entries keeps the new file
  // plus the two youngest seeds.
  const service::WarmStore capped(dir.path, /*max_entries=*/3);
  EXPECT_EQ(capped.max_entries(), 3u);
  bc::KadabraWarmState sixth = *state;
  sixth.context.params.seed = 2000;
  ASSERT_TRUE(capped.save(sixth));
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(std::filesystem::exists(paths[i]), i >= 3) << i;
  ASSERT_TRUE(std::filesystem::exists(capped.state_path(sixth)));

  // The byte cap evicts independently: sized for two files, a further
  // save leaves exactly the two newest.
  const auto file_bytes = std::filesystem::file_size(paths[4]);
  const service::WarmStore byte_capped(dir.path, /*max_entries=*/0,
                                       /*max_bytes=*/2 * file_bytes + 1);
  bc::KadabraWarmState seventh = *state;
  seventh.context.params.seed = 3000;
  ASSERT_TRUE(byte_capped.save(seventh));
  std::size_t remaining = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path + "/v1")) {
    remaining += entry.path().extension() == ".warm" ? 1 : 0;
  }
  EXPECT_EQ(remaining, 2u);
  EXPECT_TRUE(std::filesystem::exists(byte_capped.state_path(seventh)));

  // Both capped stores still load what survived.
  EXPECT_EQ(byte_capped.load_all(state->graph_fingerprint).size(), 2u);
}

// Equal mtimes (coarse filesystem timestamps are real) must not make the
// eviction order platform-dependent: ties break lexicographically by
// path, smallest evicted first.
TEST(WarmStore, EvictionTieBreaksEqualMtimesByPath) {
  const ScratchDir dir("evict_tie");
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  const auto state = make_warm_state(graph, service_config());
  ASSERT_NE(state, nullptr);

  // Four states whose files all carry the SAME backdated mtime.
  const service::WarmStore unbounded(dir.path);
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    bc::KadabraWarmState copy = *state;
    copy.context.params.seed = 1000 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(unbounded.save(copy));
    paths.push_back(unbounded.state_path(copy));
  }
  const auto stamp = std::filesystem::last_write_time(paths.back()) -
                     std::chrono::minutes(10);
  for (const std::string& path : paths)
    std::filesystem::last_write_time(path, stamp);
  std::vector<std::string> sorted = paths;
  std::sort(sorted.begin(), sorted.end());

  // A capped save keeps itself plus two: among the four equal-mtime
  // files, exactly the two lexicographically smallest paths go.
  const service::WarmStore capped(dir.path, /*max_entries=*/3);
  bc::KadabraWarmState fifth = *state;
  fifth.context.params.seed = 2000;
  ASSERT_TRUE(capped.save(fifth));
  EXPECT_FALSE(std::filesystem::exists(sorted[0]));
  EXPECT_FALSE(std::filesystem::exists(sorted[1]));
  EXPECT_TRUE(std::filesystem::exists(sorted[2]));
  EXPECT_TRUE(std::filesystem::exists(sorted[3]));
  EXPECT_TRUE(std::filesystem::exists(capped.state_path(fifth)));
}

TEST(WarmStore, PreloadRejectsMismatchedProvenance) {
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  const api::Config config = service_config();
  const auto state = make_warm_state(graph, config);
  ASSERT_NE(state, nullptr);
  const bc::KadabraParams params = state->context.params;

  // Mismatched statistical parameters.
  {
    api::Session session(graph, config);
    bc::KadabraParams other = params;
    other.epsilon = 0.2;
    const api::Status status = session.preload_calibration(other, state);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.message.find("KadabraParams"), std::string::npos);
  }
  // Different graph, same shape: fingerprint mismatch.
  {
    const auto other_graph =
        std::make_shared<const graph::Graph>(service_graph(999));
    api::Session session(other_graph, config);
    const api::Status status = session.preload_calibration(params, state);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.message.find("graph"), std::string::npos);
  }
  // Same graph, different cluster shape: the shape-change invalidation.
  {
    api::Config reshaped = config;
    reshaped.ranks = 3;
    api::Session session(graph, reshaped);
    const api::Status status = session.preload_calibration(params, state);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.message.find("shape"), std::string::npos);
  }
  // The exact original binding is accepted.
  {
    api::Session session(graph, config);
    EXPECT_TRUE(session.preload_calibration(params, state).ok);
  }
}

TEST(SessionPool, RestartWithWarmStorePerformsZeroCalibration) {
  const ScratchDir dir("restart");
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  api::Config config = service_config();
  config.service_warm_store = dir.path;

  api::BetweennessQuery query;
  query.epsilon = 0.05;
  std::vector<double> first_scores;
  {
    service::SessionPool pool(graph, config);
    ASSERT_TRUE(pool.status().ok);
    const service::Ticket ticket = pool.submit(api::Query(query));
    pool.drain();
    const service::Response& response = ticket.wait();
    ASSERT_TRUE(response.status.ok);
    EXPECT_FALSE(response.result.calibration_reused);
    EXPECT_GT(response.result.phases.seconds(Phase::kCalibration), 0.0);
    first_scores = response.result.scores;
    EXPECT_GE(pool.stats().store_saves, 1u);
  }  // "shutdown"

  // Restart: a new pool over the same store must serve the first query
  // from the persisted calibration - zero phase-1/2 work, same answer.
  service::SessionPool restarted(graph, config);
  ASSERT_TRUE(restarted.status().ok);
  EXPECT_GE(restarted.stats().store_states_loaded, 1u);
  const service::Ticket ticket = restarted.submit(api::Query(query));
  restarted.drain();
  const service::Response& response = ticket.wait();
  ASSERT_TRUE(response.status.ok);
  EXPECT_TRUE(response.result.calibration_reused);
  EXPECT_EQ(response.result.phases.seconds(Phase::kDiameter), 0.0);
  EXPECT_EQ(response.result.phases.seconds(Phase::kCalibration), 0.0);
  ASSERT_EQ(response.result.scores.size(), first_scores.size());
  for (std::size_t v = 0; v < first_scores.size(); ++v)
    EXPECT_EQ(response.result.scores[v], first_scores[v]);

  // A reshaped cluster must NOT reuse the stored state (invalidated by
  // provenance validation at load).
  api::Config reshaped = config;
  reshaped.ranks = 3;
  service::SessionPool reshaped_pool(graph, reshaped);
  ASSERT_TRUE(reshaped_pool.status().ok);
  EXPECT_EQ(reshaped_pool.stats().store_states_loaded, 0u);
  EXPECT_GE(reshaped_pool.stats().store_states_rejected, 1u);
}

// --- Per-query engine overrides ----------------------------------------------

TEST(SessionOverrides, MixedRepresentationsOnOneSessionStayBitwise) {
  const auto graph = std::make_shared<const graph::Graph>(service_graph());
  api::Session session(graph, service_config(epoch::FrameRep::kDense));

  api::BetweennessQuery query;
  query.epsilon = 0.05;
  const api::Result baseline = session.run(query);
  ASSERT_TRUE(baseline.status.ok);
  EXPECT_EQ(baseline.engine_used.frame_rep, epoch::FrameRep::kDense);

  // Same session, same calibration, different wire configuration: the
  // deterministic engine's invariants make this safe per query.
  api::BetweennessQuery overridden = query;
  overridden.engine.frame_rep = epoch::FrameRep::kSparse;
  overridden.engine.tree_radix = 3;
  overridden.engine.sample_batch = 8;
  const api::Result result = session.run(overridden);
  ASSERT_TRUE(result.status.ok);
  EXPECT_TRUE(result.calibration_reused);  // overrides don't split the key
  EXPECT_EQ(result.engine_used.frame_rep, epoch::FrameRep::kSparse);
  EXPECT_EQ(result.engine_used.tree_radix, 3);
  EXPECT_EQ(result.engine_used.sample_batch, 8);
  ASSERT_EQ(result.scores.size(), baseline.scores.size());
  for (std::size_t v = 0; v < baseline.scores.size(); ++v)
    EXPECT_EQ(result.scores[v], baseline.scores[v]);

  // Out-of-range overrides are typed errors, not asserts.
  api::BetweennessQuery bad_radix = query;
  bad_radix.engine.tree_radix = 1;
  EXPECT_FALSE(session.run(bad_radix).status.ok);
  api::BetweennessQuery bad_batch = query;
  bad_batch.engine.sample_batch = 65;
  EXPECT_FALSE(session.run(bad_batch).status.ok);
}

}  // namespace
}  // namespace distbc
