// Deeper mpisim coverage: mixed collectives on parent and child
// communicators, large buffers, request lifecycles, delayed completion
// under the network model, and hierarchical (window + leader) pipelines
// like the one §IV-E builds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <ctime>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "epoch/frame_codec.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/window.hpp"

namespace distbc::mpisim {
namespace {

RuntimeConfig quiet(int ranks, int per_node = 1) {
  RuntimeConfig config;
  config.num_ranks = ranks;
  config.ranks_per_node = per_node;
  config.network = NetworkModel::disabled();
  return config;
}

TEST(Collectives, InterleavedParentAndChildOps) {
  Runtime runtime(quiet(6, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    for (int round = 0; round < 20; ++round) {
      // Local reduce feeds into a world allreduce - the §IV-E pipeline.
      const std::vector<std::uint64_t> mine{1};
      std::vector<std::uint64_t> node_sum{0};
      local.reduce(std::span<const std::uint64_t>(mine),
                   std::span(node_sum), 0);
      std::uint64_t contribution = local.rank() == 0 ? node_sum[0] : 0;
      std::vector<std::uint64_t> total{0};
      world.allreduce(
          std::span<const std::uint64_t>(&contribution, 1), std::span(total));
      ASSERT_EQ(total[0], 6u);
    }
  });
}

TEST(Collectives, LeaderReduceMatchesFlatReduce) {
  Runtime runtime(quiet(8, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    Comm leaders = world.split_node_leaders();
    Window<std::uint64_t> window(local, 16);

    const std::vector<std::uint64_t> mine(16, world.rank() + 1);
    window.accumulate(std::span<const std::uint64_t>(mine));
    local.barrier();

    std::vector<std::uint64_t> hierarchical(16, 0);
    if (local.rank() == 0) {
      std::vector<std::uint64_t> node_sum(16);
      window.read(std::span(node_sum));
      leaders.reduce(std::span<const std::uint64_t>(node_sum),
                     std::span(hierarchical), 0);
    }

    std::vector<std::uint64_t> flat(16, 0);
    world.reduce(std::span<const std::uint64_t>(mine), std::span(flat), 0);

    if (world.rank() == 0) {
      for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(hierarchical[i], flat[i]);
    }
  });
}

TEST(Collectives, LargeBufferReduce) {
  constexpr std::size_t kCount = 1 << 18;  // 2 MiB of uint64 per rank
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> send(kCount);
    std::iota(send.begin(), send.end(), 0);
    std::vector<std::uint64_t> recv(kCount, 0);
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(recv[0], 0u);
      EXPECT_EQ(recv[kCount - 1], 4 * (kCount - 1));
      EXPECT_EQ(recv[12345], 4u * 12345);
    }
  });
}

TEST(Requests, SeveralOutstandingRequestsCompleteIndependently) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    // A barrier and a bcast in flight at once; they must be matched by
    // ticket order, not completion order.
    Request barrier = comm.ibarrier();
    std::uint8_t flag = comm.rank() == 1 ? 9 : 0;
    Request bcast = comm.ibcast(std::span{&flag, 1}, 1);
    bcast.wait();
    barrier.wait();
    EXPECT_EQ(flag, 9);
  });
}

TEST(Requests, CopiesShareCompletionState) {
  Runtime runtime(quiet(2));
  runtime.run([&](Comm& comm) {
    Request original = comm.ibarrier();
    Request copy = original;
    copy.wait();
    EXPECT_TRUE(original.test());  // same underlying operation
  });
}

TEST(NetworkModel, ReduceCompletionIsDelayedByBandwidth) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.network.remote_latency_s = 0.0;
  config.network.remote_bandwidth_bps = 1e6;  // 1 MB/s: 100 KB ~ 100 ms
  Runtime runtime(config);
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> send(12'500, 1);  // 100 KB
    std::vector<std::uint64_t> recv(12'500, 0);
    const auto start = std::chrono::steady_clock::now();
    Request request = comm.ireduce(std::span<const std::uint64_t>(send),
                                   std::span(recv), 0);
    std::uint64_t polls = 0;
    while (!request.test()) ++polls;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (comm.rank() == 0) {
      EXPECT_GE(elapsed, 0.05);  // root waits out the modeled transfer
      EXPECT_GT(polls, 0u);      // and had time to overlap work
    }
  });
}

TEST(NetworkModel, IntraNodeCheaperThanInterNode) {
  NetworkModel model;
  // Same rank count, different placement: 8 ranks on 1 node vs 8 nodes.
  const auto one_node = model.collective_cost(1 << 20, 8, 1);
  const auto many_nodes = model.collective_cost(1 << 20, 1, 8);
  EXPECT_LT(one_node.count(), many_nodes.count());
}

TEST(Split, RepeatedAndNestedSplits) {
  Runtime runtime(quiet(8, 4));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();  // 2 nodes x 4 ranks
    ASSERT_EQ(local.size(), 4);
    // Split the node communicator again by parity.
    Comm pair = local.split(local.rank() % 2, local.rank());
    ASSERT_TRUE(pair.valid());
    EXPECT_EQ(pair.size(), 2);
    const std::vector<std::uint64_t> one{1};
    std::vector<std::uint64_t> sum{0};
    pair.allreduce(std::span<const std::uint64_t>(one), std::span(sum));
    EXPECT_EQ(sum[0], 2u);
  });
}

TEST(Split, StatsArePerCommunicator) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    local.barrier();
    world.barrier();
    EXPECT_EQ(local.stats().barrier_calls.load(), 2u);   // 2 ranks/node
    EXPECT_EQ(world.stats().barrier_calls.load(), 4u);
  });
}

TEST(Window, ConcurrentAccumulatesAreAtomic) {
  Runtime runtime(quiet(8));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> window(comm, 64);
    const std::vector<std::uint64_t> one(64, 1);
    for (int i = 0; i < 100; ++i)
      window.accumulate(std::span<const std::uint64_t>(one));
    window.fence();
    std::vector<std::uint64_t> out(64);
    window.read(std::span(out));
    for (const auto value : out) EXPECT_EQ(value, 800u);
  });
}

TEST(Window, MultipleWindowsCoexist) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> a(comm, 4);
    Window<double> b(comm, 4);
    const std::vector<std::uint64_t> ones(4, 1);
    const std::vector<double> halves(4, 0.5);
    a.accumulate(std::span<const std::uint64_t>(ones));
    b.accumulate(std::span<const double>(halves));
    a.fence();
    std::vector<std::uint64_t> out_a(4);
    std::vector<double> out_b(4);
    a.read(std::span(out_a));
    b.read(std::span(out_b));
    EXPECT_EQ(out_a[0], 3u);
    EXPECT_DOUBLE_EQ(out_b[0], 1.5);
  });
}

TEST(Window, TouchedBitmapReadBackIsSparse) {
  Runtime runtime(quiet(2));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> window(comm, 256);
    // Rank r scatters pairs at overlapping indices.
    const std::vector<std::uint64_t> pairs{
        7, static_cast<std::uint64_t>(comm.rank() + 1), 200, 5};
    window.accumulate_pairs(std::span<const std::uint64_t>(pairs));
    window.fence();
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> touched;
      ASSERT_TRUE(window.read_touched_pairs(touched));
      // Ascending (index, value) pairs over the union of touched slots.
      ASSERT_EQ(touched,
                (std::vector<std::uint64_t>{7, 3, 200, 10}));
      window.clear_touched();
      touched.clear();
      ASSERT_TRUE(window.read_touched_pairs(touched));
      EXPECT_TRUE(touched.empty());
    }
    window.fence();
    // A dense accumulate flips the window to the O(V) read-back path.
    const std::vector<std::uint64_t> dense(256, 1);
    window.accumulate(std::span<const std::uint64_t>(dense));
    window.fence();
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> touched;
      EXPECT_FALSE(window.read_touched_pairs(touched));
      window.clear_touched();  // full sweep fallback
      std::vector<std::uint64_t> out(256);
      window.read(std::span(out));
      EXPECT_EQ(out[0], 0u);
      EXPECT_TRUE(window.read_touched_pairs(touched));  // tracking reset
      EXPECT_TRUE(touched.empty());
    }
  });
}

TEST(P2p, PingPongAcrossNodes) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& comm) {
    // 0 <-> 2 are on different nodes.
    if (comm.rank() == 0) {
      std::uint64_t value = 41;
      comm.send(std::span<const std::uint64_t>(&value, 1), 2, 5);
      std::uint64_t reply = 0;
      comm.recv(std::span(&reply, 1), 2, 6);
      EXPECT_EQ(reply, 42u);
    } else if (comm.rank() == 2) {
      std::uint64_t value = 0;
      comm.recv(std::span(&value, 1), 0, 5);
      ++value;
      comm.send(std::span<const std::uint64_t>(&value, 1), 0, 6);
    }
  });
}

// --- Variable-length collectives (sparse frame images) ----------------------

TEST(VariableLength, GathervDeliversPerRankPayloads) {
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    // Rank r contributes r+1 words holding its rank id.
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1,
        static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::vector<std::uint64_t>> gathered;
    comm.gatherv(std::span<const std::uint64_t>(mine), gathered, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(gathered[r].size(), static_cast<std::size_t>(r) + 1);
        for (const std::uint64_t word : gathered[r])
          EXPECT_EQ(word, static_cast<std::uint64_t>(r));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  // Non-root contributions cross the wire once: (2+3+4) words.
  EXPECT_EQ(runtime.last_world_stats().gatherv_bytes.load(), 9 * sizeof(std::uint64_t));
  EXPECT_EQ(runtime.last_world_stats().gatherv_calls.load(), 4u);
}

TEST(VariableLength, IgathervCompletesViaRequest) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine{
        static_cast<std::uint64_t>(comm.rank() * 10)};
    std::vector<std::vector<std::uint64_t>> gathered;
    Request request =
        comm.igatherv(std::span<const std::uint64_t>(mine), gathered, 0);
    while (!request.test()) {
    }
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(gathered[r].size(), 1u);
        EXPECT_EQ(gathered[r][0], static_cast<std::uint64_t>(r * 10));
      }
    }
  });
}

TEST(VariableLength, ReduceMergeVisitsContributionsInRankOrder) {
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1, 1);
    std::vector<int> order;
    std::uint64_t total = 0;
    comm.reduce_merge(
        std::span<const std::uint64_t>(mine),
        [&](int src, std::span<const std::uint64_t> payload) {
          order.push_back(src);
          for (const std::uint64_t word : payload) total += word;
        },
        0);
    if (comm.rank() == 0) {
      ASSERT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
      EXPECT_EQ(total, 1u + 2 + 3 + 4);
    } else {
      // Non-root callables are never invoked.
      EXPECT_TRUE(order.empty());
    }
  });
  EXPECT_EQ(runtime.last_world_stats().reduce_merge_bytes.load(),
            9 * sizeof(std::uint64_t));
  EXPECT_GT(runtime.last_world_stats().total_bytes(), 0u);
}

TEST(VariableLength, IreduceMergeMergesOnCompletingPoll) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    const std::uint64_t mine = static_cast<std::uint64_t>(comm.rank()) + 1;
    std::uint64_t total = 0;
    Request request = comm.ireduce_merge(
        std::span<const std::uint64_t>(&mine, 1),
        [&](int, std::span<const std::uint64_t> payload) {
          total += payload[0];
        },
        0);
    request.wait();
    if (comm.rank() == 0) { EXPECT_EQ(total, 6u); }
  });
}

TEST(VariableLength, RepeatedRoundsInterleaveWithFixedCollectives) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& comm) {
    for (int round = 0; round < 12; ++round) {
      const std::vector<std::uint64_t> mine(
          static_cast<std::size_t>(round % 3) + 1,
          static_cast<std::uint64_t>(comm.rank()));
      std::uint64_t merged = 0;
      comm.reduce_merge(
          std::span<const std::uint64_t>(mine),
          [&](int, std::span<const std::uint64_t> payload) {
            for (const std::uint64_t word : payload) merged += word;
          },
          0);
      std::uint8_t flag = comm.rank() == 0 ? 1 : 0;
      comm.bcast(std::span{&flag, 1}, 0);
      ASSERT_EQ(flag, 1);
      if (comm.rank() == 0) {
        const auto width = static_cast<std::uint64_t>(round % 3) + 1;
        EXPECT_EQ(merged, width * (0 + 1 + 2 + 3));
      }
    }
  });
}

// --- Tree-merge reductions ---------------------------------------------------

// Synthesizes rank r's sparse wire image: overlapping indices across ranks
// (every image shares index 0) so interior merging genuinely shrinks
// payloads.
std::vector<std::uint64_t> rank_image(int rank) {
  const auto r = static_cast<std::uint64_t>(rank);
  // Pairs (0, 1), (r+1, 2), (r+40, 7): ascending indices, slot 0 shared.
  return {epoch::kSparseTag, 3, 0, 1, r + 1, 2, r + 40, 7};
}

/// The codec combiner a real engine run would pass (dense space of 128
/// slots, densify at the dense-image crossover).
void combine_codec(std::vector<std::uint64_t>& acc,
                   std::span<const std::uint64_t> in) {
  epoch::merge_images(acc, in, /*dense_words=*/128, /*densify_threshold=*/1.0);
}

TEST(TreeMerge, MatchesFlatDecodeAcrossRadixes) {
  constexpr int kRanks = 16;
  const auto decode_run = [&](int radix) {
    std::vector<std::uint64_t> dense(128, 0);
    Runtime runtime(quiet(kRanks, 4));
    runtime.run([&](Comm& comm) {
      const std::vector<std::uint64_t> mine = rank_image(comm.rank());
      const auto merge = [&](int, std::span<const std::uint64_t> image) {
        epoch::decode_add_image(std::span<std::uint64_t>(dense), image);
      };
      if (radix == 0) {
        comm.reduce_merge(std::span<const std::uint64_t>(mine), merge, 0);
      } else {
        comm.reduce_merge_tree(std::span<const std::uint64_t>(mine),
                               combine_codec, merge, 0, radix);
      }
    });
    return std::pair{dense,
                     runtime.last_world_stats().root_ingest_bytes.load()};
  };

  const auto [flat, flat_ingest] = decode_run(0);
  EXPECT_EQ(flat[0], 16u * 1);  // every rank contributed at index 0
  for (const int radix : {2, 3, 4, 8}) {
    const auto [tree, tree_ingest] = decode_run(radix);
    EXPECT_EQ(tree, flat) << "radix " << radix;
    // Interior merging collapses the shared indices, so the root ingests
    // strictly less than the flat sum of all per-rank images.
    EXPECT_LT(tree_ingest, flat_ingest) << "radix " << radix;
  }
}

TEST(TreeMerge, RootConsumerSeesOwnPlusDirectChildren) {
  Runtime runtime(quiet(8));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine = rank_image(comm.rank());
    std::vector<int> sources;
    comm.reduce_merge_tree(
        std::span<const std::uint64_t>(mine), combine_codec,
        [&](int src, std::span<const std::uint64_t>) {
          sources.push_back(src);
        },
        0, 2);
    if (comm.rank() == 0) {
      // Radix-2 heap over 8 positions: the root's direct children are
      // positions (ranks) 1 and 2; everything else merged beneath them.
      EXPECT_EQ(sources, (std::vector<int>{0, 1, 2}));
    } else {
      EXPECT_TRUE(sources.empty());
    }
  });
  // Every non-root position sends its upward image exactly once.
  EXPECT_EQ(runtime.last_world_stats().tree_merge_calls.load(), 8u);
  EXPECT_GT(runtime.last_world_stats().reduce_merge_bytes.load(), 0u);
}

TEST(TreeMerge, NonZeroRootAndNonBlockingForm) {
  Runtime runtime(quiet(5));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> dense(128, 0);
    const std::vector<std::uint64_t> mine = rank_image(comm.rank());
    Request request = comm.ireduce_merge_tree(
        std::span<const std::uint64_t>(mine), combine_codec,
        [&](int, std::span<const std::uint64_t> image) {
          epoch::decode_add_image(std::span<std::uint64_t>(dense), image);
        },
        /*root=*/2, /*radix=*/3);
    request.wait();
    if (comm.rank() == 2) {
      EXPECT_EQ(dense[0], 5u);  // one contribution of 1 per rank at slot 0
      EXPECT_EQ(dense[3], 2u);  // rank 2's pair (index 2+1, value 2)
    } else {
      EXPECT_EQ(dense[0], 0u);
    }
  });
}

// --- All-reduce family (decentralized termination) ---------------------------
//
// The butterfly collectives exist so every rank can end an epoch holding
// the merged aggregate and evaluate the stop rule locally - no rooted
// reduce, no verdict broadcast. Their contracts: parity with the rooted
// composition they replace, and zero root_ingest_bytes (there is no root).

TEST(AllReduceFamily, AllreduceMatchesReduceThenBcastOnOddRanks) {
  // Non-power-of-two rank count: the butterfly must handle the ragged
  // stage without dropping or double-counting a contribution.
  Runtime runtime(quiet(5));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> mine(8);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<std::uint64_t>(comm.rank() + 1) * (i + 1);

    std::vector<std::uint64_t> everywhere(8, 0);
    comm.allreduce(std::span<const std::uint64_t>(mine),
                   std::span(everywhere));

    // The rooted composition decentralized termination replaced.
    std::vector<std::uint64_t> rooted(8, 0);
    comm.reduce(std::span<const std::uint64_t>(mine), std::span(rooted), 0);
    comm.bcast(std::span(rooted), 0);

    ASSERT_EQ(everywhere, rooted);
    EXPECT_EQ(everywhere[3], (1u + 2 + 3 + 4 + 5) * 4);
  });
  // Only the rooted reduce ingested at a root (four non-root frames of
  // eight words); the rootless butterfly charged nothing.
  EXPECT_EQ(runtime.last_world_stats().root_ingest_bytes.load(),
            4u * 8 * sizeof(std::uint64_t));
  EXPECT_EQ(runtime.last_world_stats().allreduce_calls.load(), 5u);
}

TEST(AllReduceFamily, ReduceScatterPlusAllGatherComposeToAllreduce) {
  constexpr std::size_t kBlock = 4;
  Runtime runtime(quiet(6, 3));
  runtime.run([&](Comm& comm) {
    const auto ranks = static_cast<std::size_t>(comm.size());
    std::vector<std::uint64_t> mine(kBlock * ranks);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<std::uint64_t>(comm.rank()) + i;

    // Halving phase: rank r keeps block r of the elementwise sum...
    std::vector<std::uint64_t> block(kBlock, 0);
    comm.reduce_scatter(std::span<const std::uint64_t>(mine),
                        std::span(block));
    // ...doubling phase: concatenate the blocks back at every rank.
    std::vector<std::uint64_t> composed(kBlock * ranks, 0);
    comm.all_gather(std::span<const std::uint64_t>(block),
                    std::span(composed));

    std::vector<std::uint64_t> direct(kBlock * ranks, 0);
    comm.allreduce(std::span<const std::uint64_t>(mine), std::span(direct));
    ASSERT_EQ(composed, direct);
    // Elementwise sum at index i: sum_r (r + i).
    EXPECT_EQ(direct[0], 0u + 1 + 2 + 3 + 4 + 5);
  });
  EXPECT_EQ(runtime.last_world_stats().reduce_scatter_calls.load(), 6u);
  EXPECT_EQ(runtime.last_world_stats().all_gather_calls.load(), 6u);
}

TEST(AllReduceFamily, AllreduceMergeGivesEveryRankTheRootedAggregate) {
  constexpr int kRanks = 5;
  // Every rank decodes the replayed contributions; rank order makes the
  // result bitwise identical to the rooted merge at rank 0.
  std::vector<std::vector<std::uint64_t>> dense(
      kRanks, std::vector<std::uint64_t>(128, 0));
  std::vector<std::vector<int>> sources(kRanks);
  std::vector<std::uint64_t> rooted(128, 0);
  Runtime runtime(quiet(kRanks));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine = rank_image(comm.rank());
    comm.allreduce_merge(
        std::span<const std::uint64_t>(mine),
        [&, r = comm.rank()](int src, std::span<const std::uint64_t> image) {
          sources[r].push_back(src);
          epoch::decode_add_image(std::span<std::uint64_t>(dense[r]), image);
        });
    comm.reduce_merge(
        std::span<const std::uint64_t>(mine),
        [&](int, std::span<const std::uint64_t> image) {
          epoch::decode_add_image(std::span<std::uint64_t>(rooted), image);
        },
        0);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(sources[r], (std::vector<int>{0, 1, 2, 3, 4})) << "rank " << r;
    EXPECT_EQ(dense[r], rooted) << "rank " << r;
  }
  EXPECT_EQ(runtime.last_world_stats().allreduce_merge_calls.load(),
            static_cast<std::uint64_t>(kRanks));
  // Only the rooted reduce_merge ingested at a root; the decentralized
  // merge contributed nothing to that counter.
  EXPECT_EQ(runtime.last_world_stats().root_ingest_bytes.load(),
            (kRanks - 1) * rank_image(1).size() * sizeof(std::uint64_t));
}

TEST(AllReduceFamily, NonBlockingFlavorsCompleteAtEveryRank) {
  Runtime runtime(quiet(6, 2));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> one{1, 2};
    std::vector<std::uint64_t> sum(2, 0);
    Request reduce = comm.iallreduce(std::span<const std::uint64_t>(one),
                                     std::span(sum));
    std::uint64_t merged = 0;
    Request merge = comm.iallreduce_merge(
        std::span<const std::uint64_t>(one),
        [&](int, std::span<const std::uint64_t> payload) {
          merged += payload[0] + payload[1];
        });
    // Completion out of post order: each request matches its own slot.
    merge.wait();
    reduce.wait();
    EXPECT_EQ(sum[0], 6u);
    EXPECT_EQ(sum[1], 12u);
    EXPECT_EQ(merged, 18u);  // all six (1 + 2) contributions replayed
  });
}

TEST(AllReduceFamily, ButterflySlotsReuseCleanlyAcrossRounds) {
  // Repeated rounds interleaving every butterfly flavor with the rooted
  // ones: slot reuse must not leak state between rounds or flavors.
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const std::uint64_t mine =
          static_cast<std::uint64_t>(comm.rank() + round);
      std::vector<std::uint64_t> sum{0};
      comm.allreduce(std::span<const std::uint64_t>(&mine, 1),
                     std::span(sum));
      ASSERT_EQ(sum[0], static_cast<std::uint64_t>(0 + 1 + 2 + 3 + 4 * round));

      std::uint64_t merged = 0;
      comm.allreduce_merge(
          std::span<const std::uint64_t>(&mine, 1),
          [&](int, std::span<const std::uint64_t> payload) {
            merged += payload[0];
          });
      ASSERT_EQ(merged, sum[0]);

      std::vector<std::uint64_t> rooted{0};
      comm.reduce(std::span<const std::uint64_t>(&mine, 1),
                  std::span(rooted), 0);
      if (comm.rank() == 0) { ASSERT_EQ(rooted[0], sum[0]); }
    }
  });
}

// --- Slot-protocol parity ----------------------------------------------------
//
// The §IV-F economics of the factored protocol must be identical across
// the reduction flavors: the same progression penalty stretches every
// non-blocking completion deadline, and the same poll tax burns CPU on
// every unsuccessful root poll.

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

TEST(SlotProtocol, ProgressionPenaltyIsUniformAcrossFlavors) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.network.remote_latency_s = 20e-3;  // modeled cost dominated by alpha
  config.network.remote_bandwidth_bps = 1e12;
  config.network.ireduce_progression_factor = 3.0;
  config.network.ireduce_poll_cost_s = 0.0;

  // Per flavor: elapsed wall time of the blocking call and of the
  // non-blocking wait(), measured at the root.
  struct Timing {
    double blocking_s = 0.0;
    double nonblocking_s = 0.0;
  };
  const auto time_flavor = [&](auto blocking, auto nonblocking) {
    Timing timing;
    Runtime runtime(config);
    runtime.run([&](Comm& comm) {
      const auto start = detail::Clock::now();
      blocking(comm);
      const auto mid = detail::Clock::now();
      Request request = nonblocking(comm);
      request.wait();
      const auto end = detail::Clock::now();
      if (comm.rank() == 0) {
        timing.blocking_s = std::chrono::duration<double>(mid - start).count();
        timing.nonblocking_s = std::chrono::duration<double>(end - mid).count();
      }
    });
    return timing;
  };

  const std::vector<std::uint64_t> payload(64, 1);
  std::vector<std::uint64_t> recv(64, 0);
  const auto merge = [](int, std::span<const std::uint64_t>) {};
  const Timing reduce = time_flavor(
      [&](Comm& comm) {
        comm.reduce(std::span<const std::uint64_t>(payload), std::span(recv),
                    0);
      },
      [&](Comm& comm) {
        return comm.ireduce(std::span<const std::uint64_t>(payload),
                            std::span(recv), 0);
      });
  const Timing mergev = time_flavor(
      [&](Comm& comm) {
        comm.reduce_merge(std::span<const std::uint64_t>(payload), merge, 0);
      },
      [&](Comm& comm) {
        return comm.ireduce_merge(std::span<const std::uint64_t>(payload),
                                  merge, 0);
      });
  const Timing tree = time_flavor(
      [&](Comm& comm) {
        comm.reduce_merge_tree(std::span<const std::uint64_t>(payload),
                               combine_codec, merge, 0, 2);
      },
      [&](Comm& comm) {
        return comm.ireduce_merge_tree(std::span<const std::uint64_t>(payload),
                                       combine_codec, merge, 0, 2);
      });

  // The blocking deadline is >= one modeled alpha; the non-blocking one is
  // stretched by the progression factor. Lower bounds only: upper bounds
  // are scheduler-dependent on a loaded host.
  for (const Timing& timing : {reduce, mergev}) {
    EXPECT_GE(timing.blocking_s, 0.9 * 20e-3);
    EXPECT_GE(timing.nonblocking_s, 0.9 * 3.0 * 20e-3);
  }
  // The tree charges per-hop point-to-point alphas along the critical
  // path (one hop at P=2), penalized identically when non-blocking.
  EXPECT_GE(tree.blocking_s, 0.9 * 20e-3);
  EXPECT_GE(tree.nonblocking_s, 0.9 * 3.0 * 20e-3);
}

TEST(SlotProtocol, PollTaxAccruesForEveryNonBlockingFlavor) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.network.remote_latency_s = 60e-3;  // stays pending through the polls
  config.network.remote_bandwidth_bps = 1e12;
  config.network.ireduce_poll_cost_s = 2e-3;

  const std::vector<std::uint64_t> payload(16, 1);
  const auto merge = [](int, std::span<const std::uint64_t>) {};
  const auto cpu_of_failed_polls = [&](auto start_op) {
    double cpu_s = 0.0;
    Runtime runtime(config);
    runtime.run([&](Comm& comm) {
      Request request = start_op(comm);
      if (comm.rank() == 0) {
        const double before = thread_cpu_seconds();
        for (int i = 0; i < 8; ++i) (void)request.test();
        cpu_s = thread_cpu_seconds() - before;
      }
      request.wait();
    });
    return cpu_s;
  };

  std::vector<std::uint64_t> recv(16, 0);
  const double reduce_cpu = cpu_of_failed_polls([&](Comm& comm) {
    return comm.ireduce(std::span<const std::uint64_t>(payload),
                        std::span(recv), 0);
  });
  const double mergev_cpu = cpu_of_failed_polls([&](Comm& comm) {
    return comm.ireduce_merge(std::span<const std::uint64_t>(payload), merge,
                              0);
  });
  const double tree_cpu = cpu_of_failed_polls([&](Comm& comm) {
    return comm.ireduce_merge_tree(std::span<const std::uint64_t>(payload),
                                   combine_codec, merge, 0, 2);
  });
  // Eight unsuccessful root polls burn ~8 x 2ms of modeled progression
  // CPU on every flavor. The spin deadline is wall time, so a descheduled
  // thread records less CPU - assert a third as the floor so loaded CI
  // hosts stay green while a missing poll tax (near-zero CPU) still fails.
  EXPECT_GE(reduce_cpu, 8 * 2e-3 / 3);
  EXPECT_GE(mergev_cpu, 8 * 2e-3 / 3);
  EXPECT_GE(tree_cpu, 8 * 2e-3 / 3);
}

TEST(SlotProtocol, OutstandingFlavorsMatchByTicketOrder) {
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    // Four different slot kinds in flight at once; completion out of post
    // order must still match each request to its own slot.
    Request barrier = comm.ibarrier();
    const std::vector<std::uint64_t> one{1};
    std::vector<std::uint64_t> sum{0};
    Request reduce = comm.ireduce(std::span<const std::uint64_t>(one),
                                  std::span(sum), 0);
    std::uint64_t merged = 0;
    Request merge = comm.ireduce_merge(
        std::span<const std::uint64_t>(one),
        [&](int, std::span<const std::uint64_t> payload) {
          merged += payload[0];
        },
        0);
    std::vector<std::uint64_t> dense(128, 0);
    const std::vector<std::uint64_t> image = rank_image(comm.rank());
    Request tree = comm.ireduce_merge_tree(
        std::span<const std::uint64_t>(image), combine_codec,
        [&](int, std::span<const std::uint64_t> img) {
          epoch::decode_add_image(std::span<std::uint64_t>(dense), img);
        },
        0, 2);
    tree.wait();
    merge.wait();
    reduce.wait();
    barrier.wait();
    if (comm.rank() == 0) {
      EXPECT_EQ(sum[0], 4u);
      EXPECT_EQ(merged, 4u);
      EXPECT_EQ(dense[0], 4u);
    }
  });
}

TEST(Runtime, ManyRanksStress) {
  Runtime runtime(quiet(24));
  std::atomic<std::uint64_t> total{0};
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> one{1};
    std::vector<std::uint64_t> sum{0};
    for (int round = 0; round < 10; ++round) {
      comm.allreduce(std::span<const std::uint64_t>(one), std::span(sum));
      ASSERT_EQ(sum[0], 24u);
    }
    total += sum[0];
  });
  EXPECT_EQ(total.load(), 24u * 24);
}

}  // namespace
}  // namespace distbc::mpisim
