// Deeper mpisim coverage: mixed collectives on parent and child
// communicators, large buffers, request lifecycles, delayed completion
// under the network model, and hierarchical (window + leader) pipelines
// like the one §IV-E builds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "mpisim/runtime.hpp"
#include "mpisim/window.hpp"

namespace distbc::mpisim {
namespace {

RuntimeConfig quiet(int ranks, int per_node = 1) {
  RuntimeConfig config;
  config.num_ranks = ranks;
  config.ranks_per_node = per_node;
  config.network = NetworkModel::disabled();
  return config;
}

TEST(Collectives, InterleavedParentAndChildOps) {
  Runtime runtime(quiet(6, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    for (int round = 0; round < 20; ++round) {
      // Local reduce feeds into a world allreduce - the §IV-E pipeline.
      const std::vector<std::uint64_t> mine{1};
      std::vector<std::uint64_t> node_sum{0};
      local.reduce(std::span<const std::uint64_t>(mine),
                   std::span(node_sum), 0);
      std::uint64_t contribution = local.rank() == 0 ? node_sum[0] : 0;
      std::vector<std::uint64_t> total{0};
      world.allreduce(
          std::span<const std::uint64_t>(&contribution, 1), std::span(total));
      ASSERT_EQ(total[0], 6u);
    }
  });
}

TEST(Collectives, LeaderReduceMatchesFlatReduce) {
  Runtime runtime(quiet(8, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    Comm leaders = world.split_node_leaders();
    Window<std::uint64_t> window(local, 16);

    const std::vector<std::uint64_t> mine(16, world.rank() + 1);
    window.accumulate(std::span<const std::uint64_t>(mine));
    local.barrier();

    std::vector<std::uint64_t> hierarchical(16, 0);
    if (local.rank() == 0) {
      std::vector<std::uint64_t> node_sum(16);
      window.read(std::span(node_sum));
      leaders.reduce(std::span<const std::uint64_t>(node_sum),
                     std::span(hierarchical), 0);
    }

    std::vector<std::uint64_t> flat(16, 0);
    world.reduce(std::span<const std::uint64_t>(mine), std::span(flat), 0);

    if (world.rank() == 0) {
      for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(hierarchical[i], flat[i]);
    }
  });
}

TEST(Collectives, LargeBufferReduce) {
  constexpr std::size_t kCount = 1 << 18;  // 2 MiB of uint64 per rank
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> send(kCount);
    std::iota(send.begin(), send.end(), 0);
    std::vector<std::uint64_t> recv(kCount, 0);
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(recv[0], 0u);
      EXPECT_EQ(recv[kCount - 1], 4 * (kCount - 1));
      EXPECT_EQ(recv[12345], 4u * 12345);
    }
  });
}

TEST(Requests, SeveralOutstandingRequestsCompleteIndependently) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    // A barrier and a bcast in flight at once; they must be matched by
    // ticket order, not completion order.
    Request barrier = comm.ibarrier();
    std::uint8_t flag = comm.rank() == 1 ? 9 : 0;
    Request bcast = comm.ibcast(std::span{&flag, 1}, 1);
    bcast.wait();
    barrier.wait();
    EXPECT_EQ(flag, 9);
  });
}

TEST(Requests, CopiesShareCompletionState) {
  Runtime runtime(quiet(2));
  runtime.run([&](Comm& comm) {
    Request original = comm.ibarrier();
    Request copy = original;
    copy.wait();
    EXPECT_TRUE(original.test());  // same underlying operation
  });
}

TEST(NetworkModel, ReduceCompletionIsDelayedByBandwidth) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.network.remote_latency_s = 0.0;
  config.network.remote_bandwidth_bps = 1e6;  // 1 MB/s: 100 KB ~ 100 ms
  Runtime runtime(config);
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> send(12'500, 1);  // 100 KB
    std::vector<std::uint64_t> recv(12'500, 0);
    const auto start = std::chrono::steady_clock::now();
    Request request = comm.ireduce(std::span<const std::uint64_t>(send),
                                   std::span(recv), 0);
    std::uint64_t polls = 0;
    while (!request.test()) ++polls;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (comm.rank() == 0) {
      EXPECT_GE(elapsed, 0.05);  // root waits out the modeled transfer
      EXPECT_GT(polls, 0u);      // and had time to overlap work
    }
  });
}

TEST(NetworkModel, IntraNodeCheaperThanInterNode) {
  NetworkModel model;
  // Same rank count, different placement: 8 ranks on 1 node vs 8 nodes.
  const auto one_node = model.collective_cost(1 << 20, 8, 1);
  const auto many_nodes = model.collective_cost(1 << 20, 1, 8);
  EXPECT_LT(one_node.count(), many_nodes.count());
}

TEST(Split, RepeatedAndNestedSplits) {
  Runtime runtime(quiet(8, 4));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();  // 2 nodes x 4 ranks
    ASSERT_EQ(local.size(), 4);
    // Split the node communicator again by parity.
    Comm pair = local.split(local.rank() % 2, local.rank());
    ASSERT_TRUE(pair.valid());
    EXPECT_EQ(pair.size(), 2);
    const std::vector<std::uint64_t> one{1};
    std::vector<std::uint64_t> sum{0};
    pair.allreduce(std::span<const std::uint64_t>(one), std::span(sum));
    EXPECT_EQ(sum[0], 2u);
  });
}

TEST(Split, StatsArePerCommunicator) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& world) {
    Comm local = world.split_by_node();
    local.barrier();
    world.barrier();
    EXPECT_EQ(local.stats().barrier_calls.load(), 2u);   // 2 ranks/node
    EXPECT_EQ(world.stats().barrier_calls.load(), 4u);
  });
}

TEST(Window, ConcurrentAccumulatesAreAtomic) {
  Runtime runtime(quiet(8));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> window(comm, 64);
    const std::vector<std::uint64_t> one(64, 1);
    for (int i = 0; i < 100; ++i)
      window.accumulate(std::span<const std::uint64_t>(one));
    window.fence();
    std::vector<std::uint64_t> out(64);
    window.read(std::span(out));
    for (const auto value : out) EXPECT_EQ(value, 800u);
  });
}

TEST(Window, MultipleWindowsCoexist) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> a(comm, 4);
    Window<double> b(comm, 4);
    const std::vector<std::uint64_t> ones(4, 1);
    const std::vector<double> halves(4, 0.5);
    a.accumulate(std::span<const std::uint64_t>(ones));
    b.accumulate(std::span<const double>(halves));
    a.fence();
    std::vector<std::uint64_t> out_a(4);
    std::vector<double> out_b(4);
    a.read(std::span(out_a));
    b.read(std::span(out_b));
    EXPECT_EQ(out_a[0], 3u);
    EXPECT_DOUBLE_EQ(out_b[0], 1.5);
  });
}

TEST(P2p, PingPongAcrossNodes) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& comm) {
    // 0 <-> 2 are on different nodes.
    if (comm.rank() == 0) {
      std::uint64_t value = 41;
      comm.send(std::span<const std::uint64_t>(&value, 1), 2, 5);
      std::uint64_t reply = 0;
      comm.recv(std::span(&reply, 1), 2, 6);
      EXPECT_EQ(reply, 42u);
    } else if (comm.rank() == 2) {
      std::uint64_t value = 0;
      comm.recv(std::span(&value, 1), 0, 5);
      ++value;
      comm.send(std::span<const std::uint64_t>(&value, 1), 0, 6);
    }
  });
}

// --- Variable-length collectives (sparse frame images) ----------------------

TEST(VariableLength, GathervDeliversPerRankPayloads) {
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    // Rank r contributes r+1 words holding its rank id.
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1,
        static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::vector<std::uint64_t>> gathered;
    comm.gatherv(std::span<const std::uint64_t>(mine), gathered, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(gathered[r].size(), static_cast<std::size_t>(r) + 1);
        for (const std::uint64_t word : gathered[r])
          EXPECT_EQ(word, static_cast<std::uint64_t>(r));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  // Non-root contributions cross the wire once: (2+3+4) words.
  EXPECT_EQ(runtime.last_world_stats().gatherv_bytes.load(), 9 * sizeof(std::uint64_t));
  EXPECT_EQ(runtime.last_world_stats().gatherv_calls.load(), 4u);
}

TEST(VariableLength, IgathervCompletesViaRequest) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine{
        static_cast<std::uint64_t>(comm.rank() * 10)};
    std::vector<std::vector<std::uint64_t>> gathered;
    Request request =
        comm.igatherv(std::span<const std::uint64_t>(mine), gathered, 0);
    while (!request.test()) {
    }
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(gathered[r].size(), 1u);
        EXPECT_EQ(gathered[r][0], static_cast<std::uint64_t>(r * 10));
      }
    }
  });
}

TEST(VariableLength, ReduceMergeVisitsContributionsInRankOrder) {
  Runtime runtime(quiet(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1, 1);
    std::vector<int> order;
    std::uint64_t total = 0;
    comm.reduce_merge(
        std::span<const std::uint64_t>(mine),
        [&](int src, std::span<const std::uint64_t> payload) {
          order.push_back(src);
          for (const std::uint64_t word : payload) total += word;
        },
        0);
    if (comm.rank() == 0) {
      ASSERT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
      EXPECT_EQ(total, 1u + 2 + 3 + 4);
    } else {
      // Non-root callables are never invoked.
      EXPECT_TRUE(order.empty());
    }
  });
  EXPECT_EQ(runtime.last_world_stats().reduce_merge_bytes.load(),
            9 * sizeof(std::uint64_t));
  EXPECT_GT(runtime.last_world_stats().total_bytes(), 0u);
}

TEST(VariableLength, IreduceMergeMergesOnCompletingPoll) {
  Runtime runtime(quiet(3));
  runtime.run([&](Comm& comm) {
    const std::uint64_t mine = static_cast<std::uint64_t>(comm.rank()) + 1;
    std::uint64_t total = 0;
    Request request = comm.ireduce_merge(
        std::span<const std::uint64_t>(&mine, 1),
        [&](int, std::span<const std::uint64_t> payload) {
          total += payload[0];
        },
        0);
    request.wait();
    if (comm.rank() == 0) EXPECT_EQ(total, 6u);
  });
}

TEST(VariableLength, RepeatedRoundsInterleaveWithFixedCollectives) {
  Runtime runtime(quiet(4, 2));
  runtime.run([&](Comm& comm) {
    for (int round = 0; round < 12; ++round) {
      const std::vector<std::uint64_t> mine(
          static_cast<std::size_t>(round % 3) + 1,
          static_cast<std::uint64_t>(comm.rank()));
      std::uint64_t merged = 0;
      comm.reduce_merge(
          std::span<const std::uint64_t>(mine),
          [&](int, std::span<const std::uint64_t> payload) {
            for (const std::uint64_t word : payload) merged += word;
          },
          0);
      std::uint8_t flag = comm.rank() == 0 ? 1 : 0;
      comm.bcast(std::span{&flag, 1}, 0);
      ASSERT_EQ(flag, 1);
      if (comm.rank() == 0) {
        const auto width = static_cast<std::uint64_t>(round % 3) + 1;
        EXPECT_EQ(merged, width * (0 + 1 + 2 + 3));
      }
    }
  });
}

TEST(Runtime, ManyRanksStress) {
  Runtime runtime(quiet(24));
  std::atomic<std::uint64_t> total{0};
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> one{1};
    std::vector<std::uint64_t> sum{0};
    for (int round = 0; round < 10; ++round) {
      comm.allreduce(std::span<const std::uint64_t>(one), std::span(sum));
      ASSERT_EQ(sum[0], 24u);
    }
    total += sum[0];
  });
  EXPECT_EQ(total.load(), 24u * 24);
}

}  // namespace
}  // namespace distbc::mpisim
