// Tests for KADABRA's statistical machinery: omega, the stopping functions
// f and g, the delta calibration, and the stop-condition evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bc/calibration.hpp"
#include "bc/kadabra_context.hpp"
#include "bc/kadabra_math.hpp"
#include "engine/streams.hpp"
#include "epoch/state_frame.hpp"

namespace distbc::bc {
namespace {

TEST(Omega, GrowsWithAccuracy) {
  const auto loose = compute_omega(10, 0.05, 0.1);
  const auto tight = compute_omega(10, 0.005, 0.1);
  // omega ~ 1/eps^2: two orders of magnitude.
  EXPECT_NEAR(static_cast<double>(tight) / loose, 100.0, 1.0);
}

TEST(Omega, GrowsWithDiameterLogarithmically) {
  const auto small = compute_omega(8, 0.01, 0.1);
  const auto big = compute_omega(1024, 0.01, 0.1);
  EXPECT_GT(big, small);
  // floor(log2(VD-2)) contributes ~7 extra units over the base.
  EXPECT_LT(static_cast<double>(big) / small, 5.0);
}

TEST(Omega, HandlesTinyDiameters) {
  // VD <= 2 must not underflow the log.
  EXPECT_GT(compute_omega(1, 0.01, 0.1), 0u);
  EXPECT_GT(compute_omega(2, 0.01, 0.1), 0u);
  EXPECT_GE(compute_omega(3, 0.01, 0.1), compute_omega(2, 0.01, 0.1));
}

TEST(Omega, MatchesClosedForm) {
  const double eps = 0.01;
  const double delta = 0.1;
  const std::uint32_t vd = 34;
  const double expected = 0.5 / (eps * eps) *
                          (std::floor(std::log2(vd - 2)) + 1.0 +
                           std::log(2.0 / delta));
  EXPECT_EQ(compute_omega(vd, eps, delta),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(StoppingF, DecreasesWithMoreSamples) {
  const double omega = 1e6;
  double previous = 1e9;
  for (const std::uint64_t tau : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const double value = stopping_f(0.01, 0.001, omega, tau);
    EXPECT_LT(value, previous);
    previous = value;
  }
}

TEST(StoppingG, DecreasesWithMoreSamples) {
  const double omega = 1e6;
  double previous = 1e9;
  for (const std::uint64_t tau : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const double value = stopping_g(0.01, 0.001, omega, tau);
    EXPECT_LT(value, previous);
    previous = value;
  }
}

TEST(StoppingFG, IncreaseWithBetweenness) {
  const double omega = 1e6;
  const std::uint64_t tau = 100000;
  EXPECT_LT(stopping_f(0.001, 0.01, omega, tau),
            stopping_f(0.1, 0.01, omega, tau));
  EXPECT_LT(stopping_g(0.001, 0.01, omega, tau),
            stopping_g(0.1, 0.01, omega, tau));
}

TEST(StoppingFG, IncreaseWithSmallerDelta) {
  const double omega = 1e6;
  const std::uint64_t tau = 100000;
  EXPECT_LT(stopping_f(0.01, 0.01, omega, tau),
            stopping_f(0.01, 1e-8, omega, tau));
  EXPECT_LT(stopping_g(0.01, 0.01, omega, tau),
            stopping_g(0.01, 1e-8, omega, tau));
}

TEST(StoppingFG, ZeroEstimateEdgeValues) {
  // For b~ = 0 the radical in f collapses: f(0) = 0 (an estimate of zero
  // cannot be an overestimate), while g keeps a positive radius via its
  // +1/3 terms (the vertex may merely be unseen so far).
  EXPECT_DOUBLE_EQ(stopping_f(0.0, 0.01, 1e6, 1000), 0.0);
  EXPECT_GT(stopping_g(0.0, 0.01, 1e6, 1000), 0.0);
}

TEST(StoppingFG, GDominatesFForZeroEstimate) {
  // g has the +1/3 terms, so for b~ = 0 it upper-bounds f.
  const double omega = 1e5;
  for (const std::uint64_t tau : {100ull, 1000ull, 10000ull}) {
    EXPECT_GE(stopping_g(0.0, 0.01, omega, tau),
              stopping_f(0.0, 0.01, omega, tau));
  }
}

TEST(Calibration, RespectsBudget) {
  std::vector<std::uint64_t> counts{50, 10, 0, 0, 3};
  const Calibration cal = calibrate(counts, 100, 0.05, 0.1, 0.01);
  EXPECT_LT(cal.budget_used(), 0.1);
  EXPECT_GT(cal.budget_used(), 0.0);
  ASSERT_EQ(cal.delta_l.size(), counts.size());
  for (std::size_t v = 0; v < counts.size(); ++v) {
    EXPECT_GT(cal.delta_l[v], 0.0);
    EXPECT_LT(cal.delta_l[v], 1.0);
    EXPECT_DOUBLE_EQ(cal.delta_l[v], cal.delta_u[v]);
  }
}

TEST(Calibration, HighBetweennessGetsLargerShare) {
  // Vertices that need more samples to converge receive a larger slice of
  // the failure budget (so their confidence radius shrinks faster).
  std::vector<std::uint64_t> counts{90, 0};
  const Calibration cal = calibrate(counts, 100, 0.05, 0.1, 0.01);
  EXPECT_GT(cal.delta_l[0], cal.delta_l[1]);
}

TEST(Calibration, UniformFloorProtectsUnseenVertices) {
  std::vector<std::uint64_t> counts(1000, 0);
  counts[0] = 100;
  const Calibration cal = calibrate(counts, 100, 0.01, 0.1, 0.01);
  // All-zero vertices share the same positive floor-dominated value.
  for (std::size_t v = 2; v < counts.size(); ++v)
    EXPECT_DOUBLE_EQ(cal.delta_l[1], cal.delta_l[v]);
  EXPECT_GE(cal.delta_l[1], 0.01 * 0.1 / (4.0 * 1000));
}

TEST(Calibration, PredictedTauScalesWithEpsilon) {
  std::vector<std::uint64_t> counts{50, 20, 5, 0};
  const Calibration loose = calibrate(counts, 100, 0.1, 0.1, 0.01);
  const Calibration tight = calibrate(counts, 100, 0.01, 0.1, 0.01);
  EXPECT_GT(tight.predicted_tau, loose.predicted_tau);
}

TEST(Context, BeginContextDerivesBudget) {
  KadabraParams params;
  params.epsilon = 0.05;
  params.delta = 0.1;
  const KadabraContext context = begin_context(params, 12);
  EXPECT_EQ(context.omega, compute_omega(12, 0.05, 0.1));
  EXPECT_GT(context.initial_samples, 0u);
  EXPECT_EQ(context.initial_samples, auto_initial_samples(context.omega));
}

TEST(Context, ExplicitInitialSamplesWin) {
  KadabraParams params;
  params.initial_samples = 777;
  const KadabraContext context = begin_context(params, 12);
  EXPECT_EQ(context.initial_samples, 777u);
}

TEST(Context, StopNotSatisfiedOnEmptyState) {
  KadabraParams params;
  params.epsilon = 0.05;
  KadabraContext context = begin_context(params, 10);
  epoch::StateFrame initial(4);
  for (int i = 0; i < 100; ++i) initial.record_empty();
  finish_calibration(context, initial);

  epoch::StateFrame aggregate(4);
  EXPECT_FALSE(context.stop_satisfied(aggregate));
}

TEST(Context, StopSatisfiedAtOmega) {
  KadabraParams params;
  params.epsilon = 0.05;
  KadabraContext context = begin_context(params, 10);
  epoch::StateFrame initial(4);
  for (int i = 0; i < 100; ++i) initial.record_empty();
  finish_calibration(context, initial);

  epoch::StateFrame aggregate(4);
  for (std::uint64_t i = 0; i < context.omega; ++i) aggregate.record_empty();
  EXPECT_TRUE(context.stop_satisfied(aggregate));
}

TEST(Context, StopEventuallySatisfiedBeforeOmegaOnEasyState) {
  // A state where every estimate is 0 converges before omega (g shrinks
  // as 1/tau for zero estimates).
  KadabraParams params;
  params.epsilon = 0.1;
  KadabraContext context = begin_context(params, 8);
  epoch::StateFrame initial(4);
  for (int i = 0; i < 200; ++i) initial.record_empty();
  finish_calibration(context, initial);

  epoch::StateFrame aggregate(4);
  bool stopped_early = false;
  for (std::uint64_t i = 0; i < context.omega; i += 50) {
    for (int k = 0; k < 50; ++k) aggregate.record_empty();
    if (context.stop_satisfied(aggregate)) {
      stopped_early = aggregate.tau() < context.omega;
      break;
    }
  }
  EXPECT_TRUE(stopped_early);
}

TEST(EpochLength, MatchesPaperRule) {
  // n0 = 1000 * (PT)^1.33 (paper §IV-D).
  EXPECT_EQ(engine::epoch_length(1000, 1.33, 1), 1000u);
  const double expected = 1000.0 * std::pow(24.0, 1.33);
  EXPECT_NEAR(static_cast<double>(engine::epoch_length(1000, 1.33, 24)),
              expected, 1.0);
  EXPECT_GT(engine::epoch_length(1000, 1.33, 384),
            engine::epoch_length(1000, 1.33, 24));
}

}  // namespace
}  // namespace distbc::bc
