// Tests for the distbc::api facade: Session::run must be bitwise identical
// to calling the drivers directly in deterministic mode (across frame
// representations and tree radixes), session reuse must skip recalibration
// (zero kDiameter/kCalibration phase time on the second query), and
// api::Config must resolve env < text < programmatic with unknown keys
// rejected.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "adaptive/closeness.hpp"
#include "adaptive/mean_distance.hpp"
#include "api/config.hpp"
#include "api/session.hpp"
#include "bc/brandes.hpp"
#include "bc/kadabra.hpp"
#include "comm/substrate.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "mpisim/runtime.hpp"

namespace distbc {
namespace {

graph::Graph api_graph() {
  return graph::largest_component(gen::erdos_renyi(140, 420, 777));
}

graph::Graph disconnected_graph() {
  graph::Builder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  return builder.finish();
}

/// The deterministic cluster shape the whole identity suite runs on.
api::Config deterministic_config(epoch::FrameRep rep, int tree_radix) {
  api::Config config;  // defaults only: the suite controls every knob
  config.ranks = 2;
  config.threads = 2;
  config.deterministic = true;
  config.virtual_streams = 4;
  config.epoch_base = 64;
  config.epoch_exponent = 0.0;
  config.frame_rep = rep;
  config.tree_radix = tree_radix;
  config.seed = 4321;
  config.network = mpisim::NetworkModel::disabled();
  return config;
}

// --- Bitwise identity: session vs direct driver calls ----------------------

TEST(SessionIdentity, BetweennessMatchesDirectDriverAcrossRepsAndRadixes) {
  const graph::Graph graph = api_graph();
  for (const epoch::FrameRep rep :
       {epoch::FrameRep::kDense, epoch::FrameRep::kSparse,
        epoch::FrameRep::kAuto}) {
    for (const int tree_radix : {0, 3}) {
      SCOPED_TRACE(std::string(epoch::frame_rep_name(rep)) + " radix " +
                   std::to_string(tree_radix));
      const api::Config config = deterministic_config(rep, tree_radix);

      // Direct arm: the per-rank driver on its own simulated cluster.
      bc::KadabraOptions options;
      options.params.epsilon = 0.15;
      options.params.seed = config.seed;
      options.engine = config.engine_options();
      mpisim::RuntimeConfig runtime_config;
      runtime_config.num_ranks = config.ranks;
      runtime_config.network = mpisim::NetworkModel::disabled();
      mpisim::Runtime runtime(runtime_config);
      bc::BcResult direct;
      runtime.run([&](auto& rank_comm) {
        const auto world =
            comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
        bc::BcResult local = bc::kadabra_mpi_rank(graph, options, *world);
        if (world->rank() == 0) direct = std::move(local);
      });

      // Facade arm.
      api::Session session(graph, config);
      api::BetweennessQuery query;
      query.epsilon = 0.15;
      const api::Result result = session.run(query);

      ASSERT_TRUE(result.status.ok) << result.status.message;
      EXPECT_EQ(result.algorithm, "kadabra");
      EXPECT_EQ(result.samples, direct.samples);
      EXPECT_EQ(result.epochs, direct.epochs);
      ASSERT_EQ(result.scores.size(), direct.scores.size());
      for (std::size_t v = 0; v < result.scores.size(); ++v)
        EXPECT_EQ(result.scores[v], direct.scores[v]) << "vertex " << v;
    }
  }
}

TEST(SessionIdentity, ClosenessMatchesDirectDriver) {
  const graph::Graph graph = api_graph();
  for (const epoch::FrameRep rep :
       {epoch::FrameRep::kDense, epoch::FrameRep::kSparse}) {
    SCOPED_TRACE(epoch::frame_rep_name(rep));
    const api::Config config = deterministic_config(rep, 0);

    adaptive::ClosenessParams params;
    params.epsilon = 0.1;
    params.seed = config.seed;
    params.engine = config.engine_options();
    mpisim::RuntimeConfig runtime_config;
    runtime_config.num_ranks = config.ranks;
    runtime_config.network = mpisim::NetworkModel::disabled();
    mpisim::Runtime runtime(runtime_config);
    adaptive::ClosenessResult direct;
    runtime.run([&](auto& rank_comm) {
      const auto world =
          comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
      adaptive::ClosenessResult local =
          adaptive::closeness_rank(graph, params, *world);
      if (world->rank() == 0) direct = std::move(local);
    });

    api::Session session(graph, config);
    api::ClosenessRankQuery query;
    query.epsilon = 0.1;
    const api::Result result = session.run(query);

    ASSERT_TRUE(result.status.ok) << result.status.message;
    EXPECT_EQ(result.algorithm, "closeness");
    EXPECT_EQ(result.samples, direct.samples);
    EXPECT_EQ(result.epochs, direct.epochs);
    ASSERT_EQ(result.scores.size(), direct.scores.size());
    for (std::size_t v = 0; v < result.scores.size(); ++v)
      EXPECT_EQ(result.scores[v], direct.scores[v]) << "vertex " << v;
  }
}

TEST(SessionIdentity, MeanDistanceMatchesDirectDriver) {
  const graph::Graph graph = api_graph();
  const api::Config config =
      deterministic_config(epoch::FrameRep::kDense, 0);

  adaptive::MeanDistanceParams params;
  params.epsilon = 0.2;
  params.seed = config.seed;
  params.engine = config.engine_options();
  mpisim::RuntimeConfig runtime_config;
  runtime_config.num_ranks = config.ranks;
  runtime_config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(runtime_config);
  adaptive::MeanDistanceResult direct;
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    adaptive::MeanDistanceResult local =
        adaptive::mean_distance_rank(graph, params, *world);
    if (world->rank() == 0) direct = local;
  });

  api::Session session(graph, config);
  api::MeanDistanceQuery query;
  query.epsilon = 0.2;
  const api::Result result = session.run(query);

  ASSERT_TRUE(result.status.ok) << result.status.message;
  EXPECT_EQ(result.algorithm, "mean_distance");
  EXPECT_EQ(result.mean, direct.mean);
  EXPECT_EQ(result.stddev, direct.stddev);
  EXPECT_EQ(result.samples, direct.samples);
}

// --- Session reuse ----------------------------------------------------------

TEST(SessionReuse, SecondQuerySkipsDiameterAndCalibrationEntirely) {
  const graph::Graph graph = api_graph();
  api::Session session(
      graph, deterministic_config(epoch::FrameRep::kDense, 0));
  api::BetweennessQuery query;
  query.epsilon = 0.15;

  const api::Result first = session.run(query);
  ASSERT_TRUE(first.status.ok) << first.status.message;
  EXPECT_FALSE(first.calibration_reused);
  EXPECT_GT(first.phases.seconds(Phase::kDiameter), 0.0);
  EXPECT_GT(first.phases.seconds(Phase::kCalibration), 0.0);

  const api::Result second = session.run(query);
  ASSERT_TRUE(second.status.ok) << second.status.message;
  EXPECT_TRUE(second.calibration_reused);
  // Zero additional calibration work of any kind: the phases-1-2 stats of
  // the second query are exactly zero.
  EXPECT_EQ(second.phases.seconds(Phase::kDiameter), 0.0);
  EXPECT_EQ(second.phases.seconds(Phase::kCalibration), 0.0);
  // Deterministic mode: reusing the cached calibration changes nothing.
  ASSERT_EQ(second.scores.size(), first.scores.size());
  for (std::size_t v = 0; v < first.scores.size(); ++v)
    EXPECT_EQ(second.scores[v], first.scores[v]);
  EXPECT_EQ(second.samples, first.samples);
  EXPECT_EQ(second.epochs, first.epochs);
}

TEST(SessionReuse, DifferentEpsilonCalibratesFresh) {
  const graph::Graph graph = api_graph();
  api::Session session(
      graph, deterministic_config(epoch::FrameRep::kDense, 0));
  api::BetweennessQuery query;
  query.epsilon = 0.15;
  ASSERT_TRUE(session.run(query).status.ok);
  query.epsilon = 0.12;  // new statistical key -> new calibration
  const api::Result other = session.run(query);
  ASSERT_TRUE(other.status.ok);
  EXPECT_FALSE(other.calibration_reused);
  EXPECT_GT(other.phases.seconds(Phase::kCalibration), 0.0);
}

TEST(SessionReuse, WarmStateRoundTripsThroughPreload) {
  const graph::Graph graph = api_graph();
  const api::Config config =
      deterministic_config(epoch::FrameRep::kDense, 0);
  bc::KadabraParams params;
  params.epsilon = 0.15;
  params.seed = config.seed;

  api::Session first_session(graph, config);
  api::BetweennessQuery query;
  query.epsilon = 0.15;
  const api::Result first = first_session.run(query);
  ASSERT_TRUE(first.status.ok);

  // A service restart: the warm state persists, the new session skips
  // phases 1-2 on its very first query.
  bc::KadabraOptions options;
  options.params = params;
  options.engine = config.engine_options();
  api::Session second_session(graph, config);
  const bc::BcResult seeded_direct = second_session.kadabra(options);
  ASSERT_NE(seeded_direct.warm, nullptr);

  api::Session third_session(graph, config);
  ASSERT_TRUE(
      third_session.preload_calibration(params, seeded_direct.warm).ok);
  const api::Result warm = third_session.run(query);
  ASSERT_TRUE(warm.status.ok);
  EXPECT_TRUE(warm.calibration_reused);
  EXPECT_EQ(warm.phases.seconds(Phase::kCalibration), 0.0);
  for (std::size_t v = 0; v < first.scores.size(); ++v)
    EXPECT_EQ(warm.scores[v], first.scores[v]);
}

TEST(SessionReuse, MeanDistanceRangeProbeRunsOnce) {
  const graph::Graph graph = api_graph();
  api::Session session(
      graph, deterministic_config(epoch::FrameRep::kDense, 0));
  api::MeanDistanceQuery query;
  query.epsilon = 0.3;
  const api::Result first = session.run(query);
  const api::Result second = session.run(query);
  ASSERT_TRUE(first.status.ok);
  ASSERT_TRUE(second.status.ok);
  // Deterministic engine + cached range: identical outcomes.
  EXPECT_EQ(second.mean, first.mean);
  EXPECT_EQ(second.samples, first.samples);
}

// --- Exact-Brandes fallback -------------------------------------------------

TEST(SessionDispatch, ExactQueryAndSmallGraphFallBackToBrandes) {
  const graph::Graph graph = api_graph();
  const bc::BcResult oracle = bc::brandes(graph);

  api::Config config;
  api::Session session(graph, config);
  api::BetweennessQuery exact_query;
  exact_query.exact = true;
  exact_query.top_k = 3;
  const api::Result exact = session.run(exact_query);
  ASSERT_TRUE(exact.status.ok);
  EXPECT_EQ(exact.algorithm, "brandes");
  ASSERT_EQ(exact.scores.size(), oracle.scores.size());
  for (std::size_t v = 0; v < oracle.scores.size(); ++v)
    EXPECT_EQ(exact.scores[v], oracle.scores[v]);
  ASSERT_EQ(exact.top_k.size(), 3u);
  EXPECT_EQ(exact.top_k.front().second, oracle.scores[oracle.top_k(1)[0]]);

  api::Config fallback_config;
  fallback_config.exact_threshold = graph.num_vertices();
  api::Session fallback_session(graph, fallback_config);
  const api::Result fallback = fallback_session.run(api::BetweennessQuery{});
  ASSERT_TRUE(fallback.status.ok);
  EXPECT_EQ(fallback.algorithm, "brandes");
}

// --- API-layer validation ---------------------------------------------------

TEST(SessionValidation, BadSubmissionsReturnStatusInsteadOfAborting) {
  const graph::Graph graph = api_graph();
  api::Session session(graph, api::Config{});

  api::BetweennessQuery bad_k;
  bad_k.top_k = graph.num_vertices() + 1;
  EXPECT_FALSE(session.run(bad_k).status.ok);
  EXPECT_NE(session.run(bad_k).status.message.find("top_k"),
            std::string::npos);

  api::BetweennessQuery bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_FALSE(session.run(bad_eps).status.ok);

  // KADABRA's budget math needs epsilon < 1; the driver would assert.
  api::BetweennessQuery huge_eps;
  huge_eps.epsilon = 1.0;
  EXPECT_FALSE(session.run(huge_eps).status.ok);
  // ...while mean distance measures hops: epsilon >= 1 is legitimate.
  api::MeanDistanceQuery coarse;
  coarse.epsilon = 2.0;
  EXPECT_TRUE(session.run(coarse).status.ok);

  api::MeanDistanceQuery bad_delta;
  bad_delta.delta = 1.0;
  EXPECT_FALSE(session.run(bad_delta).status.ok);
}

TEST(SessionValidation, TinyAndDisconnectedGraphsAreErrors) {
  graph::Builder tiny_builder(1);
  api::Session tiny(tiny_builder.finish(), api::Config{});
  const api::Result tiny_result = tiny.run(api::BetweennessQuery{});
  EXPECT_FALSE(tiny_result.status.ok);
  EXPECT_NE(tiny_result.status.message.find("fewer than 2"),
            std::string::npos);

  api::Session disconnected(disconnected_graph(), api::Config{});
  for (const api::Query query :
       {api::Query(api::BetweennessQuery{}),
        api::Query(api::ClosenessRankQuery{}),
        api::Query(api::MeanDistanceQuery{})}) {
    const api::Result result = disconnected.run(query);
    EXPECT_FALSE(result.status.ok);
    EXPECT_NE(result.status.message.find("not connected"),
              std::string::npos);
  }
  // The exact path has no connectivity requirement.
  api::BetweennessQuery exact_query;
  exact_query.exact = true;
  EXPECT_TRUE(disconnected.run(exact_query).status.ok);
}

TEST(SessionValidation, MismatchedRuntimeConfigFailsEveryQuery) {
  api::Config config;
  config.virtual_streams = 4;  // without deterministic mode: invalid
  api::Session session(api_graph(), config);
  EXPECT_FALSE(session.status().ok);
  const api::Result result = session.run(api::BetweennessQuery{});
  EXPECT_FALSE(result.status.ok);
  EXPECT_NE(result.status.message.find("deterministic"), std::string::npos);

  api::Config bad_radix;
  bad_radix.tree_radix = 1;
  EXPECT_FALSE(api::Session(api_graph(), bad_radix).status().ok);

  // The calibration layer requires balancing in (0, 1); zero must be
  // caught at session construction, not by a driver assert.
  api::Config zero_balancing;
  zero_balancing.balancing = 0.0;
  EXPECT_FALSE(api::Session(api_graph(), zero_balancing).status().ok);
}

// --- Config resolution ------------------------------------------------------

/// RAII environment override (restores the previous value).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ApiConfig, PrecedenceIsEnvThenTextThenProgrammatic) {
  const ScopedEnv env_base("DISTBC_EPOCH_BASE", "123");
  const ScopedEnv env_rep("DISTBC_FRAME_REP", "sparse");

  api::Config config = api::Config::from_env();
  EXPECT_EQ(config.epoch_base, 123u);
  EXPECT_EQ(config.frame_rep, epoch::FrameRep::kSparse);

  ASSERT_TRUE(config.load_text("# service overrides\n"
                               "epoch_base = 456\n"
                               "frame_rep = auto\n")
                  .ok);
  EXPECT_EQ(config.epoch_base, 456u);
  EXPECT_EQ(config.frame_rep, epoch::FrameRep::kAuto);

  ASSERT_TRUE(config.set("epoch_base", "789").ok);
  EXPECT_EQ(config.epoch_base, 789u);
  EXPECT_EQ(config.frame_rep, epoch::FrameRep::kAuto);  // untouched layer
}

TEST(ApiConfig, UnknownKeysAndMalformedValuesAreRejected) {
  api::Config config;
  const api::Status unknown = config.set("bogus_knob", "1");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.message.find("unknown config key"), std::string::npos);

  EXPECT_FALSE(config.load_text("frame_rep = dense\nbogus_knob = 1\n").ok);
  EXPECT_EQ(config.frame_rep, epoch::FrameRep::kDense);  // applied before stop

  EXPECT_FALSE(config.set("tree_radix", "1").ok);
  EXPECT_FALSE(config.set("frame_rep", "dens").ok);
  EXPECT_FALSE(config.set("ranks", "0").ok);
  EXPECT_FALSE(config.set("epoch_base", "12x").ok);
  EXPECT_FALSE(config.set("max_epochs", "-1").ok);  // no strtoull wrapping
  EXPECT_FALSE(config.set("seed", " 7").ok);
  EXPECT_FALSE(config.load_text("no equals sign here\n").ok);
}

TEST(ApiConfig, MalformedEnvironmentIsALoudError) {
  const ScopedEnv env("DISTBC_TREE_RADIX", "1");
  api::Config config;
  const api::Status status = config.load_env();
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("DISTBC_TREE_RADIX"), std::string::npos);
}

TEST(ApiConfig, SerializeRoundTrips) {
  api::Config config;
  config.frame_rep = epoch::FrameRep::kAuto;
  config.tree_radix = 4;
  config.aggregation = engine::Aggregation::kIreduce;
  config.epoch_base = 77;
  api::Config reparsed;
  ASSERT_TRUE(reparsed.load_text(config.serialize()).ok);
  EXPECT_EQ(reparsed.frame_rep, epoch::FrameRep::kAuto);
  EXPECT_EQ(reparsed.tree_radix, 4);
  EXPECT_EQ(reparsed.aggregation, engine::Aggregation::kIreduce);
  EXPECT_EQ(reparsed.epoch_base, 77u);
}

TEST(ApiConfig, EngineOptionsMappingIsComplete) {
  api::Config config;
  config.threads = 3;
  config.aggregation = engine::Aggregation::kBlocking;
  config.hierarchical = true;
  config.epoch_base = 11;
  config.epoch_exponent = 0.5;
  config.max_epoch_length = 99;
  config.max_epochs = 7;
  config.deterministic = true;
  config.virtual_streams = 5;
  config.frame_rep = epoch::FrameRep::kSparse;
  config.tree_radix = 2;
  config.local_aggregates = true;
  const engine::EngineOptions options = config.engine_options();
  EXPECT_EQ(options.threads_per_rank, 3);
  EXPECT_EQ(options.aggregation, engine::Aggregation::kBlocking);
  EXPECT_TRUE(options.hierarchical);
  EXPECT_EQ(options.epoch_base, 11u);
  EXPECT_EQ(options.epoch_exponent, 0.5);
  EXPECT_EQ(options.max_epoch_length, 99u);
  EXPECT_EQ(options.max_epochs, 7u);
  EXPECT_TRUE(options.deterministic);
  EXPECT_EQ(options.virtual_streams, 5u);
  EXPECT_EQ(options.frame_rep, epoch::FrameRep::kSparse);
  EXPECT_EQ(options.tree_radix, 2);
  EXPECT_TRUE(options.local_aggregates);
}

}  // namespace
}  // namespace distbc
