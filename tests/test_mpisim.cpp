// Tests for the simulated MPI substrate: collectives, requests, topology,
// point-to-point, windows, statistics, and the interconnect cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "mpisim/network.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/window.hpp"

namespace distbc::mpisim {
namespace {

RuntimeConfig quiet_config(int ranks, int ranks_per_node = 1) {
  RuntimeConfig config;
  config.num_ranks = ranks;
  config.ranks_per_node = ranks_per_node;
  config.network = NetworkModel::disabled();
  return config;
}

TEST(Runtime, RanksSeeTheirIdentity) {
  Runtime runtime(quiet_config(4, 2));
  std::vector<int> nodes(4, -1);
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_EQ(comm.num_nodes(), 2);
    nodes[comm.rank()] = comm.node();
  });
  EXPECT_EQ(nodes, (std::vector<int>{0, 0, 1, 1}));
}

TEST(Runtime, PropagatesExceptions) {
  Runtime runtime(quiet_config(3));
  // NB: a rank that throws abandons later collectives (like a crashed MPI
  // process), so the other ranks must not wait on it afterwards.
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    comm.barrier();
    if (comm.rank() == 1) throw std::runtime_error("rank 1 exploded");
  }),
               std::runtime_error);
}

TEST(Runtime, CanRunMultipleTimes) {
  Runtime runtime(quiet_config(2));
  for (int i = 0; i < 3; ++i) {
    std::atomic<int> visits{0};
    runtime.run([&](Comm&) { ++visits; });
    EXPECT_EQ(visits, 2);
  }
}

TEST(Reduce, SumsVectorsAtRoot) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send(16, comm.rank() + 1);
    std::vector<std::uint64_t> recv(16, 0);
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    if (comm.rank() == 0) {
      for (const auto value : recv) {
        EXPECT_EQ(value, 1u + 2 + 3 + 4);
      }
    }
  });
}

TEST(Reduce, MinAndMaxOps) {
  Runtime runtime(quiet_config(3));
  runtime.run([&](Comm& comm) {
    const std::vector<double> send{static_cast<double>(comm.rank() * 10)};
    std::vector<double> lo(1), hi(1);
    comm.reduce(std::span<const double>(send), std::span(lo), 0,
                ReduceOp::kMin);
    comm.reduce(std::span<const double>(send), std::span(hi), 0,
                ReduceOp::kMax);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(lo[0], 0.0);
      EXPECT_DOUBLE_EQ(hi[0], 20.0);
    }
  });
}

TEST(Reduce, NonRootBufferReusableAfterReturn) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> send(8, 1);
    std::vector<std::uint64_t> recv(8, 0);
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    // Clobber immediately; eager copy must have protected the data.
    std::fill(send.begin(), send.end(), 0xdeadbeef);
    comm.barrier();
    if (comm.rank() == 0) {
      for (const auto value : recv) {
        EXPECT_EQ(value, 4u);
      }
    }
  });
}

TEST(Reduce, RootCanDifferFromZero) {
  Runtime runtime(quiet_config(3));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send{1};
    std::vector<std::uint64_t> recv{0};
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 2);
    if (comm.rank() == 2) { EXPECT_EQ(recv[0], 3u); }
  });
}

TEST(Ireduce, CompletesAndSums) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send(4, comm.rank());
    std::vector<std::uint64_t> recv(4, 0);
    Request request = comm.ireduce(std::span<const std::uint64_t>(send),
                                   std::span(recv), 0);
    std::uint64_t spins = 0;
    while (!request.test()) ++spins;  // overlap loop
    if (comm.rank() == 0) {
      for (const auto value : recv) {
        EXPECT_EQ(value, 0u + 1 + 2 + 3);
      }
    }
    (void)spins;
  });
}

TEST(Ireduce, TestIsIdempotentAfterCompletion) {
  Runtime runtime(quiet_config(2));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send{5};
    std::vector<std::uint64_t> recv{0};
    Request request = comm.ireduce(std::span<const std::uint64_t>(send),
                                   std::span(recv), 0);
    request.wait();
    EXPECT_TRUE(request.test());
    EXPECT_TRUE(request.test());
    if (comm.rank() == 0) { EXPECT_EQ(recv[0], 10u); }
  });
}

TEST(Ibarrier, AllRanksPass) {
  Runtime runtime(quiet_config(8));
  std::atomic<int> passed{0};
  runtime.run([&](Comm& comm) {
    Request request = comm.ibarrier();
    request.wait();
    ++passed;
  });
  EXPECT_EQ(passed, 8);
}

TEST(Ibarrier, NotDoneUntilAllArrive) {
  Runtime runtime(quiet_config(2));
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request request = comm.ibarrier();
      // Rank 1 sleeps before posting; test() must report false meanwhile.
      EXPECT_FALSE(request.test());
      request.wait();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Request request = comm.ibarrier();
      request.wait();
    }
  });
}

TEST(Bcast, DeliversPayload) {
  Runtime runtime(quiet_config(5));
  runtime.run([&](Comm& comm) {
    std::vector<std::uint32_t> buffer(3, comm.rank() == 1 ? 7u : 0u);
    comm.bcast(std::span(buffer), 1);
    for (const auto value : buffer) {
      EXPECT_EQ(value, 7u);
    }
  });
}

TEST(Ibcast, OverlappedDelivery) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    std::uint8_t flag = comm.rank() == 0 ? 1 : 0;
    Request request = comm.ibcast(std::span{&flag, 1}, 0);
    while (!request.test()) {
    }
    EXPECT_EQ(flag, 1);
  });
}

TEST(Allreduce, EveryRankGetsTheSum) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send{static_cast<std::uint64_t>(
        comm.rank())};
    std::vector<std::uint64_t> recv{0};
    comm.allreduce(std::span<const std::uint64_t>(send), std::span(recv));
    EXPECT_EQ(recv[0], 6u);
  });
}

TEST(Collectives, ManyRoundsStayMatched) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    for (int round = 0; round < 100; ++round) {
      const std::vector<std::uint64_t> send{1};
      std::vector<std::uint64_t> recv{0};
      comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
      std::uint8_t flag = comm.rank() == 0 ? (recv[0] == 4 ? 1 : 0) : 0;
      comm.bcast(std::span{&flag, 1}, 0);
      ASSERT_EQ(flag, 1);
    }
  });
}

TEST(P2p, SendRecvDeliversInOrder) {
  Runtime runtime(quiet_config(2));
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 10; ++i) {
        const std::vector<std::uint64_t> message{i};
        comm.send(std::span<const std::uint64_t>(message), 1, 0);
      }
    } else {
      for (std::uint64_t i = 0; i < 10; ++i) {
        std::vector<std::uint64_t> message(1);
        comm.recv(std::span(message), 0, 0);
        EXPECT_EQ(message[0], i);
      }
    }
  });
}

TEST(P2p, TagsKeepStreamsApart) {
  Runtime runtime(quiet_config(2));
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint64_t> a{111};
      const std::vector<std::uint64_t> b{222};
      comm.send(std::span<const std::uint64_t>(a), 1, /*tag=*/1);
      comm.send(std::span<const std::uint64_t>(b), 1, /*tag=*/2);
    } else {
      std::vector<std::uint64_t> message(1);
      comm.recv(std::span(message), 0, /*tag=*/2);  // out of send order
      EXPECT_EQ(message[0], 222u);
      comm.recv(std::span(message), 0, /*tag=*/1);
      EXPECT_EQ(message[0], 111u);
    }
  });
}

TEST(Split, GroupsByColorOrderedByKey) {
  Runtime runtime(quiet_config(6));
  runtime.run([&](Comm& comm) {
    // Even ranks to color 0, odd to color 1; key reverses rank order.
    Comm child = comm.split(comm.rank() % 2, -comm.rank());
    ASSERT_TRUE(child.valid());
    EXPECT_EQ(child.size(), 3);
    // Highest old rank gets child rank 0 due to the negative key.
    if (comm.rank() == 4) { EXPECT_EQ(child.rank(), 0); }
    if (comm.rank() == 0) { EXPECT_EQ(child.rank(), 2); }
  });
}

TEST(Split, UndefinedColorYieldsInvalidComm) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    Comm child =
        comm.split(comm.rank() == 0 ? 0 : kUndefinedColor, comm.rank());
    EXPECT_EQ(child.valid(), comm.rank() == 0);
    if (child.valid()) { EXPECT_EQ(child.size(), 1); }
  });
}

TEST(Split, ByNodeAndLeaders) {
  Runtime runtime(quiet_config(6, 2));  // 3 nodes x 2 ranks
  runtime.run([&](Comm& comm) {
    Comm local = comm.split_by_node();
    ASSERT_TRUE(local.valid());
    EXPECT_EQ(local.size(), 2);
    EXPECT_EQ(local.rank(), comm.rank() % 2);

    Comm leaders = comm.split_node_leaders();
    if (comm.rank() % 2 == 0) {
      ASSERT_TRUE(leaders.valid());
      EXPECT_EQ(leaders.size(), 3);
      EXPECT_EQ(leaders.rank(), comm.rank() / 2);
    } else {
      EXPECT_FALSE(leaders.valid());
    }
  });
}

TEST(Split, ChildCollectivesWork) {
  Runtime runtime(quiet_config(4, 2));
  runtime.run([&](Comm& comm) {
    Comm local = comm.split_by_node();
    const std::vector<std::uint64_t> send{1};
    std::vector<std::uint64_t> recv{0};
    local.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    if (local.rank() == 0) { EXPECT_EQ(recv[0], 2u); }
  });
}

TEST(Window, AccumulateAndRead) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> window(comm, 8);
    const std::vector<std::uint64_t> mine(8, comm.rank() + 1);
    window.accumulate(std::span<const std::uint64_t>(mine));
    window.fence();
    std::vector<std::uint64_t> out(8);
    window.read(std::span(out));
    for (const auto value : out) {
      EXPECT_EQ(value, 1u + 2 + 3 + 4);
    }
  });
}

TEST(Window, ClearResets) {
  Runtime runtime(quiet_config(2));
  runtime.run([&](Comm& comm) {
    Window<std::uint64_t> window(comm, 4);
    const std::vector<std::uint64_t> mine(4, 5);
    window.accumulate(std::span<const std::uint64_t>(mine));
    window.fence();
    if (comm.rank() == 0) window.clear();
    window.fence();
    std::vector<std::uint64_t> out(4);
    window.read(std::span(out));
    for (const auto value : out) {
      EXPECT_EQ(value, 0u);
    }
  });
}

TEST(Stats, CountsCallsAndBytes) {
  Runtime runtime(quiet_config(4));
  runtime.run([&](Comm& comm) {
    const std::vector<std::uint64_t> send(100, 1);
    std::vector<std::uint64_t> recv(100, 0);
    comm.reduce(std::span<const std::uint64_t>(send), std::span(recv), 0);
    comm.barrier();
  });
  const CommStats& stats = runtime.last_world_stats();
  EXPECT_EQ(stats.reduce_calls.load(), 4u);
  EXPECT_EQ(stats.barrier_calls.load(), 4u);
  // 3 non-root ranks x 800 bytes.
  EXPECT_EQ(stats.reduce_bytes.load(), 3u * 100 * sizeof(std::uint64_t));
}

TEST(NetworkModel, CostsScaleWithSizeAndTopology) {
  NetworkModel model;  // enabled defaults
  const auto small = model.collective_cost(1024, 1, 16);
  const auto large = model.collective_cost(1024 * 1024, 1, 16);
  EXPECT_LT(small.count(), large.count());

  const auto few_nodes = model.collective_cost(1024, 1, 2);
  const auto many_nodes = model.collective_cost(1024, 1, 16);
  EXPECT_LT(few_nodes.count(), many_nodes.count());

  const auto local = model.message_cost(4096, /*same_node=*/true);
  const auto remote = model.message_cost(4096, /*same_node=*/false);
  EXPECT_LT(local.count(), remote.count());
}

TEST(NetworkModel, DisabledIsFree) {
  const NetworkModel model = NetworkModel::disabled();
  EXPECT_EQ(model.collective_cost(1 << 20, 2, 16).count(), 0);
  EXPECT_EQ(model.message_cost(1 << 20, false).count(), 0);
}

TEST(NetworkModel, EnabledDelaysBarrier) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.network.remote_latency_s = 20e-3;  // exaggerated for testability
  Runtime runtime(config);
  runtime.run([&](Comm& comm) {
    const auto start = std::chrono::steady_clock::now();
    comm.barrier();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.015);
  });
}

TEST(Stats, ChargesBlockedWaitTime) {
  RuntimeConfig config;
  config.num_ranks = 2;
  config.ranks_per_node = 2;
  config.network.local_latency_s = 5e-3;  // exaggerated for testability
  Runtime runtime(config);
  runtime.run([&](Comm& comm) {
    // Topology accessors reflect the deployment shape.
    EXPECT_EQ(comm.max_ranks_per_node(), 2);
    EXPECT_GT(comm.modeled_collective_seconds(1024), 0.0);

    std::uint64_t send = 1;
    std::uint64_t recv = 0;
    comm.reduce(std::span<const std::uint64_t>(&send, 1),
                std::span{&recv, 1}, 0);
    comm.barrier();
  });
  // Blocking collectives charged their wall time to the wait counters.
  const CommStats& stats = runtime.last_world_stats();
  EXPECT_GT(stats.reduce_wait_ns.load(), 0u);
  EXPECT_GT(stats.barrier_wait_ns.load(), 0u);
  EXPECT_GT(stats.total_wait_seconds(), 0.0);
}

}  // namespace
}  // namespace distbc::mpisim
