// Tests for src/dynamic/: EdgeBatch validation must reject every batch
// that could corrupt the CSR or the ledger accounting, MutableGraph must
// serve small batches in place and rebuild on slot overflow (and revert
// exactly), IncrementalBc must keep clean samples across churn, replay
// bitwise-deterministically, and recalibrate only on a violated
// vertex-diameter bound, Bloom sketch false positives must cost only
// extra resamples (never wrong scores), and the Session/pool/dispatcher
// apply paths must reject typed and stay bitwise identical across pool
// sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/config.hpp"
#include "api/session.hpp"
#include "dynamic/dynamic_state.hpp"
#include "dynamic/edge_batch.hpp"
#include "dynamic/incremental_bc.hpp"
#include "dynamic/mutable_graph.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "graph/stats.hpp"
#include "service/dispatcher.hpp"
#include "service/session_pool.hpp"
#include "support/random.hpp"

namespace distbc {
namespace {

graph::Graph churn_graph(std::uint64_t seed = 777) {
  return graph::largest_component(gen::erdos_renyi(120, 360, seed));
}

bc::KadabraParams churn_params(double epsilon = 0.1) {
  bc::KadabraParams params;
  params.epsilon = epsilon;
  params.delta = 0.1;
  params.seed = 0x5eed;
  params.exact_diameter = true;
  return params;
}

dynamic::SketchParams exact_sketch() {
  dynamic::SketchParams sketch;
  sketch.exact_cap = 1u << 20;  // every record stays an exact sorted list
  return sketch;
}

dynamic::SketchParams bloom_sketch() {
  dynamic::SketchParams sketch;
  sketch.exact_cap = 0;  // every record falls back to a Bloom filter
  return sketch;
}

/// First missing edge (u, v) with u < v and u >= `from`.
dynamic::Edge missing_edge(const graph::Graph& graph, graph::Vertex from = 0) {
  for (graph::Vertex u = from; u < graph.num_vertices(); ++u)
    for (graph::Vertex v = u + 1; v < graph.num_vertices(); ++v)
      if (!graph.has_edge(u, v)) return {u, v};
  ADD_FAILURE() << "graph is complete";
  return {0, 0};
}

/// First present edge (u, v) with u < v and u >= `from`.
dynamic::Edge present_edge(const graph::Graph& graph, graph::Vertex from = 0) {
  for (graph::Vertex u = from; u < graph.num_vertices(); ++u)
    for (const graph::Vertex v : graph.neighbors(u))
      if (v > u) return {u, v};
  ADD_FAILURE() << "graph is empty";
  return {0, 0};
}

/// A batch of `count` random absent edges (deterministic in `rng`), none
/// already queued in `taken`.
dynamic::EdgeBatch random_insert_batch(const graph::Graph& graph, int count,
                                       Rng& rng,
                                       std::vector<dynamic::Edge>* inserted) {
  dynamic::EdgeBatch batch;
  int added = 0;
  while (added < count) {
    auto [a, b] = rng.next_distinct_pair(graph.num_vertices());
    const dynamic::Edge edge{
        static_cast<graph::Vertex>(std::min(a, b)),
        static_cast<graph::Vertex>(std::max(a, b))};
    if (graph.has_edge(edge.u, edge.v)) continue;
    bool taken = false;
    for (const dynamic::Edge& seen : *inserted)
      taken |= seen == edge;
    if (taken) continue;
    batch.insert(edge.u, edge.v);
    inserted->push_back(edge);
    ++added;
  }
  return batch;
}

// --- EdgeBatch validation ----------------------------------------------------

TEST(EdgeBatch, ValidationRejectsEveryMalformedBatch) {
  const graph::Graph graph = churn_graph();
  const dynamic::Edge absent = missing_edge(graph);
  const dynamic::Edge existing = present_edge(graph);

  {
    dynamic::EdgeBatch batch;  // empty batches validate (apply rejects them)
    EXPECT_TRUE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;
    batch.insert(3, 3);  // self-loop
    EXPECT_FALSE(batch.validate(graph).ok);
    EXPECT_FALSE(batch.validated());
  }
  {
    dynamic::EdgeBatch batch;
    batch.insert(0, graph.num_vertices());  // endpoint out of range
    EXPECT_FALSE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;  // duplicate (orientation-insensitive)
    batch.insert(absent.u, absent.v);
    batch.insert(absent.v, absent.u);
    EXPECT_FALSE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;  // same edge inserted AND deleted
    batch.insert(absent.u, absent.v);
    batch.remove(absent.u, absent.v);
    EXPECT_FALSE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;  // inserting an edge the graph already has
    batch.insert(existing.u, existing.v);
    EXPECT_FALSE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;  // deleting an edge the graph lacks
    batch.remove(absent.u, absent.v);
    EXPECT_FALSE(batch.validate(graph).ok);
  }
  {
    dynamic::EdgeBatch batch;  // a well-formed batch seals...
    batch.insert(absent.v, absent.u);  // free orientation
    batch.remove(existing.u, existing.v);
    ASSERT_TRUE(batch.validate(graph).ok);
    EXPECT_TRUE(batch.validated());
    EXPECT_EQ(batch.inserts().front(), absent);  // normalized to u < v
    batch.insert(5, 7);  // ...and any later edit un-seals it
    EXPECT_FALSE(batch.validated());
  }
}

// --- MutableGraph -------------------------------------------------------------

TEST(MutableGraph, ServesInPlaceRebuildOnOverflowAndRevertsExactly) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  const std::uint64_t fp0 = graph::fingerprint(*initial);
  dynamic::MutableGraph mutable_graph(initial);
  EXPECT_EQ(mutable_graph.version(), 0u);

  // One insert + one delete fit every vertex's slack slots: in place.
  const dynamic::Edge added = missing_edge(*initial);
  const dynamic::Edge dropped = present_edge(*initial);
  dynamic::EdgeBatch small;
  small.insert(added.u, added.v);
  small.remove(dropped.u, dropped.v);
  ASSERT_TRUE(small.validate(*initial).ok);
  EXPECT_TRUE(mutable_graph.apply(small));
  EXPECT_EQ(mutable_graph.stats().in_place, 1u);
  EXPECT_EQ(mutable_graph.version(), 1u);
  EXPECT_NE(mutable_graph.fingerprint(), fp0);
  EXPECT_TRUE(mutable_graph.snapshot()->has_edge(added.u, added.v));
  EXPECT_FALSE(mutable_graph.snapshot()->has_edge(dropped.u, dropped.v));
  EXPECT_EQ(mutable_graph.snapshot()->num_edges(), initial->num_edges());

  // revert() restores the exact edge set - the content fingerprint is the
  // original one again.
  mutable_graph.revert(small);
  EXPECT_EQ(mutable_graph.fingerprint(), fp0);
  EXPECT_FALSE(mutable_graph.snapshot()->has_edge(added.u, added.v));
  EXPECT_TRUE(mutable_graph.snapshot()->has_edge(dropped.u, dropped.v));

  // Concentrating many inserts on one vertex overflows its slots: the
  // apply takes the rebuild path and every edge still lands.
  const graph::Vertex hub = 0;
  dynamic::EdgeBatch heavy;
  int queued = 0;
  for (graph::Vertex v = 1; v < initial->num_vertices() && queued < 24; ++v) {
    if (mutable_graph.snapshot()->has_edge(hub, v)) continue;
    heavy.insert(hub, v);
    ++queued;
  }
  ASSERT_EQ(queued, 24);
  ASSERT_TRUE(heavy.validate(*mutable_graph.snapshot()).ok);
  EXPECT_FALSE(mutable_graph.apply(heavy));
  EXPECT_EQ(mutable_graph.stats().rebuilds, 1u);
  for (const dynamic::Edge& edge : heavy.inserts())
    EXPECT_TRUE(mutable_graph.snapshot()->has_edge(edge.u, edge.v));
  EXPECT_EQ(mutable_graph.snapshot()->num_edges(),
            initial->num_edges() + 24);
}

// --- IncrementalBc ------------------------------------------------------------

TEST(IncrementalBc, CleanSamplesSurviveChurn) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  dynamic::IncrementalBc engine(churn_params(), exact_sketch(),
                                /*sample_batch=*/8);
  engine.run(initial);
  ASSERT_TRUE(engine.ran());
  const std::uint64_t samples0 = engine.samples();
  ASSERT_GT(samples0, 0u);
  EXPECT_EQ(engine.ledger().size(), samples0);

  dynamic::MutableGraph mutable_graph(initial);
  dynamic::EdgeBatch batch;
  const dynamic::Edge e1 = missing_edge(*initial, 10);
  const dynamic::Edge e2 = missing_edge(*initial, 40);
  batch.insert(e1.u, e1.v);
  batch.insert(e2.u, e2.v);
  ASSERT_TRUE(batch.validate(*initial).ok);
  mutable_graph.apply(batch);

  const auto stats =
      engine.refresh(mutable_graph.snapshot(), batch, /*diameter_bound=*/0);
  // The whole point of the ledger: most samples never scanned the touched
  // region and survive the batch untouched.
  EXPECT_GT(stats.retained, 0u);
  EXPECT_LT(stats.dirty, samples0);
  EXPECT_EQ(stats.retained + stats.dirty, samples0);
  EXPECT_EQ(stats.resampled, stats.dirty);
  EXPECT_FALSE(stats.recalibrated);
  // Slot replacement keeps the estimator an average over exactly
  // ledger-many samples; only the re-run stop rule can grow it.
  EXPECT_EQ(engine.samples(), samples0 + stats.topup);
  EXPECT_EQ(engine.ledger().size(), engine.samples());
}

TEST(IncrementalBc, RunPlusRefreshSequencesReplayBitwise) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  const dynamic::Edge added = missing_edge(*initial, 5);
  const dynamic::Edge dropped = present_edge(*initial, 20);

  const auto replay = [&] {
    dynamic::MutableGraph mutable_graph(initial);
    dynamic::IncrementalBc engine(churn_params(), exact_sketch(), 8);
    engine.run(initial);
    dynamic::EdgeBatch first;
    first.insert(added.u, added.v);
    EXPECT_TRUE(first.validate(*mutable_graph.snapshot()).ok);
    mutable_graph.apply(first);
    engine.refresh(mutable_graph.snapshot(), first, 0);
    dynamic::EdgeBatch second;
    second.remove(added.u, added.v);
    second.remove(dropped.u, dropped.v);
    EXPECT_TRUE(second.validate(*mutable_graph.snapshot()).ok);
    mutable_graph.apply(second);
    EXPECT_TRUE(graph::is_connected(*mutable_graph.snapshot()));
    engine.refresh(
        mutable_graph.snapshot(), second,
        graph::vertex_diameter(*mutable_graph.snapshot(), /*exact=*/true));
    return std::tuple{engine.scores(), engine.samples(), engine.next_stream(),
                      engine.epochs()};
  };

  const auto [scores_a, samples_a, stream_a, epochs_a] = replay();
  const auto [scores_b, samples_b, stream_b, epochs_b] = replay();
  EXPECT_EQ(samples_a, samples_b);
  EXPECT_EQ(stream_a, stream_b);
  EXPECT_EQ(epochs_a, epochs_b);
  ASSERT_EQ(scores_a.size(), scores_b.size());
  for (std::size_t v = 0; v < scores_a.size(); ++v)
    EXPECT_EQ(scores_a[v], scores_b[v]) << "vertex " << v;
}

TEST(IncrementalBc, RecalibratesOnlyWhenTheBoundIsViolated) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  dynamic::IncrementalBc engine(churn_params(), exact_sketch(), 8);
  engine.run(initial);
  const std::uint32_t vd0 = engine.vertex_diameter();
  const std::uint64_t omega0 = engine.context().omega;

  dynamic::MutableGraph mutable_graph(initial);
  const auto apply_one_insert = [&](graph::Vertex from) {
    dynamic::EdgeBatch batch;
    const dynamic::Edge edge = missing_edge(*mutable_graph.snapshot(), from);
    batch.insert(edge.u, edge.v);
    EXPECT_TRUE(batch.validate(*mutable_graph.snapshot()).ok);
    mutable_graph.apply(batch);
    return batch;
  };

  // Bound 0: the caller asserts the cached bound still holds (insert-only).
  auto stats = engine.refresh(mutable_graph.snapshot(), apply_one_insert(3), 0);
  EXPECT_FALSE(stats.recalibrated);
  EXPECT_EQ(engine.vertex_diameter(), vd0);
  EXPECT_EQ(engine.context().omega, omega0);

  // A recomputed bound at or below the cached one keeps omega too.
  stats = engine.refresh(mutable_graph.snapshot(), apply_one_insert(17), vd0);
  EXPECT_FALSE(stats.recalibrated);
  EXPECT_EQ(engine.context().omega, omega0);

  // Only a VIOLATED bound re-derives omega and the stopping radii.
  stats =
      engine.refresh(mutable_graph.snapshot(), apply_one_insert(31), vd0 + 6);
  EXPECT_TRUE(stats.recalibrated);
  EXPECT_EQ(engine.vertex_diameter(), vd0 + 6);
  EXPECT_GT(engine.context().omega, omega0);
  // The regrown omega re-ran the stop rule on the merged aggregate.
  EXPECT_EQ(engine.samples(), engine.ledger().size());
}

// --- Bloom-sketch property: false positives never change scores ---------------

TEST(SampleLedger, BloomFalsePositivesOnlyCostExtraResamples) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph(42));
  const bc::KadabraParams params = churn_params(0.05);

  dynamic::IncrementalBc exact_engine(params, exact_sketch(), 8);
  dynamic::IncrementalBc bloom_engine(params, bloom_sketch(), 8);
  exact_engine.run(initial);
  bloom_engine.run(initial);
  EXPECT_EQ(bloom_engine.ledger().bloom_sketches(),
            bloom_engine.ledger().size());
  EXPECT_EQ(exact_engine.ledger().bloom_sketches(), 0u);

  // Random churn: every round inserts fresh random edges, later rounds
  // also delete edges inserted earlier (connectivity is preserved by
  // construction - the original edges never leave).
  Rng rng(1234);
  dynamic::MutableGraph mutable_graph(initial);
  std::vector<dynamic::Edge> inserted;
  std::uint64_t exact_dirty = 0;
  std::uint64_t bloom_dirty = 0;
  for (int round = 0; round < 4; ++round) {
    dynamic::EdgeBatch batch = random_insert_batch(
        *mutable_graph.snapshot(), /*count=*/3, rng, &inserted);
    bool deletes = false;
    if (round >= 2) {
      const dynamic::Edge victim = inserted.front();
      inserted.erase(inserted.begin());
      batch.remove(victim.u, victim.v);
      deletes = true;
    }
    ASSERT_TRUE(batch.validate(*mutable_graph.snapshot()).ok);
    mutable_graph.apply(batch);
    ASSERT_TRUE(graph::is_connected(*mutable_graph.snapshot()));
    const std::uint32_t bound =
        deletes ? graph::vertex_diameter(*mutable_graph.snapshot(), true) : 0;
    const auto exact_stats =
        exact_engine.refresh(mutable_graph.snapshot(), batch, bound);
    const auto bloom_stats =
        bloom_engine.refresh(mutable_graph.snapshot(), batch, bound);
    exact_dirty += exact_stats.dirty;
    bloom_dirty += bloom_stats.dirty;
    EXPECT_EQ(exact_stats.bloom_dirty, 0u);
  }

  // False positives can only ADD dirty verdicts...
  EXPECT_GE(bloom_dirty, exact_dirty);

  // ...and every extra verdict costs one resample, never a wrong score:
  // both estimators agree with a from-scratch run on the final snapshot
  // within the KADABRA error budget.
  dynamic::IncrementalBc reference(params, exact_sketch(), 8);
  reference.run(mutable_graph.snapshot());
  const std::vector<double> ref = reference.scores();
  for (const auto* engine : {&exact_engine, &bloom_engine}) {
    const std::vector<double> scores = engine->scores();
    ASSERT_EQ(scores.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); ++v)
      EXPECT_NEAR(scores[v], ref[v], 3 * params.epsilon) << "vertex " << v;
    // Statistical contract: the estimator is an average over exactly
    // ledger-many samples.
    EXPECT_EQ(engine->samples(), engine->ledger().size());
  }
}

// --- DynamicState --------------------------------------------------------------

TEST(DynamicState, RejectsBadBatchesTransactionally) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  dynamic::DynamicState state(initial, exact_sketch(), 8);
  const std::uint64_t fp0 = state.fingerprint();

  EXPECT_FALSE(state.apply(dynamic::EdgeBatch{}).status.ok);  // empty

  dynamic::EdgeBatch self_loop;
  self_loop.insert(4, 4);
  EXPECT_FALSE(state.apply(std::move(self_loop)).status.ok);
  EXPECT_EQ(state.fingerprint(), fp0);
  EXPECT_EQ(state.version(), 0u);

  // Deleting every edge of one vertex isolates it: the batch is valid in
  // isolation but disconnects the graph, so apply reverts and rejects.
  graph::Vertex loner = 0;
  for (graph::Vertex v = 0; v < initial->num_vertices(); ++v)
    if (initial->degree(v) < initial->degree(loner)) loner = v;
  dynamic::EdgeBatch isolate;
  for (const graph::Vertex v : initial->neighbors(loner))
    isolate.remove(loner, v);
  const dynamic::ApplyReport rejected = state.apply(std::move(isolate));
  EXPECT_FALSE(rejected.status.ok);
  EXPECT_NE(rejected.status.message.find("disconnect"), std::string::npos);
  EXPECT_EQ(state.fingerprint(), fp0);  // revert restored the content

  // A well-formed insert touches no cached bound and no calibration.
  const dynamic::Edge edge = missing_edge(*initial);
  dynamic::EdgeBatch good;
  good.insert(edge.u, edge.v);
  const dynamic::ApplyReport applied = state.apply(std::move(good));
  ASSERT_TRUE(applied.status.ok);
  EXPECT_EQ(applied.edges_inserted, 1u);
  EXPECT_EQ(applied.diameter_bound, 0u);
  EXPECT_EQ(applied.recalibrations, 0u);
  EXPECT_NE(applied.fingerprint, fp0);
  EXPECT_EQ(applied.engines_refreshed, 0u);  // no engine live yet
}

TEST(DynamicState, RefreshAccountingCoversEveryRetainedSample) {
  const auto initial = std::make_shared<const graph::Graph>(churn_graph());
  dynamic::DynamicState state(initial, exact_sketch(), 8);

  const auto first = state.query(churn_params());
  ASSERT_TRUE(first.status.ok);
  EXPECT_TRUE(first.first_run);
  ASSERT_GT(first.samples, 0u);
  EXPECT_EQ(state.engine_count(), 1u);

  const dynamic::Edge edge = missing_edge(*initial, 25);
  dynamic::EdgeBatch batch;
  batch.insert(edge.u, edge.v);
  const dynamic::ApplyReport report = state.apply(std::move(batch));
  ASSERT_TRUE(report.status.ok);
  EXPECT_EQ(report.engines_refreshed, 1u);
  EXPECT_EQ(report.samples_retained + report.samples_dirty, first.samples);
  EXPECT_EQ(report.samples_resampled, report.samples_dirty);
  EXPECT_GT(report.samples_retained, 0u);
  EXPECT_LT(report.dirty_fraction(), 1.0);

  const auto second = state.query(churn_params());
  ASSERT_TRUE(second.status.ok);
  EXPECT_FALSE(second.first_run);  // served from the refreshed engine
  EXPECT_EQ(second.samples, first.samples + report.samples_topup);
}

// --- Session / pool / dispatcher apply paths -----------------------------------

api::Config dynamic_config(int pool_size = 2) {
  api::Config config;
  config.seed = 4321;
  config.sample_batch = 8;
  config.service_pool_size = pool_size;
  return config;
}

TEST(SessionApply, IncrementalQueriesSurviveChurn) {
  const auto graph = std::make_shared<const graph::Graph>(churn_graph());
  api::Session session(graph, dynamic_config());
  ASSERT_TRUE(session.status().ok);

  api::BetweennessQuery query;
  query.epsilon = 0.1;
  query.incremental = true;
  query.top_k = 5;
  const api::Result cold = session.run(query);
  ASSERT_TRUE(cold.status.ok) << cold.status.message;
  EXPECT_EQ(cold.algorithm, "kadabra-incremental");
  EXPECT_FALSE(cold.calibration_reused);
  EXPECT_EQ(cold.scores.size(), graph->num_vertices());
  ASSERT_EQ(cold.top_k.size(), 5u);

  // Same query again: the engine (and its sample set) is warm.
  const api::Result warm = session.run(query);
  ASSERT_TRUE(warm.status.ok);
  EXPECT_TRUE(warm.calibration_reused);
  EXPECT_EQ(warm.scores, cold.scores);

  // Churn, then query the mutated graph through the same session.
  const dynamic::Edge edge = missing_edge(*graph, 12);
  dynamic::EdgeBatch batch;
  batch.insert(edge.u, edge.v);
  const dynamic::ApplyReport report = session.apply(std::move(batch));
  ASSERT_TRUE(report.status.ok) << report.status.message;
  EXPECT_EQ(report.recalibrations, 0u);
  const api::Result after = session.run(query);
  ASSERT_TRUE(after.status.ok);
  EXPECT_TRUE(after.calibration_reused);
  EXPECT_EQ(after.scores.size(), graph->num_vertices());

  // A malformed batch rejects typed and leaves the session serving.
  dynamic::EdgeBatch bad;
  bad.insert(2, 2);
  EXPECT_FALSE(session.apply(std::move(bad)).status.ok);
  EXPECT_TRUE(session.run(query).status.ok);
}

TEST(SessionPoolApply, PostApplyResponsesBitwiseIdenticalAcrossPoolSizes) {
  const auto graph = std::make_shared<const graph::Graph>(churn_graph());
  api::BetweennessQuery query;
  query.epsilon = 0.1;
  query.incremental = true;

  const dynamic::Edge edge = missing_edge(*graph, 8);

  std::vector<std::vector<double>> before;
  std::vector<std::vector<double>> after;
  std::vector<std::uint64_t> fingerprints;
  for (const int pool_size : {1, 3}) {
    service::SessionPool pool(graph, dynamic_config(pool_size));
    ASSERT_TRUE(pool.status().ok) << pool.status().message;

    service::Ticket cold = pool.submit(query, "tenant", "g");
    pool.drain();
    const service::Response& cold_response = cold.wait();
    ASSERT_TRUE(cold_response.status.ok) << cold_response.status.message;
    before.push_back(cold_response.result.scores);

    dynamic::EdgeBatch batch;
    batch.insert(edge.u, edge.v);
    const dynamic::ApplyReport report = pool.apply(std::move(batch));
    ASSERT_TRUE(report.status.ok) << report.status.message;
    EXPECT_EQ(pool.stats().applies, 1u);
    EXPECT_EQ(pool.graph_fingerprint(), report.fingerprint);
    EXPECT_TRUE(pool.graph_snapshot()->has_edge(edge.u, edge.v));
    fingerprints.push_back(report.fingerprint);

    service::Ticket hot = pool.submit(query, "tenant", "g");
    pool.drain();
    const service::Response& hot_response = hot.wait();
    ASSERT_TRUE(hot_response.status.ok) << hot_response.status.message;
    EXPECT_TRUE(hot_response.result.calibration_reused);
    after.push_back(hot_response.result.scores);
  }

  // The pool serves incremental queries from ONE shared engine: pre- and
  // post-apply score vectors are bitwise independent of the pool size.
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0], before[1]);
  EXPECT_EQ(after[0], after[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(DispatcherApply, DrainsTheShardAndRejectsMidApplySubmissionsTyped) {
  // Big enough that the fresh-engine query below runs for hundreds of
  // milliseconds - the window in which the apply quiesces the shard.
  const auto graph = std::make_shared<const graph::Graph>(
      graph::largest_component(gen::erdos_renyi(1500, 4500, 99)));
  service::Dispatcher dispatcher;
  ASSERT_TRUE(dispatcher.bind("g", graph, dynamic_config()).ok);

  // Unknown ids reject typed, exactly like query submission.
  dynamic::EdgeBatch stray;
  stray.insert(0, 1);
  EXPECT_FALSE(dispatcher.apply("nope", std::move(stray)).status.ok);

  api::BetweennessQuery warm;
  warm.epsilon = 0.1;
  warm.incremental = true;
  ASSERT_TRUE(
      dispatcher.submit({"tenant", "g", warm}).wait().status.ok);

  // A long fresh-engine query keeps the shard busy while the apply
  // quiesces it: submissions landing in that window get the typed
  // mid-apply rejection instead of queueing behind the mutation.
  api::BetweennessQuery slow;
  slow.epsilon = 0.02;
  slow.incremental = true;
  service::Ticket slow_ticket = dispatcher.submit({"tenant", "g", slow});

  std::atomic<bool> done{false};
  dynamic::ApplyReport report;
  std::thread applier([&] {
    const dynamic::Edge edge = missing_edge(*graph, 30);
    dynamic::EdgeBatch batch;
    batch.insert(edge.u, edge.v);
    report = dispatcher.apply("g", std::move(batch));
    done = true;
  });

  // Fire-and-collect: waiting on a probe here would block behind the slow
  // query and sleep straight through the mutating window.
  std::vector<service::Ticket> probes;
  while (!done.load()) {
    probes.push_back(dispatcher.submit({"tenant", "g", warm}));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  applier.join();
  dispatcher.drain();
  bool saw_mid_apply = false;
  for (service::Ticket& probe : probes) {
    const service::Response& response = probe.wait();
    if (response.status.ok) continue;
    EXPECT_NE(response.status.message.find("mid-apply"), std::string::npos)
        << response.status.message;
    saw_mid_apply = true;
  }

  ASSERT_TRUE(report.status.ok) << report.status.message;
  EXPECT_TRUE(saw_mid_apply);
  EXPECT_TRUE(slow_ticket.wait().status.ok);  // pre-apply work completed
  const service::DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.applies, 1u);
  EXPECT_GE(stats.rejected_mutating, 1u);

  // The shard reopens after the apply.
  EXPECT_TRUE(dispatcher.submit({"tenant", "g", warm}).wait().status.ok);
}

}  // namespace
}  // namespace distbc
