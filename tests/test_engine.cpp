// Tests for the unified epoch-sampling engine: stream partitioning, the
// calibration hook, and the cross-backend reproducibility contract - in
// deterministic mode, seq / shm / mpi configurations of the engine (and
// every aggregation strategy, and the hierarchical reduction) produce
// bitwise-identical results because the per-epoch aggregate is a pure
// function of (seed, virtual streams, epoch schedule).
#include <gtest/gtest.h>

#include <string>

#include "adaptive/mean_distance.hpp"
#include "bc/kadabra.hpp"
#include "comm/substrate.hpp"
#include "engine/engine.hpp"
#include "engine/streams.hpp"
#include "mpisim/runtime.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"

namespace distbc {
namespace {

// --- Stream partitioning ---------------------------------------------------

TEST(Streams, SharesSumToTotal) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 100ull, 1001ull}) {
    std::uint64_t sum = 0;
    for (std::uint64_t v = 0; v < 4; ++v)
      sum += engine::stream_share(total, v, 4);
    EXPECT_EQ(sum, total);
  }
}

TEST(Streams, RemainderGoesToLowestStreams) {
  EXPECT_EQ(engine::stream_share(10, 0, 4), 3u);
  EXPECT_EQ(engine::stream_share(10, 1, 4), 3u);
  EXPECT_EQ(engine::stream_share(10, 2, 4), 2u);
  EXPECT_EQ(engine::stream_share(10, 3, 4), 2u);
}

TEST(Streams, OwnerIsGlobalThreadIndexModuloThreads) {
  EXPECT_EQ(engine::stream_owner(0, 4), 0u);
  EXPECT_EQ(engine::stream_owner(3, 4), 3u);
  EXPECT_EQ(engine::stream_owner(6, 4), 2u);
}

// --- Calibration hook ------------------------------------------------------

struct CountFrame {
  std::vector<std::uint64_t> data{0};
  void clear() { data[0] = 0; }
  void merge(const CountFrame& other) { data[0] += other.data[0]; }
  [[nodiscard]] std::span<std::uint64_t> raw() { return data; }
};

struct CountSampler {
  void sample(CountFrame& frame) { ++frame.data[0]; }
};

TEST(EngineCalibrate, DistributesBudgetExactlyAcrossRanks) {
  mpisim::RuntimeConfig config;
  config.num_ranks = 3;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    engine::EngineOptions options;
    options.threads_per_rank = 2;
    const CountFrame frame = engine::calibrate(
        world.get(), CountFrame{}, [](std::uint64_t) { return CountSampler{}; },
        /*total_budget=*/1001, options);
    if (world->rank() == 0) {
      EXPECT_EQ(frame.data[0], 1001u);
    }
  });
}

TEST(EngineCalibrate, SingleRankTakesWholeBudget) {
  engine::EngineOptions options;
  options.threads_per_rank = 3;
  const CountFrame frame = engine::calibrate(
      nullptr, CountFrame{}, [](std::uint64_t) { return CountSampler{}; },
      /*total_budget=*/500, options);
  EXPECT_EQ(frame.data[0], 500u);
}

// --- Cross-backend reproducibility (deterministic mode) --------------------

graph::Graph equivalence_graph() {
  return graph::largest_component(gen::erdos_renyi(120, 360, 4242));
}

bc::KadabraOptions deterministic_options(int threads) {
  bc::KadabraOptions options;
  options.params.epsilon = 0.15;
  options.params.seed = 1234;
  options.engine.threads_per_rank = threads;
  options.engine.deterministic = true;
  options.engine.virtual_streams = 4;
  options.engine.epoch_base = 64;
  options.engine.epoch_exponent = 0.0;
  return options;
}

void expect_bitwise_equal(const bc::BcResult& a, const bc::BcResult& b,
                          const char* label) {
  EXPECT_EQ(a.samples, b.samples) << label;
  EXPECT_EQ(a.epochs, b.epochs) << label;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    EXPECT_EQ(a.scores[v], b.scores[v]) << label << " vertex " << v;
}

TEST(EngineEquivalence, SeqShmMpiProduceIdenticalAggregates) {
  const graph::Graph graph = equivalence_graph();
  // seq = 1 rank x 1 thread, shm = 1 rank x 4 threads, mpi = 2 ranks x 2
  // threads; all draw from the same 4 virtual streams.
  const bc::BcResult seq = bc::kadabra_shm(graph, deterministic_options(1));
  const bc::BcResult shm = bc::kadabra_shm(graph, deterministic_options(4));
  const bc::BcResult mpi =
      bc::kadabra_mpi(graph, deterministic_options(2), /*num_ranks=*/2,
                      /*ranks_per_node=*/1, mpisim::NetworkModel::disabled());
  ASSERT_GT(seq.samples, 0u);
  expect_bitwise_equal(seq, shm, "seq vs shm");
  expect_bitwise_equal(seq, mpi, "seq vs mpi");
}

TEST(EngineEquivalence, AggregationStrategiesAreBitwiseIdentical) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](engine::Aggregation aggregation) {
    bc::KadabraOptions options = deterministic_options(2);
    options.engine.aggregation = aggregation;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/2,
                           /*ranks_per_node=*/1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult barrier = run(engine::Aggregation::kIbarrierReduce);
  const bc::BcResult ireduce = run(engine::Aggregation::kIreduce);
  const bc::BcResult blocking = run(engine::Aggregation::kBlocking);
  ASSERT_GT(barrier.samples, 0u);
  expect_bitwise_equal(barrier, ireduce, "ibarrier+reduce vs ireduce");
  expect_bitwise_equal(barrier, blocking, "ibarrier+reduce vs blocking");
}

// The frame-representation contract: in deterministic mode, dense, sparse,
// and auto wire representations are bitwise identical across every §IV-F
// aggregation strategy, with and without the §IV-E hierarchy - the sparse
// delta images carry exact uint64 counts and decode by commutative sums,
// so nothing about the result may depend on the encoding.
TEST(EngineEquivalence, FrameRepresentationSweepIsBitwiseIdentical) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](engine::FrameRep rep, engine::Aggregation aggregation,
                 bool hierarchical) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.frame_rep = rep;
    options.engine.aggregation = aggregation;
    options.engine.hierarchical = hierarchical;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/4,
                           /*ranks_per_node=*/hierarchical ? 2 : 1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult baseline = run(engine::FrameRep::kDense,
                                    engine::Aggregation::kIbarrierReduce,
                                    /*hierarchical=*/false);
  ASSERT_GT(baseline.samples, 0u);
  for (const engine::FrameRep rep :
       {engine::FrameRep::kDense, engine::FrameRep::kSparse,
        engine::FrameRep::kAuto}) {
    for (const engine::Aggregation aggregation :
         {engine::Aggregation::kIbarrierReduce, engine::Aggregation::kIreduce,
          engine::Aggregation::kBlocking}) {
      for (const bool hierarchical : {false, true}) {
        const bc::BcResult result = run(rep, aggregation, hierarchical);
        const std::string label =
            std::string(epoch::frame_rep_name(rep)) + " / " +
            engine::aggregation_name(aggregation) +
            (hierarchical ? " / hierarchical" : " / flat");
        expect_bitwise_equal(baseline, result, label.c_str());
      }
    }
  }
}

// The batched-traversal contract: sample_batch must never change a
// deterministic result. Scalar (1) and batched (8) samplers draw the same
// per-stream RNG sequences and the engine finishes batched lanes in stream
// order, so every (batch, representation, strategy) cell is bitwise
// identical to the scalar dense baseline.
TEST(EngineEquivalence, SampleBatchSweepIsBitwiseIdentical) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](int batch, engine::FrameRep rep,
                 engine::Aggregation aggregation) {
    bc::KadabraOptions options = deterministic_options(2);
    options.engine.sample_batch = batch;
    options.engine.frame_rep = rep;
    options.engine.aggregation = aggregation;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/2,
                           /*ranks_per_node=*/1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult baseline =
      run(1, engine::FrameRep::kDense, engine::Aggregation::kIbarrierReduce);
  ASSERT_GT(baseline.samples, 0u);
  for (const int batch : {1, 8}) {
    for (const engine::FrameRep rep :
         {engine::FrameRep::kDense, engine::FrameRep::kSparse,
          engine::FrameRep::kAuto}) {
      for (const engine::Aggregation aggregation :
           {engine::Aggregation::kIbarrierReduce,
            engine::Aggregation::kIreduce, engine::Aggregation::kBlocking}) {
        const bc::BcResult result = run(batch, rep, aggregation);
        const std::string label =
            "batch " + std::to_string(batch) + " / " +
            epoch::frame_rep_name(rep) + " / " +
            engine::aggregation_name(aggregation);
        expect_bitwise_equal(baseline, result, label.c_str());
      }
    }
  }
}

// Sparse runs move strictly fewer aggregation bytes than dense ones on a
// sparsely-hit instance (the motivating claim, checked end to end).
TEST(EngineEquivalence, SparseRepresentationShrinksAggregationBytes) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](engine::FrameRep rep) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.frame_rep = rep;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/4,
                           /*ranks_per_node=*/1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult dense = run(engine::FrameRep::kDense);
  const bc::BcResult sparse = run(engine::FrameRep::kSparse);
  EXPECT_GT(dense.comm_volume.reduce_bytes, 0u);
  EXPECT_EQ(dense.comm_volume.reduce_merge_bytes, 0u);
  // The sparse run's frames travel exclusively as merge reductions; its
  // only elementwise reduce is the one-word samples_attempted bookkeeping.
  EXPECT_GT(sparse.comm_volume.reduce_merge_bytes, 0u);
  EXPECT_LE(sparse.comm_volume.reduce_bytes, 3 * sizeof(std::uint64_t));
  EXPECT_LT(sparse.comm_volume.aggregation_bytes(),
            dense.comm_volume.aggregation_bytes());
}

// Tree-merge aggregation: interior-rank image combining (any radix, with
// or without the hierarchy on top) must be bitwise identical to the flat
// decentralized merge - decoding is a commutative sum - while the root
// ingests strictly fewer bytes than under a rooted flat-shaped merge
// (radix >= P makes every rank a direct child of the root, the old
// flat-reduction hotspot; every per-rank image shares at least the tau
// pair, so interior unions shrink what reaches the top).
TEST(EngineEquivalence, TreeMergeIsBitwiseIdenticalAndCutsRootIngest) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](engine::FrameRep rep, int radix, bool hierarchical) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.virtual_streams = 8;
    options.engine.frame_rep = rep;
    options.engine.tree_radix = radix;
    options.engine.hierarchical = hierarchical;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/8,
                           /*ranks_per_node=*/hierarchical ? 2 : 1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult flat =
      run(engine::FrameRep::kSparse, /*radix=*/0, /*hierarchical=*/false);
  ASSERT_GT(flat.samples, 0u);
  const bc::BcResult rooted =
      run(engine::FrameRep::kSparse, /*radix=*/8, /*hierarchical=*/false);
  expect_bitwise_equal(flat, rooted, "flat all-reduce vs rooted radix-8");
  ASSERT_GT(rooted.comm_volume.root_ingest_bytes, 0u);
  for (const engine::FrameRep rep :
       {engine::FrameRep::kDense, engine::FrameRep::kSparse,
        engine::FrameRep::kAuto}) {
    for (const int radix : {2, 3, 4}) {
      for (const bool hierarchical : {false, true}) {
        const bc::BcResult result = run(rep, radix, hierarchical);
        const std::string label = std::string(epoch::frame_rep_name(rep)) +
                                  " / radix " + std::to_string(radix) +
                                  (hierarchical ? " / hierarchical" : "");
        expect_bitwise_equal(flat, result, label.c_str());
        if (rep != engine::FrameRep::kDense && !hierarchical) {
          EXPECT_LT(result.comm_volume.root_ingest_bytes,
                    rooted.comm_volume.root_ingest_bytes)
              << label;
        }
      }
    }
  }
}

// The two-level merge path: §IV-E node-window pre-reduction below a
// leader-level radix tree, radix picked per hop class via leader_radix.
// Every (leader_radix x frame_rep x strategy) cell must be bitwise
// identical to the flat single-level baseline, and leader_radix = 0 must
// inherit tree_radix (single-knob configurations keep their shape).
TEST(EngineEquivalence, TwoLevelSweepIsBitwiseIdentical) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](int leader_radix, engine::FrameRep rep,
                 engine::Aggregation aggregation) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.virtual_streams = 8;
    options.engine.frame_rep = rep;
    options.engine.aggregation = aggregation;
    options.engine.hierarchical = true;
    options.engine.leader_radix = leader_radix;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/8,
                           /*ranks_per_node=*/2,
                           mpisim::NetworkModel::disabled());
  };
  bc::KadabraOptions flat_options = deterministic_options(1);
  flat_options.engine.virtual_streams = 8;
  const bc::BcResult baseline =
      bc::kadabra_mpi(graph, flat_options, /*num_ranks=*/8,
                      /*ranks_per_node=*/1, mpisim::NetworkModel::disabled());
  ASSERT_GT(baseline.samples, 0u);
  for (const int leader_radix : {0, 2, 3}) {
    for (const engine::FrameRep rep :
         {engine::FrameRep::kDense, engine::FrameRep::kSparse,
          engine::FrameRep::kAuto}) {
      for (const engine::Aggregation aggregation :
           {engine::Aggregation::kIbarrierReduce, engine::Aggregation::kIreduce,
            engine::Aggregation::kBlocking}) {
        const bc::BcResult result = run(leader_radix, rep, aggregation);
        const std::string label =
            "leader radix " + std::to_string(leader_radix) + " / " +
            epoch::frame_rep_name(rep) + " / " +
            engine::aggregation_name(aggregation);
        expect_bitwise_equal(baseline, result, label.c_str());
      }
    }
  }
}

// Decentralized termination's core contract: run_epochs leaves the
// identical merged aggregate on EVERY rank (the stopping rule is evaluated
// locally everywhere), not just at world rank zero.
TEST(EngineEquivalence, EveryRankHoldsTheGlobalAggregate) {
  mpisim::RuntimeConfig config;
  config.num_ranks = 4;
  config.ranks_per_node = 2;
  config.network = mpisim::NetworkModel::disabled();
  mpisim::Runtime runtime(config);
  std::vector<std::uint64_t> per_rank(4, 0);
  runtime.run([&](auto& rank_comm) {
    const auto world =
        comm::make_substrate(comm::SubstrateKind::kMpisim, rank_comm);
    engine::EngineOptions options;
    options.deterministic = true;
    options.virtual_streams = 4;
    options.epoch_base = 40;
    options.epoch_exponent = 0.0;
    options.hierarchical = true;
    const auto result = engine::run_epochs(
        world.get(), CountFrame{}, [](std::uint64_t) { return CountSampler{}; },
        [](const CountFrame& frame) { return frame.data[0] >= 100; },
        options);
    per_rank[world->rank()] = result.aggregate.data[0];
  });
  EXPECT_GE(per_rank[0], 100u);
  for (int r = 1; r < 4; ++r) EXPECT_EQ(per_rank[r], per_rank[0]) << r;
}

// Regression: with the non-blocking strategy, a fast non-root rank's
// ireduce_merge_tree completes at its own injection deadline and leaves
// the epoch's aggregation scope while stragglers are still posting; the
// stored combiner then runs at the last arrival. It must own its captures
// - a by-reference capture of the epoch-scope locals was a
// use-after-scope here (the CI sanitize leg runs this under ASan).
TEST(EngineEquivalence, TreeMergeSurvivesNonBlockingStragglers) {
  const graph::Graph graph = equivalence_graph();
  auto run = [&](engine::FrameRep rep) {
    bc::KadabraOptions options = deterministic_options(1);
    options.engine.aggregation = engine::Aggregation::kIreduce;
    options.engine.tree_radix = 2;
    options.engine.frame_rep = rep;
    return bc::kadabra_mpi(graph, options, /*num_ranks=*/4,
                           /*ranks_per_node=*/1,
                           mpisim::NetworkModel::disabled());
  };
  const bc::BcResult sparse = run(engine::FrameRep::kSparse);
  ASSERT_GT(sparse.samples, 0u);
  expect_bitwise_equal(sparse, run(engine::FrameRep::kAuto),
                       "ireduce tree sparse vs auto");
}

TEST(EngineEquivalence, HierarchicalReductionMatchesFlat) {
  const graph::Graph graph = equivalence_graph();
  bc::KadabraOptions flat = deterministic_options(1);
  bc::KadabraOptions hierarchical = deterministic_options(1);
  hierarchical.engine.hierarchical = true;
  const bc::BcResult a =
      bc::kadabra_mpi(graph, flat, /*num_ranks=*/4, /*ranks_per_node=*/1,
                      mpisim::NetworkModel::disabled());
  const bc::BcResult b =
      bc::kadabra_mpi(graph, hierarchical, /*num_ranks=*/4,
                      /*ranks_per_node=*/2, mpisim::NetworkModel::disabled());
  expect_bitwise_equal(a, b, "flat vs hierarchical");
}

// --- Engine options reach the ported adaptive algorithms -------------------

TEST(EngineOptionsPropagate, MeanDistanceSupportsStrategiesAndHierarchy) {
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(200, 600, 91));
  adaptive::MeanDistanceParams params;
  params.epsilon = 0.15;
  params.engine.aggregation = engine::Aggregation::kBlocking;
  params.engine.hierarchical = true;
  const adaptive::MeanDistanceResult result = adaptive::mean_distance_mpi(
      graph, params, /*num_ranks=*/4, /*ranks_per_node=*/2);
  EXPECT_GT(result.samples, 0u);
  EXPECT_LE(result.half_width, params.epsilon);
}

}  // namespace
}  // namespace distbc
