// Parameterized property sweeps: the (epsilon, delta) guarantee across
// graph families x algorithm variants x cluster shapes, with fixed seeds.
#include <gtest/gtest.h>

#include <memory>

#include "bc/brandes.hpp"
#include "bc/kadabra.hpp"
#include "gen/barabasi_albert.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/hyperbolic.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

struct FamilyCase {
  const char* name;
  graph::Graph (*build)(std::uint64_t seed);
};

graph::Graph build_er(std::uint64_t seed) {
  return graph::largest_component(gen::erdos_renyi(400, 1200, seed));
}
graph::Graph build_rmat(std::uint64_t seed) {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 6.0;
  return graph::largest_component(gen::rmat(params, seed));
}
graph::Graph build_hyperbolic(std::uint64_t seed) {
  gen::HyperbolicParams params;
  params.num_vertices = 512;
  params.average_degree = 10.0;
  return graph::largest_component(gen::hyperbolic(params, seed));
}
graph::Graph build_road(std::uint64_t seed) {
  gen::RoadParams params;
  params.width = 36;
  params.height = 14;
  return gen::road(params, seed);
}
graph::Graph build_ba(std::uint64_t seed) {
  return gen::barabasi_albert(500, 3, seed);
}

class FamilyAccuracy : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyAccuracy, SequentialKadabraWithinEpsilon) {
  const auto graph = GetParam().build(90001);
  const BcResult exact = brandes(graph);
  KadabraParams params;
  params.epsilon = 0.1;
  params.seed = 13;
  const BcResult approx = kadabra_sequential(graph, params);
  EXPECT_LE(approx.max_abs_difference(exact), params.epsilon)
      << GetParam().name;
}

TEST_P(FamilyAccuracy, ShmKadabraWithinEpsilon) {
  const auto graph = GetParam().build(90002);
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params.epsilon = 0.1;
  options.params.seed = 14;
  options.engine.threads_per_rank = 4;
  const BcResult approx = kadabra_shm(graph, options);
  EXPECT_LE(approx.max_abs_difference(exact), options.params.epsilon)
      << GetParam().name;
}

TEST_P(FamilyAccuracy, MpiKadabraWithinEpsilon) {
  const auto graph = GetParam().build(90003);
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params.epsilon = 0.1;
  options.params.seed = 15;
  options.engine.threads_per_rank = 2;
  const BcResult approx = kadabra_mpi(graph, options, /*num_ranks=*/3);
  EXPECT_LE(approx.max_abs_difference(exact), options.params.epsilon)
      << GetParam().name;
}

TEST_P(FamilyAccuracy, EstimatesAreProperDistributionFractions) {
  const auto graph = GetParam().build(90004);
  KadabraParams params;
  params.epsilon = 0.15;
  params.seed = 16;
  const BcResult approx = kadabra_sequential(graph, params);
  for (const double score : approx.scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyAccuracy,
    ::testing::Values(FamilyCase{"erdos-renyi", &build_er},
                      FamilyCase{"rmat", &build_rmat},
                      FamilyCase{"hyperbolic", &build_hyperbolic},
                      FamilyCase{"road", &build_road},
                      FamilyCase{"barabasi-albert", &build_ba}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

struct ClusterShape {
  int ranks;
  int ranks_per_node;
  int threads;
  Aggregation aggregation;
  bool hierarchical;
};

class ClusterSweep : public ::testing::TestWithParam<ClusterShape> {};

TEST_P(ClusterSweep, MpiKadabraSoundAcrossShapes) {
  const ClusterShape& shape = GetParam();
  static const graph::Graph graph = build_rmat(90010);
  static const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params.epsilon = 0.1;
  options.params.seed = 17;
  options.engine.threads_per_rank = shape.threads;
  options.engine.aggregation = shape.aggregation;
  options.engine.hierarchical = shape.hierarchical;
  const BcResult approx =
      kadabra_mpi(graph, options, shape.ranks, shape.ranks_per_node);
  EXPECT_LE(approx.max_abs_difference(exact), options.params.epsilon);
  EXPECT_GT(approx.samples, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterSweep,
    ::testing::Values(
        ClusterShape{1, 1, 1, Aggregation::kIbarrierReduce, false},
        ClusterShape{2, 1, 1, Aggregation::kIbarrierReduce, false},
        ClusterShape{4, 1, 2, Aggregation::kIbarrierReduce, false},
        ClusterShape{4, 2, 1, Aggregation::kIbarrierReduce, true},
        ClusterShape{4, 2, 2, Aggregation::kIreduce, false},
        ClusterShape{6, 3, 1, Aggregation::kBlocking, false},
        ClusterShape{8, 2, 1, Aggregation::kIbarrierReduce, true}),
    [](const ::testing::TestParamInfo<ClusterShape>& info) {
      const ClusterShape& shape = info.param;
      std::string name = "r" + std::to_string(shape.ranks) + "n" +
                         std::to_string(shape.ranks_per_node) + "t" +
                         std::to_string(shape.threads);
      name += shape.aggregation == Aggregation::kIbarrierReduce ? "_barrier"
              : shape.aggregation == Aggregation::kIreduce     ? "_ireduce"
                                                                : "_blocking";
      if (shape.hierarchical) name += "_hier";
      return name;
    });

}  // namespace
}  // namespace distbc::bc
