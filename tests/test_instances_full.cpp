// Full proxy-suite validation at reduced scale: every Table I proxy must
// build, be connected, keep its family signature, and be deterministic -
// the preconditions every bench relies on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gen/instances.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "graph/stats.hpp"

namespace distbc::gen {
namespace {

constexpr double kTinyScale = 0.04;

class FullSuite : public ::testing::TestWithParam<int> {
 protected:
  const InstanceSpec& spec() const { return instance_suite()[GetParam()]; }
};

TEST_P(FullSuite, BuildsConnectedNonTrivialGraph) {
  const auto graph = spec().build(kTinyScale, 7);
  EXPECT_GE(graph.num_vertices(), 32u) << spec().name;
  EXPECT_GT(graph.num_edges(), graph.num_vertices() / 2) << spec().name;
  EXPECT_TRUE(graph::is_connected(graph)) << spec().name;
}

TEST_P(FullSuite, FamilySignatureHolds) {
  const auto graph = spec().build(kTinyScale, 8);
  const auto stats = graph::degree_stats(graph);
  if (spec().family == InstanceFamily::kRoad) {
    EXPECT_LT(stats.mean, 4.5) << spec().name;
    EXPECT_DOUBLE_EQ(stats.heavy_fraction, 0.0) << spec().name;
  } else {
    EXPECT_GT(stats.mean, 5.0) << spec().name;
    EXPECT_GT(stats.max, static_cast<std::uint64_t>(5 * stats.mean))
        << spec().name;
  }
}

TEST_P(FullSuite, RoadDiametersDominateComplexNetworks) {
  const auto graph = spec().build(kTinyScale, 9);
  const auto diameter = graph::ifub_diameter(graph).diameter;
  if (spec().family == InstanceFamily::kRoad) {
    EXPECT_GT(diameter, 30u) << spec().name;
  } else {
    EXPECT_LT(diameter, 20u) << spec().name;
  }
}

TEST_P(FullSuite, BuildIsDeterministicInSeed) {
  const auto a = spec().build(kTinyScale, 10);
  const auto b = spec().build(kTinyScale, 10);
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << spec().name;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << spec().name;
  for (graph::Vertex v = 0; v < a.num_vertices(); ++v)
    ASSERT_EQ(a.degree(v), b.degree(v)) << spec().name << " vertex " << v;
}

TEST_P(FullSuite, BenchEpsilonIsSane) {
  EXPECT_GT(spec().bench_epsilon, 0.0);
  EXPECT_LE(spec().bench_epsilon, 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllTen, FullSuite, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               instance_suite()[info.param].name;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(FullSuiteGlobal, PaperOrderMatchesTableOne) {
  const auto& suite = instance_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].paper_name, "roadNet-PA");
  EXPECT_EQ(suite[2].paper_name, "dimacs9-NE");
  EXPECT_EQ(suite[9].paper_name, "dimacs10-uk-2007-05");
  // Paper rows are sorted by family then |E| within the text; sanity-check
  // monotone |E| inside each family block.
  EXPECT_LT(suite[0].paper_edges, suite[1].paper_edges);
  EXPECT_LT(suite[3].paper_edges, suite[6].paper_edges);
}

TEST(FullSuiteGlobal, NamesAreUniqueAndLookupsWork) {
  std::set<std::string> names;
  for (const auto& spec : instance_suite()) names.insert(spec.name);
  EXPECT_EQ(names.size(), instance_suite().size());
  for (const auto& spec : instance_suite())
    EXPECT_EQ(&instance_by_name(spec.name), &spec);
}

}  // namespace
}  // namespace distbc::gen
