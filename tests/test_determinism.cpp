// Determinism and seed-sensitivity contracts.
//
// Sequential KADABRA and RK are bitwise deterministic for a fixed seed.
// The parallel drivers are *statistically* reproducible but not bitwise
// (overlap sample counts depend on thread timing); what must hold for them
// is seed-independent soundness and stable bookkeeping invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "bc/brandes.hpp"
#include "bc/kadabra.hpp"
#include "bc/rk.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

graph::Graph test_graph() {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8.0;
  return graph::largest_component(gen::rmat(params, 555));
}

TEST(Determinism, SequentialKadabraIsBitwiseReproducible) {
  const auto graph = test_graph();
  KadabraParams params;
  params.epsilon = 0.1;
  params.seed = 77;
  const BcResult a = kadabra_sequential(graph, params);
  const BcResult b = kadabra_sequential(graph, params);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.epochs, b.epochs);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    EXPECT_DOUBLE_EQ(a.scores[v], b.scores[v]);
}

TEST(Determinism, RkIsBitwiseReproducible) {
  const auto graph = test_graph();
  RkParams params;
  params.epsilon = 0.1;
  params.seed = 78;
  const BcResult a = rk(graph, params, 1);
  const BcResult b = rk(graph, params, 1);
  EXPECT_EQ(a.samples, b.samples);
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    EXPECT_DOUBLE_EQ(a.scores[v], b.scores[v]);
}

TEST(Determinism, RkMultiThreadedIsBitwiseReproducible) {
  // Thread work splits are static and streams are per-thread, so even the
  // parallel RK is deterministic.
  const auto graph = test_graph();
  RkParams params;
  params.epsilon = 0.1;
  params.seed = 79;
  const BcResult a = rk(graph, params, 6);
  const BcResult b = rk(graph, params, 6);
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    EXPECT_DOUBLE_EQ(a.scores[v], b.scores[v]);
}

TEST(Determinism, FrameRepresentationDoesNotChangeSingleRankResults) {
  // No communicator in play: the representation only changes the frame
  // type (StateFrame vs SparseFrame), and deterministic mode pins the
  // sample set, so dense and sparse runs must be bitwise identical.
  const auto graph = test_graph();
  auto run = [&](engine::FrameRep rep) {
    KadabraOptions options;
    options.params.epsilon = 0.1;
    options.params.seed = 80;
    options.engine.threads_per_rank = 2;
    options.engine.deterministic = true;
    options.engine.virtual_streams = 4;
    options.engine.frame_rep = rep;
    return kadabra_shm(graph, options);
  };
  const BcResult dense = run(engine::FrameRep::kDense);
  const BcResult sparse = run(engine::FrameRep::kSparse);
  const BcResult automatic = run(engine::FrameRep::kAuto);
  ASSERT_GT(dense.samples, 0u);
  EXPECT_EQ(dense.samples, sparse.samples);
  EXPECT_EQ(dense.epochs, sparse.epochs);
  ASSERT_EQ(dense.scores.size(), sparse.scores.size());
  for (std::size_t v = 0; v < dense.scores.size(); ++v) {
    EXPECT_EQ(dense.scores[v], sparse.scores[v]) << "vertex " << v;
    EXPECT_EQ(dense.scores[v], automatic.scores[v]) << "vertex " << v;
  }
}

TEST(Determinism, SampleBatchIsBitwiseInvariantAcrossRepresentations) {
  // The tentpole contract of the batched traversal kernel: every lane runs
  // the scalar algorithm with the scalar RNG draw order, so deterministic
  // runs are bitwise identical across batch widths - for every frame
  // representation.
  const auto graph = test_graph();
  auto run = [&](int batch, engine::FrameRep rep) {
    KadabraOptions options;
    options.params.epsilon = 0.1;
    options.params.seed = 81;
    options.engine.threads_per_rank = 2;
    options.engine.deterministic = true;
    options.engine.virtual_streams = 4;
    options.engine.frame_rep = rep;
    options.engine.sample_batch = batch;
    return kadabra_shm(graph, options);
  };
  const BcResult scalar = run(1, engine::FrameRep::kDense);
  ASSERT_GT(scalar.samples, 0u);
  for (const int batch : {1, 8}) {
    for (const engine::FrameRep rep :
         {engine::FrameRep::kDense, engine::FrameRep::kSparse,
          engine::FrameRep::kAuto}) {
      const BcResult result = run(batch, rep);
      EXPECT_EQ(scalar.samples, result.samples) << "batch " << batch;
      EXPECT_EQ(scalar.epochs, result.epochs) << "batch " << batch;
      ASSERT_EQ(scalar.scores.size(), result.scores.size());
      for (std::size_t v = 0; v < scalar.scores.size(); ++v)
        EXPECT_EQ(scalar.scores[v], result.scores[v])
            << "batch " << batch << " vertex " << v;
    }
  }
}

TEST(Determinism, DifferentSeedsGiveDifferentSampleSets) {
  const auto graph = test_graph();
  KadabraParams a_params;
  a_params.epsilon = 0.1;
  a_params.seed = 1;
  KadabraParams b_params = a_params;
  b_params.seed = 2;
  const BcResult a = kadabra_sequential(graph, a_params);
  const BcResult b = kadabra_sequential(graph, b_params);
  int differing = 0;
  for (std::size_t v = 0; v < a.scores.size(); ++v)
    differing += a.scores[v] != b.scores[v];
  EXPECT_GT(differing, static_cast<int>(a.scores.size() / 8));
}

TEST(Determinism, ParallelDriversStayWithinEpsilonAcrossRuns) {
  const auto graph = test_graph();
  const BcResult exact = brandes(graph);
  for (int run = 0; run < 3; ++run) {
    KadabraOptions shm;
    shm.params.epsilon = 0.1;
    shm.params.seed = 90 + run;
    shm.engine.threads_per_rank = 4;
    EXPECT_LE(kadabra_shm(graph, shm).max_abs_difference(exact), 0.1)
        << "shm run " << run;

    KadabraOptions mpi;
    mpi.params = shm.params;
    EXPECT_LE(kadabra_mpi(graph, mpi, 3).max_abs_difference(exact), 0.1)
        << "mpi run " << run;
  }
}

TEST(Determinism, EstimatesSumToPathMass) {
  // sum_v b~(v) = E[internal path length] which is bounded by VD - 2; and
  // tau * sum b~ equals the total recorded count - an exact bookkeeping
  // identity that must survive every aggregation path.
  const auto graph = test_graph();
  KadabraParams params;
  params.epsilon = 0.1;
  params.seed = 91;
  const BcResult result = kadabra_sequential(graph, params);
  double sum = 0.0;
  for (const double score : result.scores) sum += score;
  EXPECT_GE(sum, 0.0);
  EXPECT_LE(sum, static_cast<double>(result.vertex_diameter));
  const double recorded = sum * static_cast<double>(result.samples);
  EXPECT_NEAR(recorded, std::round(recorded), 1e-6);
}

TEST(Guarantee, FailureRateIsCompatibleWithDelta) {
  // (eps, delta) = (0.1, 0.1): over 12 independent runs the expected number
  // of violations is ~1.2; requiring <= 4 gives a < 1% flake bound even if
  // the guarantee were only barely met, and the fixed seeds make the
  // outcome reproducible anyway.
  const auto graph =
      graph::largest_component(gen::erdos_renyi(200, 500, 31337));
  const BcResult exact = brandes(graph);
  int violations = 0;
  for (int run = 0; run < 12; ++run) {
    KadabraParams params;
    params.epsilon = 0.1;
    params.delta = 0.1;
    params.seed = 1000 + run;
    const BcResult approx = kadabra_sequential(graph, params);
    violations += approx.max_abs_difference(exact) > params.epsilon;
  }
  EXPECT_LE(violations, 4);
}

}  // namespace
}  // namespace distbc::bc
