// Tests for the tune/ subsystem: the alpha-beta fit, the §IV-D/E/F
// decisions of the tuner against deterministic synthetic microbench
// inputs, profile serialization round-trips, and the live microbench +
// autotuned-KADABRA integration on a tiny simulated cluster.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "adaptive/closeness.hpp"
#include "adaptive/mean_distance.hpp"
#include "bc/kadabra.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/components.hpp"
#include "tune/cost_model.hpp"
#include "tune/microbench.hpp"
#include "tune/tuner.hpp"

namespace distbc {
namespace {

// --- Alpha-beta fitting ------------------------------------------------------

TEST(CostModelFit, RecoversExactLine) {
  // exposed(bytes) = 5us + bytes / (1 GB/s)
  const double bytes[] = {1024.0, 16384.0, 262144.0};
  double seconds[3];
  for (int i = 0; i < 3; ++i) seconds[i] = 5e-6 + bytes[i] / 1e9;
  const tune::AlphaBeta fit = tune::fit_alpha_beta(bytes, seconds, 3);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.alpha_s, 5e-6, 1e-10);
  EXPECT_NEAR(fit.beta_s_per_byte, 1e-9, 1e-14);
  EXPECT_NEAR(fit.predict(65536), 5e-6 + 65536.0 / 1e9, 1e-9);
}

TEST(CostModelFit, SinglePointIsFlatLine) {
  const double bytes[] = {4096.0};
  const double seconds[] = {3e-4};
  const tune::AlphaBeta fit = tune::fit_alpha_beta(bytes, seconds, 1);
  ASSERT_TRUE(fit.valid);
  EXPECT_DOUBLE_EQ(fit.alpha_s, 3e-4);
  EXPECT_DOUBLE_EQ(fit.beta_s_per_byte, 0.0);
}

TEST(CostModelFit, CoefficientsAreClampedNonNegative) {
  // A decreasing series would fit a negative slope; the model clamps it.
  const double bytes[] = {1024.0, 2048.0};
  const double seconds[] = {2e-4, 1e-4};
  const tune::AlphaBeta fit = tune::fit_alpha_beta(bytes, seconds, 2);
  ASSERT_TRUE(fit.valid);
  EXPECT_GE(fit.beta_s_per_byte, 0.0);
  EXPECT_GE(fit.alpha_s, 0.0);
}

// --- Synthetic profiles ------------------------------------------------------

/// A deterministic profile for an oversubscribed shape with the §IV-F
/// ordering baked in: Ibarrier+Reduce < Ireduce < blocking Reduce.
tune::TuningProfile oversubscribed_profile() {
  tune::TuningProfile profile;
  profile.shape.num_ranks = 8;
  profile.shape.ranks_per_node = 2;
  profile.shape.threads_per_rank = 2;
  profile.oversubscription = 4.0;
  profile.work_unit_s = 20e-6;
  const auto set = [&](tune::Pattern pattern, double alpha_us,
                       double beta_ns_per_byte) {
    tune::AlphaBeta& line = profile.model.line(pattern);
    line.alpha_s = alpha_us * 1e-6;
    line.beta_s_per_byte = beta_ns_per_byte * 1e-9;
    line.valid = true;
  };
  set(tune::Pattern::kIbarrierReduce, 300.0, 2.0);
  set(tune::Pattern::kIreduce, 900.0, 6.0);
  set(tune::Pattern::kReduce, 1800.0, 3.0);
  set(tune::Pattern::kIbcast, 50.0, 0.0);
  set(tune::Pattern::kWindowPreReduce, 400.0, 3.0);
  return profile;
}

TEST(Tuner, ReproducesParagraphIVFOrderingOnOversubscribedShape) {
  const tune::TuningProfile profile = oversubscribed_profile();
  const std::size_t frame_words = 10000;
  const double ibr = profile.model.predict_seconds(
      tune::Pattern::kIbarrierReduce, frame_words);
  const double ireduce =
      profile.model.predict_seconds(tune::Pattern::kIreduce, frame_words);
  const double blocking =
      profile.model.predict_seconds(tune::Pattern::kReduce, frame_words);
  EXPECT_LT(ibr, ireduce);
  EXPECT_LT(ireduce, blocking);

  tune::TuneRequest request;
  request.frame_words = frame_words;
  const tune::TuneDecision decision = tune::tune_decision(profile, request);
  EXPECT_EQ(decision.options.aggregation,
            engine::Aggregation::kIbarrierReduce);
}

TEST(Tuner, BlockingIsIneligibleWhenOversubscribed) {
  // Even if blocking measures cheapest, an oversubscribed substrate does
  // not get it: the paper's §IV-F conclusion overrides a short race.
  tune::TuningProfile profile = oversubscribed_profile();
  profile.model.line(tune::Pattern::kReduce).alpha_s = 1e-6;
  profile.model.line(tune::Pattern::kReduce).beta_s_per_byte = 0.0;
  tune::TuneRequest request;
  request.frame_words = 1000;
  EXPECT_EQ(tune::tuned_options(profile, request).aggregation,
            engine::Aggregation::kIbarrierReduce);

  // With idle headroom the measured winner is honored.
  profile.oversubscription = 1.0;
  EXPECT_EQ(tune::tuned_options(profile, request).aggregation,
            engine::Aggregation::kBlocking);
}

TEST(Tuner, MarginGuardsTheIncumbentOnParityShapes) {
  tune::TuningProfile profile = oversubscribed_profile();
  profile.oversubscription = 1.0;  // all strategies eligible
  // Ireduce 10% cheaper than Ibarrier+Reduce: within the margin, the
  // incumbent stays.
  profile.model.line(tune::Pattern::kIreduce).alpha_s =
      0.9 * profile.model.line(tune::Pattern::kIbarrierReduce).alpha_s;
  profile.model.line(tune::Pattern::kIreduce).beta_s_per_byte =
      0.9 * profile.model.line(tune::Pattern::kIbarrierReduce).beta_s_per_byte;
  tune::TuneRequest request;
  request.frame_words = 1000;
  EXPECT_EQ(tune::tuned_options(profile, request).aggregation,
            engine::Aggregation::kIbarrierReduce);
  // A decisive 2x win takes over.
  profile.model.line(tune::Pattern::kIreduce).alpha_s /= 2.0;
  profile.model.line(tune::Pattern::kIreduce).beta_s_per_byte /= 2.0;
  EXPECT_EQ(tune::tuned_options(profile, request).aggregation,
            engine::Aggregation::kIreduce);
}

TEST(Tuner, HierarchicalRequiresMultiRankNodesAndDecisiveWin) {
  tune::TuningProfile profile = oversubscribed_profile();
  tune::TuneRequest request;
  request.frame_words = 10000;
  // Window path (400us + 3ns/B) does not decisively beat Ibarrier+Reduce
  // (300us + 2ns/B): hierarchical stays off.
  EXPECT_FALSE(tune::tuned_options(profile, request).hierarchical);

  // Make the window path decisively cheaper: hierarchical turns on and the
  // leader aggregation is Ibarrier+Reduce.
  profile.model.line(tune::Pattern::kWindowPreReduce).alpha_s = 50e-6;
  profile.model.line(tune::Pattern::kWindowPreReduce).beta_s_per_byte = 0.5e-9;
  const engine::EngineOptions tuned = tune::tuned_options(profile, request);
  EXPECT_TRUE(tuned.hierarchical);
  EXPECT_EQ(tuned.aggregation, engine::Aggregation::kIbarrierReduce);

  // One rank per node: no window to win with.
  profile.shape.ranks_per_node = 1;
  EXPECT_FALSE(tune::tuned_options(profile, request).hierarchical);
}

TEST(Tuner, EpochSizingScalesWithAggregationCost) {
  tune::TuningProfile cheap = oversubscribed_profile();
  tune::TuningProfile expensive = oversubscribed_profile();
  for (auto pattern : {tune::Pattern::kIbarrierReduce, tune::Pattern::kIreduce,
                       tune::Pattern::kReduce})
    expensive.model.line(pattern).alpha_s *= 20.0;

  tune::TuneRequest request;
  request.frame_words = 10000;
  request.sample_seconds = 50e-6;
  const engine::EngineOptions cheap_tuned = tune::tuned_options(cheap, request);
  const engine::EngineOptions expensive_tuned =
      tune::tuned_options(expensive, request);
  EXPECT_GT(expensive_tuned.epoch_base, cheap_tuned.epoch_base);

  // The sized epoch respects the overhead target: predicted aggregation
  // overhead <= target fraction of the epoch's sampling time.
  const tune::TuneDecision decision = tune::tune_decision(cheap, request);
  const double total_threads = 8.0 * 2.0;
  const double n0 =
      static_cast<double>(decision.options.epoch_base) *
      std::pow(total_threads, decision.options.epoch_exponent);
  const double epoch_sampling_s =
      n0 * request.sample_seconds / total_threads;
  EXPECT_LE(decision.predicted_overhead_s,
            request.target_overhead * epoch_sampling_s * 1.25);
  EXPECT_EQ(decision.options.threads_per_rank, 2);
  EXPECT_GT(decision.options.max_epoch_length, 0u);
}

TEST(Tuner, FrameRepDecisionFollowsPredictedWireBytes) {
  const tune::TuningProfile profile = oversubscribed_profile();
  // Huge frame, light touch: a short epoch's delta image is tiny, so the
  // tuner must emit auto (sparse with per-payload densification) and
  // predict a far smaller wire payload than the dense frame.
  tune::TuneRequest sparse_request;
  sparse_request.frame_words = 1u << 20;
  sparse_request.sample_seconds = 50e-6;
  sparse_request.touched_words_per_sample = 10.0;
  const tune::TuneDecision sparse_decision =
      tune::tune_decision(profile, sparse_request);
  EXPECT_EQ(sparse_decision.frame_rep, engine::FrameRep::kAuto);
  EXPECT_EQ(sparse_decision.options.frame_rep, engine::FrameRep::kAuto);
  EXPECT_LT(sparse_decision.predicted_wire_bytes,
            sparse_request.frame_words * sizeof(std::uint64_t));

  // Dense-writing workload (every sample touches the whole frame): sparse
  // images cannot undercut the flat frame; the tuner pins dense.
  tune::TuneRequest dense_request = sparse_request;
  dense_request.frame_words = 1000;
  dense_request.touched_words_per_sample = 1000.0;
  const tune::TuneDecision dense_decision =
      tune::tune_decision(profile, dense_request);
  EXPECT_EQ(dense_decision.frame_rep, engine::FrameRep::kDense);
  EXPECT_EQ(dense_decision.predicted_wire_bytes,
            dense_request.frame_words * sizeof(std::uint64_t));

  // No touch estimate: the base representation is preserved untouched.
  tune::TuneRequest unknown_request = sparse_request;
  unknown_request.touched_words_per_sample = 0.0;
  unknown_request.base.frame_rep = engine::FrameRep::kSparse;
  EXPECT_EQ(tune::tuned_options(profile, unknown_request).frame_rep,
            engine::FrameRep::kSparse);
}

TEST(Tuner, SparseWirePayloadShrinksTheSizedEpoch) {
  // With a per-byte beta, pricing the aggregation at the sparse payload
  // instead of the dense frame lowers the predicted overhead, which lets
  // the §IV-D rule size shorter epochs - the short-epochs/huge-V synergy.
  tune::TuningProfile profile = oversubscribed_profile();
  tune::TuneRequest request;
  request.frame_words = 1u << 20;
  request.sample_seconds = 50e-6;
  request.base.frame_rep = engine::FrameRep::kDense;  // env-override-proof

  tune::TuneRequest sparse_request = request;
  sparse_request.touched_words_per_sample = 10.0;
  const tune::TuneDecision dense = tune::tune_decision(profile, request);
  const tune::TuneDecision sparse =
      tune::tune_decision(profile, sparse_request);
  EXPECT_EQ(dense.frame_rep, engine::FrameRep::kDense);
  EXPECT_EQ(sparse.frame_rep, engine::FrameRep::kAuto);
  EXPECT_LT(sparse.predicted_overhead_s, dense.predicted_overhead_s);
  EXPECT_LE(sparse.options.epoch_base, dense.options.epoch_base);
}

// --- Profile serialization ---------------------------------------------------

// The sparse-merge line prices the root-side image merge separately: a
// cheap merge line keeps the sparse representation; a merge alpha that
// eats the byte win must flip the decision back to dense even though the
// sparse image is smaller.
TEST(Tuner, MergeLineGatesTheSparseDecision) {
  tune::TuneRequest request;
  request.frame_words = 1u << 20;
  request.sample_seconds = 50e-6;
  request.touched_words_per_sample = 10.0;
  request.base.frame_rep = engine::FrameRep::kDense;  // env-override-proof

  tune::TuningProfile cheap_merge = oversubscribed_profile();
  {
    tune::AlphaBeta& line =
        cheap_merge.model.line(tune::Pattern::kSparseMerge);
    line.alpha_s = 250e-6;  // cheaper than the 300us Ibarrier+Reduce alpha
    line.beta_s_per_byte = 2e-9;
    line.valid = true;
  }
  const tune::TuneDecision sparse =
      tune::tune_decision(cheap_merge, request);
  EXPECT_EQ(sparse.frame_rep, engine::FrameRep::kAuto);
  EXPECT_EQ(sparse.pattern, tune::Pattern::kSparseMerge);
  EXPECT_EQ(sparse.options.aggregation,
            engine::Aggregation::kIbarrierReduce);

  tune::TuningProfile costly_merge = oversubscribed_profile();
  {
    // Root-side image merging so expensive that no byte saving pays.
    tune::AlphaBeta& line =
        costly_merge.model.line(tune::Pattern::kSparseMerge);
    line.alpha_s = 50e-3;
    line.beta_s_per_byte = 2e-9;
    line.valid = true;
  }
  const tune::TuneDecision dense =
      tune::tune_decision(costly_merge, request);
  EXPECT_EQ(dense.frame_rep, engine::FrameRep::kDense);
  EXPECT_NE(dense.pattern, tune::Pattern::kSparseMerge);
}

// The structured merge paths compete at the sparse payload on their own
// fitted lines: flat sparse merge is the incumbent, a decisively cheaper
// tree or two-level line takes over and brings the radix its line was
// fitted at; losing lines switch their radix knob off.
TEST(Tuner, StructuredMergePathsCompeteAtSparsePayloads) {
  tune::TuneRequest request;
  request.frame_words = 1u << 20;
  request.sample_seconds = 50e-6;
  request.touched_words_per_sample = 10.0;
  request.base.frame_rep = engine::FrameRep::kDense;  // env-override-proof

  const auto with_sparse_merge = [] {
    tune::TuningProfile profile = oversubscribed_profile();
    tune::AlphaBeta& line = profile.model.line(tune::Pattern::kSparseMerge);
    line.alpha_s = 250e-6;
    line.beta_s_per_byte = 2e-9;
    line.valid = true;
    return profile;
  };

  // A tree line decisively under the flat merge wins and emits its radix.
  tune::TuningProfile tree_wins = with_sparse_merge();
  tree_wins.tree_radix = 4;
  {
    tune::AlphaBeta& line = tree_wins.model.line(tune::Pattern::kTreeMerge);
    line.alpha_s = 80e-6;
    line.beta_s_per_byte = 0.5e-9;
    line.valid = true;
  }
  const tune::TuneDecision tree = tune::tune_decision(tree_wins, request);
  EXPECT_EQ(tree.pattern, tune::Pattern::kTreeMerge);
  EXPECT_EQ(tree.frame_rep, engine::FrameRep::kAuto);
  EXPECT_EQ(tree.options.tree_radix, 4);
  EXPECT_FALSE(tree.options.hierarchical);

  // Within the decision margin the incumbent flat merge stays, and the
  // priced-but-losing tree line zeroes the radix knob.
  tune::TuningProfile tree_parity = with_sparse_merge();
  tree_parity.tree_radix = 4;
  {
    tune::AlphaBeta& line = tree_parity.model.line(tune::Pattern::kTreeMerge);
    line.alpha_s = 240e-6;  // ~4% under the incumbent: not decisive
    line.beta_s_per_byte = 2e-9;
    line.valid = true;
  }
  tune::TuneRequest parity_request = request;
  parity_request.base.tree_radix = 8;  // tuner owns the knob once priced
  const tune::TuneDecision parity =
      tune::tune_decision(tree_parity, parity_request);
  EXPECT_EQ(parity.pattern, tune::Pattern::kSparseMerge);
  EXPECT_EQ(parity.options.tree_radix, 0);

  // A two-level line under everything wins, turns hierarchical on, and
  // emits the leader radix.
  tune::TuningProfile two_level_wins = tree_wins;
  two_level_wins.leader_radix = 2;
  {
    tune::AlphaBeta& line =
        two_level_wins.model.line(tune::Pattern::kTwoLevel);
    line.alpha_s = 20e-6;
    line.beta_s_per_byte = 0.2e-9;
    line.valid = true;
  }
  const tune::TuneDecision two_level =
      tune::tune_decision(two_level_wins, request);
  EXPECT_EQ(two_level.pattern, tune::Pattern::kTwoLevel);
  EXPECT_TRUE(two_level.options.hierarchical);
  EXPECT_EQ(two_level.options.leader_radix, 2);
  EXPECT_EQ(two_level.options.tree_radix, 0);

  // Single-rank nodes cannot pre-reduce: the same profile with one rank
  // per node falls back to the tree path.
  tune::TuningProfile flat_nodes = two_level_wins;
  flat_nodes.shape.ranks_per_node = 1;
  const tune::TuneDecision no_nodes =
      tune::tune_decision(flat_nodes, request);
  EXPECT_EQ(no_nodes.pattern, tune::Pattern::kTreeMerge);
  EXPECT_EQ(no_nodes.options.leader_radix, 0);
}

TEST(TuningProfile, RoundTripsThroughTextAndKeepsDecisions) {
  tune::TuningProfile original = oversubscribed_profile();
  original.tree_radix = 4;
  original.leader_radix = 2;
  const std::string text = original.serialize();
  const auto parsed = tune::TuningProfile::parse(text);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->tree_radix, 4);
  EXPECT_EQ(parsed->leader_radix, 2);
  EXPECT_EQ(parsed->shape.num_ranks, original.shape.num_ranks);
  EXPECT_EQ(parsed->shape.ranks_per_node, original.shape.ranks_per_node);
  EXPECT_EQ(parsed->shape.threads_per_rank, original.shape.threads_per_rank);
  EXPECT_DOUBLE_EQ(parsed->oversubscription, original.oversubscription);
  for (std::size_t p = 0; p < tune::kNumPatterns; ++p) {
    const auto pattern = static_cast<tune::Pattern>(p);
    ASSERT_EQ(parsed->model.has(pattern), original.model.has(pattern));
    if (!original.model.has(pattern)) continue;
    EXPECT_NEAR(parsed->model.line(pattern).alpha_s,
                original.model.line(pattern).alpha_s, 1e-15);
    EXPECT_NEAR(parsed->model.line(pattern).beta_s_per_byte,
                original.model.line(pattern).beta_s_per_byte, 1e-18);
  }

  // Identical decisions for a spread of workload sizes.
  for (const std::size_t frame_words : {64ul, 7000ul, 300000ul}) {
    tune::TuneRequest request;
    request.frame_words = frame_words;
    request.sample_seconds = 80e-6;
    const engine::EngineOptions a = tune::tuned_options(original, request);
    const engine::EngineOptions b = tune::tuned_options(*parsed, request);
    EXPECT_EQ(a.aggregation, b.aggregation);
    EXPECT_EQ(a.hierarchical, b.hierarchical);
    EXPECT_EQ(a.threads_per_rank, b.threads_per_rank);
    EXPECT_EQ(a.epoch_base, b.epoch_base);
    EXPECT_EQ(a.max_epoch_length, b.max_epoch_length);
  }
}

TEST(TuningProfile, FileRoundTrip) {
  const tune::TuningProfile original = oversubscribed_profile();
  const std::string path = ::testing::TempDir() + "/distbc_profile.txt";
  ASSERT_TRUE(original.save(path));
  const auto loaded = tune::TuningProfile::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->shape.num_ranks, original.shape.num_ranks);
  std::remove(path.c_str());
}

TEST(TuningProfile, ParseRejectsMalformedInput) {
  EXPECT_FALSE(tune::TuningProfile::parse("not a profile").has_value());
  EXPECT_FALSE(tune::TuningProfile::parse("tune.version = 2").has_value());
  // Missing shape keys.
  EXPECT_FALSE(tune::TuningProfile::parse("tune.version = 1").has_value());
  // A pattern with only one coefficient is rejected.
  EXPECT_FALSE(tune::TuningProfile::parse(
                   "tune.version = 1\nshape.num_ranks = 2\n"
                   "shape.ranks_per_node = 1\nshape.threads_per_rank = 1\n"
                   "pattern.reduce.alpha_s = 1e-6")
                   .has_value());
  // Comments and blank lines are fine.
  EXPECT_TRUE(tune::TuningProfile::parse(
                  "# comment\n\ntune.version = 1\nshape.num_ranks = 2\n"
                  "shape.ranks_per_node = 1\nshape.threads_per_rank = 1\n")
                  .has_value());
}

TEST(Patterns, NamesRoundTrip) {
  for (std::size_t p = 0; p < tune::kNumPatterns; ++p) {
    const auto pattern = static_cast<tune::Pattern>(p);
    const auto back = tune::pattern_from_name(tune::pattern_name(pattern));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, pattern);
  }
  EXPECT_FALSE(tune::pattern_from_name("nonsense").has_value());
}

// --- Live microbench + integration ------------------------------------------

TEST(Microbench, MeasuresAllPatternsOnTinyCluster) {
  tune::MicrobenchConfig config;
  config.num_ranks = 2;
  config.ranks_per_node = 2;
  config.threads_per_rank = 1;
  config.message_words = {64, 512};
  config.warmup_rounds = 1;
  config.measure_rounds = 2;
  config.repeats = 1;
  config.epoch_units = 2;
  config.work_unit_s = 5e-6;
  config.network.dedicated_cores = false;  // quiet semantics-only run
  const tune::MicrobenchResult result = tune::run_microbench(config);
  EXPECT_GE(result.oversubscription, 1.0);
  EXPECT_GT(result.baseline_epoch_s, 0.0);
  for (const auto pattern :
       {tune::Pattern::kReduce, tune::Pattern::kIreduce,
        tune::Pattern::kIbarrierReduce, tune::Pattern::kWindowPreReduce,
        tune::Pattern::kSparseMerge}) {
    const auto samples = result.of(pattern);
    ASSERT_EQ(samples.size(), 2u) << tune::pattern_name(pattern);
    for (const auto& sample : samples) {
      EXPECT_TRUE(std::isfinite(sample.overhead_s));
      EXPECT_GE(sample.overhead_s, 0.0);
      EXPECT_GT(sample.epoch_s, 0.0);
    }
  }
  EXPECT_EQ(result.of(tune::Pattern::kIbcast).size(), 1u);

  // Two ranks on one node: the two-level arm runs (and records the radix
  // its winning sweep used), while a radix tree over two ranks has no
  // interior and is skipped.
  const auto two_level = result.of(tune::Pattern::kTwoLevel);
  ASSERT_EQ(two_level.size(), 2u);
  EXPECT_GE(result.leader_radix, 2);
  for (const auto& sample : two_level) {
    EXPECT_EQ(sample.radix, result.leader_radix);
    EXPECT_GE(sample.overhead_s, 0.0);
  }
  EXPECT_TRUE(result.of(tune::Pattern::kTreeMerge).empty());
  EXPECT_EQ(result.tree_radix, 0);

  const tune::CostModel model = tune::CostModel::fit(result);
  EXPECT_TRUE(model.has(tune::Pattern::kIbarrierReduce));
  EXPECT_GE(model.predict_seconds(tune::Pattern::kIbarrierReduce, 1000), 0.0);
}

TEST(AutoTune, KadabraRunsWithTunedOptions) {
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(150, 450, 7));
  auto profile =
      std::make_shared<tune::TuningProfile>(oversubscribed_profile());
  profile->shape.num_ranks = 2;
  profile->shape.ranks_per_node = 1;
  profile->shape.threads_per_rank = 2;

  bc::KadabraOptions options;
  options.params.epsilon = 0.1;
  options.params.seed = 99;
  options.engine.threads_per_rank = 1;  // the profile overrides this
  options.auto_tune = profile;
  const bc::BcResult result = bc::kadabra_mpi(
      graph, options, 2, 1, mpisim::NetworkModel::disabled());

  EXPECT_GT(result.samples, 0u);
  ASSERT_EQ(result.scores.size(), graph.num_vertices());
  // The tuned configuration was applied and reported.
  EXPECT_EQ(result.engine_used.threads_per_rank, 2);
  EXPECT_EQ(result.engine_used.aggregation,
            engine::Aggregation::kIbarrierReduce);
  EXPECT_GT(result.engine_used.epoch_base, 0u);

  // Scores are a probability-normalized betweenness estimate.
  double sum = 0.0;
  for (const double score : result.scores) sum += score;
  EXPECT_GT(sum, 0.0);
}

TEST(AutoTune, AdaptiveDriversAcceptProfiles) {
  const graph::Graph graph =
      graph::largest_component(gen::erdos_renyi(120, 420, 11));
  auto profile =
      std::make_shared<tune::TuningProfile>(oversubscribed_profile());
  profile->shape.num_ranks = 2;
  profile->shape.ranks_per_node = 1;
  profile->shape.threads_per_rank = 1;

  adaptive::MeanDistanceParams md_params;
  md_params.epsilon = 0.4;
  md_params.auto_tune = profile;
  const auto md = adaptive::mean_distance_mpi(
      graph, md_params, 2, 1, mpisim::NetworkModel::disabled());
  EXPECT_GT(md.samples, 0u);
  EXPECT_GT(md.mean, 0.0);

  adaptive::ClosenessParams cl_params;
  cl_params.epsilon = 0.2;
  cl_params.auto_tune = profile;
  const auto cl = adaptive::closeness_mpi(graph, cl_params, 2, 1,
                                          mpisim::NetworkModel::disabled());
  EXPECT_GT(cl.samples, 0u);
  EXPECT_EQ(cl.scores.size(), graph.num_vertices());
}

}  // namespace
}  // namespace distbc
