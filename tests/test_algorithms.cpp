// Integration tests: every betweenness algorithm in the library against the
// exact Brandes oracle, plus cross-variant consistency and bookkeeping.
#include <gtest/gtest.h>

#include "bc/brandes.hpp"
#include "bc/kadabra.hpp"
#include "bc/lockstep.hpp"
#include "bc/rk.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace distbc::bc {
namespace {

using graph::Graph;

Graph social_graph() {
  gen::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8.0;
  return graph::largest_component(gen::rmat(params, 1001));
}

Graph road_graph() {
  gen::RoadParams params;
  params.width = 40;
  params.height = 16;
  return gen::road(params, 1002);
}

KadabraParams loose_params() {
  KadabraParams params;
  params.epsilon = 0.1;
  params.delta = 0.1;
  params.seed = 7;
  return params;
}

TEST(KadabraSequential, WithinEpsilonOfExact) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  const BcResult approx = kadabra_sequential(graph, loose_params());
  ASSERT_EQ(approx.scores.size(), exact.scores.size());
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
  EXPECT_GT(approx.samples, 0u);
  EXPECT_GT(approx.epochs, 0u);
  EXPECT_GT(approx.omega, 0u);
  EXPECT_LE(approx.samples, approx.omega + 2000);  // capped by budget
}

TEST(KadabraSequential, TighterEpsilonTakesMoreSamples) {
  const Graph graph = social_graph();
  KadabraParams loose = loose_params();
  KadabraParams tight = loose_params();
  tight.epsilon = 0.03;
  const BcResult a = kadabra_sequential(graph, loose);
  const BcResult b = kadabra_sequential(graph, tight);
  EXPECT_GT(b.samples, a.samples);
}

TEST(KadabraSequential, PhaseTimingsPopulated) {
  const Graph graph = road_graph();
  const BcResult result = kadabra_sequential(graph, loose_params());
  EXPECT_GT(result.phases.seconds(Phase::kDiameter), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kCalibration), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kSampling), 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.adaptive_seconds, 0.0);
}

TEST(KadabraShm, WithinEpsilonOfExact) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.threads_per_rank = 4;
  const BcResult approx = kadabra_shm(graph, options);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
  EXPECT_GT(approx.samples, 0u);
  EXPECT_GT(approx.epochs, 0u);
}

TEST(KadabraShm, SingleThreadWorks) {
  const Graph graph = road_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.threads_per_rank = 1;
  const BcResult approx = kadabra_shm(graph, options);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraShm, ManyThreadsStillSound) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.threads_per_rank = 12;
  const BcResult approx = kadabra_shm(graph, options);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, WithinEpsilonOfExact) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.threads_per_rank = 2;
  const BcResult approx = kadabra_mpi(graph, options, /*num_ranks=*/4);
  ASSERT_EQ(approx.scores.size(), exact.scores.size());
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
  EXPECT_GT(approx.samples, 0u);
  EXPECT_GT(approx.epochs, 0u);
  EXPECT_GT(approx.comm_bytes, 0u);
  EXPECT_GE(approx.samples_attempted, approx.samples);
}

TEST(KadabraMpi, SingleRankSingleThread) {
  const Graph graph = road_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  const BcResult approx = kadabra_mpi(graph, options, 1);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, IreduceStrategy) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.aggregation = Aggregation::kIreduce;
  const BcResult approx = kadabra_mpi(graph, options, 3);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, BlockingStrategy) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.aggregation = Aggregation::kBlocking;
  const BcResult approx = kadabra_mpi(graph, options, 3);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, HierarchicalAggregation) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  options.engine.hierarchical = true;
  // 4 ranks on 2 nodes: window pre-reduce + leader reduction.
  const BcResult approx =
      kadabra_mpi(graph, options, /*num_ranks=*/4, /*ranks_per_node=*/2);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, NetworkModelDoesNotChangeSoundness) {
  const Graph graph = road_graph();
  const BcResult exact = brandes(graph);
  KadabraOptions options;
  options.params = loose_params();
  mpisim::NetworkModel slow;
  slow.remote_latency_s = 1e-3;
  const BcResult approx = kadabra_mpi(graph, options, 4, 1, slow);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
}

TEST(KadabraMpi, PhaseBreakdownPopulated) {
  const Graph graph = social_graph();
  KadabraOptions options;
  options.params = loose_params();
  options.engine.threads_per_rank = 2;
  const BcResult result = kadabra_mpi(graph, options, 4);
  EXPECT_GT(result.phases.seconds(Phase::kDiameter), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kCalibration), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kSampling), 0.0);
  EXPECT_GE(result.phases.seconds(Phase::kBarrier), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kReduction), 0.0);
  EXPECT_GT(result.phases.seconds(Phase::kStopCheck), 0.0);
}

TEST(Lockstep, WithinEpsilonOfExact) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  LockstepOptions options;
  options.params = loose_params();
  options.threads_per_rank = 2;
  const BcResult approx = lockstep_mpi(graph, options, /*num_ranks=*/3);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
  EXPECT_GT(approx.epochs, 0u);
}

TEST(Rk, WithinEpsilonOfExact) {
  const Graph graph = social_graph();
  const BcResult exact = brandes(graph);
  RkParams params;
  params.epsilon = 0.1;
  params.delta = 0.1;
  params.seed = 5;
  const BcResult approx = rk(graph, params, /*num_threads=*/4);
  EXPECT_LE(approx.max_abs_difference(exact), 0.1);
  EXPECT_EQ(approx.samples, approx.omega);  // RK always spends the budget
}

TEST(Rk, KadabraStopsEarlierThanRkBudget) {
  // The adaptive advantage materializes in the asymptotic regime (epsilon
  // small relative to the top betweenness scores): the static budget pays
  // the full diameter-dependent constant while the adaptive check fires as
  // soon as the actual estimates concentrate.
  const Graph graph =
      graph::largest_component(gen::erdos_renyi(500, 1500, 1003));
  KadabraParams kparams = loose_params();
  kparams.epsilon = 0.03;
  const BcResult adaptive = kadabra_sequential(graph, kparams);
  RkParams rparams;
  rparams.epsilon = kparams.epsilon;
  rparams.delta = kparams.delta;
  const BcResult fixed = rk(graph, rparams, 1);
  EXPECT_LT(adaptive.samples, fixed.samples);
}

TEST(AllSamplingAlgorithms, AgreeOnTopVertex) {
  // A graph with one dominant cut vertex: every algorithm must find it.
  // Two dense blobs joined through vertex 0.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  for (graph::Vertex u = 1; u <= 10; ++u) {
    edges.emplace_back(0, u);
    for (graph::Vertex v = u + 1; v <= 10; ++v) edges.emplace_back(u, v);
  }
  for (graph::Vertex u = 11; u <= 20; ++u) {
    edges.emplace_back(0, u);
    for (graph::Vertex v = u + 1; v <= 20; ++v) edges.emplace_back(u, v);
  }
  const Graph graph = graph::from_edges(21, edges);

  const auto check_top = [&](const BcResult& result) {
    ASSERT_FALSE(result.scores.empty());
    EXPECT_EQ(result.top_k(1)[0], 0u);
  };
  check_top(brandes(graph));
  check_top(kadabra_sequential(graph, loose_params()));
  KadabraOptions shm;
  shm.params = loose_params();
  shm.engine.threads_per_rank = 3;
  check_top(kadabra_shm(graph, shm));
  KadabraOptions mpi;
  mpi.params = loose_params();
  check_top(kadabra_mpi(graph, mpi, 2));
  RkParams rkp;
  rkp.epsilon = 0.1;
  check_top(rk(graph, rkp, 2));
}

}  // namespace
}  // namespace distbc::bc
